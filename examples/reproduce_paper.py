#!/usr/bin/env python
"""Regenerate every table and figure of the paper at full scale.

Runs the complete evaluation: Tables I-II, Fig. 1 (cluster probes),
Figs. 2-5 (audit-log analyses), Fig. 6 (workload CDF), Figs. 7-9 (CCT
experiments and sensitivity sweeps), Fig. 10 (EC2), and Fig. 11
(placement uniformity), printing the rows/series each figure plots.

Full scale (500-job traces, all sweeps) takes tens of minutes; pass a
smaller job count for a quick pass:

    python examples/reproduce_paper.py            # full 500-job traces
    python examples/reproduce_paper.py 150        # reduced scale
"""

import sys
import time

import numpy as np

from repro.experiments.figures import (
    fig2_popularity,
    fig3_age_cdf,
    fig4_windows,
    fig5_windows_day,
    fig6_access_cdf,
    fig7_cct,
    fig8a_p_sweep,
    fig8b_threshold_sweep,
    fig9a_budget_sweep_lru,
    fig9b_budget_sweep_et,
    fig10_ec2,
    fig11_uniformity,
    print_fig7,
    print_sweep,
)
from repro.experiments.tables import (
    bandwidth_ratios,
    fig1_hop_distribution,
    print_table1,
    print_table2,
    table1_rtt,
    table2_bandwidth,
)


def banner(msg: str) -> None:
    print(f"\n{'=' * 72}\n{msg}\n{'=' * 72}")


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 500
    t0 = time.time()

    banner("Tables I-II and Fig. 1: cluster measurements")
    print_table1(table1_rtt())
    print()
    print_table2(table2_bandwidth())
    ratios = bandwidth_ratios()
    print(f"\nnet/disk bandwidth ratio: CCT {100 * ratios['cct']:.1f}% vs "
          f"EC2 {100 * ratios['ec2']:.1f}% (paper: 74.6% vs 51.75%)")
    hist = fig1_hop_distribution()
    print("Fig. 1 hop-count distribution (EC2 pairs):")
    for h, frac in enumerate(hist):
        if frac > 0:
            print(f"  {h:>2d} hops: {'#' * int(50 * frac)} {frac:.2f}")

    banner("Figs. 2-5: access patterns in the (synthetic) production log")
    pop = fig2_popularity()
    print("Fig. 2 popularity by rank (raw):",
          [int(x) for x in pop["raw"][[0, 9, 99, min(999, len(pop['raw']) - 1)]]])
    age = fig3_age_cdf()
    grid, cdf = age["grid_hours"], age["cdf"]
    for h in (1.0, 24.0, 168.0):
        print(f"Fig. 3 CDF(age < {h:.0f} h) = {cdf[np.argmin(np.abs(grid - h))]:.2f}")
    print(f"       median age = {age['median_hours'][0]:.1f} h (paper: 9h45m)")
    sizes, frac = fig4_windows()["unweighted"]
    print(f"Fig. 4 window mass: <=2h {frac[:2].sum():.2f}, "
          f"daily spike (116-130h) {frac[115:130].sum():.2f}")
    sizes_d, frac_d = fig5_windows_day()["unweighted"]
    print(f"Fig. 5 (day 2) windows <=1h: {frac_d[0]:.2f}, <=2h: {frac_d[:2].sum():.2f}")

    banner("Fig. 6: access CDF of the experiment workload")
    cdf6 = fig6_access_cdf(n_jobs=n_jobs)
    for r in (1, 5, 10, 20, min(60, len(cdf6))):
        print(f"  top {r:>3d} files: {100 * cdf6[r - 1]:5.1f}% of accesses")

    banner(f"Fig. 7: 20-node CCT cluster, {n_jobs}-job traces")
    print_fig7(fig7_cct(n_jobs=n_jobs))

    banner("Fig. 8a: locality & blocks/job vs ElephantTrap p (wl2)")
    print_sweep(fig8a_p_sweep(n_jobs=n_jobs), "p")

    banner("Fig. 8b: locality & blocks/job vs aging threshold (wl2)")
    print_sweep(fig8b_threshold_sweep(n_jobs=n_jobs), "threshold")

    banner("Fig. 9a: locality & blocks/job vs budget, greedy LRU (wl2)")
    print_sweep(fig9a_budget_sweep_lru(n_jobs=n_jobs), "budget")

    banner("Fig. 9b: locality & blocks/job vs budget, ElephantTrap (wl2)")
    for p, points in fig9b_budget_sweep_et(n_jobs=n_jobs).items():
        print(f"-- p = {p}")
        print_sweep(points, "budget")

    banner(f"Fig. 10: 100-node EC2 cluster, wl1 x {n_jobs} jobs")
    print_fig7(fig10_ec2(n_jobs=n_jobs), "Fig. 10 (100-node EC2)")

    banner("Fig. 11: uniformity of replica placement (cv of popularity index)")
    print(f"{'p':>6s} {'cv before':>10s} {'cv after':>10s}")
    for pt in fig11_uniformity(n_jobs=n_jobs):
        print(f"{pt.p:>6.1f} {pt.cv_before:>10.3f} {pt.cv_after:>10.3f}")

    print(f"\ntotal: {time.time() - t0:.0f}s")


if __name__ == "__main__":
    main()
