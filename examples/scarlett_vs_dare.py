#!/usr/bin/env python
"""DARE vs Scarlett: reactive vs epoch-based replication.

Scarlett (EuroSys'11) is the paper's closest related work: every epoch it
recomputes per-file replication factors from observed popularity and
rebalances proactively — paying real network traffic for each copy.  DARE
replicates reactively, on the back of reads that happen anyway.

Two scenarios:

1. a *stationary* workload, where both approaches help, but Scarlett pays
   tens of GB of rebalancing traffic for its locality while DARE pays none;
2. a *popularity shift* mid-workload, where Scarlett keeps serving the
   previous epoch's hot set while DARE re-adapts within seconds — the
   paper's core argument for a reactive scheme (Section VI).

Run:  python examples/scarlett_vs_dare.py
"""

import numpy as np

from repro import DareConfig, ExperimentConfig, run_experiment, synthesize_wl1
from repro.baselines.scarlett import ScarlettConfig
from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, FileSpec
from repro.workloads.swim import Workload


def stationary() -> None:
    print("=== stationary workload (wl1, FIFO) ===")
    wl = synthesize_wl1(np.random.default_rng(7), n_jobs=250)
    systems = {
        "vanilla": ExperimentConfig(),
        "DARE/ET": ExperimentConfig(dare=DareConfig.elephant_trap()),
        "Scarlett": ExperimentConfig(
            scarlett=ScarlettConfig(epoch_s=60.0, budget=0.2, max_concurrent=16)
        ),
    }
    print(f"{'system':<10s} {'locality':>9s} {'remote reads':>13s} "
          f"{'rebalancing':>12s} {'GMTT':>7s}")
    for name, cfg in systems.items():
        r = run_experiment(cfg, wl)
        print(f"{name:<10s} {r.job_locality:>9.3f} "
              f"{r.traffic_bytes['remote_map_reads'] / 1e9:>11.1f}GB "
              f"{r.traffic_bytes['rebalancing'] / 1e9:>10.1f}GB {r.gmtt_s:>6.1f}s")
    print()


def build_shift(n_jobs: int = 240, seed: int = 5) -> Workload:
    rng = np.random.default_rng(seed)
    files = [FileSpec("hot_a", 2, "small"), FileSpec("hot_b", 2, "small")]
    files += [FileSpec(f"bg{i:02d}", 2, "small") for i in range(40)]
    specs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(4.0))
        hot = "hot_b" if i >= n_jobs // 2 else "hot_a"
        name = hot if rng.random() < 0.6 else f"bg{rng.integers(0, 40):02d}"
        specs.append(JobSpec(i, t, name, map_cpu_s=2.0, n_reduces=0))
    return Workload("shift", FileCatalog(files), specs)


def shifting() -> None:
    print("=== popularity shift halfway through (hot file A -> B) ===")
    wl = build_shift()
    half = wl.n_jobs // 2
    span = max(s.submit_time for s in wl.specs)

    def phase2(result):
        recs = [r for r in result.collector.job_records if r.job_id >= half]
        return sum(r.data_locality for r in recs) / len(recs)

    dare = run_experiment(
        ExperimentConfig(dare=DareConfig.elephant_trap(p=0.5, budget=0.3)), wl
    )
    # Scarlett with an epoch sized like its real deployments: it recomputes
    # once before the shift and never catches the new hot file in time
    scarlett = run_experiment(
        ExperimentConfig(
            scarlett=ScarlettConfig(epoch_s=span / 2.2, budget=0.3, max_concurrent=16)
        ),
        wl,
    )
    print(f"  locality on post-shift jobs:  DARE {phase2(dare):.3f}  "
          f"vs  Scarlett {phase2(scarlett):.3f}")
    print("  (DARE re-adapts inside the epoch; Scarlett still replicates")
    print("   the previous epoch's hot file)")


def main() -> None:
    stationary()
    shifting()


if __name__ == "__main__":
    main()
