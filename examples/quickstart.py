#!/usr/bin/env python
"""Quickstart: vanilla Hadoop vs DARE on a small cluster.

Synthesizes a 150-job small-jobs workload (the paper's wl1 shape), replays
it through the simulated 20-node CCT cluster under the FIFO scheduler, and
compares vanilla Hadoop against both DARE variants.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import DareConfig, ExperimentConfig, run_experiment, synthesize_wl1


def main() -> None:
    workload = synthesize_wl1(np.random.default_rng(7), n_jobs=150)
    print(
        f"workload: {workload.n_jobs} jobs, {workload.total_map_tasks()} map tasks, "
        f"{len(workload.catalog)} files ({workload.catalog.total_blocks} blocks)"
    )

    configs = {
        "vanilla Hadoop": DareConfig.off(),
        "DARE greedy/LRU (Alg. 1)": DareConfig.greedy_lru(budget=0.2),
        "DARE ElephantTrap (Alg. 2)": DareConfig.elephant_trap(
            p=0.3, threshold=1, budget=0.2
        ),
    }

    print(f"\n{'configuration':<28s} {'locality':>9s} {'GMTT':>8s} "
          f"{'slowdown':>9s} {'blocks/job':>11s}")
    baseline = None
    for label, dare in configs.items():
        result = run_experiment(
            ExperimentConfig(scheduler="fifo", dare=dare), workload
        )
        if baseline is None:
            baseline = result
        print(
            f"{label:<28s} {result.job_locality:>9.3f} {result.gmtt_s:>7.1f}s "
            f"{result.slowdown:>9.2f} {result.blocks_created_per_job:>11.2f}"
        )

    print(
        "\nDARE replicates popular blocks on the nodes that already fetched "
        "them,\nso data locality rises and turnaround falls — with zero extra "
        "network traffic."
    )


if __name__ == "__main__":
    main()
