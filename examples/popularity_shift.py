#!/usr/bin/env python
"""DARE adapts to popularity changes at runtime.

This is the property that separates DARE from epoch-based systems like
Scarlett: replication reacts to the access stream itself, so when the hot
data set changes mid-workload, old replicas age out and the new hot file
gets replicated — no epoch boundary or central recomputation required.

The script builds a two-phase trace: phase 1 hammers file A, phase 2
abruptly switches to file B.  It then reports per-phase locality and the
eviction counters that show the replica population turning over.

Run:  python examples/popularity_shift.py
"""

import numpy as np

from repro import DareConfig, ExperimentConfig, run_experiment
from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, FileSpec
from repro.workloads.swim import Workload


def build_shifting_workload(n_jobs: int = 300, seed: int = 5) -> Workload:
    """Phase 1 reads hot_a (+ background); phase 2 shifts to hot_b."""
    rng = np.random.default_rng(seed)
    files = [FileSpec("hot_a", 3, "small"), FileSpec("hot_b", 3, "small")]
    files += [FileSpec(f"bg{i:02d}", int(rng.integers(2, 8)), "small") for i in range(60)]
    catalog = FileCatalog(files)

    specs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(3.0))
        phase2 = i >= n_jobs // 2
        if rng.random() < 0.5:
            name = "hot_b" if phase2 else "hot_a"
        else:
            name = f"bg{rng.integers(0, 60):02d}"
        specs.append(
            JobSpec(
                job_id=i,
                submit_time=t,
                input_file=name,
                map_cpu_s=float(rng.lognormal(np.log(2.5), 0.5)),
                n_reduces=1,
                reduce_cpu_s=2.0,
            )
        )
    return Workload("shift", catalog, specs)


def phase_locality(result, workload, lo: int, hi: int) -> float:
    """Mean job locality over a job-id range."""
    recs = [r for r in result.collector.job_records if lo <= r.job_id < hi]
    return sum(r.data_locality for r in recs) / len(recs)


def main() -> None:
    workload = build_shifting_workload()
    half = workload.n_jobs // 2

    for label, dare in [
        ("vanilla Hadoop", DareConfig.off()),
        ("DARE ElephantTrap", DareConfig.elephant_trap(p=0.3, threshold=1, budget=0.2)),
    ]:
        result = run_experiment(ExperimentConfig(scheduler="fifo", dare=dare), workload)
        p1 = phase_locality(result, workload, 0, half)
        p2a = phase_locality(result, workload, half, half + half // 4)
        p2b = phase_locality(result, workload, workload.n_jobs - half // 4, workload.n_jobs)
        print(f"{label}:")
        print(f"  phase 1 locality (file A hot):            {p1:.3f}")
        print(f"  right after the shift (file B now hot):   {p2a:.3f}")
        print(f"  end of phase 2 (DARE has re-adapted):     {p2b:.3f}")
        print(f"  replicas created={result.blocks_created} "
              f"evicted={result.blocks_evicted}\n")

    print("With DARE, locality dips right after the shift and recovers as the")
    print("competitive-aging eviction replaces file A's replicas with file B's.")


if __name__ == "__main__":
    main()
