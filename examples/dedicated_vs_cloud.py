#!/usr/bin/env python
"""Section II-B + V-E demo: dedicated cluster vs virtualized public cloud.

Probes both simulated environments the way the paper did (ping / hdparm /
iperf / traceroute), then replays the same workload on each to show the
paper's Section V-E finding: for comparable locality improvements, the
*performance* gain of DARE is larger on the virtualized cluster, because
its network-to-disk bandwidth ratio is worse (remote reads hurt more).

Run:  python examples/dedicated_vs_cloud.py
"""

import numpy as np

from repro import DareConfig, ExperimentConfig, run_experiment, synthesize_wl1
from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, build_cluster
from repro.cluster.probes import (
    measure_disk_bandwidth,
    measure_network_bandwidth,
    ping_all_pairs,
    traceroute_hop_histogram,
)


def probe(spec) -> None:
    cluster = build_cluster(spec)
    rtt = ping_all_pairs(cluster)
    disk = measure_disk_bandwidth(cluster)
    net = measure_network_bandwidth(cluster)
    print(f"{spec.name.upper()} ({spec.n_nodes} nodes, "
          f"{cluster.topology.n_racks} rack(s)):")
    print(f"  RTT ms:       min {rtt.min:6.2f}  mean {rtt.mean:6.2f}  "
          f"max {rtt.max:7.2f}  sd {rtt.std:6.2f}")
    print(f"  disk MB/s:    min {disk.min:6.1f}  mean {disk.mean:6.1f}  "
          f"max {disk.max:7.1f}  sd {disk.std:6.1f}")
    print(f"  net MB/s:     min {net.min:6.1f}  mean {net.mean:6.1f}  "
          f"max {net.max:7.1f}  sd {net.std:6.1f}")
    print(f"  net/disk ratio: {net.mean / disk.mean:.2f} "
          "(lower = remote reads hurt more)")
    if spec.family == "virtualized":
        hist = traceroute_hop_histogram(cluster)
        mode = int(np.argmax(hist))
        print(f"  hop counts: mode {mode} hops "
              f"({100 * hist[mode]:.0f}% of pairs) — nodes scattered over racks")
    print()


def main() -> None:
    ec2_20 = EC2_SPEC._replace(n_nodes=20)
    probe(CCT_SPEC)
    probe(ec2_20)

    workload = synthesize_wl1(np.random.default_rng(7), n_jobs=200)
    print("same workload, FIFO scheduler, vanilla vs DARE (ElephantTrap):")
    for spec in (CCT_SPEC, EC2_SPEC):
        van = run_experiment(
            ExperimentConfig(cluster_spec=spec, scheduler="fifo"), workload
        )
        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=spec, scheduler="fifo", dare=DareConfig.elephant_trap()
            ),
            workload,
        )
        print(
            f"  {spec.name:>4s}: locality {van.job_locality:.2f} -> "
            f"{dare.job_locality:.2f}   GMTT -"
            f"{100 * (1 - dare.gmtt_s / van.gmtt_s):.0f}%   slowdown -"
            f"{100 * (1 - dare.slowdown / van.slowdown):.0f}%"
        )
    print("\nThe virtualized cluster's worse net/disk ratio makes each avoided")
    print("remote read worth more — the paper's Section V-E observation.")


if __name__ == "__main__":
    main()
