#!/usr/bin/env python
"""Node failures: DARE replicas double as availability insurance.

The paper notes (Section IV-B) that DARE's dynamic replicas are
first-order HDFS replicas, so they "also contribute to increasing
availability of the data in the presence of failures".  This script kills
two nodes mid-workload and compares what HDFS has to repair — and how the
jobs fare — with and without DARE.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro import DareConfig, ExperimentConfig, run_experiment, synthesize_wl1

FAILURES = ((40.0, 4), (110.0, 12))  # (sim-time s, node id)


def main() -> None:
    workload = synthesize_wl1(np.random.default_rng(7), n_jobs=250)
    print(f"workload: {workload.n_jobs} jobs; failing nodes "
          f"{[n for _, n in FAILURES]} at t={[t for t, _ in FAILURES]}\n")

    for label, dare in [
        ("vanilla Hadoop", DareConfig.off()),
        ("DARE ElephantTrap", DareConfig.elephant_trap(budget=0.3)),
    ]:
        r = run_experiment(ExperimentConfig(failures=FAILURES, dare=dare), workload)
        print(f"{label}:")
        print(f"  jobs completed:          {r.n_jobs}/{workload.n_jobs}")
        print(f"  task attempts requeued:  {r.tasks_requeued}")
        print(f"  blocks that lost a copy: {r.blocks_lost_replicas}")
        print(f"  blocks lost forever:     {r.data_loss_blocks}")
        print(f"  repairs performed:       {r.repairs_completed} "
              f"({r.traffic_bytes['re_replication'] / 1e9:.1f} GB of repair traffic)")
        print(f"  locality / GMTT:         {r.job_locality:.2f} / {r.gmtt_s:.1f}s\n")

    print("Every job survives the crashes (tasks re-execute elsewhere), and")
    print("DARE's extra replicas leave HDFS slightly less repair work to do.")


if __name__ == "__main__":
    main()
