#!/usr/bin/env python
"""Section III demo: analyzing a week of HDFS audit logs.

Generates a synthetic audit log with the Yahoo!-cluster characteristics the
paper reports, then runs the full analysis pipeline: popularity-vs-rank
(Fig. 2), age-at-access CDF (Fig. 3), and the 80 %-access window
distributions over the week and within a day (Figs. 4-5).

Run:  python examples/access_patterns.py
"""

import numpy as np

from repro.analysis import (
    age_at_access_cdf,
    generate_access_log,
    popularity_by_rank,
    window_distribution,
)
from repro.analysis.patterns import median_age_hours


def ascii_loglog(series: np.ndarray, label: str, width: int = 56) -> None:
    """Tiny log-log sketch of a rank-ordered series."""
    print(f"  {label} (log-log, rank -> count)")
    n = len(series)
    for frac in (0, 0.001, 0.01, 0.1, 0.5, 1.0):
        rank = max(1, int(frac * n))
        count = series[rank - 1]
        bar = "#" * max(1, int(width * np.log10(max(count, 1.1)) /
                                np.log10(max(series[0], 10))))
        print(f"    rank {rank:>5d}: {bar} {count:.0f}")


def main() -> None:
    log = generate_access_log(np.random.default_rng(42))
    print(f"audit log: {log.n_accesses} accesses to {log.n_files} files over one week\n")

    print("Fig. 2 — file popularity is heavy-tailed:")
    ascii_loglog(popularity_by_rank(log), "accesses per file")
    ascii_loglog(popularity_by_rank(log, weighted=True), "block-weighted")

    print("\nFig. 3 — accesses concentrate early in a file's life:")
    grid = np.array([1.0, 6.0, 12.0, 24.0, 72.0, 168.0])
    cdf = age_at_access_cdf(log, grid)
    for h, c in zip(grid, cdf):
        print(f"    age < {h:>5.0f} h: {100 * c:5.1f}% of accesses")
    print(f"    median age: {median_age_hours(log):.1f} h "
          "(the paper reports ~9h45m)")

    print("\nFig. 4 — smallest window holding 80% of a file's accesses (week):")
    sizes, frac = window_distribution(log)
    for lo, hi, label in [(1, 2, "<= 2 h"), (3, 48, "3-48 h"),
                          (49, 115, "49-115 h"), (116, 130, "~121 h (daily)")]:
        mass = frac[lo - 1:hi].sum()
        print(f"    {label:>15s}: {100 * mass:5.1f}% of big files")

    print("\nFig. 5 — within day 2, bursts are sub-hour:")
    sizes_d, frac_d = window_distribution(log, start_h=24.0, end_h=48.0)
    print(f"    window <= 1 h: {100 * frac_d[0]:.1f}% of big files")
    print(f"    window <= 2 h: {100 * frac_d[:2].sum():.1f}% of big files")

    from repro.analysis.correlation import analyze_correlation

    print("\nSection III — correlated accesses (shared analysis pipelines):")
    summary = analyze_correlation(log)
    print(f"    co-access groups among the hot files: "
          f"{[len(g) for g in summary.groups]}")
    print(f"    background pairwise correlation: {summary.mean_pairwise:+.3f} "
          "(groups internally correlate > 0.5)")


if __name__ == "__main__":
    main()
