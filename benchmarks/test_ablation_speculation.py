"""Ablation: speculative execution x DARE on the virtualized cluster.

Stragglers on EC2 come from processor-sharing stalls and degraded links —
the same remote-read pain DARE removes.  This benchmark measures how the
two mechanisms compose: speculation trims the straggler tail, DARE removes
the slow reads that feed it.
"""

import numpy as np
from conftest import run_once

from repro.cluster.cluster import EC2_SPEC
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1


def _grid(n_jobs):
    wl = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    out = {}
    for dare_label, dare in (("vanilla", DareConfig.off()),
                             ("dare", DareConfig.elephant_trap())):
        for spec_on in (False, True):
            cfg = ExperimentConfig(
                cluster_spec=EC2_SPEC, dare=dare, speculative=spec_on
            )
            out[(dare_label, spec_on)] = run_experiment(cfg, wl)
    return out


def test_speculation_and_dare_compose(benchmark, n_jobs):
    grid = run_once(benchmark, _grid, n_jobs)
    print("\nSpeculation x DARE (100-node EC2, wl1):")
    print(f"{'cell':>18s} {'slowdown':>9s} {'map s':>7s} "
          f"{'spec launched':>14s} {'spec won':>9s}")
    for (dare, spec_on), r in grid.items():
        label = f"{dare}+spec" if spec_on else dare
        print(f"{label:>18s} {r.slowdown:>9.2f} {r.mean_map_s:>7.1f} "
              f"{r.speculative_launched:>14d} {r.speculative_won:>9d}")

    van = grid[("vanilla", False)]
    van_spec = grid[("vanilla", True)]
    dare_spec = grid[("dare", True)]
    # speculation launches and wins duplicates on the stall-prone cluster
    assert van_spec.speculative_launched > 0
    assert van_spec.speculative_won > 0
    # it trims the straggler tail: mean map time does not get worse
    assert van_spec.mean_map_s <= van.mean_map_s * 1.03
    # DARE still provides its full locality benefit alongside speculation
    assert dare_spec.job_locality > 2 * van_spec.job_locality
    assert dare_spec.slowdown < van_spec.slowdown
