"""Table II: disk and network bandwidth, CCT vs EC2."""

from conftest import run_once

from repro.experiments.tables import (
    bandwidth_ratios,
    print_table2,
    table2_bandwidth,
)


def test_table2_bandwidth(benchmark):
    rows = run_once(benchmark, table2_bandwidth)
    print()
    print_table2(rows)
    stats = {r.label: r.stats for r in rows}
    # paper means: CCT disk 157.8, CCT net 117.7, EC2 disk 141.5, EC2 net 73.2
    assert 150 < stats["cct disk bandwidth"].mean < 166
    assert 115 < stats["cct network bandwidth"].mean < 119
    assert 120 < stats["ec2 disk bandwidth"].mean < 160
    assert 60 < stats["ec2 network bandwidth"].mean < 90
    # EC2's dispersion is the story: shared spindles and noisy neighbors
    assert stats["ec2 disk bandwidth"].std > 6 * stats["cct disk bandwidth"].std


def test_table2_bandwidth_ratio_insight(benchmark):
    ratios = run_once(benchmark, bandwidth_ratios)
    print(f"\nnet/disk ratio: cct={ratios['cct']:.3f} ec2={ratios['ec2']:.3f} "
          "(paper: 0.746 vs 0.518)")
    assert ratios["cct"] > 1.2 * ratios["ec2"]
