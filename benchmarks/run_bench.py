"""Machine-readable performance benchmark with a CI regression gate.

Measures the simulator's headline numbers — engine event throughput,
cancel-churn cost, NameNode locality queries, the ElephantTrap update,
one timed end-to-end sweep cell, checkpoint snapshot/restore cost, the
fork-vs-cold wall-clock of a prefix-shared what-if grid, and the rollout
engine's epoch fork-score-apply loop — and writes them as JSON::

    PYTHONPATH=src python benchmarks/run_bench.py --out BENCH_latest.json
    PYTHONPATH=src python benchmarks/run_bench.py --check benchmarks/baseline.json

``--check`` exits non-zero when any metric's wall time regresses more than
``BENCH_TOLERANCE`` (default 0.25, i.e. 25%) over the committed baseline,
or when the prefix-sharing speedup of the what-if grid drops below
``MIN_FORK_SPEEDUP``; this is the CI performance budget.
Faster-than-baseline is always fine.
``--write-baseline`` refreshes the committed baseline after an intentional
change (run on a quiet machine, then commit the file); it merges into the
existing baseline, so the core and ``--scale`` sets can be refreshed
independently.

``--scale`` switches to the node-count scaling benches
(``scale_100`` .. ``scale_100k_meso``): one fixed 30-job trace per N with
end-to-end events/sec and peak RSS, each N in its own subprocess so
``ru_maxrss`` is per-configuration.  Under ``--check`` the 10k-node run
must also hold a >= ``MIN_SCALE_10K_SPEEDUP`` events/sec improvement over
the committed pre-sharding reference, and ``--scale-svg`` renders the
scaling curve via :mod:`repro.viz`.

Stdlib-only by design (``time.perf_counter`` best-of-N) so the gate does
not depend on pytest-benchmark being installed.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import subprocess
import sys
import time
from typing import Callable, Dict, Tuple

import numpy as np

#: allowed fractional wall-time regression before --check fails
TOLERANCE = float(os.environ.get("BENCH_TOLERANCE", "0.25"))

#: minimum fork-vs-cold speedup the prefix-sharing sweep path must keep
MIN_FORK_SPEEDUP = float(os.environ.get("BENCH_MIN_FORK_SPEEDUP", "2.0"))

#: pre-PR reference for the engine throughput bench (seconds, best-of-N on
#: the machine that recorded benchmarks/baseline.json); kept so the JSON
#: artifact documents the optimization this budget protects
PRE_OPTIMIZATION_ENGINE_S = 0.0092

#: the node-count scaling benches: one fixed-seed 30-job WL1 trace per N.
#: ``lite`` is the event-accurate O(N) path (per-node network model, one
#: heartbeat event per node), ``meso`` adds per-rack heartbeat hubs with
#: idle-node pooling (the only feasible mode at 100k nodes)
SCALE_BENCHES: Tuple[Tuple[str, int, str], ...] = (
    ("scale_100", 100, "lite"),
    ("scale_1k", 1_000, "lite"),
    ("scale_10k", 10_000, "lite"),
    ("scale_100k_meso", 100_000, "meso"),
)

#: trace length of every scaling bench (events scale with N, not jobs)
SCALE_JOBS = 30

#: end-to-end events/sec of the 10k-node lite run *before* the NameNode
#: sharding + array-backed store rework (same machine as the committed
#: baseline; per-pair bandwidth matrix, per-object dict hot paths)
PRE_SHARDING_10K_EVENTS_PER_S = 5_589.0

#: minimum events/sec improvement scale_10k must hold over that reference
MIN_SCALE_10K_SPEEDUP = float(os.environ.get("BENCH_MIN_SCALE_10K_SPEEDUP", "5.0"))

#: serial rollout overhead over the host cell *before* the incremental
#: snapshot + parallel fork-scoring rework (policy_rollout_fork_grid on
#: the machine that recorded benchmarks/baseline.json)
PRE_PARALLEL_ROLLOUT_OVERHEAD_X = 16.17

#: worker count used by the parallel rollout bench and its CI gate
ROLLOUT_BENCH_JOBS = 4

#: minimum parallel-over-serial rollout speedup at ROLLOUT_BENCH_JOBS
MIN_ROLLOUT_SPEEDUP = float(os.environ.get("BENCH_MIN_ROLLOUT_SPEEDUP", "2.0"))

#: maximum rollout-over-host overhead at ROLLOUT_BENCH_JOBS
MAX_ROLLOUT_OVERHEAD = float(os.environ.get("BENCH_MAX_ROLLOUT_OVERHEAD", "6.0"))


def best_of(fn: Callable[[], object], rounds: int) -> float:
    """Minimum wall time of ``rounds`` calls (noise-robust point estimate)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


# -- the measured workloads ---------------------------------------------------


def bench_engine_throughput() -> Dict[str, float]:
    """10k chained events — mirrors test_engine_event_throughput."""
    from repro.simulation.engine import Engine

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_in(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        assert count[0] == 10_000

    wall = best_of(run, rounds=20)
    return {"wall_s": wall, "events_per_sec": 10_000 / wall}


def bench_cancel_churn() -> Dict[str, float]:
    """Speculation-style churn: 7 of every 8 scheduled events cancelled."""
    from repro.simulation.engine import Engine

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 2_000:
                copies = [engine.schedule_in(1.0 + i, tick) for i in range(8)]
                for ev in copies[1:]:
                    engine.cancel(ev)

        engine.schedule(0.0, tick)
        engine.run()
        assert count[0] == 2_000

    wall = best_of(run, rounds=10)
    return {"wall_s": wall, "events_per_sec": 2_000 / wall}


def bench_locality_queries() -> Dict[str, float]:
    """Scheduler-style is_local scans over a 200-block file."""
    from repro.cluster.cluster import CCT_SPEC, Cluster
    from repro.hdfs.block import DEFAULT_BLOCK_SIZE
    from repro.hdfs.namenode import NameNode
    from repro.simulation.rng import RandomStreams

    cluster = Cluster(CCT_SPEC, RandomStreams(3))
    nn = NameNode(cluster)
    f = nn.create_file("data", 200 * DEFAULT_BLOCK_SIZE)
    block_ids = [b.block_id for b in f.blocks]

    def run():
        hits = 0
        for node in range(1, 20):
            for bid in block_ids:
                if nn.is_local(bid, node):
                    hits += 1
        assert hits == 3 * 200

    wall = best_of(run, rounds=20)
    return {"wall_s": wall, "queries_per_sec": 19 * 200 / wall}


def bench_elephant_trap() -> Dict[str, float]:
    """Trap lifecycle: adds, accesses, eviction walks."""
    from repro.core.elephant_trap import ElephantTrapPolicy
    from repro.hdfs.block import DEFAULT_BLOCK_SIZE
    from repro.hdfs.inode import INode

    blocks = INode(0, "f").allocate_blocks(64 * DEFAULT_BLOCK_SIZE, 0)
    other = INode(1, "g").allocate_blocks(8 * DEFAULT_BLOCK_SIZE, 100)

    def run():
        et = ElephantTrapPolicy(0.3, 1, random.Random(7))
        for b in blocks[:32]:
            et.add(b)
        for i in range(2000):
            et.on_local_access(blocks[i % 32])
            if i % 10 == 0:
                victim = et.pick_victim(other[i % 8])
                if victim is not None:
                    et.remove(victim.block_id)
                    et.add(blocks[32 + (i // 10) % 32])

    wall = best_of(run, rounds=10)
    return {"wall_s": wall}


def bench_e2e_cell(n_jobs: int) -> Dict[str, float]:
    """One end-to-end sweep cell: fair + ElephantTrap on WL1."""
    from repro.core.config import DareConfig
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.workloads.swim import synthesize_wl1

    rng = np.random.default_rng(20110926)
    workload = synthesize_wl1(rng, n_jobs=n_jobs)
    config = ExperimentConfig(
        scheduler="fair", dare=DareConfig.elephant_trap(), seed=20110926
    )

    best_wall = float("inf")
    events = 0
    for _ in range(3):
        result = run_experiment(config, workload)
        events = result.events_processed
        if result.engine_wall_s < best_wall:
            best_wall = result.engine_wall_s
    return {
        "wall_s": best_wall,
        "events": float(events),
        "events_per_sec": events / best_wall,
        "n_jobs": float(n_jobs),
    }


def bench_snapshot_restore(n_jobs: int) -> Dict[str, float]:
    """Freeze/thaw cost of a mid-flight simulation at half makespan."""
    from repro.checkpoint import snapshot as take_snapshot
    from repro.core.config import DareConfig
    from repro.experiments.runner import (
        ExperimentConfig,
        Simulation,
        make_tracer,
        run_experiment,
    )
    from repro.workloads.swim import synthesize_wl1

    config = ExperimentConfig(
        scheduler="fair", dare=DareConfig.elephant_trap(), seed=20110926
    )
    workload = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    makespan = run_experiment(config, workload).makespan_s

    sim = Simulation(config, workload, tracer=make_tracer(config))
    sim.run(until=makespan / 2)
    snapshot_s = best_of(lambda: take_snapshot(sim), rounds=10)
    snap = take_snapshot(sim)
    sim.close()
    restore_s = best_of(lambda: snap.fork().close(), rounds=10)
    return {
        "wall_s": snapshot_s + restore_s,
        "snapshot_s": snapshot_s,
        "restore_s": restore_s,
        "snapshot_bytes": float(len(snap.payload)),
    }


def bench_fork_vs_cold(n_jobs: int) -> Dict[str, float]:
    """Prefix-shared what-if grid vs re-simulating every cell from zero.

    Ten variants of one base run diverge at 90% of its makespan — the
    late-divergence shape of a what-if grid ("same morning, different
    afternoon").  The shared path simulates the common prefix once and
    forks it, the cold path replays it per cell.  The measured speedup
    backs the >= 2x claim gated by ``MIN_FORK_SPEEDUP`` under ``--check``.
    """
    from repro.core.config import DareConfig
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.experiments.sweep import (
        ForkCell,
        WorkloadSpec,
        results_of,
        run_fork_cells,
    )

    config = ExperimentConfig(
        scheduler="fair", dare=DareConfig.greedy_lru(), seed=20110926
    )
    spec = WorkloadSpec("wl1", n_jobs=n_jobs, seed=20110926)
    makespan = run_experiment(config, spec.materialize()).makespan_s
    patches = ("", "policy:et", "policy:lfu", "policy:off",
               "pin:1:5", "pin:2:6", "pin:3:7", "pin:4:8",
               "pin:5:9", "pin:6:10")
    cells = [
        ForkCell(config, spec, fork_time=0.9 * makespan, patch=p, tag=f"v{i}")
        for i, p in enumerate(patches)
    ]

    def timed(share_prefix: bool) -> float:
        t0 = time.perf_counter()
        results_of(run_fork_cells(cells, no_cache=True, share_prefix=share_prefix))
        return time.perf_counter() - t0

    shared_s = min(timed(True) for _ in range(2))
    cold_s = min(timed(False) for _ in range(2))
    return {
        "wall_s": shared_s,
        "cold_wall_s": cold_s,
        "speedup": cold_s / shared_s,
        "n_cells": float(len(cells)),
    }


def bench_policy_rollout_fork_grid() -> Dict[str, float]:
    """The rollout engine's epoch fork-score-apply loop on one pinned cell.

    Times ``repro run --policy rollout``'s hot path — snapshot the live
    run at every decision epoch, fork one branch per candidate action,
    run each fork to completion, apply strict improvements — on the
    policy benchmark's pinned smoke cell (WL1 x 32 jobs, seed 7), and
    reports the overhead over the plain greedy-LRU host cell.
    """
    from repro.experiments.runner import run_experiment
    from repro.policies.bench import SMOKE_JOBS, bench_config
    from repro.workloads.swim import synthesize_wl1

    workload = synthesize_wl1(np.random.default_rng(7), n_jobs=SMOKE_JOBS)
    rollout_config = bench_config("rollout")
    host_config = bench_config("greedy-lru")

    rollout_s = best_of(lambda: run_experiment(rollout_config, workload), rounds=3)
    host_s = best_of(lambda: run_experiment(host_config, workload), rounds=3)
    result = run_experiment(rollout_config, workload)
    return {
        "wall_s": rollout_s,
        "host_wall_s": host_s,
        "overhead_x": rollout_s / host_s,
        "rollout_bytes": float(result.traffic_bytes.get("rollout", 0)),
        "n_jobs": float(SMOKE_JOBS),
    }


def bench_policy_rollout_parallel() -> Dict[str, float]:
    """Parallel vs serial fork scoring on the pinned rollout bench cell.

    Runs the same cell as :func:`bench_policy_rollout_fork_grid` three
    ways — serial (``jobs=1``), parallel (``jobs=ROLLOUT_BENCH_JOBS``),
    and the plain greedy-LRU host — and reports the parallel speedup and
    the remaining overhead over the host.  Decisions and traces are
    byte-identical between the serial and parallel runs (the CI
    ``policy-bench`` job ``cmp``-gates that separately); this bench gates
    only the wall clock.  The speedup/overhead gates are skipped when the
    machine has fewer cores than workers — the byte-identity contract
    holds anywhere, the wall-clock one needs the cores.
    """
    import dataclasses

    from repro.experiments.runner import run_experiment
    from repro.policies.bench import SMOKE_JOBS, bench_config
    from repro.workloads.swim import synthesize_wl1

    workload = synthesize_wl1(np.random.default_rng(7), n_jobs=SMOKE_JOBS)
    serial_config = bench_config("rollout")
    parallel_config = dataclasses.replace(
        serial_config,
        rollout=serial_config.rollout._replace(jobs=ROLLOUT_BENCH_JOBS),
    )
    host_config = bench_config("greedy-lru")

    serial_s = best_of(lambda: run_experiment(serial_config, workload), rounds=3)
    parallel_s = best_of(lambda: run_experiment(parallel_config, workload), rounds=3)
    host_s = best_of(lambda: run_experiment(host_config, workload), rounds=3)
    return {
        "wall_s": parallel_s,
        "serial_wall_s": serial_s,
        "host_wall_s": host_s,
        "speedup": serial_s / parallel_s,
        "overhead_x": parallel_s / host_s,
        "serial_overhead_x": serial_s / host_s,
        "jobs": float(ROLLOUT_BENCH_JOBS),
        "cpus": float(os.cpu_count() or 1),
        "n_jobs": float(SMOKE_JOBS),
    }


def write_rollout_svg(metrics: Dict[str, float], path: str) -> None:
    """Render the rollout-overhead bars (host / parallel / serial / pre-PR)."""
    from repro.viz.svg import bar_chart

    host = metrics["host_wall_s"]
    svg = bar_chart(
        ["host", f"rollout jobs={int(metrics['jobs'])}", "rollout serial",
         "pre-rework serial"],
        [1.0, metrics["overhead_x"], metrics["serial_overhead_x"],
         PRE_PARALLEL_ROLLOUT_OVERHEAD_X],
        title=(f"Rollout overhead over the host cell "
               f"(host {host * 1e3:.0f} ms, {int(metrics['cpus'])} CPUs)"),
        ylabel="wall time / host wall time",
    )
    with open(path, "w") as fh:
        fh.write(svg)
    print(f"wrote {path}")


def bench_scale_one(name: str) -> Dict[str, float]:
    """One scaling point, run inside a dedicated subprocess.

    Isolation matters for the memory number: ``ru_maxrss`` is a
    process-lifetime high-water mark, so each N must be the only
    simulation its process ever ran.  Wall time is the full
    ``run_experiment`` call (cluster build + event loop), matching how
    the pre-sharding reference was measured.
    """
    import resource

    from repro.cluster.cluster import scale_spec
    from repro.core.config import DareConfig
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.workloads.swim import synthesize_wl1

    by_name = {n: (nodes, mode) for n, nodes, mode in SCALE_BENCHES}
    n_nodes, mode = by_name[name]
    spec = scale_spec(
        n_nodes,
        mesoscale=(mode == "meso"),
        hb_batch=True if mode == "batch" else None,
    )
    workload = synthesize_wl1(np.random.default_rng(20110926), n_jobs=SCALE_JOBS)
    config = ExperimentConfig(
        cluster_spec=spec, scheduler="fair",
        dare=DareConfig.elephant_trap(), seed=20110926,
    )
    rounds = 3 if n_nodes <= 1_000 else (2 if n_nodes <= 10_000 else 1)
    best = float("inf")
    events = 0
    makespan = 0.0
    locality = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = run_experiment(config, workload)
        wall = time.perf_counter() - t0
        if wall < best:
            best = wall
        events = result.events_processed
        makespan = result.makespan_s
        locality = result.job_locality
    peak_rss_mb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return {
        "wall_s": best,
        "events": float(events),
        "events_per_sec": events / best,
        "peak_rss_mb": peak_rss_mb,
        "makespan_s": makespan,
        "job_locality": locality,
        "n_nodes": float(n_nodes),
    }


def collect_scale() -> Dict[str, Dict[str, float]]:
    """Run every scaling bench, each in its own subprocess."""
    script = os.path.abspath(__file__)
    results: Dict[str, Dict[str, float]] = {}
    for name, n_nodes, mode in SCALE_BENCHES:
        print(f"  {name} ({n_nodes:,} nodes, {mode}) ...", end="", flush=True)
        proc = subprocess.run(
            [sys.executable, script, "--scale-one", name],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            print(" FAILED")
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            raise SystemExit(f"scaling bench {name} failed")
        metrics = json.loads(proc.stdout.splitlines()[-1])
        results[name] = metrics
        print(f" {metrics['wall_s']:.2f}s  "
              f"{metrics['events_per_sec']:,.0f} events/s  "
              f"rss {metrics['peak_rss_mb']:.0f}MB")
    return results


def write_scale_svg(results: Dict[str, Dict[str, float]], path: str) -> None:
    """Render the scaling curve (events/sec and peak RSS vs N, log-log)."""
    from repro.viz.svg import line_chart

    ordered = [results[name] for name, _, _ in SCALE_BENCHES if name in results]
    svg = line_chart(
        [
            ("events/s (end-to-end)",
             [(m["n_nodes"], m["events_per_sec"]) for m in ordered]),
            ("peak RSS (MB)",
             [(m["n_nodes"], m["peak_rss_mb"]) for m in ordered]),
        ],
        title=f"Simulator scaling, {SCALE_JOBS}-job WL1 trace",
        xlabel="cluster size (nodes)",
        ylabel="events/s  /  MB (log)",
        xlog=True,
        ylog=True,
    )
    with open(path, "w") as fh:
        fh.write(svg)
    print(f"wrote {path}")


def collect(n_jobs: int) -> Dict[str, Dict[str, float]]:
    """Run every benchmark and return {name: metrics}."""
    results: Dict[str, Dict[str, float]] = {}
    for name, fn in (
        ("engine_event_throughput", bench_engine_throughput),
        ("engine_cancel_churn", bench_cancel_churn),
        ("namenode_locality_queries", bench_locality_queries),
        ("elephant_trap_update", bench_elephant_trap),
    ):
        print(f"  {name} ...", end="", flush=True)
        results[name] = fn()
        print(f" {results[name]['wall_s'] * 1e3:.2f}ms")
    print("  e2e_fair_et ...", end="", flush=True)
    results["e2e_fair_et"] = bench_e2e_cell(n_jobs)
    print(f" {results['e2e_fair_et']['wall_s'] * 1e3:.1f}ms "
          f"({results['e2e_fair_et']['events_per_sec']:,.0f} events/s)")
    print("  checkpoint_snapshot_restore ...", end="", flush=True)
    results["checkpoint_snapshot_restore"] = bench_snapshot_restore(n_jobs)
    print(f" {results['checkpoint_snapshot_restore']['snapshot_s'] * 1e3:.2f}ms"
          f" + {results['checkpoint_snapshot_restore']['restore_s'] * 1e3:.2f}ms "
          f"({results['checkpoint_snapshot_restore']['snapshot_bytes']:,.0f} bytes)")
    print("  checkpoint_fork_vs_cold ...", end="", flush=True)
    results["checkpoint_fork_vs_cold"] = bench_fork_vs_cold(n_jobs)
    print(f" {results['checkpoint_fork_vs_cold']['wall_s'] * 1e3:.0f}ms shared vs "
          f"{results['checkpoint_fork_vs_cold']['cold_wall_s'] * 1e3:.0f}ms cold "
          f"({results['checkpoint_fork_vs_cold']['speedup']:.2f}x)")
    print("  policy_rollout_fork_grid ...", end="", flush=True)
    results["policy_rollout_fork_grid"] = bench_policy_rollout_fork_grid()
    print(f" {results['policy_rollout_fork_grid']['wall_s'] * 1e3:.0f}ms "
          f"({results['policy_rollout_fork_grid']['overhead_x']:.1f}x over "
          f"the plain host cell)")
    print("  policy_rollout_parallel ...", end="", flush=True)
    results["policy_rollout_parallel"] = bench_policy_rollout_parallel()
    print(f" {results['policy_rollout_parallel']['wall_s'] * 1e3:.0f}ms at "
          f"jobs={ROLLOUT_BENCH_JOBS} "
          f"({results['policy_rollout_parallel']['speedup']:.2f}x over serial, "
          f"{results['policy_rollout_parallel']['overhead_x']:.1f}x over host)")
    return results


def collect_rollout() -> Dict[str, Dict[str, float]]:
    """Just the two rollout benches (the CI policy-bench job's subset)."""
    results: Dict[str, Dict[str, float]] = {}
    print("  policy_rollout_fork_grid ...", end="", flush=True)
    results["policy_rollout_fork_grid"] = bench_policy_rollout_fork_grid()
    print(f" {results['policy_rollout_fork_grid']['wall_s'] * 1e3:.0f}ms "
          f"({results['policy_rollout_fork_grid']['overhead_x']:.1f}x over "
          f"the plain host cell)")
    print("  policy_rollout_parallel ...", end="", flush=True)
    results["policy_rollout_parallel"] = bench_policy_rollout_parallel()
    print(f" {results['policy_rollout_parallel']['wall_s'] * 1e3:.0f}ms at "
          f"jobs={ROLLOUT_BENCH_JOBS} "
          f"({results['policy_rollout_parallel']['speedup']:.2f}x over serial, "
          f"{results['policy_rollout_parallel']['overhead_x']:.1f}x over host)")
    return results


def check_against(
    results: Dict[str, Dict[str, float]], baseline_path: str, tolerance: float
) -> int:
    """Compare wall times to the baseline; return the number of regressions."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_results = baseline.get("results", baseline)
    failures = 0
    for name, metrics in sorted(results.items()):
        base = base_results.get(name)
        if base is None:
            print(f"  {name:<28s} (no baseline entry, skipped)")
            continue
        ratio = metrics["wall_s"] / base["wall_s"]
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = f"REGRESSION (> {tolerance:.0%} budget)"
            failures += 1
        print(f"  {name:<28s} {base['wall_s'] * 1e3:8.2f}ms -> "
              f"{metrics['wall_s'] * 1e3:8.2f}ms  ({ratio:5.2f}x)  {verdict}")
    return failures


def _write_doc(path: str, doc: Dict, merge: bool) -> None:
    if merge and os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
        existing.setdefault("results", {}).update(doc["results"])
        existing.setdefault("reference", {}).update(doc.get("reference", {}))
        doc = existing
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int,
                        default=int(os.environ.get("REPRO_BENCH_JOBS", "120")),
                        help="e2e cell trace length (default $REPRO_BENCH_JOBS or 120)")
    parser.add_argument("--out", default="BENCH_latest.json", metavar="PATH",
                        help="write results JSON (default BENCH_latest.json; "
                             "empty string skips the write)")
    parser.add_argument("--check", default="", metavar="BASELINE",
                        help="fail on > tolerance wall-time regression vs BASELINE")
    parser.add_argument("--write-baseline", default="", metavar="PATH",
                        help="merge fresh numbers into the committed baseline file")
    parser.add_argument("--tolerance", type=float, default=TOLERANCE,
                        help=f"allowed fractional regression (default {TOLERANCE})")
    parser.add_argument("--scale", action="store_true",
                        help="run the node-count scaling benches "
                             "(scale_100 .. scale_100k_meso) instead of the core set")
    parser.add_argument("--scale-svg", default="", metavar="PATH",
                        help="with --scale: render the scaling curve as SVG")
    parser.add_argument("--rollout-svg", default="", metavar="PATH",
                        help="render the rollout-overhead bars as SVG")
    parser.add_argument("--rollout-only", action="store_true",
                        help="run only the rollout benches (+ their gates "
                             "under --check)")
    parser.add_argument("--scale-one", default="", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.scale_one:
        # subprocess entry point for one scaling configuration: emit the
        # metrics as a single JSON line for the parent to collect
        print(json.dumps(bench_scale_one(args.scale_one)))
        return 0

    if args.rollout_only:
        print("running rollout benches ...")
        results = collect_rollout()
        doc = {
            "generated_by": "benchmarks/run_bench.py --rollout-only",
            "results": results,
            "reference": {
                "pre_parallel_rollout_overhead_x":
                    PRE_PARALLEL_ROLLOUT_OVERHEAD_X,
                "rollout_parallel_speedup": round(
                    results["policy_rollout_parallel"]["speedup"], 2
                ),
            },
        }
        if args.rollout_svg:
            write_rollout_svg(results["policy_rollout_parallel"],
                              args.rollout_svg)
    elif args.scale:
        print(f"running scaling benches ({SCALE_JOBS}-job trace per N) ...")
        results = collect_scale()
        speedup_10k = (
            results["scale_10k"]["events_per_sec"] / PRE_SHARDING_10K_EVENTS_PER_S
        )
        doc = {
            "generated_by": "benchmarks/run_bench.py --scale",
            "n_jobs": SCALE_JOBS,
            "results": results,
            "reference": {
                "pre_sharding_scale_10k_events_per_sec":
                    PRE_SHARDING_10K_EVENTS_PER_S,
                "scale_10k_speedup": round(speedup_10k, 2),
            },
        }
        if args.scale_svg:
            write_scale_svg(results, args.scale_svg)
    else:
        print(f"running benchmarks (e2e cell: {args.jobs} jobs) ...")
        results = collect(args.jobs)
        doc = {
            "generated_by": "benchmarks/run_bench.py",
            "n_jobs": args.jobs,
            "results": results,
            "reference": {
                "pre_optimization_engine_event_throughput_s":
                    PRE_OPTIMIZATION_ENGINE_S,
                "engine_event_throughput_speedup": round(
                    PRE_OPTIMIZATION_ENGINE_S
                    / results["engine_event_throughput"]["wall_s"],
                    3,
                ),
                "pre_parallel_rollout_overhead_x":
                    PRE_PARALLEL_ROLLOUT_OVERHEAD_X,
                "rollout_parallel_speedup": round(
                    results["policy_rollout_parallel"]["speedup"], 2
                ),
            },
        }
        if args.rollout_svg:
            write_rollout_svg(results["policy_rollout_parallel"],
                              args.rollout_svg)

    if args.out:
        _write_doc(args.out, doc, merge=False)
    if args.write_baseline:
        # merge so --scale and the core set can refresh independently
        _write_doc(args.write_baseline, doc, merge=True)

    if args.check:
        print(f"checking against {args.check} (tolerance {args.tolerance:.0%}):")
        failures = check_against(results, args.check, args.tolerance)
        if "checkpoint_fork_vs_cold" in results:
            speedup = results["checkpoint_fork_vs_cold"]["speedup"]
            if speedup < MIN_FORK_SPEEDUP:
                print(f"  fork-vs-cold speedup {speedup:.2f}x is below the "
                      f"{MIN_FORK_SPEEDUP:.1f}x floor")
                failures += 1
            else:
                print(f"  fork speedup {speedup:.2f}x >= "
                      f"{MIN_FORK_SPEEDUP:.1f}x floor")
        if "policy_rollout_parallel" in results:
            pr = results["policy_rollout_parallel"]
            if pr["cpus"] < pr["jobs"]:
                print(f"  rollout parallel gate skipped: "
                      f"{int(pr['cpus'])} CPU(s) < jobs={int(pr['jobs'])} "
                      f"(byte-identity still holds; wall-clock gate "
                      f"needs the cores)")
            else:
                if pr["speedup"] < MIN_ROLLOUT_SPEEDUP:
                    print(f"  rollout parallel speedup {pr['speedup']:.2f}x "
                          f"is below the {MIN_ROLLOUT_SPEEDUP:.1f}x floor")
                    failures += 1
                else:
                    print(f"  rollout parallel speedup {pr['speedup']:.2f}x "
                          f">= {MIN_ROLLOUT_SPEEDUP:.1f}x floor")
                if pr["overhead_x"] > MAX_ROLLOUT_OVERHEAD:
                    print(f"  rollout overhead {pr['overhead_x']:.2f}x over "
                          f"the host exceeds the {MAX_ROLLOUT_OVERHEAD:.1f}x "
                          f"ceiling (pre-rework: "
                          f"{PRE_PARALLEL_ROLLOUT_OVERHEAD_X:.1f}x)")
                    failures += 1
                else:
                    print(f"  rollout overhead {pr['overhead_x']:.2f}x <= "
                          f"{MAX_ROLLOUT_OVERHEAD:.1f}x ceiling (pre-rework: "
                          f"{PRE_PARALLEL_ROLLOUT_OVERHEAD_X:.1f}x)")
        if "scale_10k" in results:
            speedup_10k = (
                results["scale_10k"]["events_per_sec"]
                / PRE_SHARDING_10K_EVENTS_PER_S
            )
            if speedup_10k < MIN_SCALE_10K_SPEEDUP:
                print(f"  scale_10k throughput {speedup_10k:.2f}x over the "
                      f"pre-sharding reference is below the "
                      f"{MIN_SCALE_10K_SPEEDUP:.1f}x floor")
                failures += 1
            else:
                print(f"  scale_10k throughput {speedup_10k:.2f}x >= "
                      f"{MIN_SCALE_10K_SPEEDUP:.1f}x over pre-sharding reference")
        if failures:
            print(f"FAILED: {failures} metric(s) over the performance budget")
            return 1
        print("all metrics within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
