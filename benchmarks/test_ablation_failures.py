"""Ablation: DARE replicas as availability insurance (Section IV-B).

"Replicas created by DARE are first-order replicas and as such they also
contribute to increasing availability of the data in the presence of
failures."  We kill two nodes mid-run and compare the repair work HDFS has
to do with and without DARE.
"""

import numpy as np
from conftest import run_once

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1

PLAN = ((500.0, 4), (900.0, 12))


def _compare(n_jobs):
    wl = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    vanilla = run_experiment(ExperimentConfig(failures=PLAN), wl)
    dare = run_experiment(
        ExperimentConfig(failures=PLAN, dare=DareConfig.elephant_trap(budget=0.3)),
        wl,
    )
    return vanilla, dare


def test_failures_with_and_without_dare(benchmark, n_jobs):
    vanilla, dare = run_once(benchmark, _compare, n_jobs)
    print("\nTwo node failures (wl1, FIFO):")
    print(f"{'system':>10s} {'lost-repl blocks':>17s} {'repairs':>8s} "
          f"{'repair GB':>10s} {'data loss':>10s}")
    for name, r in (("vanilla", vanilla), ("dare-et", dare)):
        print(f"{name:>10s} {r.blocks_lost_replicas:>17d} "
              f"{r.repairs_completed:>8d} "
              f"{r.traffic_bytes['re_replication'] / 1e9:>10.1f} "
              f"{r.data_loss_blocks:>10d}")

    # every job still completes in both runs
    assert vanilla.n_jobs == dare.n_jobs
    # rf=3 with two non-simultaneous failures: nothing is lost forever
    assert vanilla.data_loss_blocks == 0
    assert dare.data_loss_blocks == 0
    # repairs actually ran and moved bytes
    assert vanilla.repairs_completed > 0
    assert vanilla.traffic_bytes["re_replication"] > 0
    # DARE's extra replicas absorb part of the repair need
    assert dare.repairs_completed <= vanilla.repairs_completed
