"""Figure 6: access CDF by file rank of the experiment workload."""

from conftest import run_once

from repro.experiments.figures import fig6_access_cdf


def test_fig6_access_cdf(benchmark, n_jobs):
    cdf = run_once(benchmark, fig6_access_cdf, n_jobs=n_jobs)
    print("\nFig. 6 — cumulative access probability by file rank:")
    for rank in (1, 2, 5, 10, 20, 40, len(cdf)):
        if rank <= len(cdf):
            print(f"  top {rank:>3d}: {cdf[rank - 1]:.3f}")
    # heavy-tailed: the top handful of files dominates, CDF reaches 1 by
    # the catalog size (~120 files in the paper's Fig. 6)
    assert cdf[0] > 0.15
    assert cdf[min(19, len(cdf) - 1)] > 0.7
    assert abs(cdf[-1] - 1.0) < 1e-9
    assert len(cdf) <= 130
