"""Figure 1: hop-count distribution between EC2 node pairs."""

import numpy as np
from conftest import run_once

from repro.experiments.tables import fig1_hop_distribution


def test_fig1_hop_distribution(benchmark):
    hist = run_once(benchmark, fig1_hop_distribution)
    print("\nFig. 1 — proportion of node pairs per hop count:")
    for hops, frac in enumerate(hist):
        if frac > 0:
            print(f"  {hops:>2d} hops: {frac:.3f} {'#' * int(40 * frac)}")
    # the paper's EC2 cluster peaks at 4 hops; in-house would be 1-2
    assert int(np.argmax(hist)) in (3, 4, 5)
    assert hist.sum() == 1.0 or abs(hist.sum() - 1.0) < 1e-9
    assert hist[1] + hist[2] < 0.2  # few pairs are rack-adjacent
