"""Ablation: DARE's value under fabric oversubscription.

Section V-B: "network fabrics are frequently oversubscribed, especially
across racks" — locality matters more the scarcer cross-rack bandwidth is.
We run wl1 on a 4-rack dedicated cluster with increasing cross-rack
bandwidth division and show DARE's GMTT advantage widening.
"""

from conftest import run_once

from repro.experiments.ablations import ablation_oversubscription


def test_oversubscription_scaling(benchmark, n_jobs):
    rows = run_once(
        benchmark, ablation_oversubscription, factors=(1.0, 2.5, 5.0), n_jobs=n_jobs
    )
    print("\nDARE under cross-rack oversubscription (wl1, FIFO, 4 racks):")
    print(f"{'factor':>7s} {'van loc':>8s} {'dare loc':>9s} "
          f"{'van gmtt':>9s} {'dare gmtt':>10s} {'gmtt cut':>9s}")
    for r in rows:
        print(f"{r.cross_rack_factor:>7.1f} {r.vanilla_locality:>8.3f} "
              f"{r.dare_locality:>9.3f} {r.vanilla_gmtt:>9.1f} "
              f"{r.dare_gmtt:>10.1f} {100 * r.gmtt_reduction:>8.0f}%")
    by = {r.cross_rack_factor: r for r in rows}
    # DARE helps at every oversubscription level...
    for r in rows:
        assert r.dare_locality > r.vanilla_locality
        assert r.dare_gmtt <= r.vanilla_gmtt * 1.01
    # ...and its turnaround advantage grows as cross-rack bandwidth shrinks
    assert by[5.0].gmtt_reduction > by[1.0].gmtt_reduction
