"""Ablation: the network traffic DARE removes.

Section V-B: "increases in data-locality mean reduced network traffic in
data centers", which energy-proportional fabrics can convert into savings.
This benchmark quantifies the remote-read bytes for vanilla vs DARE on
both cluster types.
"""

import numpy as np
from conftest import run_once

from repro.cluster.cluster import CCT_SPEC, EC2_SPEC
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1


def _measure(n_jobs):
    wl = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    out = {}
    for spec in (CCT_SPEC, EC2_SPEC):
        van = run_experiment(ExperimentConfig(cluster_spec=spec), wl)
        dare = run_experiment(
            ExperimentConfig(cluster_spec=spec, dare=DareConfig.greedy_lru()), wl
        )
        out[spec.name] = (van, dare)
    return out


def test_remote_read_traffic_reduction(benchmark, n_jobs):
    results = run_once(benchmark, _measure, n_jobs)
    print("\nRemote-read network traffic, vanilla vs DARE/LRU (wl1, FIFO):")
    for name, (van, dare) in results.items():
        v = van.traffic_bytes["remote_map_reads"] / 1e9
        d = dare.traffic_bytes["remote_map_reads"] / 1e9
        print(f"  {name}: {v:.1f} GB -> {d:.1f} GB ({100 * (1 - d / v):.0f}% less)")
        # DARE removes remote-read bytes at zero replication cost; on the
        # 99-slave EC2 cluster coverage converges more slowly, so the
        # reduction there is smaller at reduced trace lengths
        assert d < (0.8 if name == "cct" else 0.97) * v
        assert dare.traffic_bytes["rebalancing"] == 0
        # shuffle and output traffic are locality-independent
        assert dare.traffic_bytes["shuffle"] == van.traffic_bytes["shuffle"]
