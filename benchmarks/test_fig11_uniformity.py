"""Figure 11: uniformity of replica placement (cv of popularity indices)."""

from conftest import run_once

from repro.experiments.figures import fig11_uniformity

P_VALUES = (0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1.0)


def test_fig11_uniformity(benchmark, n_jobs):
    points = run_once(benchmark, fig11_uniformity, p_values=P_VALUES, n_jobs=n_jobs)
    print("\nFig. 11 — cv of node popularity indices (smaller = more uniform):")
    print(f"{'p':>6s} {'before DARE':>12s} {'after DARE':>12s}")
    for pt in points:
        print(f"{pt.p:>6.1f} {pt.cv_before:>12.3f} {pt.cv_after:>12.3f}")
    by_p = {pt.p: pt for pt in points}

    # without DARE the placement is unchanged
    assert by_p[0.0].cv_after == by_p[0.0].cv_before
    # with DARE the popularity load spreads: cv drops, and the paper's
    # observation holds — significant uniformity is gained by p ~= 0.2
    assert by_p[0.2].cv_after < 0.8 * by_p[0.2].cv_before
    for p in (0.3, 0.5, 0.9):
        assert by_p[p].cv_after < by_p[p].cv_before
