"""Ablation: DARE vs the Scarlett epoch-based baseline.

The paper (Section VI) argues DARE's *reactive* replication adapts at
smaller time scales than Scarlett's epochs and incurs no replication
traffic.  This benchmark runs both on the same workload and prints
locality alongside the network bytes each spent to get it.
"""

import numpy as np
from conftest import run_once

from repro.baselines.scarlett import ScarlettConfig
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1


def _compare(n_jobs):
    wl = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    rows = {}
    rows["vanilla"] = run_experiment(ExperimentConfig(), wl)
    rows["dare-et"] = run_experiment(
        ExperimentConfig(dare=DareConfig.elephant_trap()), wl
    )
    rows["scarlett"] = run_experiment(
        ExperimentConfig(scarlett=ScarlettConfig(epoch_s=60.0, budget=0.2, max_concurrent=16)), wl
    )
    return rows


def test_dare_vs_scarlett(benchmark, n_jobs):
    rows = run_once(benchmark, _compare, n_jobs)
    print("\nDARE vs Scarlett (wl1, FIFO):")
    print(f"{'system':>10s} {'locality':>9s} {'remote-read GB':>15s} "
          f"{'rebalance GB':>13s} {'gmtt':>7s}")
    for name, r in rows.items():
        print(f"{name:>10s} {r.job_locality:>9.3f} "
              f"{r.traffic_bytes['remote_map_reads'] / 1e9:>15.1f} "
              f"{r.traffic_bytes['rebalancing'] / 1e9:>13.1f} {r.gmtt_s:>7.1f}")

    vanilla, dare, scarlett = rows["vanilla"], rows["dare-et"], rows["scarlett"]
    # both schemes beat vanilla locality
    assert dare.job_locality > vanilla.job_locality
    assert scarlett.job_locality > vanilla.job_locality
    # ...but only Scarlett pays dedicated replication traffic
    assert dare.traffic_bytes["rebalancing"] == 0
    assert scarlett.traffic_bytes["rebalancing"] > 0
    # and both cut the remote-read traffic that motivates the paper
    assert dare.traffic_bytes["remote_map_reads"] < vanilla.traffic_bytes["remote_map_reads"]
