"""Figure 10: DARE on the virtualized 100-node EC2 cluster (wl1)."""

from conftest import run_once

from repro.experiments.figures import fig10_ec2, print_fig7


def test_fig10_ec2(benchmark, n_jobs):
    cells = run_once(benchmark, fig10_ec2, n_jobs=n_jobs)
    print()
    print_fig7(cells, f"Fig. 10 (100-node EC2, wl1 x {n_jobs} jobs)")
    by = {c.scheduler: c for c in cells}

    # vanilla FIFO locality collapses on 99 slaves (~= rf / n_slaves)
    assert by["fifo"].locality["vanilla"] < 0.12
    # DARE lifts it severalfold
    assert by["fifo"].locality["lru"] > 3 * by["fifo"].locality["vanilla"]
    assert by["fifo"].locality["elephant-trap"] > 2 * by["fifo"].locality["vanilla"]

    # GMTT and slowdown improve (paper: 19% and 25% — larger than on CCT
    # thanks to the worse net/disk bandwidth ratio)
    assert by["fifo"].gmtt_normalized["lru"] < 0.95
    assert by["fifo"].slowdown["lru"] < by["fifo"].slowdown["vanilla"]

    # Fair with delay scheduling reaches high locality; DARE still helps
    assert by["fair"].locality["vanilla"] > 0.4
    assert by["fair"].locality["lru"] > by["fair"].locality["vanilla"]
