"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures and prints
the rows/series that figure plots (run with ``-s`` to see them).  Scale is
controlled by ``REPRO_BENCH_JOBS`` (trace length per experiment; default
120 — large enough for every qualitative shape, small enough for CI).  Set
``REPRO_BENCH_JOBS=500`` to regenerate the paper-scale numbers recorded in
EXPERIMENTS.md.
"""

import os

import pytest

#: trace length used by the cluster-experiment benchmarks
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "120"))


@pytest.fixture(scope="session")
def n_jobs() -> int:
    return BENCH_JOBS


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
