"""Figure 5: 80%-access windows within day 2 of the data set."""

from conftest import run_once

from repro.experiments.figures import fig5_windows_day


def test_fig5_day_windows(benchmark):
    panels = run_once(benchmark, fig5_windows_day)
    sizes, frac = panels["unweighted"]
    print("\nFig. 5 — within day 2, fraction of big files per window size:")
    for s, f in zip(sizes, frac):
        if f > 0.005:
            print(f"  {int(s):>2d} h: {f:.3f}")
    # paper: "within a day, most significant file accesses lie within 1 hour"
    assert frac[0] > 0.35
    assert frac[:2].sum() > 0.8
    _, weighted = panels["weighted"]
    assert weighted[:2].sum() > 0.7
