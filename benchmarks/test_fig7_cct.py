"""Figure 7: data locality, GMTT, and slowdown on the 20-node CCT cluster.

The paper's headline results: DARE improves FIFO locality severalfold
(paper: up to 7x), brings Fair close to full locality, and cuts GMTT /
slowdown / map completion time by double-digit percentages.
"""

from conftest import run_once

from repro.experiments.figures import fig7_cct, print_fig7


def test_fig7_cct(benchmark, n_jobs):
    cells = run_once(benchmark, fig7_cct, n_jobs=n_jobs)
    print()
    print_fig7(cells, f"Fig. 7 (20-node CCT, {n_jobs}-job traces)")
    by = {(c.scheduler, c.workload): c for c in cells}

    # (a) locality: DARE lifts FIFO severalfold on the small-job workload
    fifo1 = by[("fifo", "wl1")]
    assert fifo1.locality["lru"] > 2.0 * fifo1.locality["vanilla"]
    assert fifo1.locality["elephant-trap"] > 1.5 * fifo1.locality["vanilla"]

    # Fair reaches high locality with DARE (paper: >85%, close to 100%)
    fair2 = by[("fair", "wl2")]
    assert fair2.locality["vanilla"] > 0.6  # "quite high even without"
    assert fair2.locality["lru"] > fair2.locality["vanilla"]

    # (b) GMTT: dynamic replication reduces turnaround (paper: ~16%)
    assert fifo1.gmtt_normalized["lru"] < 0.97
    assert fifo1.gmtt_normalized["elephant-trap"] < 1.0

    # (c) slowdown improves alongside (paper: ~20%)
    assert fifo1.slowdown["lru"] < fifo1.slowdown["vanilla"]
    assert fifo1.slowdown["elephant-trap"] < fifo1.slowdown["vanilla"]

    # Section V-C: map completion times drop (paper: ~12%)
    assert fifo1.map_time_normalized["lru"] < 0.97
