"""Figure 8: sensitivity to the ElephantTrap p and threshold (wl2)."""

from conftest import run_once

from repro.experiments.figures import (
    fig8a_p_sweep,
    fig8b_threshold_sweep,
    print_sweep,
)


def test_fig8a_p_sweep(benchmark, n_jobs):
    points = run_once(
        benchmark, fig8a_p_sweep,
        p_values=(0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9), n_jobs=n_jobs,
    )
    print("\nFig. 8a — locality and blocks/job vs p (threshold=1, budget=0.2):")
    print_sweep(points, "p")
    fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
    fair = {pt.x: pt for pt in points if pt.scheduler == "fair"}
    # locality rises with p for both schedulers...
    assert fifo[0.9].locality > fifo[0.1].locality > fifo[0.0].locality
    assert fair[0.9].locality >= fair[0.0].locality
    # ...at the cost of more blocks being replicated
    assert fifo[0.9].blocks_per_job > fifo[0.2].blocks_per_job
    assert fifo[0.0].blocks_per_job == 0.0


def test_fig8b_threshold_sweep(benchmark, n_jobs):
    points = run_once(benchmark, fig8b_threshold_sweep, n_jobs=n_jobs)
    print("\nFig. 8b — locality and blocks/job vs threshold (p=0.9, budget=0.5):")
    print_sweep(points, "threshold")
    fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
    # the paper: "not too sensitive to changes in the threshold" — at the
    # caption's generous budget the sweep is nearly flat
    assert fifo[5.0].locality > 0.8 * fifo[1.0].locality
    assert fifo[5.0].blocks_per_job >= 0.9 * fifo[1.0].blocks_per_job


def test_fig8b_threshold_sweep_tight_budget(benchmark, n_jobs):
    """Extension: under budget pressure the paper's mechanism surfaces —
    higher thresholds evict slightly too eagerly, trading a little
    locality for slightly more replica creations."""
    points = run_once(benchmark, fig8b_threshold_sweep, n_jobs=n_jobs, budget=0.1)
    print("\nFig. 8b (tight budget 0.1) — threshold sensitivity:")
    print_sweep(points, "threshold")
    fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
    assert fifo[5.0].locality <= fifo[1.0].locality + 0.02  # slow decrease
    assert fifo[5.0].blocks_per_job >= fifo[1.0].blocks_per_job - 0.05
