"""Figure 3: CDF of file age at time of access."""

import numpy as np
from conftest import run_once

from repro.experiments.figures import fig3_age_cdf


def test_fig3_age_cdf(benchmark):
    out = run_once(benchmark, fig3_age_cdf)
    grid, cdf = out["grid_hours"], out["cdf"]
    print("\nFig. 3 — fraction of accesses at age < t:")
    for h in (1.0, 6.0, 12.0, 24.0, 72.0, 168.0):
        idx = int(np.argmin(np.abs(grid - h)))
        print(f"  t = {h:>6.0f} h: {cdf[idx]:.3f}")
    day = cdf[int(np.argmin(np.abs(grid - 24.0)))]
    # paper: ~80% of accesses within the first day; median ~9h45m
    assert 0.6 < day < 0.95
    assert cdf[-1] == 1.0
    assert 3.0 < out["median_hours"][0] < 24.0
