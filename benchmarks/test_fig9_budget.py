"""Figure 9: sensitivity to the replication budget (wl2)."""

from conftest import run_once

from repro.experiments.figures import (
    fig9a_budget_sweep_lru,
    fig9b_budget_sweep_et,
    print_sweep,
)

BUDGETS = (0.0, 0.1, 0.2, 0.4, 0.6, 0.9)


def test_fig9a_lru_budget_sweep(benchmark, n_jobs):
    points = run_once(
        benchmark, fig9a_budget_sweep_lru, budgets=BUDGETS, n_jobs=n_jobs
    )
    print("\nFig. 9a — DARE/LRU: locality and blocks/job vs budget:")
    print_sweep(points, "budget")
    fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
    # locality rises with budget and saturates early: "even small budgets
    # allow DARE to replicate the most popular files"
    assert fifo[0.1].locality > fifo[0.0].locality
    assert fifo[0.9].locality >= fifo[0.1].locality * 0.95
    gain_small = fifo[0.2].locality - fifo[0.0].locality
    gain_large = fifo[0.9].locality - fifo[0.2].locality
    assert gain_small > gain_large  # diminishing returns


def test_fig9b_et_budget_sweep(benchmark, n_jobs):
    out = run_once(
        benchmark, fig9b_budget_sweep_et,
        budgets=BUDGETS, p_values=(0.3, 0.9), n_jobs=n_jobs,
    )
    for p, points in out.items():
        print(f"\nFig. 9b — DARE/ElephantTrap p={p}: vs budget:")
        print_sweep(points, "budget")
    fifo_p9 = {pt.x: pt for pt in out[0.9] if pt.scheduler == "fifo"}
    fifo_p3 = {pt.x: pt for pt in out[0.3] if pt.scheduler == "fifo"}
    assert fifo_p9[0.4].locality > fifo_p9[0.0].locality
    # higher p replicates more aggressively at equal budget
    assert fifo_p9[0.4].blocks_per_job > fifo_p3[0.4].blocks_per_job
