"""Ablation: adaptation under a daily-rotating hot set.

Section III shows production accesses are daily-periodic with a
time-varying common data set.  Here the hot file group rotates every
(compressed) day: DARE re-adapts within each day, while an epoch-based
replicator with day-long epochs always serves yesterday's hot set — the
paper's Section VI argument made into a long-horizon experiment.
"""

import numpy as np
from conftest import run_once

from repro.baselines.scarlett import ScarlettConfig
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.diurnal import DiurnalParams, per_day_locality, synthesize_diurnal

PARAMS = DiurnalParams()


def _compare():
    wl = synthesize_diurnal(np.random.default_rng(5), PARAMS)
    out = {}
    out["vanilla"] = run_experiment(ExperimentConfig(), wl)
    out["dare"] = run_experiment(
        ExperimentConfig(dare=DareConfig.elephant_trap(p=0.5, budget=0.3)), wl
    )
    out["scarlett"] = run_experiment(
        ExperimentConfig(
            scarlett=ScarlettConfig(
                epoch_s=PARAMS.day_length_s, budget=0.3, max_concurrent=16
            )
        ),
        wl,
    )
    return out


def test_diurnal_rotation(benchmark):
    results = run_once(benchmark, _compare)
    print("\nPer-day locality under a rotating hot set:")
    days = {}
    for name, r in results.items():
        days[name] = per_day_locality(r, PARAMS)
        row = "  ".join(f"{d:.2f}" for d in days[name])
        print(f"  {name:>9s}: {row}")
    # DARE beats vanilla on every day including right after rotations
    for v, d in zip(days["vanilla"], days["dare"]):
        assert d > v
    # across the whole run DARE also beats day-epoch Scarlett, which keeps
    # replicating the previous day's group
    assert sum(days["dare"]) > sum(days["scarlett"])
    # and pays no rebalancing bytes for it
    assert results["dare"].traffic_bytes["rebalancing"] == 0
    assert results["scarlett"].traffic_bytes["rebalancing"] > 0
