"""Ablation: ElephantTrap vs greedy LRU disk writes (Section I, claim 3).

"Thrashing is minimized using sampling and a competitive aging algorithm,
which produces comparable data locality to a greedy LRU algorithm, but with
only 50% disk writes of the latter."
"""

from conftest import run_once

from repro.experiments.ablations import ablation_disk_writes, ablation_eviction_policy


def test_ablation_disk_writes(benchmark, n_jobs):
    rows = run_once(benchmark, ablation_disk_writes, n_jobs=n_jobs)
    print("\nDisk-write ablation (wl1, FIFO):")
    print(f"{'policy':>15s} {'locality':>9s} {'disk writes':>12s} {'evictions':>10s}")
    for r in rows:
        print(f"{r.policy:>15s} {r.locality:>9.3f} "
              f"{r.replication_disk_writes:>12d} {r.evictions:>10d}")
    by = {r.policy: r for r in rows}
    lru, et = by["greedy-lru"], by["elephant-trap"]
    # ET pays far fewer writes...
    assert et.replication_disk_writes < 0.7 * lru.replication_disk_writes
    # ...for locality in the same ballpark
    assert et.locality > 0.55 * lru.locality


def test_ablation_eviction_policies(benchmark, n_jobs):
    rows = run_once(benchmark, ablation_eviction_policy, n_jobs=n_jobs)
    print("\nEviction-policy ablation (wl2, FIFO, equal budget):")
    print(f"{'policy':>15s} {'locality':>9s} {'blocks/job':>11s} {'evictions':>10s}")
    for r in rows:
        print(f"{r.policy:>15s} {r.locality:>9.3f} "
              f"{r.blocks_per_job:>11.2f} {r.evictions:>10d}")
    by = {r.policy: r for r in rows}
    assert by["greedy-lru"].locality > 0
    assert by["greedy-lfu"].locality > 0
    # sampling keeps ElephantTrap's replication churn lowest
    assert by["elephant-trap"].blocks_per_job < by["greedy-lru"].blocks_per_job
