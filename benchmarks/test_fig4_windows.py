"""Figure 4: smallest windows holding 80%+ of each file's accesses (week)."""

from conftest import run_once

from repro.experiments.figures import fig4_windows


def test_fig4_window_distribution(benchmark):
    panels = run_once(benchmark, fig4_windows)
    print("\nFig. 4 — fraction of big files per 80%-window size:")
    for key in ("unweighted", "weighted"):
        sizes, frac = panels[key]
        nonzero = [(int(s), float(f)) for s, f in zip(sizes, frac) if f > 0.01]
        print(f"  ({key}) " + "  ".join(f"{s}h:{f:.2f}" for s, f in nonzero))
    sizes, frac = panels["unweighted"]
    assert abs(frac.sum() - 1.0) < 1e-9
    # most bursts are tight (a couple of hours)...
    assert frac[:3].sum() > 0.2
    # ...and the daily-access spike near 121 h is present (paper: "the
    # spike at window 121 shows that most files are accessed daily")
    assert frac[112:130].sum() > 0.05
