"""Table I: all-to-all ping round-trip times, CCT vs EC2."""

from conftest import run_once

from repro.experiments.tables import print_table1, table1_rtt


def test_table1_rtt(benchmark):
    rows = run_once(benchmark, table1_rtt)
    print()
    print_table1(rows)
    stats = {r.cluster: r.stats for r in rows}
    # paper: CCT 0.01/0.18/2.17/0.34 — EC2 0.02/0.77/75.1/3.36 (ms)
    assert 0.10 < stats["cct"].mean < 0.30
    assert 0.5 < stats["ec2"].mean < 1.5
    assert stats["ec2"].max > 20
    assert stats["ec2"].std > 5 * stats["cct"].std
