"""Micro-benchmarks of the hot simulation paths.

Unlike the figure benchmarks (one timed end-to-end run each), these use
pytest-benchmark's repeated timing to track the cost of the primitives the
simulator leans on: the event loop, the ElephantTrap update, the NameNode
locality query, and heartbeat task assignment.
"""

import random

import numpy as np

from repro.cluster.cluster import CCT_SPEC, Cluster
from repro.core.elephant_trap import ElephantTrapPolicy
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.inode import INode
from repro.hdfs.namenode import NameNode
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_in(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_elephant_trap_update_cost(benchmark):
    """A full trap lifecycle: adds, accesses, eviction walks."""
    blocks = INode(0, "f").allocate_blocks(64 * DEFAULT_BLOCK_SIZE, 0)
    other = INode(1, "g").allocate_blocks(8 * DEFAULT_BLOCK_SIZE, 100)

    def run():
        et = ElephantTrapPolicy(0.3, 1, random.Random(7))
        for b in blocks[:32]:
            et.add(b)
        for i in range(2000):
            et.on_local_access(blocks[i % 32])
            if i % 10 == 0:
                victim = et.pick_victim(other[i % 8])
                if victim is not None:
                    et.remove(victim.block_id)
                    et.add(blocks[32 + (i // 10) % 32])
        return len(et)

    assert benchmark(run) > 0


def test_namenode_locality_queries(benchmark):
    """The query the scheduler issues for every pending task scan."""
    cluster = Cluster(CCT_SPEC, RandomStreams(3))
    nn = NameNode(cluster)
    f = nn.create_file("data", 200 * DEFAULT_BLOCK_SIZE)
    block_ids = [b.block_id for b in f.blocks]

    def run():
        hits = 0
        for node in range(1, 20):
            for bid in block_ids:
                if nn.is_local(bid, node):
                    hits += 1
        return hits

    assert benchmark(run) == 3 * 200  # rf 3 x 200 blocks


def test_namenode_file_creation(benchmark):
    """Namespace + placement cost for a 120-file data set."""

    def run():
        cluster = Cluster(CCT_SPEC, RandomStreams(3))
        nn = NameNode(cluster)
        rng = np.random.default_rng(5)
        for i in range(120):
            nn.create_file(f"f{i}", int(rng.integers(1, 9)) * DEFAULT_BLOCK_SIZE)
        return len(nn.files)

    assert benchmark(run) == 120
