"""Micro-benchmarks of the hot simulation paths.

Unlike the figure benchmarks (one timed end-to-end run each), these use
pytest-benchmark's repeated timing to track the cost of the primitives the
simulator leans on: the event loop, the ElephantTrap update, the NameNode
locality query, and heartbeat task assignment.
"""

import random

import numpy as np

from repro.cluster.cluster import CCT_SPEC, Cluster
from repro.core.elephant_trap import ElephantTrapPolicy
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.inode import INode
from repro.hdfs.namenode import NameNode
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams


def test_engine_event_throughput(benchmark):
    """Schedule-and-run 10k chained events."""

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                engine.schedule_in(1.0, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 10_000


def test_engine_cancel_churn(benchmark):
    """Schedule/cancel-heavy workload: compaction keeps the heap bounded.

    Mimics speculative execution: most scheduled work is cancelled before
    it fires.  Without compaction the heap accretes cancelled garbage and
    every pop pays for it.
    """

    def run():
        engine = Engine()
        count = [0]

        def tick():
            count[0] += 1
            # schedule 8 speculative copies, cancel 7, keep one chained tick
            if count[0] < 2_000:
                copies = [engine.schedule_in(1.0 + i, tick) for i in range(8)]
                for ev in copies[1:]:
                    engine.cancel(ev)

        engine.schedule(0.0, tick)
        engine.run()
        return count[0]

    assert benchmark(run) == 2_000


def test_e2e_sweep_cell(benchmark, n_jobs):
    """One timed end-to-end cell: fair scheduler + ElephantTrap on WL1.

    The scenario the paper sweeps (Fig. 7); exercises every layer — engine,
    heartbeat chain, scheduler scans, NameNode queries, DARE policy — in a
    single wall-clock number comparable across commits.
    """
    from conftest import run_once
    from repro.core.config import DareConfig
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.workloads.swim import synthesize_wl1

    rng = np.random.default_rng(20110926)
    workload = synthesize_wl1(rng, n_jobs=n_jobs)
    config = ExperimentConfig(
        scheduler="fair", dare=DareConfig.elephant_trap(), seed=20110926
    )

    result = run_once(benchmark, run_experiment, config, workload)
    assert result.events_processed > 0
    rate = result.events_processed / result.engine_wall_s
    print(f"\n  e2e cell: {result.events_processed} events, "
          f"{result.engine_wall_s:.3f}s engine wall ({rate:,.0f} events/s)")


def test_elephant_trap_update_cost(benchmark):
    """A full trap lifecycle: adds, accesses, eviction walks."""
    blocks = INode(0, "f").allocate_blocks(64 * DEFAULT_BLOCK_SIZE, 0)
    other = INode(1, "g").allocate_blocks(8 * DEFAULT_BLOCK_SIZE, 100)

    def run():
        et = ElephantTrapPolicy(0.3, 1, random.Random(7))
        for b in blocks[:32]:
            et.add(b)
        for i in range(2000):
            et.on_local_access(blocks[i % 32])
            if i % 10 == 0:
                victim = et.pick_victim(other[i % 8])
                if victim is not None:
                    et.remove(victim.block_id)
                    et.add(blocks[32 + (i // 10) % 32])
        return len(et)

    assert benchmark(run) > 0


def test_namenode_locality_queries(benchmark):
    """The query the scheduler issues for every pending task scan."""
    cluster = Cluster(CCT_SPEC, RandomStreams(3))
    nn = NameNode(cluster)
    f = nn.create_file("data", 200 * DEFAULT_BLOCK_SIZE)
    block_ids = [b.block_id for b in f.blocks]

    def run():
        hits = 0
        for node in range(1, 20):
            for bid in block_ids:
                if nn.is_local(bid, node):
                    hits += 1
        return hits

    assert benchmark(run) == 3 * 200  # rf 3 x 200 blocks


def test_namenode_file_creation(benchmark):
    """Namespace + placement cost for a 120-file data set."""

    def run():
        cluster = Cluster(CCT_SPEC, RandomStreams(3))
        nn = NameNode(cluster)
        rng = np.random.default_rng(5)
        for i in range(120):
            nn.create_file(f"f{i}", int(rng.integers(1, 9)) * DEFAULT_BLOCK_SIZE)
        return len(nn.files)

    assert benchmark(run) == 120
