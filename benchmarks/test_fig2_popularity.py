"""Figure 2: file popularity vs rank (raw and block-weighted)."""

from conftest import run_once

from repro.experiments.figures import fig2_popularity


def test_fig2_popularity(benchmark):
    pop = run_once(benchmark, fig2_popularity)
    raw, weighted = pop["raw"], pop["weighted"]
    print("\nFig. 2 — accesses by file rank (raw | block-weighted):")
    for rank in (1, 10, 100, 1000):
        if rank <= len(raw):
            w = weighted[rank - 1] if rank <= len(weighted) else float("nan")
            print(f"  rank {rank:>5d}: {raw[rank - 1]:>9.0f} | {w:>11.0f}")
    # heavy tail spanning ~4 decades, like the Yahoo! log
    assert raw[0] > 10_000
    assert raw[-1] <= 10
    assert raw[0] > 100 * raw[min(99, len(raw) - 1)]
    # block-weighting preserves the heavy-tailed shape
    assert weighted[0] > 100 * weighted[min(99, len(weighted) - 1)]
