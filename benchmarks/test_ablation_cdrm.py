"""Ablation: DARE vs CDRM (availability-driven replication).

Section VI on CDRM: it centrally picks per-file replica counts for
*availability* and "the effects of increasing locality are not studied".
Running both quantifies the contrast: CDRM replicates the whole data set
uniformly at enormous network cost; DARE replicates only what is read,
for free, and gets more locality.
"""

import numpy as np
from conftest import run_once

from repro.baselines.cdrm import CdrmConfig
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1


def _compare(n_jobs):
    wl = synthesize_wl1(np.random.default_rng(20110926), n_jobs=n_jobs)
    out = {}
    out["vanilla"] = run_experiment(ExperimentConfig(), wl)
    out["dare"] = run_experiment(
        ExperimentConfig(dare=DareConfig.elephant_trap()), wl
    )
    out["cdrm"] = run_experiment(
        ExperimentConfig(
            cdrm=CdrmConfig(
                availability_target=0.9999,
                node_availability=0.8,
                period_s=100.0,
                max_concurrent=16,
            )
        ),
        wl,
    )
    return out


def test_dare_vs_cdrm(benchmark, n_jobs):
    rows = run_once(benchmark, _compare, n_jobs)
    print("\nDARE vs CDRM (wl1, FIFO):")
    print(f"{'system':>9s} {'locality':>9s} {'replicas':>9s} {'rebalance GB':>13s}")
    for name, r in rows.items():
        created = r.blocks_created or r.cdrm_replicas_created
        print(f"{name:>9s} {r.job_locality:>9.3f} {created:>9d} "
              f"{r.traffic_bytes['rebalancing'] / 1e9:>13.1f}")
    vanilla, dare, cdrm = rows["vanilla"], rows["dare"], rows["cdrm"]
    # availability-driven replication moves locality barely if at all —
    # exactly the paper's point that CDRM does not study locality
    assert cdrm.job_locality >= vanilla.job_locality - 0.02
    # it needs orders of magnitude more replicas and real network bytes
    assert cdrm.cdrm_replicas_created > 20 * dare.blocks_created
    assert cdrm.traffic_bytes["rebalancing"] > 0
    assert dare.traffic_bytes["rebalancing"] == 0
    # while DARE's popularity-driven replicas buy strictly more locality
    assert dare.job_locality > cdrm.job_locality
