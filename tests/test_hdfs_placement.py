"""Unit tests: the default rack-aware placement policy."""

import random

import numpy as np
import pytest

from repro.cluster.topology import DEDICATED, VIRTUALIZED, Topology
from repro.hdfs.placement import DefaultPlacementPolicy


def make_policy(family=VIRTUALIZED, n=20, seed=3):
    topo = Topology(family, n, np.random.default_rng(seed))
    slaves = list(range(1, n))  # node 0 is the master
    return DefaultPlacementPolicy(slaves, topo, random.Random(seed)), topo


class TestChooseTargets:
    def test_targets_distinct(self):
        policy, _ = make_policy()
        for _ in range(50):
            t = policy.choose_targets(3)
            assert len(t) == len(set(t)) == 3

    def test_targets_are_slaves(self):
        policy, _ = make_policy()
        for _ in range(50):
            assert all(n != 0 for n in policy.choose_targets(3))

    def test_writer_gets_first_replica(self):
        policy, _ = make_policy()
        t = policy.choose_targets(3, writer=5)
        assert t[0] == 5

    def test_non_slave_writer_ignored(self):
        policy, _ = make_policy()
        t = policy.choose_targets(3, writer=0)  # master can't store blocks
        assert t[0] != 0

    def test_second_replica_off_rack_when_possible(self):
        policy, topo = make_policy()
        for _ in range(30):
            t = policy.choose_targets(3, writer=5)
            if len({int(topo.rack_of[n]) for n in range(1, 20)}) > 1:
                assert topo.rack_of[t[0]] != topo.rack_of[t[1]]

    def test_third_replica_shares_rack_with_second_when_possible(self):
        policy, topo = make_policy(n=40)
        hits = 0
        for _ in range(50):
            t = policy.choose_targets(3)
            if len(t) == 3 and topo.rack_of[t[1]] == topo.rack_of[t[2]]:
                hits += 1
        # same-rack third placement whenever the second's rack has room
        assert hits > 0

    def test_single_rack_degenerates_to_distinct_random(self):
        policy, _ = make_policy(family=DEDICATED)
        t = policy.choose_targets(3)
        assert len(set(t)) == 3

    def test_rf_larger_than_cluster_capped(self):
        policy, _ = make_policy(n=5)
        t = policy.choose_targets(10)
        assert len(t) == 4  # 4 slaves available

    def test_zero_replicas_rejected(self):
        policy, _ = make_policy()
        with pytest.raises(ValueError):
            policy.choose_targets(0)

    def test_empty_slave_list_rejected(self):
        topo = Topology(DEDICATED, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            DefaultPlacementPolicy([], topo, random.Random(0))

    def test_spread_over_cluster(self):
        # over many placements every slave should receive some replicas
        policy, _ = make_policy()
        seen = set()
        for _ in range(200):
            seen.update(policy.choose_targets(3))
        assert seen == set(range(1, 20))
