"""Unit tests: the Section III analyses (Figs. 2-5)."""

import numpy as np
import pytest

from repro.analysis.access_log import AccessLog, generate_access_log
from repro.analysis.patterns import (
    _smallest_window,
    age_at_access_cdf,
    big_files,
    median_age_hours,
    popularity_by_rank,
    window_distribution,
)


@pytest.fixture(scope="module")
def log():
    return generate_access_log(np.random.default_rng(3))


def tiny_log(times, ids, created, blocks):
    return AccessLog(
        np.asarray(times, dtype=float),
        np.asarray(ids, dtype=np.int64),
        np.asarray(created, dtype=float),
        np.asarray(blocks, dtype=np.int64),
    )


class TestPopularity:
    def test_sorted_descending(self, log):
        pop = popularity_by_rank(log)
        assert (np.diff(pop) <= 0).all()

    def test_weighted_multiplies_by_blocks(self):
        lg = tiny_log([1, 1, 2], [0, 0, 1], [0, 0], [10, 1])
        raw = popularity_by_rank(lg)
        weighted = popularity_by_rank(lg, weighted=True)
        assert list(raw) == [2, 1]
        assert list(weighted) == [20, 1]  # file 0: 2 accesses x 10 blocks

    def test_zero_access_files_excluded(self):
        lg = tiny_log([1.0], [0], [0, 0], [1, 1])
        assert len(popularity_by_rank(lg)) == 1


class TestAgeCdf:
    def test_fig3_shape_most_accesses_in_first_day(self, log):
        cdf = age_at_access_cdf(log, np.array([24.0]))
        assert 0.6 < cdf[0] < 0.92  # paper: ~0.8

    def test_cdf_reaches_one_at_week(self, log):
        assert age_at_access_cdf(log, np.array([WEEK := 168.0]))[0] == pytest.approx(1.0)

    def test_median_near_ten_hours(self, log):
        assert 3.0 < median_age_hours(log) < 24.0  # paper: 9h45m

    def test_monotone(self, log):
        grid = np.linspace(0.1, 168, 60)
        cdf = age_at_access_cdf(log, grid)
        assert (np.diff(cdf) >= 0).all()

    def test_empty_log_rejected(self):
        lg = tiny_log([], [], [0], [1])
        with pytest.raises(ValueError):
            age_at_access_cdf(lg, np.array([1.0]))


class TestBigFiles:
    def test_cover_requested_fraction(self, log):
        chosen = big_files(log, coverage=0.8)
        counts = log.access_counts()
        assert counts[chosen].sum() >= 0.8 * counts.sum()

    def test_minimality(self, log):
        chosen = big_files(log, coverage=0.8)
        counts = log.access_counts()
        smallest = counts[chosen].min()
        assert counts[chosen].sum() - smallest < 0.8 * counts.sum()

    def test_only_accessed_files(self, log):
        chosen = big_files(log)
        assert (log.access_counts()[chosen] > 0).all()


class TestSmallestWindow:
    def test_all_mass_in_one_slot(self):
        assert _smallest_window(np.array([0, 10, 0, 0]), 0.8) == 1

    def test_spread_mass_needs_wide_window(self):
        hist = np.ones(10)
        assert _smallest_window(hist, 0.8) == 8

    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        for _ in range(30):
            hist = rng.integers(0, 5, size=24)
            if hist.sum() == 0:
                continue
            target = 0.8 * hist.sum()
            brute = next(
                w
                for w in range(1, 25)
                if max(hist[i:i + w].sum() for i in range(25 - w)) >= target
            )
            assert _smallest_window(hist, 0.8) == brute

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            _smallest_window(np.zeros(5), 0.8)


class TestWindowDistribution:
    def test_distribution_normalized(self, log):
        _, frac = window_distribution(log)
        assert frac.sum() == pytest.approx(1.0)

    def test_fig4_daily_spike_present(self, log):
        _, frac = window_distribution(log)
        # the ~121 h spike: files re-read every day of the week
        assert frac[112:130].sum() > 0.05

    def test_fig5_day_bursts_sub_two_hours(self, log):
        _, frac = window_distribution(log, start_h=24.0, end_h=48.0)
        assert frac[:2].sum() > 0.8

    def test_weighted_differs_from_unweighted(self, log):
        _, unw = window_distribution(log)
        _, w = window_distribution(log, weighted=True)
        assert not np.allclose(unw, w)

    def test_window_sizes_span_range(self, log):
        sizes, frac = window_distribution(log, start_h=0.0, end_h=48.0)
        assert sizes[0] == 1 and sizes[-1] == 48
        assert len(sizes) == len(frac)
