"""Unit tests: the command-line interface."""

import pytest

from repro.cli import _parse_failures, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "wl1"
        assert args.policy == "et"
        assert args.cluster == "cct"

    def test_failure_spec_parsing(self):
        assert _parse_failures(["10:3", "20.5:7"]) == ((10.0, 3), (20.5, 7))

    def test_bad_failure_spec(self):
        with pytest.raises(SystemExit):
            _parse_failures(["ten-o-clock"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "wl9", "--jobs", "5"])


class TestCommands:
    def test_probe(self, capsys):
        assert main(["probe", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "hop" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "audit log" in out
        assert "age CDF" in out

    def test_run_small(self, capsys):
        assert main(["run", "--jobs", "40", "--policy", "lru", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "loc=" in out
        assert "replicas created" in out
        assert "network traffic" in out

    def test_run_vanilla_policy(self, capsys):
        assert main(["run", "--jobs", "30", "--policy", "off"]) == 0
        out = capsys.readouterr().out
        assert "replicas created" not in out

    def test_run_with_failure(self, capsys):
        assert main(["run", "--jobs", "40", "--fail", "100:4"]) == 0
        out = capsys.readouterr().out
        assert "blocks lost replicas" in out

    def test_run_with_scarlett(self, capsys):
        assert main(
            ["run", "--jobs", "60", "--policy", "off", "--scarlett",
             "--scarlett-epoch", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "scarlett replicas" in out

    def test_synth_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "wl.json"
        assert main(["synth", "--workload", "wl2", "--jobs", "25",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["run", "--workload", str(out_file), "--policy", "off"]) == 0

    def test_figures_subset(self, capsys):
        assert main(["figures", "--jobs", "30", "--only", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "cv" in out
