"""Unit tests: the command-line interface."""

import pytest

from repro.cli import _parse_failures, build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.workload == "wl1"
        assert args.policy == "et"
        assert args.cluster == "cct"

    def test_failure_spec_parsing(self):
        assert _parse_failures(["10:3", "20.5:7"]) == ((10.0, 3), (20.5, 7))

    def test_bad_failure_spec(self):
        with pytest.raises(SystemExit):
            _parse_failures(["ten-o-clock"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--workload", "wl9", "--jobs", "5"])


class TestCommands:
    def test_probe(self, capsys):
        assert main(["probe", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out and "Table II" in out
        assert "hop" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "audit log" in out
        assert "age CDF" in out

    def test_run_small(self, capsys):
        assert main(["run", "--jobs", "40", "--policy", "lru", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "loc=" in out
        assert "replicas created" in out
        assert "network traffic" in out

    def test_run_vanilla_policy(self, capsys):
        assert main(["run", "--jobs", "30", "--policy", "off"]) == 0
        out = capsys.readouterr().out
        assert "replicas created" not in out

    def test_run_with_failure(self, capsys):
        assert main(["run", "--jobs", "40", "--fail", "100:4"]) == 0
        out = capsys.readouterr().out
        assert "blocks lost replicas" in out

    def test_run_with_scarlett(self, capsys):
        assert main(
            ["run", "--jobs", "60", "--policy", "off", "--scarlett",
             "--scarlett-epoch", "150"]
        ) == 0
        out = capsys.readouterr().out
        assert "scarlett replicas" in out

    def test_synth_and_reload(self, tmp_path, capsys):
        out_file = tmp_path / "wl.json"
        assert main(["synth", "--workload", "wl2", "--jobs", "25",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert main(["run", "--workload", str(out_file), "--policy", "off"]) == 0

    def test_figures_subset(self, capsys):
        assert main(["figures", "--jobs", "30", "--only", "fig11"]) == 0
        out = capsys.readouterr().out
        assert "cv" in out


class TestSweepCommand:
    def test_smoke_grid_cold_then_cached(self, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        argv = ["sweep", "--grid", "smoke", "--n-jobs", "6",
                "--cache-dir", cache_dir]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "0 cached" in out and "0 failed" in out
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 cached" in out and "2 cache hits" in out

    def test_no_cache_writes_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        assert main(["sweep", "--grid", "smoke", "--n-jobs", "6",
                     "--no-cache", "--cache-dir", str(cache_dir)]) == 0
        assert not cache_dir.exists()
        assert "cache off" in capsys.readouterr().out

    def test_out_document(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "results.json"
        assert main(["sweep", "--grid", "smoke", "--n-jobs", "6", "--no-cache",
                     "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["grid"] == "smoke"
        assert len(doc["cells"]) == 2
        for cell in doc["cells"]:
            assert cell["ok"] and cell["result"]["n_jobs"] == 6

    def test_shard_selects_subset(self, tmp_path, capsys):
        assert main(["sweep", "--grid", "smoke", "--n-jobs", "6", "--no-cache",
                     "--shard", "1/2"]) == 0
        assert "1 cells" in capsys.readouterr().out

    def test_bad_shard_and_grid_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--shard", "4/2"])
        with pytest.raises(SystemExit):
            main(["sweep", "--grid", "fig99"])

    def test_trace_dir_produces_verifiable_traces(self, tmp_path, capsys):
        trace_dir = tmp_path / "traces"
        assert main(["sweep", "--grid", "smoke", "--n-jobs", "6", "--no-cache",
                     "--trace-dir", str(trace_dir)]) == 0
        traces = sorted(trace_dir.glob("*.jsonl"))
        assert len(traces) == 2
        for trace in traces:
            assert main(["replay", "verify", str(trace)]) == 0


class TestCheckpointCommands:
    def _record_trace(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert main(["run", "--jobs", "20", "--policy", "lru", "--seed", "7",
                     "--trace", str(trace)]) == 0
        return trace

    def test_whatif_without_patch_is_byte_identical(self, tmp_path, capsys):
        trace = self._record_trace(tmp_path)
        out = tmp_path / "resumed.jsonl"
        assert main(["replay", "whatif", str(trace), "--at", "20",
                     "--out", str(out)]) == 0
        assert out.read_bytes() == trace.read_bytes()
        assert "no divergence" in capsys.readouterr().out

    def test_whatif_kill_patch_diverges(self, tmp_path, capsys):
        trace = self._record_trace(tmp_path)
        out = tmp_path / "whatif.jsonl"
        assert main(["replay", "whatif", str(trace), "--at", "20",
                     "--patch", "kill:3", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "applied: kill node 3" in stdout
        assert "diverges from the original" in stdout
        assert out.read_bytes() != trace.read_bytes()

    def test_whatif_rejects_headerless_trace(self, tmp_path):
        trace = tmp_path / "no-header.jsonl"
        trace.write_text('{"type": "run.summary", "t": 0.0}\n')
        with pytest.raises(SystemExit):
            main(["replay", "whatif", str(trace), "--at", "5"])

    def test_whatif_rejects_bad_patch(self, tmp_path):
        trace = self._record_trace(tmp_path)
        with pytest.raises(SystemExit):
            main(["replay", "whatif", str(trace), "--at", "20",
                  "--patch", "teleport:3"])

    def test_save_resume_round_trip(self, tmp_path, capsys):
        cold = tmp_path / "cold.jsonl"
        assert main(["run", "--jobs", "20", "--policy", "et", "--seed", "11",
                     "--trace", str(cold)]) == 0
        ckpt = tmp_path / "run.ckpt"
        assert main(["checkpoint", "save", "--at", "25", "--out", str(ckpt),
                     "--jobs", "20", "--policy", "et", "--seed", "11",
                     "--trace", str(tmp_path / "warm.jsonl")]) == 0
        assert "checkpoint written" in capsys.readouterr().out
        resumed = tmp_path / "resumed.jsonl"
        assert main(["checkpoint", "resume", str(ckpt),
                     "--trace", str(resumed)]) == 0
        assert resumed.read_bytes() == cold.read_bytes()

    def test_resume_with_patch(self, tmp_path, capsys):
        ckpt = tmp_path / "run.ckpt"
        assert main(["checkpoint", "save", "--at", "25", "--out", str(ckpt),
                     "--jobs", "20", "--policy", "lru", "--seed", "11"]) == 0
        assert main(["checkpoint", "resume", str(ckpt),
                     "--patch", "policy:et"]) == 0
        assert "applied:" in capsys.readouterr().out

    def test_resume_rejects_missing_or_corrupt_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["checkpoint", "resume", str(tmp_path / "nope.ckpt")])
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a pickle")
        with pytest.raises(SystemExit):
            main(["checkpoint", "resume", str(bad)])
