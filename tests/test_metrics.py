"""Unit tests: the evaluation metrics (Section V-A definitions)."""

import math

import numpy as np
import pytest

from repro.metrics.collector import JobRecord, MetricsCollector
from repro.metrics.locality import LocalityStats, cluster_locality, mean_job_locality
from repro.metrics.placement import (
    coefficient_of_variation,
    file_access_counts,
    popularity_indices,
)
from repro.metrics.turnaround import geometric_mean_turnaround
from repro.mapreduce.job import JobSpec


def record(job_id=0, submit=0.0, finish=10.0, counts=(1, 0, 0), n_maps=None):
    n_maps = n_maps if n_maps is not None else sum(counts)
    return JobRecord(job_id, submit, submit, finish, n_maps, 1, counts, 10**8)


class TestLocality:
    def test_stats_fractions(self):
        s = LocalityStats(6, 3, 1)
        assert s.total == 10
        assert s.locality == pytest.approx(0.6)
        assert s.remote_fraction == pytest.approx(0.4)

    def test_empty_stats_zero(self):
        assert LocalityStats(0, 0, 0).locality == 0.0

    def test_cluster_locality_aggregates(self):
        recs = [record(counts=(2, 1, 1)), record(counts=(0, 0, 4))]
        s = cluster_locality(recs)
        assert s.node_local == 2 and s.total == 8

    def test_mean_job_locality_unweighted(self):
        # a tiny fully-local job counts as much as a large remote one
        recs = [record(counts=(1, 0, 0)), record(counts=(0, 0, 100))]
        assert mean_job_locality(recs) == pytest.approx(0.5)

    def test_mean_job_locality_empty_raises(self):
        with pytest.raises(ValueError):
            mean_job_locality([])


class TestGMTT:
    def test_matches_eq1(self):
        recs = [record(finish=2.0), record(finish=8.0)]
        assert geometric_mean_turnaround(recs) == pytest.approx(math.sqrt(16.0))

    def test_less_dominated_by_long_jobs_than_mean(self):
        recs = [record(finish=1.0)] * 9 + [record(finish=1000.0)]
        gmtt = geometric_mean_turnaround(recs)
        arith = sum(r.turnaround for r in recs) / len(recs)
        assert gmtt < arith / 10

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean_turnaround([])

    def test_nonpositive_turnaround_rejected(self):
        with pytest.raises(ValueError):
            geometric_mean_turnaround([record(finish=0.0)])


class TestPlacement:
    def test_cv_zero_for_uniform(self):
        assert coefficient_of_variation(np.array([5.0, 5.0, 5.0])) == 0.0

    def test_cv_formula(self):
        vals = np.array([1.0, 3.0])
        assert coefficient_of_variation(vals) == pytest.approx(1.0 / 2.0)

    def test_cv_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([]))

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation(np.array([-1.0, 1.0]))

    def test_file_access_counts(self):
        specs = [JobSpec(i, 0.0, f) for i, f in enumerate(["a", "a", "b"])]
        counts = file_access_counts(specs)
        assert counts["a"] == 2 and counts["b"] == 1

    def test_popularity_indices_weight_by_accesses(self, loaded_namenode):
        pis_hot = popularity_indices(loaded_namenode, {"hot": 100})
        pis_cold = popularity_indices(loaded_namenode, {"cold": 100})
        assert pis_hot.sum() > 0 and pis_cold.sum() > 0
        # hot has 3 blocks x rf 3; cold has 5 blocks x rf 2
        assert pis_hot.sum() == pytest.approx(100 * 9 * loaded_namenode.block_size)
        assert pis_cold.sum() == pytest.approx(100 * 10 * loaded_namenode.block_size)

    def test_unread_files_contribute_zero(self, loaded_namenode):
        pis = popularity_indices(loaded_namenode, {})
        assert pis.sum() == 0.0


class TestCollector:
    def test_records_job_completion(self, loaded_namenode):
        from repro.mapreduce.job import Job

        collector = MetricsCollector()
        job = Job(JobSpec(3, 5.0, "hot"), loaded_namenode.file("hot"))
        job.finish_time = 25.0
        job.first_task_time = 6.0
        job.locality_counts = [2, 1, 0]
        collector.on_job_complete(job)
        rec = collector.job_records[0]
        assert rec.turnaround == 20.0
        assert rec.data_locality == pytest.approx(2 / 3)
        assert rec.n_maps == 3

    def test_mean_map_duration_empty_raises(self):
        with pytest.raises(ValueError):
            MetricsCollector().mean_map_duration()
