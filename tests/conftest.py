"""Shared fixtures: small clusters, namespaces, and workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import CCT_SPEC, Cluster
from repro.hdfs.namenode import NameNode
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from repro.workloads.swim import synthesize_wl1, synthesize_wl2

#: a small dedicated cluster for unit tests (1 master + 7 slaves)
SMALL_SPEC = CCT_SPEC._replace(n_nodes=8)


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(1234)


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def small_cluster(streams) -> Cluster:
    return Cluster(SMALL_SPEC, streams)


@pytest.fixture
def namenode(small_cluster) -> NameNode:
    return NameNode(small_cluster)


@pytest.fixture
def loaded_namenode(namenode) -> NameNode:
    """A namespace with a few files already placed."""
    namenode.create_file("hot", 3 * namenode.block_size, replication=3)
    namenode.create_file("warm", 2 * namenode.block_size, replication=3)
    namenode.create_file("cold", 5 * namenode.block_size, replication=2)
    return namenode


@pytest.fixture
def wl1_small():
    return synthesize_wl1(np.random.default_rng(7), n_jobs=40)


@pytest.fixture
def wl2_small():
    return synthesize_wl2(np.random.default_rng(7), n_jobs=40)
