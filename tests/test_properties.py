"""Property-based tests (hypothesis) on core structures and invariants."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.patterns import _smallest_window
from repro.core.elephant_trap import ElephantTrapPolicy
from repro.core.greedy import GreedyLRUPolicy
from repro.hdfs.inode import INode
from repro.simulation.engine import Engine
from repro.simulation.events import EventQueue
from repro.simulation.rng import derive_seed
from repro.workloads.popularity import access_cdf, zipf_weights

BLOCK = 1024


def make_blocks(n_files: int, blocks_per_file: int):
    out = []
    bid = 0
    for f in range(n_files):
        inode = INode(f, f"f{f}")
        out.extend(inode.allocate_blocks(blocks_per_file * BLOCK, bid, BLOCK))
        bid += blocks_per_file
    return out


# ---------------------------------------------------------------------------
# event queue / engine
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
def test_event_queue_pops_in_nondecreasing_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(ev.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=40),
    st.data(),
)
def test_cancelled_events_never_fire(times, data):
    engine = Engine()
    fired = []
    events = [engine.schedule(t, lambda t=t: fired.append(t)) for t in times]
    to_cancel = data.draw(
        st.sets(st.integers(0, len(events) - 1), max_size=len(events))
    )
    for i in to_cancel:
        engine.cancel(events[i])
    engine.run()
    expected = sorted(t for i, t in enumerate(times) if i not in to_cancel)
    assert fired == expected


# ---------------------------------------------------------------------------
# rng
# ---------------------------------------------------------------------------


@given(st.integers(0, 2**31), st.text(max_size=40))
def test_derive_seed_in_63_bit_range(root, name):
    s = derive_seed(root, name)
    assert 0 <= s < 2**63


# ---------------------------------------------------------------------------
# ElephantTrap ring invariants
# ---------------------------------------------------------------------------


@st.composite
def trap_operations(draw):
    """A random sequence of add/remove/access/evict operations."""
    n_ops = draw(st.integers(1, 80))
    ops = []
    for _ in range(n_ops):
        ops.append(
            (
                draw(st.sampled_from(["add", "remove", "access", "evict"])),
                draw(st.integers(0, 19)),  # block index in a 20-block pool
            )
        )
    return ops


@given(trap_operations(), st.integers(1, 5), st.integers(0, 10_000))
@settings(max_examples=150, deadline=None)
def test_elephant_trap_ring_and_counts_stay_consistent(ops, threshold, seed):
    blocks = make_blocks(5, 4)  # 5 files x 4 blocks
    evicting_pool = make_blocks(3, 2)
    et = ElephantTrapPolicy(1.0, threshold, random.Random(seed))
    tracked = set()
    for op, idx in ops:
        block = blocks[idx]
        if op == "add" and block.block_id not in tracked:
            et.add(block)
            tracked.add(block.block_id)
        elif op == "remove":
            et.remove(block.block_id)
            tracked.discard(block.block_id)
        elif op == "access":
            et.on_local_access(block)
        elif op == "evict":
            victim = et.pick_victim(evicting_pool[idx % len(evicting_pool)])
            if victim is not None:
                et.remove(victim.block_id)
                tracked.discard(victim.block_id)
        # invariants after every operation:
        ring_ids = {b.block_id for b in et.ring_blocks()}
        assert ring_ids == tracked  # ring == tracked set
        assert set(et._counts) == tracked  # counts aligned with ring
        assert len(et._ring) == len(tracked)  # no duplicates in the ring
        if tracked:
            assert 0 <= et._ptr < len(et._ring)  # pointer always valid
        assert all(et._counts[b] >= 0 for b in tracked)  # counts nonnegative


@given(st.integers(0, 10_000), st.integers(1, 30))
def test_elephant_trap_victim_is_never_same_file(seed, n_adds):
    blocks = make_blocks(4, 8)
    et = ElephantTrapPolicy(1.0, 1, random.Random(seed))
    rng = random.Random(seed + 1)
    added = set()
    for _ in range(n_adds):
        b = rng.choice(blocks)
        if b.block_id not in added:
            et.add(b)
            added.add(b.block_id)
    evicting = rng.choice(blocks)
    victim = et.pick_victim(evicting)
    if victim is not None:
        assert victim.file_id != evicting.file_id


# ---------------------------------------------------------------------------
# greedy LRU
# ---------------------------------------------------------------------------


@given(st.lists(st.integers(0, 11), min_size=1, max_size=60), st.integers(0, 3))
def test_lru_victim_is_oldest_unaccessed_other_file(accesses, evicting_file):
    blocks = make_blocks(4, 3)
    lru = GreedyLRUPolicy()
    order = []  # reference model: list in LRU->MRU order
    for idx in accesses:
        b = blocks[idx]
        if b.block_id not in lru:
            lru.add(b)
            order.append(b.block_id)
        else:
            lru.on_local_access(b)
            order.remove(b.block_id)
            order.append(b.block_id)
    evicting = blocks[evicting_file * 3]
    victim = lru.pick_victim(evicting)
    by_id = {b.block_id: b for b in blocks}
    expected = next(
        (bid for bid in order if by_id[bid].file_id != evicting.file_id), None
    )
    assert (victim.block_id if victim else None) == expected


# ---------------------------------------------------------------------------
# window search
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(0, 9), min_size=2, max_size=48).filter(lambda h: sum(h) > 0),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_smallest_window_matches_bruteforce(hist, fraction):
    hist = np.asarray(hist)
    target = fraction * hist.sum()
    brute = next(
        w
        for w in range(1, len(hist) + 1)
        if max(hist[i:i + w].sum() for i in range(len(hist) - w + 1)) >= target
    )
    assert _smallest_window(hist, fraction) == brute


# ---------------------------------------------------------------------------
# popularity weights
# ---------------------------------------------------------------------------


@given(st.integers(1, 500), st.floats(min_value=0.0, max_value=3.0))
def test_zipf_weights_normalized_and_monotone(n, s):
    w = zipf_weights(n, s)
    assert abs(w.sum() - 1.0) < 1e-9
    assert (np.diff(w) <= 1e-12).all()
    cdf = access_cdf(w)
    assert abs(cdf[-1] - 1.0) < 1e-9
    assert (np.diff(cdf) >= -1e-12).all()


# ---------------------------------------------------------------------------
# INode block allocation
# ---------------------------------------------------------------------------


@given(st.integers(1, 10**6), st.integers(256, 2**20))
@settings(max_examples=80)
def test_inode_allocation_partitions_bytes_exactly(size, block_size):
    inode = INode(0, "f")
    blocks = inode.allocate_blocks(size, 0, block_size)
    assert sum(b.size_bytes for b in blocks) == size
    assert all(b.size_bytes <= block_size for b in blocks)
    assert all(b.size_bytes > 0 for b in blocks)
    # only the last block may be partial
    assert all(b.size_bytes == block_size for b in blocks[:-1])
