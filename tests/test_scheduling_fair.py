"""Unit tests: the Fair scheduler with delay scheduling."""

import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.mapreduce.job import JobSpec
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.task import Locality
from repro.scheduling.fair import FairScheduler
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams


def make_jt(cluster, namenode, node_delay=1.5, rack_delay=1.5):
    streams = RandomStreams(31)
    dare = DareReplicationService(DareConfig.off(), namenode, streams)
    tm = TaskTimeModel(cluster, namenode, streams.python("tm"))
    sched = FairScheduler(node_delay_s=node_delay, rack_delay_s=rack_delay)
    return JobTracker(cluster, namenode, Engine(), sched, tm, dare)


@pytest.fixture
def jt(small_cluster, loaded_namenode):
    return make_jt(small_cluster, loaded_namenode)


def non_holder_of(namenode, job):
    return next(
        (
            nid
            for nid in namenode.datanodes
            if all(
                nid not in namenode.locations(t.block.block_id) for t in job.maps
            )
        ),
        None,
    )


class TestDelayScheduling:
    def test_skips_job_with_no_local_task(self, jt, loaded_namenode):
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        assert jt.scheduler.pick_map(node, now=0.0) is None
        assert job.delay_wait_started == 0.0

    def test_launches_local_immediately(self, jt, loaded_namenode):
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        holder = next(iter(loaded_namenode.locations(job.maps[0].block.block_id)))
        pick = jt.scheduler.pick_map(holder, now=0.0)
        assert pick is not None
        _, _, level = pick
        assert level is Locality.NODE_LOCAL

    def test_rack_local_allowed_after_node_delay(self, jt, loaded_namenode):
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        assert jt.scheduler.pick_map(node, now=0.0) is None
        # after the node delay expires the job may go rack-local
        pick = jt.scheduler.pick_map(node, now=2.0)
        assert pick is not None
        _, _, level = pick
        assert level is Locality.RACK_LOCAL  # single rack: non-local == rack

    def test_local_launch_resets_wait(self, jt, loaded_namenode):
        job = jt.submit(JobSpec(0, 0.0, "cold"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        jt.scheduler.pick_map(node, now=0.0)  # skip -> wait starts
        holder = next(iter(loaded_namenode.locations(job.maps[0].block.block_id)))
        _, _, level = jt.scheduler.pick_map(holder, now=1.0)
        assert level is Locality.NODE_LOCAL
        assert job.delay_wait_started is None

    def test_non_local_launch_keeps_wait_running(self, jt, loaded_namenode):
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        jt.scheduler.pick_map(node, now=0.0)
        jt.scheduler.pick_map(node, now=2.0)  # rack-local launch
        assert job.delay_wait_started == 0.0  # EuroSys rule: only local resets

    def test_zero_delay_degenerates_to_greedy(self, small_cluster, loaded_namenode):
        jt = make_jt(small_cluster, loaded_namenode, node_delay=0.0, rack_delay=0.0)
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        assert jt.scheduler.pick_map(node, now=0.0) is None  # first skip arms clock
        assert jt.scheduler.pick_map(node, now=0.0) is not None

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            FairScheduler(node_delay_s=-1.0)


class TestFairSharing:
    def test_fewest_running_tasks_served_first(self, jt):
        j0 = jt.submit(JobSpec(0, 0.0, "cold"))
        j1 = jt.submit(JobSpec(1, 0.1, "warm"))
        j0.running_maps = 3
        holder = None
        for t in j1.maps:
            locs = jt.namenode.locations(t.block.block_id)
            if locs:
                holder = next(iter(locs))
                break
        job, _, _ = jt.scheduler.pick_map(holder, now=1.0)
        assert job is j1  # j0 already has 3 running tasks

    def test_reduce_fair_order(self, jt):
        j0 = jt.submit(JobSpec(0, 0.0, "cold", n_reduces=2))
        j1 = jt.submit(JobSpec(1, 0.1, "warm", n_reduces=2))
        for j in (j0, j1):
            j.finished_maps = j.n_maps
            j.pending_maps.clear()
        j0.running_reduces = 1
        job, _ = jt.scheduler.pick_reduce(1, now=1.0)
        assert job is j1

    def test_empty_scheduler_returns_none(self, jt):
        assert jt.scheduler.pick_map(1, now=0.0) is None
        assert jt.scheduler.pick_reduce(1, now=0.0) is None
