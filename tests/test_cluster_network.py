"""Unit tests: the network model and its Table I/II calibration."""

import numpy as np
import pytest

from repro.cluster.network import CCT_NETWORK, EC2_NETWORK, NetworkModel
from repro.cluster.topology import DEDICATED, VIRTUALIZED, Topology


def model(params, family=DEDICATED, n=20, seed=5, **kw):
    rng = np.random.default_rng(seed)
    topo = Topology(family, n, rng, **kw)
    return NetworkModel(topo, params, np.random.default_rng(seed + 1))


class TestRtt:
    def test_self_rtt_tiny(self):
        m = model(CCT_NETWORK)
        assert m.rtt_ms(3, 3) == pytest.approx(0.01)

    def test_cct_rtt_statistics_match_table1(self):
        m = model(CCT_NETWORK)
        samples = m.rtt_matrix(samples_per_pair=5)
        # Table I: CCT mean 0.18 ms
        assert 0.10 < samples.mean() < 0.30
        assert samples.max() < 10.0

    def test_ec2_rtt_heavier_tail_than_cct(self):
        cct = model(CCT_NETWORK).rtt_matrix(3)
        ec2 = model(EC2_NETWORK, family=VIRTUALIZED, racks_per_agg=12).rtt_matrix(3)
        assert ec2.mean() > cct.mean()
        assert ec2.std() > cct.std()

    def test_rtt_nonnegative(self):
        m = model(EC2_NETWORK, family=VIRTUALIZED)
        assert all(m.rtt_ms(0, b) > 0 for b in range(1, 20))


class TestBandwidth:
    def test_pairwise_bandwidth_symmetric(self):
        m = model(EC2_NETWORK, family=VIRTUALIZED)
        for a in range(0, 20, 3):
            for b in range(0, 20, 5):
                if a != b:
                    assert m.bandwidth_mbps(a, b) == m.bandwidth_mbps(b, a)

    def test_bandwidth_within_clip_bounds(self):
        m = model(EC2_NETWORK, family=VIRTUALIZED)
        for a in range(20):
            for b in range(20):
                if a != b:
                    bw = m.bandwidth_mbps(a, b)
                    assert EC2_NETWORK.bw_min <= bw <= EC2_NETWORK.bw_max

    def test_cct_bandwidth_tight_around_117(self):
        m = model(CCT_NETWORK)
        vals = [m.bandwidth_mbps(a, b) for a in range(20) for b in range(20) if a != b]
        assert 116.5 < np.mean(vals) < 118.0
        assert np.std(vals) < 1.0

    def test_loopback_is_infinite(self):
        m = model(CCT_NETWORK)
        assert np.isinf(m._pair_bw[4, 4])


class TestTransfers:
    def test_transfer_time_scales_with_bytes(self):
        m = model(CCT_NETWORK)
        t1 = m.transfer_seconds(10**8, 1, 2)
        t2 = m.transfer_seconds(2 * 10**8, 1, 2)
        assert t2 > t1

    def test_contention_slows_transfers(self):
        m = model(CCT_NETWORK)
        fast = m.transfer_seconds(10**8, 1, 2, contention=1)
        slow = m.transfer_seconds(10**8, 1, 2, contention=4)
        assert slow > 2 * fast

    def test_self_transfer_is_free(self):
        m = model(CCT_NETWORK)
        assert m.transfer_seconds(10**9, 3, 3) == 0.0

    def test_128mb_block_transfer_takes_about_a_second_on_cct(self):
        # 128 MB at ~117 MB/s -> ~1.1 s: the remote-read cost DARE removes
        m = model(CCT_NETWORK)
        t = m.transfer_seconds(128 * 1024 * 1024, 1, 2)
        assert 0.9 < t < 1.6
