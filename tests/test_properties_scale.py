"""Property tests (hypothesis) for the scale rework.

Each of the hot-path data structures introduced for 10k-100k-node runs is
checked against a straightforward dict/list reference on random small
inputs:

* ``_kth_excluding`` (the placement order statistic) against filtering
  the candidate list;
* the full :class:`DefaultPlacementPolicy` fast path against its own
  candidate-list fallback driven by an identically seeded RNG — the two
  must consume the same ``_randbelow`` stream draw for draw;
* the NameNode's rack-sharded replica indexes (``rack_counts``, the
  per-node reverse index, the incremental under-replicated set) against
  recomputation from the membership, across random mutation sequences
  and a pickle round-trip;
* the array-backed :class:`SlotStore` against per-node dict bookkeeping.
"""

import pickle
import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster, scale_spec
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import DefaultPlacementPolicy, _kth_excluding
from repro.mapreduce.slots import SlotStore
from repro.simulation.rng import RandomStreams

# ---------------------------------------------------------------------------
# order-statistic selection
# ---------------------------------------------------------------------------


@given(st.data())
def test_kth_excluding_matches_list_filter(data):
    ids = sorted(data.draw(st.sets(st.integers(0, 300), min_size=1, max_size=80)))
    # skips drawn from members and non-members alike: callers only pass
    # members, but the helper must tolerate strangers (bisect miss)
    skip = sorted(
        data.draw(st.sets(st.integers(0, 300), max_size=len(ids) - 1))
    )
    remaining = [n for n in ids if n not in set(skip)]
    if not remaining:
        return
    k = data.draw(st.integers(0, len(remaining) - 1))
    assert _kth_excluding(ids, skip, k) == remaining[k]


@settings(max_examples=25, deadline=None)
@given(
    st.integers(0, 2**31 - 1),
    st.integers(3, 60),
    st.integers(1, 6),
)
def test_placement_fast_path_matches_candidate_list(seed, n_nodes, rf):
    """Order-statistic draws == candidate-list draws, stream for stream."""
    spec = scale_spec(n_nodes)
    cluster = Cluster(spec, RandomStreams(seed))
    fast = DefaultPlacementPolicy(
        cluster.slave_ids, cluster.topology, random.Random(seed)
    )
    ref = DefaultPlacementPolicy(
        cluster.slave_ids, cluster.topology, random.Random(seed)
    )
    ref._ascending = False  # force the explicit candidate-list fallback
    writers = random.Random(seed + 1)
    for _ in range(20):
        writer = writers.choice([None, 0] + cluster.slave_ids)
        assert fast.choose_targets(rf, writer) == ref.choose_targets(rf, writer)


# ---------------------------------------------------------------------------
# rack-sharded replica indexes
# ---------------------------------------------------------------------------


def _assert_replica_indexes_consistent(nn: NameNode) -> None:
    """Every derived index equals its recomputation from the membership."""
    rack_of = nn._rack_of
    blocks_on: dict = {}
    under = set()
    for bid, locs in nn._locations.items():
        assert nn._locs_by_id[bid] is locs
        assert dict(locs.rack_counts) == dict(
            Counter(rack_of[n] for n in locs)
        )
        for n in locs:
            blocks_on.setdefault(n, set()).add(bid)
        if len(locs) < locs.rf:
            under.add(bid)
        assert nn.replica_count(bid) == len(locs)
    assert {n: s for n, s in nn._blocks_on.items() if s} == blocks_on
    assert nn._under == under
    assert nn.under_replicated() == {
        bid: len(nn._locs_by_id[bid]) for bid in sorted(under)
    }


@settings(max_examples=20, deadline=None)
@given(st.data())
def test_replica_indexes_survive_random_mutations(data):
    seed = data.draw(st.integers(0, 2**31 - 1))
    n_nodes = data.draw(st.integers(3, 24))
    cluster = Cluster(scale_spec(n_nodes), RandomStreams(seed))
    nn = NameNode(cluster)
    for f in range(data.draw(st.integers(1, 3))):
        nn.create_file(
            f"f{f}",
            data.draw(st.integers(1, 4)) * DEFAULT_BLOCK_SIZE,
            replication=data.draw(st.integers(1, 3)),
        )
    block_ids = sorted(nn.blocks)
    slave_ids = cluster.slave_ids
    # direct location pokes, the way Scarlett/CDRM and repair mutate the
    # map, plus the occasional whole-node failure
    for _ in range(data.draw(st.integers(0, 40))):
        op = data.draw(
            st.sampled_from(["add", "add", "discard", "fail"])
        )
        if op == "fail":
            nn.fail_node(data.draw(st.sampled_from(slave_ids)))
            continue
        locs = nn.locations(data.draw(st.sampled_from(block_ids)))
        node = data.draw(st.sampled_from(slave_ids))
        if op == "add":
            locs.add(node)
        else:
            locs.discard(node)
    _assert_replica_indexes_consistent(nn)

    # the pickle round-trip drops the derived indexes and rebuilds them
    restored = pickle.loads(pickle.dumps(nn))
    assert {
        bid: list(locs) for bid, locs in restored._locations.items()
    } == {bid: list(locs) for bid, locs in nn._locations.items()}
    _assert_replica_indexes_consistent(restored)


# ---------------------------------------------------------------------------
# array-backed slot store
# ---------------------------------------------------------------------------


@given(st.data())
def test_slot_store_matches_dict_reference(data):
    n_nodes = data.draw(st.integers(1, 40))
    store = SlotStore(n_nodes)
    ref = {}
    for nid in range(n_nodes):
        m = data.draw(st.integers(0, 4))
        r = data.draw(st.integers(0, 4))
        store.register(nid, m, r)
        ref[nid] = [m, r, m, r]  # free_map, free_reduce, cap_map, cap_reduce
    for _ in range(data.draw(st.integers(0, 60))):
        nid = data.draw(st.integers(0, n_nodes - 1))
        kind = data.draw(st.sampled_from(["map", "reduce"]))
        idx = 0 if kind == "map" else 1
        free = ref[nid][idx]
        cap = ref[nid][idx + 2]
        if data.draw(st.booleans()) and free > 0:  # occupy
            ref[nid][idx] -= 1
            if kind == "map":
                store.free_map[nid] -= 1
            else:
                store.free_reduce[nid] -= 1
        elif free < cap:  # release
            ref[nid][idx] += 1
            if kind == "map":
                store.free_map[nid] += 1
            else:
                store.free_reduce[nid] += 1
    for nid in range(n_nodes):
        assert store.free_map[nid] == ref[nid][0]
        assert store.free_reduce[nid] == ref[nid][1]
        assert store.cap_map[nid] == ref[nid][2]
        assert store.cap_reduce[nid] == ref[nid][3]
        assert store.all_free(nid) == (
            ref[nid][0] == ref[nid][2] and ref[nid][1] == ref[nid][3]
        )
