"""Unit tests: the task time model."""

import pytest

from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.mapreduce.runtime import TaskTimeModel
from repro.simulation.rng import RandomStreams


@pytest.fixture
def model(small_cluster, loaded_namenode):
    return TaskTimeModel(small_cluster, loaded_namenode, RandomStreams(5).python("tm"))


class TestMapDurations:
    def test_local_map_duration_components(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        node = next(iter(loaded_namenode.locations(blk.block_id)))
        duration, source, cpu = model.map_duration(node, blk, True, map_cpu_s=4.0)
        assert source is None
        read = blk.size_bytes / (model.cluster.node(node).disk_bw_mbps * 1e6)
        assert duration == pytest.approx(model.overhead_s + read + cpu)
        # per-attempt jitter is mild on dedicated hardware
        assert 0.6 * 4.0 < cpu < 1.6 * 4.0

    def test_remote_map_slower_than_local(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        local = next(iter(loaded_namenode.locations(blk.block_id)))
        remote = next(
            nid for nid in loaded_namenode.datanodes
            if nid not in loaded_namenode.locations(blk.block_id)
        )
        t_local, _, cpu_l = model.map_duration(local, blk, True, 4.0)
        t_remote, source, cpu_r = model.map_duration(remote, blk, False, 4.0)
        assert source is not None
        # compare the data-path portions (cpu draws differ per attempt)
        assert (t_remote - cpu_r) > (t_local - cpu_l) * 0.9

    def test_remote_source_is_a_replica_holder(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        remote = next(
            nid for nid in loaded_namenode.datanodes
            if nid not in loaded_namenode.locations(blk.block_id)
        )
        _, source, _ = model.map_duration(remote, blk, False, 4.0)
        assert source in loaded_namenode.locations(blk.block_id)
        assert source != remote

    def test_no_remote_replica_raises(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        # pretend the destination is the only holder
        loaded_namenode._locations[blk.block_id] = {3}
        with pytest.raises(ValueError, match="no remote replica"):
            model.choose_source(blk, 3)

    def test_contention_slows_local_reads(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        node = next(iter(loaded_namenode.locations(blk.block_id)))
        t1, _, _ = model.map_duration(node, blk, True, 0.0)
        model.cluster.node(node).active_disk_reads = 7
        t2, _, _ = model.map_duration(node, blk, True, 0.0)
        assert t2 > t1 * 3

    def test_source_selection_prefers_less_loaded(self, model, loaded_namenode):
        blk = loaded_namenode.file("hot").blocks[0]
        locs = sorted(loaded_namenode.locations(blk.block_id))
        remote = next(
            nid for nid in loaded_namenode.datanodes if nid not in locs
        )
        # load every replica holder except one
        for nid in locs[1:]:
            model.cluster.node(nid).active_net_transfers = 5
        assert model.choose_source(blk, remote) == locs[0]


class TestContentionBookkeeping:
    def test_transfer_counters_balance(self, model):
        model.start_transfer(1, 2)
        assert model.cluster.node(1).active_net_transfers == 1
        assert model.cluster.node(2).active_net_transfers == 1
        model.end_transfer(1, 2)
        assert model.cluster.node(1).active_net_transfers == 0

    def test_disk_counters_balance(self, model):
        model.start_local_read(3)
        assert model.cluster.node(3).active_disk_reads == 1
        model.end_local_read(3)
        assert model.cluster.node(3).active_disk_reads == 0


class TestReduceAndIdeal:
    def test_reduce_duration_positive_and_monotone_in_bytes(self, model):
        small = model.reduce_duration(1, 10**7, 10**7, 2.0)
        large = model.reduce_duration(1, 10**9, 10**9, 2.0)
        assert 0 < small < large

    def test_ideal_map_uses_mean_disk(self, model):
        t = model.ideal_map_seconds(DEFAULT_BLOCK_SIZE, 4.0)
        read = DEFAULT_BLOCK_SIZE / (model.mean_disk_bw * 1e6)
        assert t == pytest.approx(model.overhead_s + read + 4.0)

    def test_ideal_reduce_accounts_for_output_pipeline(self, model):
        no_out = model.ideal_reduce_seconds(10**8, 0, 1.0)
        with_out = model.ideal_reduce_seconds(10**8, 10**8, 1.0)
        assert with_out > no_out

    def test_cpu_scale_multiplies_compute(self, small_cluster, loaded_namenode):
        fast = TaskTimeModel(small_cluster, loaded_namenode, RandomStreams(5).python("a"))
        t_fast = fast.ideal_map_seconds(DEFAULT_BLOCK_SIZE, 4.0)
        small_cluster.spec = small_cluster.spec._replace(cpu_scale=3.0)
        slow = TaskTimeModel(small_cluster, loaded_namenode, RandomStreams(5).python("b"))
        assert slow.ideal_map_seconds(DEFAULT_BLOCK_SIZE, 4.0) == pytest.approx(
            t_fast + 8.0
        )
