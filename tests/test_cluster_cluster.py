"""Unit tests: cluster assembly and the measurement probes."""

import numpy as np
import pytest

from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, build_cluster
from repro.cluster.node import Node
from repro.cluster.probes import (
    SummaryStats,
    bandwidth_ratio,
    measure_disk_bandwidth,
    measure_network_bandwidth,
    ping_all_pairs,
    probe_report,
    traceroute_hop_histogram,
)


class TestNode:
    def test_effective_bandwidths_fair_share(self):
        n = Node(1, 0, disk_bw_mbps=100.0, net_bw_mbps=50.0)
        assert n.effective_disk_bw() == 100.0
        n.active_disk_reads = 4
        assert n.effective_disk_bw() == 25.0
        n.active_net_transfers = 2
        assert n.effective_net_bw() == 25.0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Node(1, 0, disk_bw_mbps=0.0, net_bw_mbps=50.0)

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Node(1, 0, 100.0, 50.0, map_slots=-1)


class TestClusterAssembly:
    def test_master_is_node_zero_with_no_slots(self, small_cluster):
        assert small_cluster.master.node_id == 0
        assert small_cluster.master.map_slots == 0
        assert small_cluster.master.reduce_slots == 0

    def test_slaves_have_spec_slots(self, small_cluster):
        for n in small_cluster.slaves:
            assert n.map_slots == small_cluster.spec.map_slots
            assert n.reduce_slots == small_cluster.spec.reduce_slots

    def test_total_slots(self, small_cluster):
        n_slaves = len(small_cluster.slaves)
        assert small_cluster.total_map_slots == n_slaves * small_cluster.spec.map_slots

    def test_build_cluster_deterministic(self):
        a = build_cluster(CCT_SPEC, seed=5)
        b = build_cluster(CCT_SPEC, seed=5)
        assert [n.disk_bw_mbps for n in a.nodes] == [n.disk_bw_mbps for n in b.nodes]

    def test_ec2_spec_has_scattered_topology(self):
        c = build_cluster(EC2_SPEC)
        assert c.topology.n_racks > 10


class TestProbes:
    def test_summary_stats_of(self):
        s = SummaryStats.of(np.array([1.0, 2.0, 3.0]))
        assert s.min == 1.0 and s.max == 3.0
        assert s.mean == pytest.approx(2.0)

    def test_summary_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            SummaryStats.of(np.array([]))

    def test_ping_matches_table1_cct(self):
        stats = ping_all_pairs(build_cluster(CCT_SPEC))
        assert 0.10 < stats.mean < 0.30  # paper: 0.18 ms

    def test_disk_probe_matches_table2(self):
        stats = measure_disk_bandwidth(build_cluster(CCT_SPEC))
        assert 150 < stats.mean < 165  # paper: 157.8 MB/s

    def test_network_probe_matches_table2(self):
        stats = measure_network_bandwidth(build_cluster(CCT_SPEC))
        assert 116 < stats.mean < 119  # paper: 117.7 MB/s

    def test_bandwidth_ratio_higher_on_dedicated(self):
        # Section II-B's key insight
        cct = bandwidth_ratio(build_cluster(CCT_SPEC))
        ec2 = bandwidth_ratio(build_cluster(EC2_SPEC._replace(n_nodes=20)))
        assert cct > ec2

    def test_hop_histogram_fig1_mode(self):
        hist = traceroute_hop_histogram(build_cluster(EC2_SPEC._replace(n_nodes=20)))
        assert int(np.argmax(hist)) in (3, 4, 5)

    def test_probe_report_keys(self):
        report = probe_report(build_cluster(CCT_SPEC))
        assert set(report) == {"rtt_ms", "disk_bw_mbps", "net_bw_mbps"}

    def test_stats_row_formatting(self):
        s = SummaryStats.of(np.array([1.0, 2.0]))
        row = s.row("label", "ms")
        assert "label" in row and "ms" in row
