"""Unit tests: the slowdown metric and its dedicated-cluster wave model."""


import pytest

from repro.mapreduce.job import JobSpec
from repro.mapreduce.runtime import TaskTimeModel
from repro.metrics.collector import JobRecord
from repro.metrics.slowdown import ideal_turnaround, mean_slowdown, slowdowns
from repro.simulation.rng import RandomStreams


@pytest.fixture
def model(small_cluster, loaded_namenode):
    return TaskTimeModel(small_cluster, loaded_namenode, RandomStreams(5).python("tm"))


class TestIdealTurnaround:
    def test_single_wave_job(self, small_cluster, model):
        spec = JobSpec(0, 0.0, "f", map_cpu_s=4.0, n_reduces=0)
        block = 128 * 1024 * 1024
        ideal = ideal_turnaround(spec, 2 * block, 2, small_cluster, model)
        expected = model.ideal_map_seconds(block, 4.0) + small_cluster.spec.heartbeat_s
        assert ideal == pytest.approx(expected)

    def test_waves_scale_with_map_count(self, small_cluster, model):
        spec = JobSpec(0, 0.0, "f", map_cpu_s=4.0, n_reduces=0)
        block = 128 * 1024 * 1024
        slots = small_cluster.total_map_slots
        one = ideal_turnaround(spec, slots * block, slots, small_cluster, model)
        two = ideal_turnaround(spec, 2 * slots * block, 2 * slots, small_cluster, model)
        assert two > one * 1.7

    def test_reduces_add_time(self, small_cluster, model):
        block = 128 * 1024 * 1024
        no_red = JobSpec(0, 0.0, "f", n_reduces=0)
        with_red = JobSpec(0, 0.0, "f", n_reduces=2)
        a = ideal_turnaround(no_red, block, 1, small_cluster, model)
        b = ideal_turnaround(with_red, block, 1, small_cluster, model)
        assert b > a


class TestSlowdowns:
    def test_slowdown_ratio(self, small_cluster, model):
        spec = JobSpec(7, 0.0, "f", map_cpu_s=4.0, n_reduces=0)
        block = 128 * 1024 * 1024
        ideal = ideal_turnaround(spec, block, 1, small_cluster, model)
        rec = JobRecord(7, 0.0, 0.0, 3 * ideal, 1, 0, (1, 0, 0), block)
        vals = slowdowns([rec], {7: spec}, small_cluster, model)
        assert vals[0] == pytest.approx(3.0)

    def test_mean_slowdown_empty_raises(self, small_cluster, model):
        with pytest.raises(ValueError):
            mean_slowdown([], {}, small_cluster, model)

    def test_loaded_system_slowdown_above_one(self, small_cluster, model, wl1_small):
        # integration sanity: a real run's slowdown is >= ~1
        from repro.experiments.runner import ExperimentConfig, run_experiment
        from tests.conftest import SMALL_SPEC

        r = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl1_small)
        assert r.slowdown > 0.95
