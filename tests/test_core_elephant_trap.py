"""Unit tests: Algorithm 2 — the ElephantTrap policy."""

import random

import pytest

from repro.core.elephant_trap import ElephantTrapPolicy
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.inode import INode


def blocks_of(name, n, file_id, first_id):
    return INode(file_id, name).allocate_blocks(n * DEFAULT_BLOCK_SIZE, first_id)


@pytest.fixture
def fa():
    return blocks_of("a", 6, 0, 0)


@pytest.fixture
def fb():
    return blocks_of("b", 6, 1, 100)


def make(p=1.0, threshold=1, seed=3):
    return ElephantTrapPolicy(p, threshold, random.Random(seed))


class TestCoinTosses:
    def test_p_one_always_fires(self, fa):
        et = make(p=1.0)
        assert all(et.wants_replica(fa[0]) for _ in range(20))
        assert all(et.wants_refresh(fa[0]) for _ in range(20))

    def test_p_zero_never_fires(self, fa):
        et = make(p=0.0)
        assert not any(et.wants_replica(fa[0]) for _ in range(20))

    def test_p_fraction_of_tosses(self, fa):
        et = make(p=0.3)
        hits = sum(et.wants_replica(fa[0]) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            make(p=1.5)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            make(threshold=-1)


class TestRing:
    def test_insert_starts_with_zero_count(self, fa):
        et = make()
        et.add(fa[0])
        assert et.access_count(fa[0].block_id) == 0
        assert len(et) == 1

    def test_double_add_rejected(self, fa):
        et = make()
        et.add(fa[0])
        with pytest.raises(ValueError):
            et.add(fa[0])

    def test_local_access_increments(self, fa):
        et = make()
        et.add(fa[0])
        et.on_local_access(fa[0])
        et.on_local_access(fa[0])
        assert et.access_count(fa[0].block_id) == 2

    def test_untracked_access_ignored(self, fa, fb):
        et = make()
        et.add(fa[0])
        et.on_local_access(fb[0])
        assert len(et) == 1

    def test_remove_fixes_pointer(self, fa):
        et = make()
        for b in fa[:4]:
            et.add(b)
        et.remove(fa[1].block_id)
        assert len(et) == 3
        # the ring remains iterable and consistent
        assert {b.block_id for b in et.ring_blocks()} == {
            fa[0].block_id, fa[2].block_id, fa[3].block_id
        }

    def test_remove_untracked_is_noop(self, fa):
        make().remove(fa[0].block_id)

    def test_remove_all_resets_pointer(self, fa):
        et = make()
        et.add(fa[0])
        et.remove(fa[0].block_id)
        assert len(et) == 0
        et.add(fa[1])  # reinsertion after empty must work
        assert len(et) == 1


class TestEvictionWalk:
    def test_fresh_block_is_immediate_victim_at_threshold_one(self, fa, fb):
        et = make(threshold=1)
        et.add(fa[0])  # count 0 < 1 -> evictable
        assert et.pick_victim(fb[0]) is fa[0]

    def test_popular_blocks_survive_one_walk(self, fa, fb):
        et = make(threshold=1)
        et.add(fa[0])
        for _ in range(4):
            et.on_local_access(fa[0])  # count 4
        # single block with count >= threshold: a full lap halves but the
        # count stays >= 1, so no victim is found
        assert et.pick_victim(fb[0]) is None
        assert et.access_count(fa[0].block_id) < 4  # aging happened

    def test_competitive_aging_halves_counts(self, fa, fb):
        et = make(threshold=1)
        et.add(fa[0])
        et.add(fa[1])
        for _ in range(8):
            et.on_local_access(fa[0])
        for _ in range(2):
            et.on_local_access(fa[1])
        et.pick_victim(fb[0])  # walk halves what it visits
        total = et.access_count(fa[0].block_id) + et.access_count(fa[1].block_id)
        assert total < 10

    def test_repeated_pressure_eventually_finds_victim(self, fa, fb):
        et = make(threshold=1)
        et.add(fa[0])
        for _ in range(4):
            et.on_local_access(fa[0])
        # 4 -> 2 -> 1 -> 0: three walks age it below the threshold
        for _ in range(3):
            victim = et.pick_victim(fb[0])
            if victim is not None:
                break
        assert victim is fa[0]

    def test_same_file_candidate_aborts_eviction(self, fa):
        et = make(threshold=1)
        et.add(fa[0])
        assert et.pick_victim(fa[1]) is None  # same file -> null

    def test_empty_ring_has_no_victim(self, fb):
        assert make().pick_victim(fb[0]) is None

    def test_victim_preference_follows_pointer_order(self, fa, fb):
        et = make(threshold=1)
        et.add(fa[0])
        et.add(fa[1])
        et.add(fa[2])
        v1 = et.pick_victim(fb[0])
        assert v1 in fa

    def test_higher_threshold_evicts_more_easily(self, fa, fb):
        lo = make(threshold=1)
        hi = make(threshold=5)
        for et in (lo, hi):
            et.add(fa[0])
            for _ in range(3):
                et.on_local_access(fa[0])  # count 3
        assert lo.pick_victim(fb[0]) is None  # 3 >= 1 even after halving once
        assert hi.pick_victim(fb[0]) is fa[0]  # 3 < 5 -> immediate victim


class TestCompetitiveAgingRegression:
    """Satellite pins on Algorithm 2's eviction-sweep aging (ISSUE 1)."""

    def set_counts(self, et, blocks, counts):
        for b in blocks:
            et.add(b)
        for b, c in zip(blocks, counts):
            for _ in range(c):
                et.on_local_access(b)

    def test_full_sweep_halves_every_survivor_exactly_once(self, fa, fb):
        # threshold 2; all counts >= threshold, so the pointer walks one
        # full lap, halving each visited block exactly once
        et = make(threshold=2)
        ring = fa[:2] + fb[2:4]
        self.set_counts(et, ring, [8, 6, 4, 5])
        before = {b.block_id: et.access_count(b.block_id) for b in ring}
        victim = et.pick_victim(fb[5])
        after = {b.block_id: et.access_count(b.block_id) for b in ring}
        for bid in before:
            assert after[bid] == before[bid] // 2, (
                f"block {bid}: {before[bid]} -> {after[bid]}, expected exactly "
                "one halving over the sweep"
            )
        # after one lap counts are 4,3,2,2 — still >= threshold except none;
        # the walk re-examines the (already halved) pointer block
        if victim is not None:
            assert et.access_count(victim.block_id) < et.threshold

    def test_chosen_victim_was_below_threshold(self, fa, fb):
        et = make(threshold=3)
        ring = fa[:3]
        self.set_counts(et, ring, [9, 2, 7])  # middle block is evictable
        victim = et.pick_victim(fb[0])
        assert victim is fa[1]
        assert et.access_count(victim.block_id) < et.threshold
        # only the blocks visited before the victim were aged
        assert et.access_count(fa[0].block_id) == 4  # 9 // 2
        assert et.access_count(fa[2].block_id) == 7  # never visited

    def test_sweep_abandons_when_everything_stays_popular(self, fa, fb):
        # counts so large that one halving cannot drop them below threshold
        et = make(threshold=2)
        ring = fa[:3]
        self.set_counts(et, ring, [16, 16, 16])
        assert et.pick_victim(fb[0]) is None
        # the abandoned sweep still aged every block exactly once
        assert [et.access_count(b.block_id) for b in ring] == [8, 8, 8]

    def test_counts_stay_nonnegative_under_repeated_sweeps(self, fa, fb):
        et = make(threshold=1)
        ring = fa[:4]
        self.set_counts(et, ring, [3, 1, 2, 5])
        for _ in range(10):
            victim = et.pick_victim(fb[0])
            if victim is None:
                break
            et.remove(victim.block_id)
            assert all(
                et.access_count(b.block_id) >= 0
                for b in et.ring_blocks()
            )

    def test_survivor_counts_after_eviction_sweep(self, fa, fb):
        # a sweep that finds a victim part-way: blocks visited before the
        # victim are halved once, blocks after it are untouched
        et = make(threshold=2)
        ring = fa[:2] + fb[2:4]
        self.set_counts(et, ring, [5, 4, 1, 6])
        victim = et.pick_victim(fb[5])  # same file as ring[2]!
        # fb[2] has count 1 < threshold but shares a file with fb[5]:
        # Algorithm 2 abandons rather than victimize the same popularity class
        assert victim is None
        assert et.access_count(fa[0].block_id) == 2  # 5 // 2
        assert et.access_count(fa[1].block_id) == 2  # 4 // 2
        assert et.access_count(fb[2].block_id) == 1  # the stopping block, unaged
        assert et.access_count(fb[3].block_id) == 6  # never visited
