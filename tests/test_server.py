"""The HTTP front door: REST API, SSE streaming, backpressure, restart.

Four layers:

* unit tests of the building blocks — :class:`RecordStream` (bounded
  sequenced fan-out), :class:`RateLimiter` (token buckets under a fake
  clock), and submission-spec validation;
* :class:`TestJobManager` — the job manager against the in-process
  work queue: cross-job cell dedupe, cache pre-resolution (a warm grid
  completes at submit with zero ``run_experiment`` calls), idempotent
  resubmission, bounded backlog;
* :class:`TestServerHTTP` — a real asyncio server on a loopback port
  driven by ``http.client``: the full POST → SSE → GET loop
  byte-identical to serial ``run_cells``, four concurrent clients
  converging on one shared execution, 429 under burst, 4xx/5xx edges,
  and journal-backed restart resuming a half-done grid;
* a subprocess test sending a real SIGTERM to ``repro serve`` and
  expecting a clean drain.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.config import DareConfig
from repro.experiments.jobs import (
    JOB_DONE,
    JOB_FAILED,
    JobManager,
    JobRejected,
    RUNNING,
    parse_job_spec,
)
from repro.experiments.runner import ExperimentConfig
from repro.experiments.service import cell_to_doc
from repro.experiments.sweep import (
    ResultCache,
    SweepCell,
    WorkloadSpec,
    build_grid,
    doc_to_text,
    outcomes_to_doc,
    run_cells,
)
from repro.observability.stream import RecordStream
from repro.server.jobstore import JobJournal, restore
from repro.server.ratelimit import RateLimiter, TokenBucket

SEED = 20110926
N_JOBS = 4  # tiny cells keep the suite fast


def _cell(tag: str, seed: int = SEED) -> SweepCell:
    config = ExperimentConfig(dare=DareConfig.elephant_trap(), seed=seed)
    return SweepCell(config, WorkloadSpec("wl1", N_JOBS, seed), tag=tag)


CELLS = tuple(_cell(f"c{i}", SEED + i) for i in range(3))
SMOKE_SPEC = {"grid": "smoke", "n_jobs": N_JOBS, "seed": SEED}


def smoke_serial_text() -> str:
    """The serial-path result document for SMOKE_SPEC, via the shared
    serializer (this is the byte-identity oracle)."""
    cells = build_grid("smoke", n_jobs=N_JOBS, seed=SEED)
    outcomes = run_cells(cells, jobs=1)
    return doc_to_text(outcomes_to_doc(
        outcomes, grid="smoke", n_jobs=N_JOBS, seed=SEED, provenance=False,
    ))


@pytest.fixture(scope="module")
def smoke_serial():
    return smoke_serial_text()


# -- RecordStream -------------------------------------------------------------


class TestRecordStream:
    def test_publish_and_read(self):
        s = RecordStream(capacity=8)
        assert s.publish("a", {"n": 1}) == 1
        assert s.publish("b", {"n": 2}) == 2
        events, dropped, closed = s.read_since(0)
        assert [(e.seq, e.kind) for e in events] == [(1, "a"), (2, "b")]
        assert dropped == 0 and not closed
        events, dropped, closed = s.read_since(1)
        assert [e.kind for e in events] == ["b"]

    def test_reader_detects_evictions(self):
        s = RecordStream(capacity=3)
        for n in range(10):
            s.publish("e", {"n": n})
        events, dropped, _ = s.read_since(0)
        assert [e.seq for e in events] == [8, 9, 10]
        assert dropped == 7  # seqs 1..7 evicted before this reader arrived

    def test_caught_up_reader_after_eviction_drops_nothing(self):
        s = RecordStream(capacity=2)
        for n in range(5):
            s.publish("e", {"n": n})
        events, dropped, _ = s.read_since(4)
        assert [e.seq for e in events] == [5] and dropped == 0

    def test_close_drains_then_stops(self):
        s = RecordStream()
        s.publish("a", {})
        s.close()
        events, _, closed = s.read_since(0)
        assert closed and len(events) == 1
        assert s.publish("b", {}) == 1  # ignored after close
        assert s.read_since(1) == ([], 0, True)

    def test_fully_drained_reader_sees_pending_drop_count(self):
        s = RecordStream(capacity=2)
        for n in range(5):
            s.publish("e", {"n": n})
        _, dropped, _ = s.read_since(5)
        assert dropped == 0
        _, dropped, _ = s.read_since(1)  # stale cursor, ring moved on
        assert dropped == 2

    def test_waiters_fire_on_publish_and_close(self):
        s = RecordStream()
        hits = []
        s.add_waiter(lambda: hits.append("x"))
        s.publish("a", {})
        s.close()
        assert hits == ["x", "x"]
        s2 = RecordStream()
        wake = lambda: hits.append("y")  # noqa: E731
        s2.add_waiter(wake)
        s2.remove_waiter(wake)
        s2.publish("a", {})
        assert "y" not in hits


# -- rate limiting ------------------------------------------------------------


class TestRateLimit:
    def test_bucket_burst_then_refill(self):
        b = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert b.acquire(0.0) == 0.0
        assert b.acquire(0.0) == 0.0
        wait = b.acquire(0.0)
        assert wait == pytest.approx(1.0)
        assert b.acquire(1.5) == 0.0  # refilled

    def test_limiter_is_per_client(self):
        clock = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1.0, clock=lambda: clock[0])
        assert limiter.check("alice") == (True, 0.0)
        ok, wait = limiter.check("alice")
        assert not ok and wait > 0
        assert limiter.check("bob")[0]  # separate bucket
        clock[0] = 2.0
        assert limiter.check("alice")[0]
        assert limiter.allowed == 3 and limiter.limited == 1

    def test_eviction_bounds_client_table(self):
        clock = [0.0]
        limiter = RateLimiter(
            rate=10.0, burst=1.0, max_clients=4, clock=lambda: clock[0]
        )
        for n in range(4):
            limiter.check(f"c{n}")
        clock[0] = 10.0  # all buckets refill to full -> evictable
        limiter.check("c-new")
        assert len(limiter) <= 2  # stale buckets dropped, new one added


# -- submission validation ----------------------------------------------------


class TestParseJobSpec:
    def test_named_grid(self):
        cells, spec = parse_job_spec({"grid": "smoke", "n_jobs": 4})
        assert len(cells) == 2 and spec["grid"] == "smoke"
        assert not spec["stream"]

    def test_explicit_cells(self):
        doc = {"cells": [cell_to_doc(c) for c in CELLS[:2]]}
        cells, spec = parse_job_spec(doc)
        assert cells == list(CELLS[:2]) and spec["grid"] == "custom"

    def test_check_invariants_applies_to_cells(self):
        cells, _ = parse_job_spec(
            {"grid": "smoke", "n_jobs": 4, "check_invariants": True}
        )
        assert all(c.config.check_invariants for c in cells)

    @pytest.mark.parametrize("doc,match", [
        ([1, 2], "JSON object"),
        ({"grid": "smoke", "bogus": 1}, "unknown field"),
        ({"grid": "no-such-grid"}, "unknown grid"),
        ({"grid": 7}, "'grid' must be"),
        ({"n_jobs": 0}, "'n_jobs' must be"),
        ({"n_jobs": True}, "'n_jobs' must be"),
        ({"seed": "x"}, "'seed' must be"),
        ({"cells": []}, "'cells' must be"),
        ({"cells": [{"bad": 1}]}, "malformed cell"),
    ])
    def test_rejections_are_400(self, doc, match):
        with pytest.raises(JobRejected, match=match) as err:
            parse_job_spec(doc)
        assert err.value.status in (400,)


# -- the job manager over the in-process queue --------------------------------


def make_manager(tmp_path, **kwargs):
    defaults = dict(
        cache=ResultCache(tmp_path / "cache"),
        workers=2,
        isolation="thread",
    )
    defaults.update(kwargs)
    return JobManager(**defaults)


def wait_for(predicate, timeout=60.0, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {what}")


class TestJobManager:
    def test_submit_executes_and_finishes(self, tmp_path):
        manager = make_manager(tmp_path).start()
        try:
            job, created = manager.submit(
                {"cells": [cell_to_doc(c) for c in CELLS[:2]]}
            )
            assert created and job.state == RUNNING
            wait_for(lambda: not job.active, what="job completion")
            assert job.state == JOB_DONE
            doc = manager.job_result_doc(job)
            assert [c["ok"] for c in doc["cells"]] == [True, True]
            assert manager.cells_executed == 2
        finally:
            manager.stop()

    def test_warm_cache_completes_at_submit_with_zero_runs(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")
        run_cells(list(CELLS[:2]), jobs=1, cache=cache)  # warm it
        manager = make_manager(tmp_path, cache=cache)  # executors never started
        import repro.experiments.sweep as sweep_mod

        def boom(*a, **k):  # any execution attempt is a failure
            raise AssertionError("run_experiment called on a warm grid")

        monkeypatch.setattr(sweep_mod, "run_experiment", boom)
        job, created = manager.submit(
            {"cells": [cell_to_doc(c) for c in CELLS[:2]]}
        )
        assert created
        assert job.state == JOB_DONE  # settled synchronously at submit
        assert manager.cells_executed == 0
        progress = manager.job_status_doc(job)["progress"]
        assert progress == {"total": 2, "done": 2, "cached": 2, "failed": 0}

    def test_resubmission_is_idempotent(self, tmp_path):
        manager = make_manager(tmp_path)
        spec = {"cells": [cell_to_doc(CELLS[0])]}
        job1, created1 = manager.submit(spec)
        job2, created2 = manager.submit(spec)
        assert created1 and not created2
        assert job1 is job2
        job3, _ = manager.submit(
            {"cells": [cell_to_doc(CELLS[0])], "idempotency_key": "mine"}
        )
        assert job3 is not job1  # explicit key = distinct identity

    def test_overlapping_jobs_share_cells(self, tmp_path):
        manager = make_manager(tmp_path)
        manager.submit({"cells": [cell_to_doc(c) for c in CELLS[:2]]})
        manager.submit({"cells": [cell_to_doc(c) for c in CELLS[1:3]]})
        assert len(manager.queue.entries) == 3  # not 4: middle cell shared

    def test_backlog_bound_rejects_with_503(self, tmp_path):
        manager = make_manager(tmp_path, max_queued_jobs=1)
        manager.submit({"cells": [cell_to_doc(CELLS[0])]})
        with pytest.raises(JobRejected) as err:
            manager.submit({"cells": [cell_to_doc(CELLS[1])]})
        assert err.value.status == 503 and err.value.retry_after_s > 0

    def test_oversized_grid_rejects_with_413(self, tmp_path):
        manager = make_manager(tmp_path, max_cells_per_job=1)
        with pytest.raises(JobRejected) as err:
            manager.submit({"cells": [cell_to_doc(c) for c in CELLS[:2]]})
        assert err.value.status == 413

    def test_draining_rejects_with_503(self, tmp_path):
        manager = make_manager(tmp_path)
        manager.drain()
        with pytest.raises(JobRejected) as err:
            manager.submit({"cells": [cell_to_doc(CELLS[0])]})
        assert err.value.status == 503

    def test_failed_cell_fails_job_and_resubmit_retries(self, tmp_path, monkeypatch):
        import repro.experiments.sweep as sweep_mod

        calls = {"n": 0}
        real = sweep_mod.run_experiment

        def flaky(config, workload, **kwargs):
            calls["n"] += 1
            raise RuntimeError("injected cell failure")

        monkeypatch.setattr(sweep_mod, "run_experiment", flaky)
        manager = make_manager(tmp_path, max_attempts=1).start()
        try:
            spec = {"cells": [cell_to_doc(CELLS[0])]}
            job, _ = manager.submit(spec)
            wait_for(lambda: not job.active, what="job failure")
            assert job.state == JOB_FAILED
            assert "injected cell failure" in job.error
            doc = manager.job_result_doc(job)
            assert doc["cells"][0]["ok"] is False
            # resubmitting the same spec re-arms the quarantined cell
            monkeypatch.setattr(sweep_mod, "run_experiment", real)
            job2, created = manager.submit(spec)
            assert job2 is job and not created
            wait_for(lambda: not job.active, what="retried job")
            assert job.state == JOB_DONE
        finally:
            manager.stop()

    def test_journal_restore_resumes_unfinished_job(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # warm exactly one of the two cells, as if the first server
        # completed it before crashing
        run_cells([CELLS[0]], jobs=1, cache=cache)
        journal_path = tmp_path / "jobs.jsonl"
        crashed = make_manager(
            tmp_path, cache=cache, workers=0,
            journal=JobJournal(journal_path),
        )
        job, _ = crashed.submit({"cells": [cell_to_doc(c) for c in CELLS[:2]]})
        job_id = job.id
        progress = crashed.job_status_doc(job)["progress"]
        assert progress["done"] == 1 and progress["cached"] == 1
        crashed.journal.close()  # "crash": executors never ran

        revived = make_manager(tmp_path, cache=cache,
                               journal=JobJournal(journal_path))
        assert restore(revived, journal_path) == 1
        revived.start()
        try:
            job2 = revived.jobs[job_id]
            assert job2.idempotency_key == job.idempotency_key
            wait_for(lambda: not job2.active, what="resumed job")
            assert job2.state == JOB_DONE
            # only the genuinely unfinished cell re-executed
            assert revived.cells_executed == 1
            doc = revived.job_result_doc(job2)
            assert [c["ok"] for c in doc["cells"]] == [True, True]
        finally:
            revived.stop()

    def test_restored_finished_job_serves_result_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "jobs.jsonl"
        first = make_manager(tmp_path, cache=cache,
                             journal=JobJournal(journal_path)).start()
        try:
            job, _ = first.submit({"cells": [cell_to_doc(CELLS[0])]})
            wait_for(lambda: not job.active, what="first run")
            expected = doc_to_text(first.job_result_doc(job))
        finally:
            first.stop()
        revived = make_manager(tmp_path, cache=cache)
        restore(revived, journal_path)
        job2 = revived.jobs[job.id]
        assert job2.state == JOB_DONE and job2.stream.closed
        assert doc_to_text(revived.job_result_doc(job2)) == expected

    def test_torn_journal_tail_is_ignored(self, tmp_path):
        journal_path = tmp_path / "jobs.jsonl"
        journal = JobJournal(journal_path)
        journal.append({"event": "state", "id": "j1", "state": "done"})
        journal.close()
        with journal_path.open("a") as fh:
            fh.write('{"event": "submit", "job": {"tr')  # torn mid-append
        assert JobJournal.events(journal_path) == [
            {"event": "state", "id": "j1", "state": "done"}
        ]


# -- the HTTP server ----------------------------------------------------------


class ServerThread:
    """A real Server on a loopback port, its loop in a daemon thread."""

    def __init__(self, manager, **kwargs):
        import asyncio

        from repro.server.app import Server

        self._asyncio = asyncio
        self.server = Server(manager, port=0, **kwargs)
        self._ready = threading.Event()
        self._loop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self._asyncio.run(self._main())

    async def _main(self):
        await self.server.start()
        self._loop = self._asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "server failed to start"
        return self

    def __exit__(self, *exc):
        self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(60)

    @property
    def port(self):
        return self.server.port

    def request(self, method, path, body=None, headers=None, timeout=60):
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            if isinstance(body, dict):
                body = json.dumps(body)
            conn.request(method, path, body=body, headers=headers or {})
            reply = conn.getresponse()
            return reply.status, dict(reply.getheaders()), reply.read()
        finally:
            conn.close()

    def get_json(self, path, **kwargs):
        status, _, data = self.request("GET", path, **kwargs)
        return status, json.loads(data)

    def stream_events(self, path, timeout=120):
        """Read one SSE response to EOF; returns [(kind, seq, data)]."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port,
                                          timeout=timeout)
        try:
            conn.request("GET", path)
            reply = conn.getresponse()
            assert reply.status == 200
            assert reply.getheader("Content-Type").startswith(
                "text/event-stream")
            body = reply.read().decode()
        finally:
            conn.close()
        events = []
        for frame in body.split("\n\n"):
            kind = seq = data = None
            for line in frame.splitlines():
                if line.startswith("event: "):
                    kind = line[len("event: "):]
                elif line.startswith("id: "):
                    seq = int(line[len("id: "):])
                elif line.startswith("data: "):
                    data = json.loads(line[len("data: "):])
            if kind is not None:
                events.append((kind, seq, data))
        return events


class TestServerHTTP:
    def test_post_sse_result_byte_identical_to_serial(
        self, tmp_path, smoke_serial
    ):
        manager = make_manager(tmp_path).start()
        try:
            with ServerThread(manager) as st:
                status, headers, data = st.request(
                    "POST", "/api/jobs", body=SMOKE_SPEC
                )
                assert status == 202
                job_id = json.loads(data)["id"]

                events = st.stream_events(f"/api/jobs/{job_id}/events")
                kinds = [kind for kind, _, _ in events]
                assert kinds[0] == "job" and kinds[-1] == "done"
                assert "progress" in kinds and "cell" in kinds
                finished = [d for k, _, d in events
                            if k == "cell" and d["phase"] == "finished"]
                assert len(finished) == 2 and all(d["ok"] for d in finished)
                # seqs are monotonically increasing and resumable
                seqs = [s for _, s, _ in events]
                assert seqs == sorted(seqs)

                status, _, data = st.request(
                    "GET", f"/api/jobs/{job_id}/result"
                )
                assert status == 200
                assert data.decode() == smoke_serial

                # resume from mid-stream: only later events arrive
                resumed = st.stream_events(
                    f"/api/jobs/{job_id}/events?since={seqs[1]}"
                )
                assert [s for _, s, _ in resumed] == seqs[2:]

                status, doc = st.get_json(f"/api/jobs/{job_id}")
                assert doc["state"] == "done"
                assert all(c["state"] == "done" for c in doc["cells"])
        finally:
            manager.stop()

    def test_warm_resubmission_served_instantly_over_http(
        self, tmp_path, smoke_serial, monkeypatch
    ):
        cache = ResultCache(tmp_path / "cache")
        cells = build_grid("smoke", n_jobs=N_JOBS, seed=SEED)
        run_cells(cells, jobs=1, cache=cache)
        import repro.experiments.sweep as sweep_mod

        monkeypatch.setattr(
            sweep_mod, "run_experiment",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("executed a warm cell")),
        )
        manager = make_manager(tmp_path, cache=cache)  # no executors
        with ServerThread(manager) as st:
            status, _, data = st.request("POST", "/api/jobs", body=SMOKE_SPEC)
            assert status == 202
            doc = json.loads(data)
            assert doc["state"] == "done"  # settled inside the POST
            assert doc["progress"]["cached"] == doc["progress"]["total"] == 2
            status, _, data = st.request(
                "GET", f"/api/jobs/{doc['id']}/result"
            )
            assert status == 200 and data.decode() == smoke_serial
        assert manager.cells_executed == 0

    def test_four_concurrent_clients_converge(self, tmp_path, smoke_serial):
        manager = make_manager(tmp_path).start()
        try:
            with ServerThread(manager) as st:
                results, errors = {}, []

                def client(n):
                    try:
                        status, _, data = st.request(
                            "POST", "/api/jobs", body=SMOKE_SPEC,
                            headers={"X-Client-Id": f"client-{n}"},
                        )
                        assert status in (200, 202), data
                        job_id = json.loads(data)["id"]
                        events = st.stream_events(
                            f"/api/jobs/{job_id}/events")
                        assert events[-1][0] == "done"
                        status, _, data = st.request(
                            "GET", f"/api/jobs/{job_id}/result",
                            headers={"X-Client-Id": f"client-{n}"},
                        )
                        assert status == 200
                        results[n] = data.decode()
                    except Exception as exc:  # surfaced below
                        errors.append((n, exc))

                threads = [threading.Thread(target=client, args=(n,))
                           for n in range(4)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(180)
                assert not errors, errors
                assert len(results) == 4
                assert set(results.values()) == {smoke_serial}
                # four identical submissions converged on one job and one
                # execution of each of the two smoke cells
                assert len(manager.jobs) == 1
                assert manager.queue.completions == 2
                status, doc = st.get_json("/api/cluster")
                assert doc["jobs"]["done"] == 1
                assert doc["queue"]["completions"] == 2
        finally:
            manager.stop()

    def test_rate_limit_returns_429_with_retry_after(self, tmp_path):
        manager = make_manager(tmp_path, workers=0)
        with ServerThread(manager, rate=0.001, burst=2) as st:
            hdr = {"X-Client-Id": "bursty"}
            assert st.request("GET", "/api/cluster", headers=hdr)[0] == 200
            assert st.request("GET", "/api/cluster", headers=hdr)[0] == 200
            status, headers, data = st.request(
                "GET", "/api/cluster", headers=hdr)
            assert status == 429
            assert float(headers["Retry-After"]) > 0
            assert "rate limit" in json.loads(data)["error"]
            # an independent client is unaffected
            assert st.request("GET", "/api/cluster",
                              headers={"X-Client-Id": "calm"})[0] == 200

    def test_backpressure_and_error_edges(self, tmp_path):
        manager = make_manager(
            tmp_path, workers=0, max_queued_jobs=1, max_cells_per_job=4
        )
        with ServerThread(manager, max_body_bytes=4096) as st:
            spec_a = {"cells": [cell_to_doc(CELLS[0])]}
            status, _, data = st.request("POST", "/api/jobs", body=spec_a)
            assert status == 202
            job_id = json.loads(data)["id"]

            # backlog full -> 503 with Retry-After
            status, headers, _ = st.request(
                "POST", "/api/jobs",
                body={"cells": [cell_to_doc(CELLS[1])]},
            )
            assert status == 503 and "Retry-After" in headers
            # ...but a duplicate of the active job dedupes, not rejects
            status, _, data = st.request("POST", "/api/jobs", body=spec_a)
            assert status == 200 and json.loads(data)["created"] is False

            # result of a still-running job -> 409
            assert st.request(
                "GET", f"/api/jobs/{job_id}/result")[0] == 409
            # malformed JSON -> 400
            status, _, data = st.request("POST", "/api/jobs", body="{nope")
            assert status == 400
            assert "not valid JSON" in json.loads(data)["error"]
            # non-finite floats -> 400
            assert st.request(
                "POST", "/api/jobs", body='{"grid": NaN}')[0] == 400
            # unknown spec field -> 400
            assert st.request(
                "POST", "/api/jobs", body={"grid": "smoke", "oops": 1}
            )[0] == 400
            # oversized body -> 413
            status, _, _ = st.request(
                "POST", "/api/jobs",
                body='{"pad": "' + "x" * 8192 + '"}',
            )
            assert status == 413
            # unknown job/route -> 404; wrong method -> 405
            assert st.request("GET", "/api/jobs/jXXXX")[0] == 404
            assert st.request("GET", "/api/nope")[0] == 404
            assert st.request("DELETE", "/api/cluster")[0] == 405
            assert st.request("PUT", "/api/jobs")[0] == 405

    def test_sse_streams_trace_records(self, tmp_path):
        manager = make_manager(tmp_path).start()
        try:
            with ServerThread(manager) as st:
                status, _, data = st.request(
                    "POST", "/api/jobs",
                    body={"cells": [cell_to_doc(CELLS[0])], "stream": True},
                )
                assert status == 202
                job_id = json.loads(data)["id"]
                events = st.stream_events(f"/api/jobs/{job_id}/events")
                traces = [d for k, _, d in events if k == "trace"]
                types = {t["type"] for t in traces}
                assert "run.config" in types and "run.summary" in types
                assert all("t" in t and "data" in t for t in traces)
                assert events[-1][0] == "done"
        finally:
            manager.stop()

    def test_cluster_doc_shares_queue_serializer(self, tmp_path):
        manager = make_manager(tmp_path, workers=0)
        manager.submit({"cells": [cell_to_doc(CELLS[0])]})
        with ServerThread(manager) as st:
            status, doc = st.get_json("/api/cluster")
            assert status == 200
            # the queue sub-document is WorkQueue.status_doc verbatim —
            # the same serializer `repro sweep --status --json` prints
            assert doc["queue"] == manager.queue.status_doc()
            assert doc["server"]["ratelimit"]["allowed"] >= 1
            assert doc["jobs"]["running"] == 1

    def test_http_restart_resumes_mid_grid(self, tmp_path, smoke_serial):
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "jobs.jsonl"
        # warm one smoke cell so the "crashed" server has half the work done
        cells = build_grid("smoke", n_jobs=N_JOBS, seed=SEED)
        run_cells(cells[:1], jobs=1, cache=ResultCache(cache_dir))

        crashed = make_manager(
            tmp_path, cache=ResultCache(cache_dir), workers=0,
            journal=JobJournal(journal_path),
        )
        with ServerThread(crashed) as st:
            status, _, data = st.request("POST", "/api/jobs", body=SMOKE_SPEC)
            assert status == 202
            doc = json.loads(data)
            job_id = doc["id"]
            assert doc["state"] == "running"
            assert doc["progress"]["done"] == 1  # the pre-warmed cell
        crashed.journal.close()

        revived = make_manager(tmp_path, cache=ResultCache(cache_dir),
                               journal=JobJournal(journal_path))
        assert restore(revived, journal_path) == 1
        revived.start()
        try:
            with ServerThread(revived) as st:
                events = st.stream_events(f"/api/jobs/{job_id}/events")
                assert events[-1][0] == "done"
                status, _, data = st.request(
                    "GET", f"/api/jobs/{job_id}/result")
                assert status == 200 and data.decode() == smoke_serial
            assert revived.cells_executed == 1  # only the unfinished cell
        finally:
            revived.stop()

    def test_drain_refuses_new_work_then_exits(self, tmp_path):
        manager = make_manager(tmp_path).start()
        st = ServerThread(manager)
        with st:
            assert st.request("GET", "/api/healthz")[0] == 200
        # after drain the listener is closed and the manager refuses work
        assert manager.draining
        with pytest.raises(JobRejected):
            manager.submit({"cells": [cell_to_doc(CELLS[0])]})
        with pytest.raises(OSError):
            http.client.HTTPConnection(
                "127.0.0.1", st.port, timeout=2
            ).request("GET", "/api/healthz")


# -- real-signal drain of the CLI server --------------------------------------


def test_repro_serve_sigterm_drains_cleanly(tmp_path):
    """`repro serve` + real SIGTERM: drains and exits 0."""
    env = dict(os.environ)
    root = Path(repro.__file__).resolve().parents[1]
    env["PYTHONPATH"] = str(root) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--cache-dir", str(tmp_path / "cache"),
         "--jobstore", str(tmp_path / "jobs.jsonl"),
         "--isolation", "thread", "--grace", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(tmp_path),
    )
    try:
        line = proc.stdout.readline()
        assert "serving on http://" in line, line
        port = int(line.rsplit(":", 1)[1])
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        conn.request("GET", "/api/healthz")
        assert conn.getresponse().status == 200
        conn.close()
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=60)
        assert proc.returncode == 0
        assert "server drained" in out
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
