"""Integration tests: the results/report generator."""

import json

import pytest

from repro.experiments.report import (
    collect_results,
    results_to_markdown,
    write_report,
)

N_JOBS = 40


@pytest.fixture(scope="module")
def results():
    return collect_results(n_jobs=N_JOBS)


class TestCollect:
    def test_all_sections_present(self, results):
        for key in (
            "scale",
            "table1_rtt_ms",
            "table2_bandwidth_mbps",
            "bandwidth_ratios",
            "fig1_hop_histogram",
            "fig2_popularity",
            "fig3_age",
            "fig4_windows",
            "fig5_day_windows",
            "fig6_access_cdf",
            "fig7_cct",
            "fig8a_p_sweep",
            "fig9a_budget_lru",
            "fig10_ec2",
            "fig11_uniformity",
            "ablation_disk_writes",
            "ablation_oversubscription",
        ):
            assert key in results, key

    def test_json_serializable(self, results):
        text = json.dumps(results)
        assert json.loads(text) == json.loads(text)

    def test_fig7_has_all_cells(self, results):
        combos = {(c["scheduler"], c["workload"]) for c in results["fig7_cct"]}
        assert len(combos) == 4

    def test_scale_recorded(self, results):
        assert results["scale"]["n_jobs"] == N_JOBS


class TestMarkdown:
    def test_renders_tables(self, results):
        md = results_to_markdown(results)
        assert "# DARE reproduction report" in md
        assert "| cluster |" in md
        assert "Figure 7 (CCT)" in md
        assert "Figure 11" in md
        assert "Oversubscription" in md

    def test_write_report(self, tmp_path, results, monkeypatch):
        import repro.experiments.report as report_mod

        monkeypatch.setattr(report_mod, "collect_results", lambda *a, **k: results)
        paths = write_report(tmp_path, n_jobs=N_JOBS)
        assert paths["json"].exists()
        assert paths["markdown"].exists()
        loaded = json.loads(paths["json"].read_text())
        assert loaded["scale"]["n_jobs"] == N_JOBS
