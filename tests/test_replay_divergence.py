"""Tests: aligning two traces and bisecting to the first disagreement."""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.observability.trace import RUN_CONFIG, TASK_SCHEDULED, TraceRecord
from repro.replay import diff_traces, first_divergence, read_trace
from repro.replay.divergence import META_TYPES
from repro.workloads.swim import synthesize_wl1

SPEC = CCT_SPEC._replace(n_nodes=10)


def run_traced(tmp_path, policy, seed=9, name=None):
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=6)
    dare = {
        "off": DareConfig.off(),
        "lru": DareConfig.greedy_lru(budget=0.15),
        "et": DareConfig.elephant_trap(p=0.5, threshold=1, budget=0.15),
    }[policy]
    path = str(tmp_path / f"{name or policy}.jsonl")
    config = ExperimentConfig(
        cluster_spec=SPEC, dare=dare, seed=seed, trace_path=path
    )
    run_experiment(config, workload)
    return path


def write_records(tmp_path, name, records):
    path = tmp_path / name
    path.write_text("".join(r.to_json() + "\n" for r in records))
    return str(path)


class TestFirstDivergence:
    def test_identical_traces_have_no_divergence(self, tmp_path):
        path = run_traced(tmp_path, "lru")
        records = list(read_trace(path))
        assert first_divergence(records, records) is None

    def test_seeded_corruption_is_pinpointed_exactly(self, tmp_path):
        path = run_traced(tmp_path, "lru")
        records = list(read_trace(path))
        # corrupt one mid-trace scheduling decision
        target = [
            i for i, r in enumerate(records)
            if r.type == TASK_SCHEDULED and r.data["kind"] == "map"
        ][3]
        corrupted = list(records)
        data = dict(corrupted[target].data)
        data["locality"] = "REMOTE" if data["locality"] != "REMOTE" else "NODE_LOCAL"
        corrupted[target] = TraceRecord(
            corrupted[target].type, corrupted[target].time, data
        )

        report = first_divergence(records, corrupted)
        assert report is not None
        # the aligned index skips meta records before the corruption point
        meta_before = sum(1 for r in records[:target] if r.type in META_TYPES)
        assert report.index == target - meta_before
        assert report.record_a == records[target]
        assert report.record_b == corrupted[target]
        assert report.context  # shared-prefix tail present
        assert all(r == records[target - len(report.context) + j]
                   for j, r in enumerate(report.context))

    def test_prefix_trace_diverges_at_its_end(self, tmp_path):
        path = run_traced(tmp_path, "lru")
        records = [r for r in read_trace(path) if r.type not in META_TYPES]
        report = first_divergence(records, records[:-5])
        assert report is not None
        assert report.index == len(records) - 5
        assert report.record_a == records[-5]
        assert report.record_b is None

    def test_state_delta_shows_what_each_side_did(self, tmp_path):
        path = run_traced(tmp_path, "lru")
        records = list(read_trace(path))
        target = next(
            i for i, r in enumerate(records)
            if r.type == TASK_SCHEDULED and r.data["kind"] == "map"
        )
        mutated = list(records)
        data = dict(mutated[target].data)
        data["locality"] = "REMOTE" if data["locality"] != "REMOTE" else "NODE_LOCAL"
        mutated[target] = TraceRecord(
            mutated[target].type, mutated[target].time, data
        )
        report = first_divergence(records, mutated)
        assert report is not None
        job = records[target].data["job"]
        assert f"job{job}.locality_counts" in report.state_delta


class TestDiffTraces:
    def test_same_seed_different_policy_diff(self, tmp_path):
        path_lru = run_traced(tmp_path, "lru", seed=42)
        path_et = run_traced(tmp_path, "et", seed=42)
        diff = diff_traces(path_lru, path_et)
        assert not diff.identical
        report = diff.divergence
        assert report.index > 0
        assert report.config_delta.get("policy") == ("greedy-lru", "elephant-trap")
        assert report.context
        text = diff.format()
        assert "diverge at event" in text
        assert "context tail" in text

    def test_same_run_twice_is_identical(self, tmp_path):
        path_a = run_traced(tmp_path, "et", seed=7, name="a")
        path_b = run_traced(tmp_path, "et", seed=7, name="b")
        diff = diff_traces(path_a, path_b)
        assert diff.identical
        assert "identical" in diff.format()

    def test_config_only_difference_is_not_a_divergence(self, tmp_path):
        path = run_traced(tmp_path, "lru")
        records = list(read_trace(path))
        assert records[0].type == RUN_CONFIG
        data = dict(records[0].data)
        data["seed"] = 999  # lie about the config; events untouched
        doctored = [TraceRecord(RUN_CONFIG, 0.0, data)] + records[1:]
        path_b = write_records(tmp_path, "doctored.jsonl", doctored)
        diff = diff_traces(path, path_b)
        assert diff.identical


class TestCliDiff:
    def test_verify_and_diff_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path_lru = run_traced(tmp_path, "lru", seed=42)
        path_et = run_traced(tmp_path, "et", seed=42)
        assert main(["replay", "verify", path_lru]) == 0
        out = capsys.readouterr().out
        assert "VERIFIED" in out
        assert main(["replay", "diff", path_lru, path_et]) == 1
        out = capsys.readouterr().out
        assert "diverge at event" in out
        assert main(["replay", "diff", path_lru, path_lru]) == 0

    def test_summary_reports_crashed_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = run_traced(tmp_path, "lru")
        records = list(read_trace(path))[:-1]  # drop the footer
        partial = write_records(tmp_path, "partial.jsonl", records)
        assert main(["replay", "summary", partial]) == 0
        out = capsys.readouterr().out
        assert "MISSING" in out
        # and verify refuses to bless a footer-less trace
        assert main(["replay", "verify", partial]) == 1
