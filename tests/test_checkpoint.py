"""Checkpoint determinism: forked runs are byte-identical to cold runs.

The snapshot layer's contract is that pausing a simulation, freezing it,
and resuming a restored copy changes *nothing*: the resumed run fires the
same events in the same order with the same RNG draws, so its JSONL trace
is byte-for-byte the trace of an uninterrupted run from the same seed.
These tests enforce that across every policy x scheduler cell, under
failure injection, under speculative execution, and with the invariant
checker armed — plus the disk round trip and fork independence.
"""

import itertools

import numpy as np
import pytest

from repro.checkpoint import (
    DELTA_FORMAT,
    Snapshot,
    SnapshotSession,
    StaticPool,
    parse_patch,
    snapshot,
)
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, Simulation, make_tracer
from repro.workloads.swim import synthesize_wl1

POLICIES = {
    "off": DareConfig.off(),
    "lru": DareConfig.greedy_lru(),
    "et": DareConfig.elephant_trap(),
}
SCHEDULERS = ("fifo", "fair", "fair-skip")
SEED = 20110926
N_JOBS = 12


def _config(policy, scheduler, trace_path, **overrides) -> ExperimentConfig:
    return ExperimentConfig(
        scheduler=scheduler,
        dare=POLICIES[policy],
        seed=SEED,
        trace_path=str(trace_path),
        **overrides,
    )


def _workload():
    return synthesize_wl1(np.random.default_rng(SEED), n_jobs=N_JOBS)


def _build(config) -> Simulation:
    return Simulation(config, _workload(), tracer=make_tracer(config))


def _cold_run(config):
    sim = _build(config)
    sim.run()
    result = sim.finalize()
    sim.close()
    return result


def _snapshot_at(config, t):
    sim = _build(config)
    sim.run(until=t)
    snap = snapshot(sim)
    sim.close()
    return snap


def _finish_fork(snap, trace_path, patch=""):
    sim = snap.fork(trace_path=str(trace_path))
    if patch:
        parse_patch(patch).apply(sim)
    sim.run()
    result = sim.finalize()
    sim.close()
    return result


# ---------------------------------------------------------------------------
# the full cell matrix: fork at mid-makespan, run to the end, compare bytes
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "policy,scheduler", list(itertools.product(POLICIES, SCHEDULERS))
)
def test_fork_trace_is_byte_identical_to_cold_run(policy, scheduler, tmp_path):
    cold = _cold_run(_config(policy, scheduler, tmp_path / "cold.jsonl"))
    snap = _snapshot_at(
        _config(policy, scheduler, tmp_path / "warm.jsonl"), cold.makespan_s / 2
    )
    result = _finish_fork(snap, tmp_path / "fork.jsonl")
    assert (tmp_path / "fork.jsonl").read_bytes() == \
        (tmp_path / "cold.jsonl").read_bytes(), \
        f"{policy}/{scheduler}: forked run diverged from the cold run"
    assert result.events_processed == cold.events_processed
    assert result.gmtt_s == cold.gmtt_s


def test_fork_under_failure_injection(tmp_path):
    """Snapshot between two planned failures: one fired, one still queued."""
    failures = ((20.0, 2), (45.0, 6))
    kw = dict(failures=failures, check_invariants=True)
    cold = _cold_run(_config("lru", "fair", tmp_path / "cold.jsonl", **kw))
    assert cold.blocks_lost_replicas > 0
    snap = _snapshot_at(_config("lru", "fair", tmp_path / "warm.jsonl", **kw), 30.0)
    result = _finish_fork(snap, tmp_path / "fork.jsonl")
    assert (tmp_path / "fork.jsonl").read_bytes() == \
        (tmp_path / "cold.jsonl").read_bytes()
    assert result.blocks_lost_replicas == cold.blocks_lost_replicas
    assert result.repairs_completed == cold.repairs_completed


def test_fork_under_speculation(tmp_path):
    kw = dict(speculative=True)
    cold = _cold_run(_config("et", "fair", tmp_path / "cold.jsonl", **kw))
    snap = _snapshot_at(
        _config("et", "fair", tmp_path / "warm.jsonl", **kw), cold.makespan_s / 2
    )
    result = _finish_fork(snap, tmp_path / "fork.jsonl")
    assert (tmp_path / "fork.jsonl").read_bytes() == \
        (tmp_path / "cold.jsonl").read_bytes()
    assert result.speculative_launched == cold.speculative_launched


# ---------------------------------------------------------------------------
# fork independence and the disk round trip
# ---------------------------------------------------------------------------


def test_forks_are_independent(tmp_path):
    """Running one fork to completion leaves a sibling fork untouched."""
    cold = _cold_run(_config("et", "fifo", tmp_path / "cold.jsonl"))
    snap = _snapshot_at(
        _config("et", "fifo", tmp_path / "warm.jsonl"), cold.makespan_s / 2
    )
    _finish_fork(snap, tmp_path / "first.jsonl")
    _finish_fork(snap, tmp_path / "second.jsonl")
    reference = (tmp_path / "cold.jsonl").read_bytes()
    assert (tmp_path / "first.jsonl").read_bytes() == reference
    assert (tmp_path / "second.jsonl").read_bytes() == reference


def test_snapshot_survives_disk_round_trip(tmp_path):
    cold = _cold_run(_config("lru", "fifo", tmp_path / "cold.jsonl"))
    snap = _snapshot_at(
        _config("lru", "fifo", tmp_path / "warm.jsonl"), cold.makespan_s / 2
    )
    snap.save(str(tmp_path / "snap.ckpt"))
    loaded = Snapshot.load(str(tmp_path / "snap.ckpt"))
    assert loaded.time == snap.time
    assert loaded.events_processed == snap.events_processed
    _finish_fork(loaded, tmp_path / "fork.jsonl")
    assert (tmp_path / "fork.jsonl").read_bytes() == \
        (tmp_path / "cold.jsonl").read_bytes()


def test_load_rejects_unknown_format(tmp_path):
    import pickle

    path = tmp_path / "bad.ckpt"
    path.write_bytes(pickle.dumps({"format": 999}))
    with pytest.raises(ValueError, match="unsupported snapshot format"):
        Snapshot.load(str(path))


def test_restore_with_trace_requires_a_traced_source(tmp_path):
    config = ExperimentConfig(dare=POLICIES["off"], seed=SEED)
    sim = _build(config)
    sim.run(until=10.0)
    snap = snapshot(sim)
    assert snap.trace_prefix is None
    with pytest.raises(ValueError, match="no trace prefix"):
        snap.restore(trace_path=str(tmp_path / "out.jsonl"))
    # without a trace path the restore works and finishes the run
    fork = snap.fork()
    fork.run()
    assert fork.finished


# ---------------------------------------------------------------------------
# what-if patches: deterministic, and each one actually changes the world
# ---------------------------------------------------------------------------


def test_patched_forks_are_deterministic(tmp_path):
    """The same patch on two forks of one snapshot: identical bytes."""
    snap = _snapshot_at(_config("lru", "fair", tmp_path / "warm.jsonl"), 30.0)
    a = _finish_fork(snap, tmp_path / "a.jsonl", patch="kill:4")
    b = _finish_fork(snap, tmp_path / "b.jsonl", patch="kill:4")
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()
    assert a.blocks_lost_replicas == b.blocks_lost_replicas > 0


def test_kill_patch_diverges_from_unpatched_run(tmp_path):
    cold = _cold_run(_config("lru", "fair", tmp_path / "cold.jsonl"))
    snap = _snapshot_at(
        _config("lru", "fair", tmp_path / "warm.jsonl"), cold.makespan_s / 2
    )
    patched = _finish_fork(snap, tmp_path / "patched.jsonl", patch="kill:3")
    assert (tmp_path / "patched.jsonl").read_bytes() != \
        (tmp_path / "cold.jsonl").read_bytes()
    assert patched.blocks_lost_replicas > 0 and cold.blocks_lost_replicas == 0


def test_policy_flip_patch_swaps_the_service(tmp_path):
    snap = _snapshot_at(
        _config("lru", "fair", tmp_path / "warm.jsonl", check_invariants=True), 30.0
    )
    sim = snap.fork(trace_path=str(tmp_path / "flip.jsonl"))
    live_before = {
        node_id: [
            bid for bid in dn.dynamic_blocks if bid not in dn.pending_deletion
        ]
        for node_id, dn in sim.namenode.datanodes.items()
    }
    parse_patch("policy:et").apply(sim)
    assert sim.dare is sim.jobtracker.dare
    assert sim.checker is not None and sim.checker.dare is sim.dare
    assert sim.config.dare.policy.value == "greedy-lru"  # config is history
    for node_id, live in live_before.items():
        tracked = sorted(sim.dare.states[node_id].policy.tracked_blocks()) \
            if hasattr(sim.dare.states[node_id].policy, "tracked_blocks") \
            else sorted(
                b.block_id for b in sim.dare.states[node_id].policy.ring_blocks()
            )
        assert tracked == sorted(live), \
            f"node {node_id}: live replicas not carried into the new policy"
    sim.run()
    assert sim.finished  # and the invariant checker stayed quiet throughout
    sim.finalize()
    sim.close()


def test_pin_patch_makes_the_block_local(tmp_path):
    snap = _snapshot_at(_config("off", "fifo", tmp_path / "warm.jsonl"), 20.0)
    sim = snap.fork()
    block_id = next(iter(sim.namenode.blocks))
    target = next(
        n for n in sorted(sim.namenode.datanodes)
        if not sim.namenode.datanode(n).has_block(block_id)
    )
    parse_patch(f"pin:{block_id}:{target}").apply(sim)
    assert sim.namenode.is_local(block_id, target)
    # pinning is idempotent
    parse_patch(f"pin:{block_id}:{target}").apply(sim)
    sim.run()
    assert sim.finished


def test_parse_patch_rejects_malformed_specs():
    for bad in ("", "kill", "kill:x", "policy:both", "pin:1", "teleport:3"):
        with pytest.raises(ValueError):
            parse_patch(bad)


# ---------------------------------------------------------------------------
# the sweep consumer: shared prefixes produce the cold path's exact results
# ---------------------------------------------------------------------------


def test_fork_cells_shared_prefix_matches_cold_path(tmp_path):
    from repro.experiments.serialize import result_to_json
    from repro.experiments.sweep import (
        ForkCell,
        WorkloadSpec,
        results_of,
        run_fork_cells,
    )

    workload = WorkloadSpec("wl1", N_JOBS, SEED)
    cells = [
        ForkCell(
            ExperimentConfig(scheduler="fair", dare=POLICIES["lru"], seed=SEED),
            workload,
            fork_time=30.0,
            patch=patch,
            tag=tag,
        )
        for tag, patch in (
            ("control", ""),
            ("kill2", "kill:2"),
            ("kill5", "kill:5"),
            ("flip-et", "policy:et"),
        )
    ]
    shared = results_of(run_fork_cells(cells, no_cache=True, share_prefix=True))
    cold = results_of(run_fork_cells(cells, no_cache=True, share_prefix=False))
    assert [result_to_json(r) for r in shared] == [result_to_json(r) for r in cold]
    # the kill patches actually produced futures distinct from the control
    control, kill2, kill5 = (result_to_json(shared[i]) for i in (0, 1, 2))
    assert kill2 != control and kill5 != control and kill2 != kill5

    # cached rerun returns the same bytes without recomputing
    from repro.experiments.sweep import ResultCache

    cache = ResultCache(tmp_path / "cache")
    first = results_of(run_fork_cells(cells, cache=cache))
    assert cache.misses == len(cells)
    again = results_of(run_fork_cells(cells, cache=cache))
    assert cache.hits == len(cells)
    assert [result_to_json(r) for r in again] == [result_to_json(r) for r in first]


# ---------------------------------------------------------------------------
# incremental (delta) snapshots: the rollout engine's per-epoch fast path
# ---------------------------------------------------------------------------


def _session_sim(**overrides):
    config = ExperimentConfig(dare=DareConfig.greedy_lru(), seed=SEED, **overrides)
    sim = Simulation(config, _workload(), tracer=make_tracer(config))
    sim.run(until=20.0)
    return sim


def test_delta_snapshot_round_trips_like_a_full_snapshot():
    """Delta-restored and full-restored forks finish byte-identically."""
    from repro.experiments.serialize import result_to_json

    sim = _session_sim()
    session = SnapshotSession(sim, check=True)  # self-check every epoch
    for until in (30.0, 40.0):
        delta = session.snapshot()
        full = snapshot(sim)
        assert delta.format == DELTA_FORMAT
        assert delta.time == full.time == sim.now
        # the delta payload really is a delta, not a second full pickle
        assert len(delta.payload) < len(full.payload)
        a, b = delta.restore(), full.restore()
        a.run()
        b.run()
        assert result_to_json(a.finalize()) == result_to_json(b.finalize())
        sim.run(until=until)
    sim.close()


def test_delta_forks_share_immutable_statics_without_crosstalk():
    """Pool-restored forks share static objects; the host is untouched."""
    from repro.experiments.serialize import result_to_json

    sim = _session_sim()
    session = SnapshotSession(sim)
    snap = session.snapshot()
    # restoring against the session's pool shares the *live* objects
    fork = snap.restore(pool=session.pool)
    assert fork.config is sim.config
    assert fork.workload is sim.workload
    assert fork.cluster.topology is sim.cluster.topology
    fork.run()
    # a second pool shares across sibling forks but not with the host
    pool = StaticPool()
    f1, f2 = snap.restore(pool=pool), snap.restore(pool=pool)
    assert f1.config is f2.config is not sim.config
    f1.run()
    # the host, its forks, and a cold run all agree after the fork ran
    sim.run()
    f2.run()
    host_doc = result_to_json(sim.finalize())
    assert result_to_json(f2.finalize()) == host_doc
    cold = ExperimentConfig(dare=DareConfig.greedy_lru(), seed=SEED)
    cold_sim = Simulation(cold, _workload(), tracer=make_tracer(cold))
    cold_sim.run()
    assert result_to_json(cold_sim.finalize()) == host_doc


def test_delta_session_rebases_when_the_file_tree_changes():
    from repro.hdfs.block import DEFAULT_BLOCK_SIZE

    sim = _session_sim()
    session = SnapshotSession(sim)
    a = session.snapshot()
    b = session.snapshot()
    # steady state: the static payload is pickled once and reused
    assert a.static_payload is b.static_payload
    sim.namenode.create_file("late-arrival", 2 * DEFAULT_BLOCK_SIZE)
    c = session.snapshot()
    assert c.static_payload != a.static_payload
    fork = c.restore()
    assert any(f.name == "late-arrival" for f in fork.namenode.files.values())
    fork.run()  # the rebased snapshot is still a working checkpoint
    sim.close()


def test_static_pool_caches_by_payload_bytes():
    sim = _session_sim()
    session = SnapshotSession(sim)
    snap = session.snapshot()
    pool = StaticPool()
    first = pool.resolve(snap.static_payload)
    assert pool.resolve(snap.static_payload) is first  # cache hit
    assert pool.resolve(snap.static_payload)[0] is first[0]
    sim.namenode.create_file("other", 1)
    rebased = session.snapshot()
    assert pool.resolve(rebased.static_payload) is not first  # miss on rebase
    sim.close()
