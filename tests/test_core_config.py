"""Unit tests: DARE configuration."""

import pytest

from repro.core.config import DareConfig, Policy


class TestValidation:
    def test_defaults_valid(self):
        DareConfig().validate()

    def test_p_out_of_range(self):
        with pytest.raises(ValueError):
            DareConfig(policy=Policy.ELEPHANT_TRAP, p=1.5).validate()

    def test_negative_threshold(self):
        with pytest.raises(ValueError):
            DareConfig(policy=Policy.ELEPHANT_TRAP, threshold=-1).validate()

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            DareConfig(policy=Policy.GREEDY_LRU, budget=-0.1).validate()

    def test_non_policy_rejected(self):
        with pytest.raises(ValueError):
            DareConfig(policy="greedy").validate()


class TestConstructors:
    def test_off_disabled(self):
        cfg = DareConfig.off()
        assert not cfg.enabled

    def test_greedy_lru(self):
        cfg = DareConfig.greedy_lru(budget=0.3)
        assert cfg.policy is Policy.GREEDY_LRU
        assert cfg.budget == 0.3
        assert cfg.enabled

    def test_elephant_trap_defaults_match_paper(self):
        # Fig. 7 caption: p = 0.3, threshold = 1, budget = 0.2
        cfg = DareConfig.elephant_trap()
        assert cfg.p == 0.3
        assert cfg.threshold == 1
        assert cfg.budget == 0.2

    def test_config_is_hashable_and_immutable(self):
        cfg = DareConfig.elephant_trap()
        assert hash(cfg)
        with pytest.raises(AttributeError):
            cfg.p = 0.5
