"""Unit tests: workload statistics."""

import numpy as np
import pytest

from repro.mapreduce.job import JobSpec
from repro.workloads.catalog import FileCatalog, FileSpec
from repro.workloads.stats import _gini, compute_stats
from repro.workloads.swim import Workload, synthesize_wl1, synthesize_wl2


@pytest.fixture(scope="module")
def wl1():
    return synthesize_wl1(np.random.default_rng(7), n_jobs=200)


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini(np.ones(50)) == pytest.approx(0.0, abs=1e-9)

    def test_concentrated_is_near_one(self):
        v = np.zeros(100)
        v[0] = 100.0
        assert _gini(v) > 0.9

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            _gini(np.zeros(5))


class TestComputeStats:
    def test_counts_consistent(self, wl1):
        stats = compute_stats(wl1)
        assert stats.n_jobs == wl1.n_jobs
        assert stats.total_map_tasks == wl1.total_map_tasks()
        assert stats.dataset_blocks == wl1.catalog.total_blocks

    def test_wl1_shape_properties(self, wl1):
        stats = compute_stats(wl1)
        # calibrated shape: tiny jobs, bursty arrivals, heavy skew
        assert stats.small_job_fraction > 0.9
        assert stats.burstiness > 2.0  # much burstier than Poisson
        assert stats.top10_access_share > 0.7
        assert 0.5 < stats.gini < 1.0

    def test_wl2_larger_jobs_than_wl1(self, wl1):
        wl2 = synthesize_wl2(np.random.default_rng(7), n_jobs=200)
        s1, s2 = compute_stats(wl1), compute_stats(wl2)
        assert s2.maps_max > s1.maps_p90
        assert s2.input_gb > s1.input_gb

    def test_volumes_positive_and_ordered(self, wl1):
        stats = compute_stats(wl1)
        assert stats.input_gb > stats.shuffle_gb > 0
        assert stats.output_gb > 0

    def test_single_job_degenerate_gaps(self):
        catalog = FileCatalog([FileSpec("a", 2, "small")])
        wl = Workload("one", catalog, [JobSpec(0, 5.0, "a")])
        stats = compute_stats(wl)
        assert stats.interarrival_mean_s == 0.0
        assert stats.span_s == 0.0

    def test_report_mentions_key_numbers(self, wl1):
        text = compute_stats(wl1).report()
        assert "maps/job" in text
        assert "popularity" in text
        assert "volumes" in text
