"""The policy plugin API: registry, learned scorer, and rollout engine.

Pins the contracts the plugin layer promises:

* the registry resolves every baseline byte-identically to the old
  inline constructors (same RNG stream names, same argument order);
* unknown names and duplicate registrations fail loudly;
* plugin state (the learned policy's shared ``AccessStats``) survives
  checkpoint snapshot/fork round-trips;
* the rollout engine is seed-deterministic, degenerates to its host run
  when it never acts, and never scores below its greedy host on the
  pinned benchmark seeds (the CI ``policy-bench`` gate).
"""

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro.checkpoint import snapshot
from repro.core.config import DareConfig, Policy
from repro.core.elephant_trap import ElephantTrapPolicy
from repro.core.greedy import GreedyLFUPolicy, GreedyLRUPolicy
from repro.experiments.runner import (
    ExperimentConfig,
    Simulation,
    make_tracer,
    run_experiment,
)
from repro.experiments.serialize import (
    config_from_dict,
    config_to_dict,
    result_to_json,
)
from repro.policies import (
    PolicyContext,
    ReplicationPolicy,
    UnknownPolicyError,
    create_policy,
    create_service,
    policy_names,
    register_policy,
    service_names,
)
from repro.policies.learned import (
    DEFAULT_WEIGHTS,
    FEATURE_NAMES,
    N_FEATURES,
    AccessStats,
    LearnedPolicy,
    feature_vector,
    load_model,
    save_model,
)
from repro.policies.rollout import RolloutConfig, run_rollout_experiment
from repro.policies.train import (
    dataset_from_trace,
    fit_logistic,
    synthesize_corpus,
    trace_paths,
)
from repro.simulation.rng import RandomStreams
from repro.workloads.swim import synthesize_wl1

SEED = 20110926


def _workload(n_jobs=12, seed=SEED):
    return synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)


def _ctx(config, node_id=0, namenode=None, shared=None, seed=1234):
    return PolicyContext(
        node_id=node_id,
        config=config,
        streams=RandomStreams(seed),
        namenode=namenode,
        shared=shared if shared is not None else {},
    )


class TestRegistry:
    def test_builtin_names_registered(self):
        assert set(policy_names()) >= {
            "greedy-lru", "greedy-lfu", "elephant-trap", "learned",
        }
        assert set(service_names()) >= {"scarlett", "cdrm"}

    def test_policy_enum_values_resolve(self):
        for policy in Policy:
            if policy is Policy.OFF:
                continue
            config = DareConfig(
                policy=policy,
                model=DEFAULT_WEIGHTS if policy is Policy.LEARNED else (),
            )
            built = create_policy(policy.value, _ctx(config))
            assert isinstance(built, ReplicationPolicy)

    def test_unknown_policy_lists_registered(self):
        with pytest.raises(UnknownPolicyError, match="greedy-lru"):
            create_policy("no-such-policy", _ctx(DareConfig.greedy_lru()))

    def test_unknown_service_rejected(self):
        with pytest.raises(UnknownPolicyError, match="scarlett"):
            create_service("no-such-service", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy("greedy-lru", lambda ctx: None)

    def test_decorator_registration_roundtrip(self):
        name = "test-only-policy"

        @register_policy(name)
        def _build(ctx):
            return GreedyLRUPolicy()

        try:
            assert name in policy_names()
            assert isinstance(create_policy(name, _ctx(DareConfig.greedy_lru())),
                              GreedyLRUPolicy)
        finally:
            from repro.policies import registry

            del registry._POLICIES[name]

    def test_baselines_satisfy_protocol(self):
        p = 0.3
        rng = RandomStreams(1).python("x")
        for policy in (GreedyLRUPolicy(), GreedyLFUPolicy(),
                       ElephantTrapPolicy(p, 1, rng)):
            assert isinstance(policy, ReplicationPolicy)


class TestBaselineParity:
    """The registry path is byte-identical to the legacy constructors."""

    def test_elephant_trap_uses_historical_stream(self):
        """Registry ET must draw from the pre-registry 'dare.coin.N'
        stream so fixed-seed runs reproduce the old traces exactly."""
        config = DareConfig.elephant_trap(p=0.5)
        built = create_policy("elephant-trap", _ctx(config, node_id=3, seed=99))
        reference = ElephantTrapPolicy(
            0.5, config.threshold, RandomStreams(99).python("dare.coin.3")
        )
        draws = [built._rng.random() for _ in range(64)]
        assert draws == [reference._rng.random() for _ in range(64)]

    @pytest.mark.parametrize("policy", ["lru", "et"])
    def test_run_matches_pinned_golden(self, policy, pinned_results):
        """End-to-end fixed-seed runs through the registry still produce
        the exact pre-registry results."""
        dare = (DareConfig.greedy_lru() if policy == "lru"
                else DareConfig.elephant_trap())
        result = run_experiment(
            ExperimentConfig(dare=dare, seed=SEED), _workload()
        )
        golden = pinned_results[policy]
        assert (result.job_locality, result.makespan_s) == golden

    @pytest.fixture(scope="class")
    def pinned_results(self):
        """Golden (job_locality, makespan_s) computed once per class from
        the direct constructors, bypassing the registry."""
        from repro.core import manager as M

        def direct_make_policy(config, node_id, streams, namenode=None, shared=None):
            if config.policy is Policy.GREEDY_LRU:
                return GreedyLRUPolicy()
            return ElephantTrapPolicy(
                config.p, config.threshold,
                streams.python(f"dare.coin.{node_id}"),
            )

        original = M._make_policy
        M._make_policy = direct_make_policy
        try:
            out = {}
            for tag, dare in (("lru", DareConfig.greedy_lru()),
                              ("et", DareConfig.elephant_trap())):
                r = run_experiment(
                    ExperimentConfig(dare=dare, seed=SEED), _workload()
                )
                out[tag] = (r.job_locality, r.makespan_s)
            return out
        finally:
            M._make_policy = original


class TestLearnedPolicy:
    def test_weight_arity_validated(self):
        with pytest.raises(ValueError, match="weights"):
            LearnedPolicy((1.0, 2.0), 0, None, AccessStats())
        with pytest.raises(ValueError, match="model weights"):
            DareConfig.learned((0.0,) * (N_FEATURES + 2))

    def test_recency_reads_previous_access(self):
        """The recency feature must not see the access being decided:
        observe() then feature_vector() reflects the *previous* sighting."""
        stats = AccessStats()
        stats.observe(0, 7, False, 100.0)
        first = feature_vector(stats, 0, 7, 3, 0.0, 100.0)
        assert first[FEATURE_NAMES.index("recency")] == 0.0
        stats.observe(0, 7, False, 160.0)
        second = feature_vector(stats, 0, 7, 3, 0.0, 160.0)
        assert 0.0 < second[FEATURE_NAMES.index("recency")] < 1.0

    def test_model_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "model.json")
        save_model(DEFAULT_WEIGHTS, path, accuracy=0.74)
        assert load_model(path) == DEFAULT_WEIGHTS

    def test_model_file_feature_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "model.json")
        save_model(DEFAULT_WEIGHTS, path)
        doc = json.loads(open(path).read())
        doc["features"][0] = "renamed"
        open(path, "w").write(json.dumps(doc))
        with pytest.raises(ValueError, match="features"):
            load_model(path)

    def test_learned_run_deterministic(self):
        config = ExperimentConfig(
            dare=DareConfig.learned(DEFAULT_WEIGHTS), seed=SEED
        )
        a = run_experiment(config, _workload())
        b = run_experiment(config, _workload())
        assert result_to_json(a) == result_to_json(b)

    def test_config_model_roundtrip_and_omitted_at_default(self):
        learned = ExperimentConfig(dare=DareConfig.learned(DEFAULT_WEIGHTS))
        doc = config_to_dict(learned)
        assert doc["dare"]["model"] == list(DEFAULT_WEIGHTS)
        assert config_from_dict(doc) == learned
        # baselines serialize exactly as before the field existed
        baseline = config_to_dict(ExperimentConfig(dare=DareConfig.greedy_lru()))
        assert "model" not in baseline["dare"]
        assert "rollout" not in baseline


class TestPluginStateCheckpointing:
    def test_learned_state_survives_fork(self):
        """Snapshot mid-run, fork, finish both: byte-identical results,
        and the fork's node policies still share one AccessStats."""
        config = ExperimentConfig(
            dare=DareConfig.learned(DEFAULT_WEIGHTS), seed=SEED
        )
        cold = Simulation(config, _workload(), tracer=make_tracer(config))
        cold.run()
        cold_result = cold.finalize()

        warm = Simulation(config, _workload(), tracer=make_tracer(config))
        warm.run(until=30.0)
        fork = snapshot(warm).restore()

        shared = fork.dare.shared["access_stats"]
        assert isinstance(shared, AccessStats)
        for state in fork.dare.states.values():
            assert state.policy.stats is shared
            assert state.observe is not None  # re-resolved after unpickling

        fork.run()
        assert result_to_json(fork.finalize()) == result_to_json(cold_result)


class TestTraining:
    @pytest.fixture(scope="class")
    def corpus(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("corpus")
        synthesize_corpus(str(d), n_jobs=12, seeds=(SEED,))
        return str(d)

    def test_corpus_paths_sorted(self, corpus):
        paths = trace_paths(corpus)
        assert paths == sorted(paths) and len(paths) == 2

    def test_dataset_counts_remote_decisions(self, corpus):
        """One example per remote map read in the trace — the exact set
        of decision points on_map_task consults the policy for."""
        path = trace_paths(corpus)[0]
        remote = sum(
            1
            for line in open(path)
            for rec in [json.loads(line)]
            if rec.get("type") == "task.scheduled"
            and rec.get("kind") == "map"
            and not rec.get("data_local")
        )
        assert len(dataset_from_trace(path)) == remote > 0

    def test_fit_deterministic(self, corpus):
        examples = dataset_from_trace(trace_paths(corpus)[0])
        a = fit_logistic(examples, epochs=50)
        b = fit_logistic(examples, epochs=50)
        assert a.weights == b.weights
        assert len(a.weights) == N_FEATURES + 1

    def test_fit_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            fit_logistic([])


class TestRollout:
    ROLLOUT = RolloutConfig(epoch_s=10.0, branches=4, max_epochs=64)

    def _cell(self, **overrides):
        overrides.setdefault("rollout", self.ROLLOUT)
        return ExperimentConfig(
            dare=DareConfig.greedy_lru(), seed=SEED, **overrides,
        )

    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="epoch_s"):
            RolloutConfig(epoch_s=0.0).validate()
        with pytest.raises(ValueError, match="branches"):
            RolloutConfig(branches=0).validate()
        with pytest.raises(ValueError, match="horizon_s"):
            RolloutConfig(horizon_s=-1.0).validate()
        with pytest.raises(ValueError, match="jobs"):
            RolloutConfig(jobs=0).validate()
        with pytest.raises(ValueError, match="prune"):
            RolloutConfig(prune=-1).validate()

    def test_rollout_deterministic_across_runs(self, tmp_path):
        """Same trace -> same actions: the acceptance criterion."""
        from repro.experiments.serialize import canonical_json, result_to_dict

        t1, t2 = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        wl = lambda: _workload(n_jobs=32, seed=7)  # noqa: E731
        a = run_experiment(self._cell(trace_path=t1), wl())
        b = run_experiment(self._cell(trace_path=t2), wl())
        da, db = result_to_dict(a), result_to_dict(b)
        da["config"]["trace_path"] = db["config"]["trace_path"] = ""
        assert canonical_json(da) == canonical_json(db)
        assert open(t1, "rb").read() == open(t2, "rb").read()
        # rollout.decision records pass the published replay schema
        from repro.replay.reader import read_trace

        records = list(read_trace(t1, validate=True))
        assert any(r.type == "rollout.decision" for r in records)

    def test_actionless_rollout_equals_host_run(self, tmp_path):
        """With an epoch beyond the makespan the engine never forks; the
        run (result *and* trace bytes) is exactly the plain host run."""
        host = ExperimentConfig(
            dare=DareConfig.greedy_lru(), seed=SEED,
            trace_path=str(tmp_path / "host.jsonl"),
        )
        degenerate = dataclasses.replace(
            host,
            rollout=RolloutConfig(epoch_s=1e6),
            trace_path=str(tmp_path / "roll.jsonl"),
        )
        a = run_experiment(host, _workload())
        b = run_experiment(degenerate, _workload())
        assert (a.job_locality, a.makespan_s) == (b.job_locality, b.makespan_s)
        assert (open(host.trace_path, "rb").read()
                == open(degenerate.trace_path, "rb").read())

    def test_rollout_config_roundtrip(self):
        cell = self._cell()
        assert config_from_dict(config_to_dict(cell)) == cell
        assert "+rollout" in cell.label()

    def test_rollout_serialization_hides_jobs_and_keeps_prune(self):
        """`jobs` never identifies a cell (parallel == serial, byte for
        byte); `prune` changes decisions, so it does — but is omitted at
        its default so pre-pruning documents still round-trip."""
        plain = config_to_dict(self._cell())["rollout"]
        assert "jobs" not in plain and "prune" not in plain
        tuned = self._cell(
            rollout=self.ROLLOUT._replace(jobs=4, prune=2)
        )
        doc = config_to_dict(tuned)["rollout"]
        assert "jobs" not in doc
        assert doc["prune"] == 2
        restored = config_from_dict(config_to_dict(tuned))
        assert restored.rollout.prune == 2
        assert restored.rollout.jobs == 1  # execution knob, not identity
        # a jobs-4 cell and the serial cell serialize identically
        assert config_to_dict(tuned) == config_to_dict(
            self._cell(rollout=self.ROLLOUT._replace(prune=2))
        )

    @pytest.mark.parametrize("jobs", (2, 4))
    def test_parallel_scoring_is_byte_identical_to_serial(self, jobs, tmp_path):
        """The tentpole contract: decisions, trace bytes, and the
        ExperimentResult are unchanged at any worker count."""
        from repro.experiments.serialize import canonical_json, result_to_dict

        serial_cell = self._cell(trace_path=str(tmp_path / "serial.jsonl"))
        parallel_cell = self._cell(
            rollout=self.ROLLOUT._replace(jobs=jobs),
            trace_path=str(tmp_path / f"j{jobs}.jsonl"),
        )
        wl = lambda: _workload(n_jobs=32, seed=7)  # noqa: E731
        a = run_experiment(serial_cell, wl())
        b = run_experiment(parallel_cell, wl())
        da, db = result_to_dict(a), result_to_dict(b)
        da["config"]["trace_path"] = db["config"]["trace_path"] = ""
        assert canonical_json(da) == canonical_json(db)
        assert (tmp_path / "serial.jsonl").read_bytes() == \
            (tmp_path / f"j{jobs}.jsonl").read_bytes()

    def test_thread_backend_matches_serial(self, tmp_path):
        """The GIL fallback goes through the same reduction."""
        from repro.checkpoint import SnapshotSession
        from repro.observability.trace import Tracer
        from repro.policies.parallel import ForkScorer
        from repro.policies.rollout import FeatureTap

        config = ExperimentConfig(dare=DareConfig.greedy_lru(), seed=7)
        sim = Simulation(config, _workload(n_jobs=32, seed=7),
                         tracer=Tracer())
        tap = FeatureTap()
        sim.tracer.subscribe(tap)
        sim.run(until=80.0)
        candidates = tap.candidates(sim, 4)
        assert candidates, "pinned cell must produce candidates by t=80"
        snap = SnapshotSession(sim).snapshot()
        rcfg = RolloutConfig(epoch_s=10.0, branches=4)
        with ForkScorer(1) as serial, ForkScorer(2, mode="thread") as threaded:
            base_a, scores_a = serial.score_epoch(snap, candidates, rcfg)
            base_b, scores_b = threaded.score_epoch(snap, candidates, rcfg)
        assert base_a == base_b
        assert scores_a == scores_b

        # truncated-horizon scoring is deterministic and comparable too
        from repro.policies.parallel import score_fork

        hcfg = RolloutConfig(epoch_s=10.0, branches=4, horizon_s=30.0)
        h1 = score_fork(snap, candidates[0], hcfg)
        h2 = score_fork(snap, candidates[0], hcfg)
        assert h1 == h2
        assert 0.0 <= h1[0] <= 1.0 and h1[2] <= -sim.engine.now
        sim.close()

    def test_worker_loop_scores_chunks_and_ships_failures(self):
        """`_worker_main` run in-process over a real pipe: one good chunk
        answered ("ok", scores), a poisoned one answered ("err", ...) so
        the host raises instead of hanging, then a clean shutdown."""
        import multiprocessing as mp

        from repro.checkpoint import SnapshotSession
        from repro.policies.parallel import _worker_main, score_fork

        config = ExperimentConfig(dare=DareConfig.greedy_lru(), seed=7)
        sim = Simulation(config, _workload(n_jobs=32, seed=7))
        sim.run(until=80.0)
        session = SnapshotSession(sim)
        snap = session.snapshot()
        rcfg = RolloutConfig(epoch_s=10.0, branches=4)
        host_conn, worker_conn = mp.Pipe(duplex=True)
        # a snapshot message overflows the pipe's OS buffer, so the loop
        # must be draining while we send — run it on a thread
        worker = threading.Thread(target=_worker_main, args=(worker_conn,))
        worker.start()
        host_conn.send((snap, rcfg, [(0, None), (1, None)]))
        host_conn.send((snap, None, [(0, None)]))  # rcfg=None blows up scoring
        host_conn.send(None)
        worker.join(timeout=60.0)
        assert not worker.is_alive()
        status, payload = host_conn.recv()
        assert status == "ok"
        want = score_fork(snap, None, rcfg, pool=session.pool)
        assert payload == [(0, want), (1, want)]
        status, message = host_conn.recv()
        assert status == "err" and "horizon_s" in message
        host_conn.close()
        sim.close()

    def test_pruning_keeps_strict_improvement_and_is_deterministic(
        self, tmp_path
    ):
        """Top-k pruning trades branches for wall time: fewer forks, the
        no-op baseline never pruned, decisions identical across jobs."""
        wl = lambda: _workload(n_jobs=32, seed=SEED)  # noqa: E731
        greedy = run_experiment(
            ExperimentConfig(dare=DareConfig.greedy_lru(), seed=SEED), wl()
        )
        pruned_cell = self._cell(
            rollout=self.ROLLOUT._replace(prune=2),
            trace_path=str(tmp_path / "p1.jsonl"),
        )
        pruned = run_experiment(pruned_cell, wl())
        # the strict-improvement guarantee survives pruning
        assert pruned.job_locality >= greedy.job_locality
        # pruned decision records document how many branches were cut
        decisions = [
            json.loads(line)
            for line in open(pruned_cell.trace_path, encoding="utf-8")
            if '"rollout.decision"' in line
        ]
        assert decisions and all("pruned" in d for d in decisions)
        assert all(0 <= d["candidates"] <= 2 for d in decisions)
        # ... and pruning composes with parallel scoring byte-identically
        parallel_cell = self._cell(
            rollout=self.ROLLOUT._replace(prune=2, jobs=4),
            trace_path=str(tmp_path / "p4.jsonl"),
        )
        run_experiment(parallel_cell, wl())
        assert (tmp_path / "p1.jsonl").read_bytes() == \
            (tmp_path / "p4.jsonl").read_bytes()

    def test_gate_rollout_beats_greedy_on_pinned_seed(self):
        """The CI policy-bench gate: rollout-greedy >= greedy, and on
        this seed the improvement is strict (actions actually apply)."""
        wl = _workload(n_jobs=32, seed=SEED)
        greedy = run_experiment(
            ExperimentConfig(dare=DareConfig.greedy_lru(), seed=SEED), wl
        )
        rollout = run_experiment(self._cell(), wl)
        assert rollout.job_locality > greedy.job_locality
        assert rollout.traffic_bytes["rollout"] > 0
        assert rollout.config.rollout == self.ROLLOUT

    def test_rollout_requires_enabled_tracer(self):
        from repro.observability.trace import Tracer

        with pytest.raises(ValueError, match="enabled tracer"):
            run_rollout_experiment(
                self._cell(), _workload(), tracer=Tracer(enabled=False)
            )


class TestPolicyBench:
    def test_smoke_doc_and_gate(self):
        from repro.policies.bench import (
            check_gate,
            format_report,
            render_policy_grid,
            run_policy_bench,
        )

        doc = run_policy_bench(
            n_jobs=8, seeds=(SEED,), policies=("greedy-lru", "rollout")
        )
        assert {r["policy"] for r in doc["rows"]} == {"greedy-lru", "rollout"}
        assert doc["gate"] is not None
        assert doc["gate"]["ok"] == check_gate(doc["rows"])["ok"]
        assert "<svg" in render_policy_grid(doc)
        assert "gate" in format_report(doc)

    def test_unknown_column_rejected(self):
        from repro.policies.bench import bench_config

        with pytest.raises(ValueError, match="unknown benchmark column"):
            bench_config("no-such-policy")
