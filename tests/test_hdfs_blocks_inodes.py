"""Unit tests: blocks and INodes."""

import pytest

from repro.hdfs.block import DEFAULT_BLOCK_SIZE, Block
from repro.hdfs.inode import INode


class TestINodeAllocation:
    def test_whole_blocks(self):
        f = INode(0, "a", replication=3)
        blocks = f.allocate_blocks(3 * DEFAULT_BLOCK_SIZE, first_block_id=10)
        assert [b.block_id for b in blocks] == [10, 11, 12]
        assert all(b.size_bytes == DEFAULT_BLOCK_SIZE for b in blocks)

    def test_partial_last_block(self):
        f = INode(0, "a")
        blocks = f.allocate_blocks(DEFAULT_BLOCK_SIZE + 1000, first_block_id=0)
        assert len(blocks) == 2
        assert blocks[1].size_bytes == 1000

    def test_size_bytes_round_trips(self):
        f = INode(0, "a")
        f.allocate_blocks(5 * DEFAULT_BLOCK_SIZE + 7, 0)
        assert f.size_bytes == 5 * DEFAULT_BLOCK_SIZE + 7
        assert f.n_blocks == 6

    def test_block_indices_ordered(self):
        f = INode(0, "a")
        blocks = f.allocate_blocks(4 * DEFAULT_BLOCK_SIZE, 100)
        assert [b.index for b in blocks] == [0, 1, 2, 3]

    def test_files_are_immutable(self):
        f = INode(0, "a")
        f.allocate_blocks(DEFAULT_BLOCK_SIZE, 0)
        with pytest.raises(ValueError, match="immutable"):
            f.allocate_blocks(DEFAULT_BLOCK_SIZE, 10)

    def test_empty_file_rejected(self):
        with pytest.raises(ValueError):
            INode(0, "a").allocate_blocks(0, 0)

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            INode(0, "a", replication=0)


class TestBlockFileMembership:
    def test_same_file(self):
        f = INode(0, "a")
        blocks = f.allocate_blocks(2 * DEFAULT_BLOCK_SIZE, 0)
        assert blocks[0].same_file(blocks[1])

    def test_different_files(self):
        fa = INode(0, "a")
        fb = INode(1, "b")
        a = fa.allocate_blocks(DEFAULT_BLOCK_SIZE, 0)[0]
        b = fb.allocate_blocks(DEFAULT_BLOCK_SIZE, 1)[0]
        assert not a.same_file(b)

    def test_file_id_back_pointer(self):
        f = INode(42, "a")
        b = f.allocate_blocks(DEFAULT_BLOCK_SIZE, 0)[0]
        assert b.file_id == 42

    def test_zero_size_block_rejected(self):
        with pytest.raises(ValueError):
            Block(0, INode(0, "a"), 0, 0)
