"""Unit tests: DataNode storage and dynamic-replica accounting."""

import pytest

from repro.cluster.node import Node
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.datanode import DataNode
from repro.hdfs.inode import INode
from repro.hdfs.protocol import DNA_DYNREPL, DNA_INVALIDATE


@pytest.fixture
def dn():
    node = Node(1, 0, 100.0, 50.0)
    return DataNode(node, dynamic_capacity_bytes=2 * DEFAULT_BLOCK_SIZE)


@pytest.fixture
def blocks():
    f = INode(0, "f")
    return f.allocate_blocks(4 * DEFAULT_BLOCK_SIZE, 0)


class TestStaticStorage:
    def test_store_and_query(self, dn, blocks):
        dn.store_static(blocks[0])
        assert dn.has_block(0)
        assert not dn.has_dynamic(0)

    def test_double_store_rejected(self, dn, blocks):
        dn.store_static(blocks[0])
        with pytest.raises(ValueError):
            dn.store_static(blocks[0])

    def test_static_store_counts_disk_write(self, dn, blocks):
        dn.store_static(blocks[0])
        assert dn.disk_writes == 1


class TestDynamicReplicas:
    def test_insert_consumes_budget(self, dn, blocks):
        dn.insert_dynamic(blocks[0], now=1.0)
        assert dn.has_dynamic(0)
        assert dn.dynamic_bytes_used == DEFAULT_BLOCK_SIZE
        assert dn.dynamic_bytes_free == DEFAULT_BLOCK_SIZE

    def test_insert_queues_dynrepl_announcement(self, dn, blocks):
        dn.insert_dynamic(blocks[0], now=1.0)
        cmds = dn.drain_outbox()
        assert len(cmds) == 1
        assert cmds[0].op == DNA_DYNREPL
        assert cmds[0].block_id == 0

    def test_insert_over_budget_rejected(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.insert_dynamic(blocks[1], 1.0)
        with pytest.raises(ValueError, match="budget"):
            dn.insert_dynamic(blocks[2], 1.0)

    def test_would_exceed_budget(self, dn, blocks):
        assert not dn.would_exceed_budget(blocks[0])
        dn.insert_dynamic(blocks[0], 1.0)
        dn.insert_dynamic(blocks[1], 1.0)
        assert dn.would_exceed_budget(blocks[2])

    def test_insert_of_present_block_rejected(self, dn, blocks):
        dn.store_static(blocks[0])
        with pytest.raises(ValueError, match="data-local"):
            dn.insert_dynamic(blocks[0], 1.0)

    def test_counters(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        assert dn.blocks_replicated == 1
        assert dn.disk_writes == 1


class TestLazyDeletion:
    def test_mark_frees_budget_immediately(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.mark_for_deletion(0, 2.0)
        assert dn.dynamic_bytes_used == 0
        assert not dn.has_block(0)

    def test_mark_queues_invalidate(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.drain_outbox()
        dn.mark_for_deletion(0, 2.0)
        cmds = dn.drain_outbox()
        assert [c.op for c in cmds] == [DNA_INVALIDATE]

    def test_mark_unknown_block_rejected(self, dn):
        with pytest.raises(KeyError):
            dn.mark_for_deletion(99, 1.0)

    def test_mark_is_idempotent(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.mark_for_deletion(0, 2.0)
        dn.mark_for_deletion(0, 2.0)
        assert dn.blocks_evicted == 1
        assert dn.dynamic_bytes_used == 0

    def test_complete_deletions_drops_blocks(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.mark_for_deletion(0, 2.0)
        dropped = dn.complete_deletions()
        assert dropped == [0]
        assert 0 not in dn.dynamic_blocks

    def test_reinsert_after_mark_revives(self, dn, blocks):
        dn.insert_dynamic(blocks[0], 1.0)
        dn.mark_for_deletion(0, 2.0)
        dn.insert_dynamic(blocks[0], 3.0)  # re-fetch revives the replica
        assert dn.has_dynamic(0)
        assert dn.dynamic_bytes_used == DEFAULT_BLOCK_SIZE
        # outbox ends in DYNREPL so the NameNode converges to 'present'
        assert dn.drain_outbox()[-1].op == DNA_DYNREPL

    def test_stored_block_ids_excludes_pending(self, dn, blocks):
        dn.store_static(blocks[0])
        dn.insert_dynamic(blocks[1], 1.0)
        dn.mark_for_deletion(1, 2.0)
        assert dn.stored_block_ids() == {0}
