"""Unit/integration tests: the Scarlett epoch-based baseline."""

import numpy as np
import pytest

from repro.baselines.scarlett import ScarlettConfig
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def wl():
    return synthesize_wl1(np.random.default_rng(7), n_jobs=80)


class TestConfig:
    def test_defaults_valid(self):
        ScarlettConfig().validate()

    @pytest.mark.parametrize(
        "kw", [{"epoch_s": 0.0}, {"budget": -0.1}, {"max_concurrent": 0}]
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            ScarlettConfig()._replace(**kw).validate()


class TestScarlettRuns:
    @pytest.fixture(scope="class")
    def scarlett_run(self, wl):
        cfg = ExperimentConfig(
            cluster_spec=SMALL_SPEC, scarlett=ScarlettConfig(epoch_s=200.0, budget=0.3)
        )
        return run_experiment(cfg, wl)

    @pytest.fixture(scope="class")
    def vanilla_run(self, wl):
        return run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)

    def test_all_jobs_complete(self, scarlett_run, wl):
        assert scarlett_run.n_jobs == wl.n_jobs

    def test_replicas_created(self, scarlett_run):
        assert scarlett_run.scarlett_replicas_created > 0

    def test_rebalancing_traffic_paid(self, scarlett_run):
        # the cost DARE avoids: proactive replication moves real bytes
        assert scarlett_run.traffic_bytes["rebalancing"] > 0

    def test_locality_improves_over_vanilla(self, scarlett_run, vanilla_run):
        assert scarlett_run.job_locality > vanilla_run.job_locality

    def test_remote_read_traffic_drops(self, scarlett_run, vanilla_run):
        assert (
            scarlett_run.traffic_bytes["remote_map_reads"]
            < vanilla_run.traffic_bytes["remote_map_reads"]
        )

    def test_deterministic(self, wl):
        cfg = ExperimentConfig(
            cluster_spec=SMALL_SPEC, scarlett=ScarlettConfig(epoch_s=200.0)
        )
        a = run_experiment(cfg, wl)
        b = run_experiment(cfg, wl)
        assert a.job_locality == b.job_locality
        assert a.scarlett_replicas_created == b.scarlett_replicas_created


class TestDareVsScarlett:
    def test_dare_pays_no_replication_traffic(self, wl):
        dare = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, dare=DareConfig.elephant_trap()),
            wl,
        )
        scarlett = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC, scarlett=ScarlettConfig(epoch_s=200.0)
            ),
            wl,
        )
        assert dare.traffic_bytes["rebalancing"] == 0
        assert scarlett.traffic_bytes["rebalancing"] > 0

    def test_epoch_lag_on_popularity_shift(self):
        """The paper's core argument vs Scarlett: a reactive scheme adapts
        within the epoch; Scarlett serves the *previous* epoch's hot set."""
        from repro.mapreduce.job import JobSpec
        from repro.workloads.catalog import FileCatalog, FileSpec
        from repro.workloads.swim import Workload

        rng = np.random.default_rng(5)
        files = [FileSpec("hot_a", 2, "small"), FileSpec("hot_b", 2, "small")]
        files += [FileSpec(f"bg{i}", 2, "small") for i in range(30)]
        catalog = FileCatalog(files)
        specs = []
        t = 0.0
        n = 200
        for i in range(n):
            t += float(rng.exponential(4.0))
            hot = "hot_b" if i >= n // 2 else "hot_a"
            name = hot if rng.random() < 0.6 else f"bg{rng.integers(0, 30)}"
            specs.append(JobSpec(i, t, name, map_cpu_s=2.0, n_reduces=0))
        wl_shift = Workload("shift", catalog, specs)

        def phase2_locality(result):
            recs = [r for r in result.collector.job_records if r.job_id >= n // 2]
            return sum(r.data_locality for r in recs) / len(recs)

        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC,
                dare=DareConfig.elephant_trap(p=0.5, budget=0.3),
            ),
            wl_shift,
        )
        # epoch so long it never re-learns within phase 2
        scarlett = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC,
                scarlett=ScarlettConfig(epoch_s=float(t) / 2.2, budget=0.3),
            ),
            wl_shift,
        )
        assert phase2_locality(dare) > phase2_locality(scarlett)
