"""Unit tests: the skip-count delay-scheduling variant."""

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.experiments.runner import ExperimentConfig, make_scheduler, run_experiment
from repro.mapreduce.job import JobSpec
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.task import Locality
from repro.scheduling.fair import SkipCountFairScheduler
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


def make_jt(cluster, namenode, node_skips=2, rack_skips=2):
    streams = RandomStreams(31)
    dare = DareReplicationService(DareConfig.off(), namenode, streams)
    tm = TaskTimeModel(cluster, namenode, streams.python("tm"))
    sched = SkipCountFairScheduler(node_skips=node_skips, rack_skips=rack_skips)
    return JobTracker(cluster, namenode, Engine(), sched, tm, dare)


def non_holder_of(namenode, job):
    return next(
        (
            nid
            for nid in namenode.datanodes
            if all(nid not in namenode.locations(t.block.block_id) for t in job.maps)
        ),
        None,
    )


class TestSkipCounting:
    def test_skips_accumulate(self, small_cluster, loaded_namenode):
        jt = make_jt(small_cluster, loaded_namenode, node_skips=2)
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        assert jt.scheduler.pick_map(node, now=0.0) is None  # skip 1
        assert jt.scheduler.pick_map(node, now=0.0) is None  # skip 2
        pick = jt.scheduler.pick_map(node, now=0.0)  # 2 skips -> rack ok
        assert pick is not None
        _, _, level = pick
        assert level is Locality.RACK_LOCAL

    def test_local_launch_resets_counter(self, small_cluster, loaded_namenode):
        jt = make_jt(small_cluster, loaded_namenode, node_skips=2)
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        jt.scheduler.pick_map(node, now=0.0)
        holder = next(iter(loaded_namenode.locations(job.maps[0].block.block_id)))
        _, _, level = jt.scheduler.pick_map(holder, now=0.0)
        assert level is Locality.NODE_LOCAL
        assert job.delay_wait_started is None

    def test_skip_threshold_is_count_not_time(self, small_cluster, loaded_namenode):
        # with huge wall-clock gaps but only one skip, the job still waits
        jt = make_jt(small_cluster, loaded_namenode, node_skips=3)
        job = jt.submit(JobSpec(0, 0.0, "hot"))
        node = non_holder_of(loaded_namenode, job)
        if node is None:
            pytest.skip("every slave holds a replica")
        assert jt.scheduler.pick_map(node, now=0.0) is None
        assert jt.scheduler.pick_map(node, now=10_000.0) is None  # count=2 < 3

    def test_negative_skips_rejected(self):
        with pytest.raises(ValueError):
            SkipCountFairScheduler(node_skips=-1)


class TestEndToEnd:
    def test_factory_knows_fair_skip(self):
        assert isinstance(make_scheduler("fair-skip"), SkipCountFairScheduler)

    def test_behaves_like_time_based_fair(self):
        """The two formulations should land in the same locality regime."""
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=80)
        time_based = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, scheduler="fair"), wl
        )
        skip_based = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, scheduler="fair-skip"), wl
        )
        assert abs(skip_based.job_locality - time_based.job_locality) < 0.25
        # both stay well above FIFO's baseline
        fifo = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, scheduler="fifo"), wl
        )
        assert skip_based.job_locality > fifo.job_locality

    def test_dare_composes_with_skip_variant(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=80)
        van = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, scheduler="fair-skip"), wl
        )
        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC,
                scheduler="fair-skip",
                dare=DareConfig.elephant_trap(),
            ),
            wl,
        )
        # on the tiny 7-slave cluster the skip variant already finds local
        # slots for nearly everything; DARE must never make it worse
        assert dare.job_locality >= van.job_locality
