"""Unit tests: the network-traffic meter."""

import pytest

from repro.metrics.traffic import TrafficMeter


class TestTrafficMeter:
    def test_starts_at_zero(self):
        m = TrafficMeter()
        assert m.total_bytes == 0
        assert all(v == 0 for v in m.by_category.values())

    def test_record_accumulates(self):
        m = TrafficMeter()
        m.record("shuffle", 100)
        m.record("shuffle", 50)
        assert m.bytes("shuffle") == 150
        assert m.total_bytes == 150

    def test_categories_are_independent(self):
        m = TrafficMeter()
        m.record("remote_map_reads", 10)
        m.record("rebalancing", 20)
        assert m.bytes("remote_map_reads") == 10
        assert m.bytes("rebalancing") == 20
        assert m.total_bytes == 30

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            TrafficMeter().record("carrier-pigeon", 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            TrafficMeter().record("shuffle", -1)

    def test_gigabytes(self):
        m = TrafficMeter()
        m.record("shuffle", 2 * 10**9)
        assert m.gigabytes("shuffle") == pytest.approx(2.0)

    def test_report_mentions_all_categories(self):
        m = TrafficMeter()
        text = m.report()
        for c in TrafficMeter.CATEGORIES:
            assert c in text
