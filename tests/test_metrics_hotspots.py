"""Unit tests: compute-side hotspot analysis."""

import pytest

from repro.metrics.collector import MapRecord
from repro.metrics.hotspots import load_timeline, summarize_hotspots


def rec(node, start, duration, job=0):
    return MapRecord(job, start, duration, 0, node)


class TestLoadTimeline:
    def test_single_task_steps_up_and_down(self):
        times, loads = load_timeline([rec(1, 0.0, 10.0)], [1, 2])
        assert list(times) == [0.0, 10.0]
        assert list(loads[1]) == [1, 0]
        assert list(loads[2]) == [0, 0]

    def test_overlapping_tasks_stack(self):
        records = [rec(1, 0.0, 10.0), rec(1, 5.0, 10.0)]
        times, loads = load_timeline(records, [1])
        # events at 0, 5, 10, 15
        assert list(loads[1]) == [1, 2, 1, 0]

    def test_nodes_tracked_independently(self):
        records = [rec(1, 0.0, 4.0), rec(2, 1.0, 4.0)]
        _, loads = load_timeline(records, [1, 2])
        assert max(loads[1]) == 1
        assert max(loads[2]) == 1

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            load_timeline([], [1])


class TestSummary:
    def test_balanced_load_has_low_imbalance(self):
        records = [rec(n, 0.0, 10.0) for n in range(1, 5)]
        s = summarize_hotspots(records, range(1, 5))
        assert s.peak_node_load == 1
        assert s.mean_imbalance == pytest.approx(1.0)
        assert s.hotspot_time_fraction == 0.0

    def test_single_hot_node_detected(self):
        records = [rec(1, 0.0, 10.0) for _ in range(8)]  # all on node 1
        s = summarize_hotspots(records, range(1, 5))
        assert s.peak_node_load == 8
        assert s.mean_imbalance > 3.0
        assert s.hotspot_time_fraction > 0.5

    def test_imbalance_between_extremes(self):
        records = [rec(1, 0.0, 10.0), rec(1, 0.0, 10.0), rec(2, 0.0, 10.0)]
        s = summarize_hotspots(records, [1, 2, 3])
        # max 2, mean 1 -> imbalance 2 while tasks run
        assert 1.5 < s.mean_imbalance <= 2.01

    def test_real_run_produces_sane_summary(self, wl1_small):
        from repro.experiments.runner import ExperimentConfig, run_experiment
        from tests.conftest import SMALL_SPEC

        r = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl1_small)
        s = summarize_hotspots(r.collector.map_records, range(1, 8))
        assert 1 <= s.peak_node_load <= SMALL_SPEC.map_slots
        assert s.mean_imbalance >= 1.0
        assert 0.0 <= s.hotspot_time_fraction <= 1.0
