"""Unit tests: the FIFO scheduler."""

import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.mapreduce.job import JobSpec
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.task import Locality
from repro.scheduling.fifo import FifoScheduler
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams


@pytest.fixture
def jt(small_cluster, loaded_namenode):
    streams = RandomStreams(31)
    dare = DareReplicationService(DareConfig.off(), loaded_namenode, streams)
    tm = TaskTimeModel(small_cluster, loaded_namenode, streams.python("tm"))
    return JobTracker(
        small_cluster, loaded_namenode, Engine(), FifoScheduler(), tm, dare
    )


def submit(jt, *file_names, t0=0.0):
    jobs = []
    for i, name in enumerate(file_names):
        jobs.append(jt.submit(JobSpec(job_id=i, submit_time=t0 + i, input_file=name)))
    return jobs


class TestFifoOrdering:
    def test_head_of_line_job_served_first(self, jt):
        jobs = submit(jt, "cold", "hot")
        pick = jt.scheduler.pick_map(1, now=5.0)
        assert pick is not None
        job, task, _ = pick
        assert job is jobs[0]

    def test_second_job_served_only_after_first_drains(self, jt):
        jobs = submit(jt, "warm", "hot")
        # exhaust the head job's pending maps
        while jobs[0].has_pending_maps:
            job, task, _ = jt.scheduler.pick_map(1, now=5.0)
            assert job is jobs[0]
            jobs[0].take_map(task)
        job, task, _ = jt.scheduler.pick_map(1, now=6.0)
        assert job is jobs[1]

    def test_no_pending_work_returns_none(self, jt):
        assert jt.scheduler.pick_map(1, now=0.0) is None
        assert jt.scheduler.pick_reduce(1, now=0.0) is None

    def test_finished_jobs_skipped(self, jt):
        jobs = submit(jt, "warm", "hot")
        jt.scheduler.job_finished(jobs[0])
        job, _, _ = jt.scheduler.pick_map(1, now=5.0)
        assert job is jobs[1]


class TestFifoLocality:
    def test_prefers_node_local_within_head_job(self, jt, loaded_namenode):
        jobs = submit(jt, "cold")
        holder = next(
            iter(loaded_namenode.locations(jobs[0].maps[0].block.block_id))
        )
        job, task, level = jt.scheduler.pick_map(holder, now=1.0)
        assert level is Locality.NODE_LOCAL

    def test_never_withholds_a_slot_for_locality(self, jt, loaded_namenode):
        jobs = submit(jt, "hot")
        non_holder = next(
            (
                nid
                for nid in loaded_namenode.datanodes
                if all(
                    nid not in loaded_namenode.locations(t.block.block_id)
                    for t in jobs[0].maps
                )
            ),
            None,
        )
        if non_holder is None:
            pytest.skip("every slave holds a replica of this small file")
        pick = jt.scheduler.pick_map(non_holder, now=1.0)
        assert pick is not None  # FIFO launches non-locally rather than wait
        _, _, level = pick
        assert level is not Locality.NODE_LOCAL


class TestFifoReduces:
    def test_reduces_offered_once_schedulable(self, jt):
        jobs = submit(jt, "hot")
        assert jt.scheduler.pick_reduce(1, now=1.0) is None
        jobs[0].finished_maps = jobs[0].n_maps
        pick = jt.scheduler.pick_reduce(1, now=2.0)
        assert pick is not None
        job, task = pick
        assert job is jobs[0]

    def test_reduce_fifo_order(self, jt):
        jobs = submit(jt, "warm", "hot")
        for j in jobs:
            j.finished_maps = j.n_maps
            j.pending_maps.clear()
        job, _ = jt.scheduler.pick_reduce(1, now=2.0)
        assert job is jobs[0]
