"""Unit tests: rack topology and hop counts."""

import numpy as np
import pytest

from repro.cluster.topology import DEDICATED, VIRTUALIZED, Topology


def make(family, n=20, seed=3, **kw):
    return Topology(family, n, np.random.default_rng(seed), **kw)


class TestDedicated:
    def test_single_rack(self):
        topo = make(DEDICATED)
        assert topo.n_racks == 1
        assert all(topo.rack_of == 0)

    def test_hops_are_one_within_rack(self):
        topo = make(DEDICATED)
        assert topo.hops(1, 2) == 1

    def test_self_hops_zero(self):
        topo = make(DEDICATED)
        assert topo.hops(3, 3) == 0

    def test_hop_histogram_all_mass_at_one(self):
        hist = make(DEDICATED).hop_histogram()
        assert hist[1] == pytest.approx(1.0)


class TestVirtualized:
    def test_nodes_scattered_over_many_racks(self):
        topo = make(VIRTUALIZED)
        assert topo.n_racks >= 5  # 20 VMs land on many racks

    def test_hops_symmetric(self):
        topo = make(VIRTUALIZED)
        for a in range(0, 20, 3):
            for b in range(0, 20, 4):
                assert topo.hops(a, b) == topo.hops(b, a)

    def test_hops_positive_between_distinct_nodes(self):
        topo = make(VIRTUALIZED)
        for a in range(5):
            for b in range(5):
                if a != b:
                    assert topo.hops(a, b) >= 1

    def test_same_rack_fewer_hops_than_cross_agg(self):
        topo = make(VIRTUALIZED, n=60, nodes_per_rack_mean=4.0)
        racks = topo.racks()
        same_rack_pair = next(
            (nodes[0], nodes[1]) for nodes in racks.values() if len(nodes) >= 2
        )
        # structural base: same rack is 2, cross-agg is 6; detours are +-2 max
        a, b = same_rack_pair
        cross = None
        for x in range(60):
            for y in range(60):
                ra, ry = int(topo.rack_of[x]), int(topo.rack_of[y])
                if ra != ry and topo.agg_of_rack[ra] != topo.agg_of_rack[ry]:
                    cross = (x, y)
                    break
            if cross:
                break
        if cross is None:
            pytest.skip("allocation fit under one aggregation switch")
        assert topo.hops(a, b) <= topo.hops(*cross) + 1

    def test_hop_histogram_sums_to_one(self):
        hist = make(VIRTUALIZED).hop_histogram()
        assert hist.sum() == pytest.approx(1.0)

    def test_mode_near_four_hops_for_small_allocation(self):
        # the Fig. 1 shape: most EC2 pairs are ~4 hops apart
        topo = make(VIRTUALIZED, racks_per_agg=12)
        hist = topo.hop_histogram()
        assert int(np.argmax(hist)) in (3, 4, 5)

    def test_deterministic_given_rng_seed(self):
        a = make(VIRTUALIZED, seed=9).hop_matrix()
        b = make(VIRTUALIZED, seed=9).hop_matrix()
        assert np.array_equal(a, b)


class TestValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            make("weird")

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            make(DEDICATED, n=0)

    def test_nodes_in_rack_partition(self):
        topo = make(VIRTUALIZED)
        all_nodes = sorted(
            n for rack in range(topo.n_racks) for n in topo.nodes_in_rack(rack)
        )
        assert all_nodes == list(range(20))
