"""Unit tests: job specs and runtime job state."""

import pytest

from repro.mapreduce.job import Job, JobSpec
from repro.mapreduce.task import Locality


@pytest.fixture
def job(loaded_namenode):
    spec = JobSpec(job_id=1, submit_time=10.0, input_file="hot", n_reduces=2)
    return Job(spec, loaded_namenode.file("hot"))


class TestJobSpec:
    def test_validate_ok(self):
        JobSpec(1, 0.0, "f").validate()

    @pytest.mark.parametrize(
        "kw",
        [
            {"submit_time": -1.0},
            {"map_cpu_s": -1.0},
            {"reduce_cpu_s": -1.0},
            {"n_reduces": -1},
            {"shuffle_ratio": -0.1},
            {"output_ratio": -0.1},
        ],
    )
    def test_validate_rejects(self, kw):
        base = dict(job_id=1, submit_time=0.0, input_file="f")
        base.update(kw)
        with pytest.raises(ValueError):
            JobSpec(**base).validate()


class TestJobState:
    def test_one_map_per_block(self, job):
        assert job.n_maps == 3
        assert len(job.reduces) == 2

    def test_fresh_job_all_pending(self, job):
        assert job.has_pending_maps
        assert not job.maps_done
        assert not job.done

    def test_take_map_moves_to_running(self, job):
        task = job.pending_maps[0]
        job.take_map(task)
        assert task not in job.pending_maps
        assert job.running_maps == 1
        assert task.block.block_id not in job.pending_block_ids

    def test_reduces_locked_until_maps_done(self, job):
        assert not job.reduces_schedulable
        assert job.next_pending_reduce() is None
        job.finished_maps = job.n_maps
        assert job.reduces_schedulable
        assert job.next_pending_reduce() is job.reduces[0]

    def test_done_requires_maps_and_reduces(self, job):
        job.finished_maps = job.n_maps
        assert not job.done
        job.finished_reduces = 2
        assert job.done

    def test_turnaround_before_finish_raises(self, job):
        with pytest.raises(ValueError):
            job.turnaround

    def test_data_locality_fraction(self, job):
        job.locality_counts[Locality.NODE_LOCAL] = 2
        job.locality_counts[Locality.REMOTE] = 2
        assert job.data_locality == 0.5

    def test_locality_zero_before_any_launch(self, job):
        assert job.data_locality == 0.0


class TestFindPendingMap:
    def test_prefers_node_local(self, loaded_namenode, job):
        blk = job.maps[0].block
        local_node = next(iter(loaded_namenode.locations(blk.block_id)))
        found = job.find_pending_map(local_node, loaded_namenode)
        assert found is not None
        task, level = found
        assert level is Locality.NODE_LOCAL
        assert local_node in loaded_namenode.locations(task.block.block_id)

    def test_single_rack_fallback_is_rack_local(self, loaded_namenode, job):
        # find a node holding no block of the job (single-rack cluster ->
        # everything non-local is rack-local)
        nodes = set(loaded_namenode.datanodes)
        for t in job.maps:
            nodes -= set(loaded_namenode.locations(t.block.block_id))
        if not nodes:
            pytest.skip("every slave holds a replica of this small file")
        found = job.find_pending_map(nodes.pop(), loaded_namenode)
        task, level = found
        assert level is Locality.RACK_LOCAL

    def test_max_level_node_local_filters(self, loaded_namenode, job):
        nodes = set(loaded_namenode.datanodes)
        for t in job.maps:
            nodes -= set(loaded_namenode.locations(t.block.block_id))
        if not nodes:
            pytest.skip("every slave holds a replica")
        found = job.find_pending_map(
            nodes.pop(), loaded_namenode, max_level=Locality.NODE_LOCAL
        )
        assert found is None

    def test_exhausted_job_returns_none(self, loaded_namenode, job):
        for t in list(job.pending_maps):
            job.take_map(t)
        assert job.find_pending_map(1, loaded_namenode) is None

    def test_new_replica_changes_locality_choice(self, loaded_namenode, job):
        blk = job.maps[0].block
        outsider = next(
            (
                nid
                for nid in loaded_namenode.datanodes
                if all(
                    nid not in loaded_namenode.locations(t.block.block_id)
                    for t in job.maps
                )
            ),
            None,
        )
        if outsider is None:
            pytest.skip("every slave holds a replica of this small file")
        # before: not node-local for the outsider
        _, level = job.find_pending_map(outsider, loaded_namenode)
        assert level is not Locality.NODE_LOCAL
        # DARE announces a replica -> the view changes -> now node-local
        loaded_namenode._locations[blk.block_id].add(outsider)
        task, level = job.find_pending_map(outsider, loaded_namenode)
        assert level is Locality.NODE_LOCAL
        assert task.block.block_id == blk.block_id
