"""Unit tests: the DARE replication service (budget + policy + NameNode)."""

import pytest

from repro.core.budget import ReplicationBudget
from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.simulation.rng import RandomStreams


def make_service(namenode, config):
    return DareReplicationService(config, namenode, RandomStreams(99))


def remote_node_for(namenode, block):
    return next(
        nid for nid in namenode.datanodes if nid not in namenode.locations(block.block_id)
    )


class TestBudgetSizing:
    def test_capacity_proportional_to_physical_data(self, loaded_namenode):
        nn = loaded_namenode
        cap = ReplicationBudget(0.2).per_node_capacity_bytes(nn)
        physical = sum(f.size_bytes * f.replication for f in nn.files.values())
        assert cap == int(0.2 * physical / len(nn.datanodes))

    def test_apply_sets_all_datanodes(self, loaded_namenode):
        cap = ReplicationBudget(0.5).apply(loaded_namenode)
        assert all(
            dn.dynamic_capacity_bytes == cap
            for dn in loaded_namenode.datanodes.values()
        )

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            ReplicationBudget(-0.1)

    def test_empty_namespace_zero_capacity(self, namenode):
        assert ReplicationBudget(0.2).per_node_capacity_bytes(namenode) == 0


class TestOffPolicy:
    def test_off_never_replicates(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.off())
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        assert svc.on_map_task(node, blk, data_local=False, now=1.0) is False
        assert svc.total_replications == 0


class TestGreedyService:
    def test_remote_read_creates_replica(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        assert svc.on_map_task(node, blk, data_local=False, now=1.0) is True
        assert loaded_namenode.datanode(node).has_dynamic(blk.block_id)

    def test_local_read_never_replicates(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        blk = loaded_namenode.file("hot").blocks[0]
        local = next(iter(loaded_namenode.locations(blk.block_id)))
        assert svc.on_map_task(local, blk, data_local=True, now=1.0) is False
        assert svc.total_replications == 0

    def test_duplicate_remote_read_skipped(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        svc.on_map_task(node, blk, False, 1.0)
        assert svc.on_map_task(node, blk, False, 1.5) is False
        assert svc.total_replications == 1

    def test_block_larger_than_capacity_never_replicated(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        for dn in loaded_namenode.datanodes.values():
            dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE // 2
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        assert svc.on_map_task(node, blk, False, 1.0) is False

    def test_eviction_makes_room(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        for dn in loaded_namenode.datanodes.values():
            dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE  # one-block budget
        hot = loaded_namenode.file("hot").blocks[0]
        cold = loaded_namenode.file("cold").blocks[0]
        node = next(
            nid
            for nid in loaded_namenode.datanodes
            if nid not in loaded_namenode.locations(hot.block_id)
            and nid not in loaded_namenode.locations(cold.block_id)
        )
        svc.on_map_task(node, hot, False, 1.0)
        assert svc.on_map_task(node, cold, False, 2.0) is True
        dn = loaded_namenode.datanode(node)
        assert dn.has_dynamic(cold.block_id)
        assert not dn.has_block(hot.block_id)  # evicted
        assert svc.total_evictions() == 1

    def test_abandoned_when_only_same_file_victims(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        for dn in loaded_namenode.datanodes.values():
            dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE
        blocks = loaded_namenode.file("cold").blocks
        node = next(
            nid
            for nid in loaded_namenode.datanodes
            if all(nid not in loaded_namenode.locations(b.block_id) for b in blocks[:2])
        )
        svc.on_map_task(node, blocks[0], False, 1.0)
        # second block of the SAME file: the only victim shares the file
        assert svc.on_map_task(node, blocks[1], False, 2.0) is False
        assert svc.total_abandoned == 1


class TestElephantTrapService:
    def test_p_one_behaves_greedily(self, loaded_namenode):
        cfg = DareConfig.elephant_trap(p=1.0, threshold=1, budget=1.0)
        svc = make_service(loaded_namenode, cfg)
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        assert svc.on_map_task(node, blk, False, 1.0) is True

    def test_p_zero_never_replicates(self, loaded_namenode):
        cfg = DareConfig.elephant_trap(p=0.0, threshold=1, budget=1.0)
        svc = make_service(loaded_namenode, cfg)
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        for _ in range(10):
            assert svc.on_map_task(node, blk, False, 1.0) is False

    def test_local_access_refreshes_tracked_count(self, loaded_namenode):
        cfg = DareConfig.elephant_trap(p=1.0, threshold=1, budget=1.0)
        svc = make_service(loaded_namenode, cfg)
        blk = loaded_namenode.file("hot").blocks[0]
        node = remote_node_for(loaded_namenode, blk)
        svc.on_map_task(node, blk, False, 1.0)
        svc.on_map_task(node, blk, True, 2.0)  # now local: refresh
        assert svc.states[node].policy.access_count(blk.block_id) == 1

    def test_per_node_coin_streams_differ(self, loaded_namenode):
        cfg = DareConfig.elephant_trap(p=0.5, threshold=1, budget=1.0)
        svc = make_service(loaded_namenode, cfg)
        ids = list(svc.states)
        seq = {
            nid: [svc.states[nid].policy._rng.random() for _ in range(8)]
            for nid in ids[:2]
        }
        assert seq[ids[0]] != seq[ids[1]]


class TestInvariants:
    def test_piggyback_counter_equals_replications(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=1.0))
        created = 0
        for fname in ("hot", "warm", "cold"):
            for blk in loaded_namenode.file(fname).blocks:
                node = remote_node_for(loaded_namenode, blk)
                if svc.on_map_task(node, blk, False, 1.0):
                    created += 1
        assert svc.replications_piggybacked == created == svc.total_replications

    def test_budget_never_exceeded(self, loaded_namenode):
        svc = make_service(loaded_namenode, DareConfig.greedy_lru(budget=0.3))
        cap = svc.per_node_budget_bytes
        for fname in ("cold", "warm", "hot"):
            for blk in loaded_namenode.file(fname).blocks:
                for node in list(loaded_namenode.datanodes):
                    if not loaded_namenode.datanode(node).has_block(blk.block_id):
                        svc.on_map_task(node, blk, False, 1.0)
        for dn in loaded_namenode.datanodes.values():
            assert dn.dynamic_bytes_used <= cap
