"""Unit tests: the InvariantChecker catches seeded corruption."""

from __future__ import annotations

import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.observability.invariants import InvariantChecker, InvariantViolation
from repro.observability.trace import (
    BLOCK_REPLICATED,
    HEARTBEAT,
    TASK_SCHEDULED,
    Tracer,
)


def make_service(namenode, streams, tracer, policy="lru", budget_blocks=3):
    config = (
        DareConfig.greedy_lru()
        if policy == "lru"
        else DareConfig.elephant_trap(p=1.0, threshold=1)
    )
    service = DareReplicationService(config, namenode, streams, tracer=tracer)
    for dn in namenode.datanodes.values():
        dn.dynamic_capacity_bytes = budget_blocks * namenode.block_size
    return service


def remote_target(namenode, block_id):
    """A node that does not hold ``block_id`` (a remote read is possible)."""
    for node_id, dn in namenode.datanodes.items():
        if not dn.has_block(block_id):
            return node_id
    raise AssertionError("block replicated everywhere; enlarge the cluster")


class SlotStub:
    """Duck-typed TaskTracker/JobTracker pair for slot-invariant tests."""

    class _Node:
        map_slots = 2
        reduce_slots = 2

    def __init__(self, free_map=2, free_reduce=2):
        self.node = self._Node()
        self.free_map_slots = free_map
        self.free_reduce_slots = free_reduce


class JtStub:
    def __init__(self, tasktrackers):
        self.tasktrackers = tasktrackers


class TestHealthyState:
    def test_clean_replication_passes_every_check(self, loaded_namenode, streams):
        tracer = Tracer()
        loaded_namenode.tracer = tracer
        for dn in loaded_namenode.datanodes.values():
            dn.tracer = tracer
        service = make_service(loaded_namenode, streams, tracer)
        InvariantChecker(
            loaded_namenode, dare=service, full_sweep_every=1
        ).attach(tracer)
        block = loaded_namenode.blocks[0]
        node = remote_target(loaded_namenode, block.block_id)
        assert service.on_map_task(node, block, data_local=False, now=1.0)
        # settled record triggers the strict full sweep
        tracer.emit(TASK_SCHEDULED, 1.0, node=node, kind="map")
        loaded_namenode.process_heartbeat(node, 2.0)

    def test_checker_counts_records_and_sweeps(self, loaded_namenode):
        tracer = Tracer()
        checker = InvariantChecker(loaded_namenode, full_sweep_every=1).attach(tracer)
        tracer.emit(HEARTBEAT, 0.0, node=1, free_map_slots=2, free_reduce_slots=2)
        tracer.emit(BLOCK_REPLICATED, 0.0, node=1, block=0, bytes=1)
        assert checker.records_seen == 2
        assert checker.sweeps_run == 1  # only the settled heartbeat swept


class TestSeededCorruption:
    def test_budget_accounting_drift_is_caught(self, loaded_namenode, streams):
        tracer = Tracer()
        for dn in loaded_namenode.datanodes.values():
            dn.tracer = tracer
        service = make_service(loaded_namenode, streams, tracer)
        InvariantChecker(
            loaded_namenode, dare=service, full_sweep_every=1
        ).attach(tracer)
        block = loaded_namenode.blocks[0]
        node = remote_target(loaded_namenode, block.block_id)
        service.on_map_task(node, block, data_local=False, now=1.0)
        loaded_namenode.datanodes[node].dynamic_bytes_used += 7  # corrupt
        with pytest.raises(InvariantViolation, match="dynamic_bytes_used"):
            tracer.emit(HEARTBEAT, 2.0, node=node)

    def test_budget_overrun_is_caught(self, loaded_namenode, streams):
        tracer = Tracer()
        for dn in loaded_namenode.datanodes.values():
            dn.tracer = tracer
        service = make_service(loaded_namenode, streams, tracer, budget_blocks=1)
        InvariantChecker(
            loaded_namenode, dare=service, full_sweep_every=1
        ).attach(tracer)
        block = loaded_namenode.blocks[0]
        node = remote_target(loaded_namenode, block.block_id)
        service.on_map_task(node, block, data_local=False, now=1.0)
        # shrink the budget under the stored bytes: overrun must be flagged
        loaded_namenode.datanodes[node].dynamic_capacity_bytes = 1
        with pytest.raises(InvariantViolation, match="budget exceeded"):
            tracer.emit(HEARTBEAT, 2.0, node=node)

    def test_phantom_policy_entry_is_caught(self, loaded_namenode, streams):
        tracer = Tracer()
        service = make_service(loaded_namenode, streams, tracer)
        InvariantChecker(
            loaded_namenode, dare=service, full_sweep_every=1
        ).attach(tracer)
        # the policy tracks a block its DataNode never stored
        node = next(iter(service.states))
        service.states[node].policy.add(loaded_namenode.blocks[0])
        with pytest.raises(InvariantViolation, match="no live dynamic replica"):
            tracer.emit(HEARTBEAT, 1.0, node=node)

    def test_slot_overflow_is_caught(self, loaded_namenode):
        tracer = Tracer()
        node = next(iter(loaded_namenode.datanodes))
        jt = JtStub({node: SlotStub(free_map=-1)})
        InvariantChecker(
            loaded_namenode, jobtracker=jt, full_sweep_every=1
        ).attach(tracer)
        with pytest.raises(InvariantViolation, match="free map slots"):
            tracer.emit(HEARTBEAT, 1.0, node=node)

    def test_replica_map_inconsistency_is_caught(self, loaded_namenode):
        tracer = Tracer()
        InvariantChecker(loaded_namenode, full_sweep_every=1).attach(tracer)
        # NameNode claims a replica on a node that never stored the block
        block_id = 0
        missing = next(
            n
            for n, dn in loaded_namenode.datanodes.items()
            if not dn.has_block(block_id)
        )
        loaded_namenode._locations[block_id].add(missing)
        with pytest.raises(InvariantViolation, match="replica-map consistency"):
            tracer.emit(HEARTBEAT, 1.0, node=missing)

    def test_violation_carries_trace_tail(self, loaded_namenode):
        tracer = Tracer()
        node = next(iter(loaded_namenode.datanodes))
        stub = SlotStub()
        jt = JtStub({node: stub})
        InvariantChecker(
            loaded_namenode, jobtracker=jt, full_sweep_every=1
        ).attach(tracer)
        tracer.emit(BLOCK_REPLICATED, 0.5, node=node, block=7, bytes=1)
        stub.free_map_slots = 99  # corrupt between records
        with pytest.raises(InvariantViolation) as exc_info:
            tracer.emit(HEARTBEAT, 1.0, node=node)
        violation = exc_info.value
        assert violation.record is not None
        assert violation.record.type == HEARTBEAT
        assert any(r.type == BLOCK_REPLICATED for r in violation.tail)
        assert "trace tail" in str(violation)
        assert "block.replicated" in str(violation)
