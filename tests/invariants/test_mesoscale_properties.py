"""Mesoscale promotion/demotion invariants, checked on live simulations.

The mesoscale pool replaces idle TaskTrackers with bare slot-capacity
entries, so the usual per-tracker invariant sweep cannot see those nodes.
This suite checks the pool's own contract instead, on running
:class:`~repro.experiments.runner.Simulation` objects — mid-run and after
drain:

* the rack hubs partition the slave set, with no node in two hubs;
* ``accurate`` members are exactly the nodes with a live TaskTracker, and
  ``promotions - demotions`` always equals the accurate population;
* pooled members never hold an occupied slot (work implies promotion);
* an explicitly mis-sequenced promote/demote raises instead of corrupting
  the pool;
* and — the strongest property — a mesoscale run produces **identical**
  results to the batched-but-accurate mode on the same seed, because
  promotion is driven by the same beat decisions the accurate tracker
  would have made.

``INVARIANT_EXAMPLES`` scales the randomized sweep (default 6; CI's
nightly job sets 500).
"""

from __future__ import annotations

import os
import random

import numpy as np
import pytest

from repro.cluster.cluster import scale_spec
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, Simulation, run_experiment
from repro.experiments.serialize import result_to_dict
from repro.workloads.swim import synthesize_wl1

N_RANDOM = int(os.environ.get("INVARIANT_EXAMPLES", "6"))


def _build(n_nodes: int, n_jobs: int, seed: int, *,
           mesoscale: bool = True, scheduler: str = "fair") -> Simulation:
    spec = scale_spec(n_nodes, mesoscale=mesoscale, hb_batch=True)
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    config = ExperimentConfig(
        cluster_spec=spec, scheduler=scheduler,
        dare=DareConfig.elephant_trap(), seed=seed,
    )
    return Simulation(config, workload)


def _check_hub_invariants(sim: Simulation) -> None:
    jt = sim.jobtracker
    hubs = jt.hubs
    assert hubs, "batched mode must create rack hubs"
    rack_of = sim.cluster.topology.rack_of

    seen: set = set()
    for hub in hubs:
        members = set(hub.member_ids)
        assert hub.member_ids == sorted(members)
        assert not (members & seen), "a node belongs to two hubs"
        seen |= members
        assert all(int(rack_of[nid]) == hub.rack for nid in members)

        assert hub.accurate <= members
        if hub.mesoscale:
            assert hub.promotions - hub.demotions == len(hub.accurate)
        else:
            # batched-but-accurate: everyone materialised at construction,
            # never through the counted promote path
            assert hub.accurate == members
            assert hub.promotions == hub.demotions == 0

        for nid in members:
            if nid in hub.accurate:
                assert nid in jt.tasktrackers
            else:
                # pooled: no tracker object, and provably idle — any work
                # offer would have promoted the node first
                assert nid not in jt.tasktrackers
                assert jt.slots.all_free(nid)

    assert seen == set(sim.cluster.slave_ids)


@pytest.mark.parametrize("case", range(N_RANDOM))
def test_random_mesoscale_run_preserves_pool_invariants(case: int) -> None:
    rng = random.Random(0xDA7E + case)
    sim = _build(
        n_nodes=rng.randrange(60, 300),
        n_jobs=rng.randrange(4, 13),
        seed=rng.randrange(1, 10_000_000),
        scheduler=rng.choice(["fifo", "fair"]),
    )
    sim.run(until=40.0)
    _check_hub_invariants(sim)  # mid-run: promotions in flight
    sim.run()
    _check_hub_invariants(sim)  # drained: stragglers demoted or inert
    result = sim.finalize()
    sim.close()
    assert result.n_jobs == sim.workload.n_jobs
    assert result.makespan_s > 0
    assert sum(h.promotions for h in sim.jobtracker.hubs) > 0


@pytest.mark.parametrize("scheduler", ["fifo", "fair"])
def test_mesoscale_matches_batched_accurate(scheduler: str) -> None:
    """Pooling idle trackers must not change a single result metric."""
    results = {}
    for mode in ("batch", "meso"):
        spec = scale_spec(200, mesoscale=(mode == "meso"), hb_batch=True)
        workload = synthesize_wl1(np.random.default_rng(7), n_jobs=10)
        config = ExperimentConfig(
            cluster_spec=spec, scheduler=scheduler,
            dare=DareConfig.elephant_trap(), seed=7,
        )
        d = result_to_dict(run_experiment(config, workload))
        d.pop("config")  # differs by construction (the mesoscale flag)
        results[mode] = d
    assert results["meso"] == results["batch"]


def test_mis_sequenced_promote_and_demote_raise() -> None:
    sim = _build(n_nodes=80, n_jobs=6, seed=11)
    sim.run(until=60.0)
    hub = next(h for h in sim.jobtracker.hubs if h.accurate)

    accurate = min(hub.accurate)
    with pytest.raises(RuntimeError, match="already accurate"):
        hub.promote(accurate)

    pooled = sorted(set(hub.member_ids) - hub.accurate)
    if pooled:
        with pytest.raises(RuntimeError, match="not accurate"):
            hub.demote(pooled[0])

    # an accurate node that is NOT demotable (busy slots, stored blocks,
    # or in-flight attempts) must refuse demotion
    busy = [n for n in sorted(hub.accurate) if not hub._demotable(n)]
    if busy:
        with pytest.raises(RuntimeError):
            hub.demote(busy[0])

    sim.run()
    sim.finalize()
    sim.close()


def test_mesoscale_rejects_strict_invariant_checking() -> None:
    spec = scale_spec(100, mesoscale=True)
    workload = synthesize_wl1(np.random.default_rng(3), n_jobs=4)
    config = ExperimentConfig(
        cluster_spec=spec, scheduler="fifo",
        dare=DareConfig.elephant_trap(), seed=3,
        check_invariants=True,
    )
    with pytest.raises(ValueError, match="event-accurate"):
        Simulation(config, workload)
