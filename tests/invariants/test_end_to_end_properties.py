"""Property harness: randomized end-to-end runs with the checker armed.

Every scenario replays a full workload through the complete stack —
engine, HDFS, MapReduce, DARE, optional Scarlett baseline, optional node
failures — with :class:`~repro.observability.invariants.InvariantChecker`
validating cross-component bookkeeping at every settled event.  A passing
run is the property; any accounting drift raises ``InvariantViolation``
with the trace tail.

``INVARIANT_EXAMPLES`` scales the randomized sweep (default 6; CI's
nightly job sets 500).  When hypothesis is installed it additionally
explores the seed space through the same scenario builder.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.observability.trace import RECORD_TYPES

from tests.invariants.scenarios import (
    BUDGET_CHOICES,
    P_CHOICES,
    POLICY_CHOICES,
    SCHEDULER_CHOICES,
    SPEC,
    WORKLOAD_CHOICES,
    Scenario,
    named_scenarios,
    random_scenario,
    run_scenario,
    scenario_from_params,
)

N_RANDOM = int(os.environ.get("INVARIANT_EXAMPLES", "6"))

try:
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the base image
    HAVE_HYPOTHESIS = False


# ---------------------------------------------------------------------------
# fixed coverage grid: greedy LRU/LFU, ElephantTrap, Scarlett, failures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("scenario", named_scenarios(), ids=lambda s: s.name)
def test_named_scenario_passes_with_checker_armed(scenario: Scenario) -> None:
    result = run_scenario(scenario)
    assert result.n_jobs == scenario.n_jobs
    assert result.trace_records_checked > 0
    assert result.invariant_sweeps > 0
    if scenario.failures:
        assert result.blocks_lost_replicas > 0
        assert result.data_loss_blocks == 0  # rf=3 survives <=2 crashes


def test_named_grid_covers_required_dimensions() -> None:
    grid = named_scenarios()
    policies = {s.dare.policy.value for s in grid}
    assert {"off", "greedy-lru", "greedy-lfu", "elephant-trap"} <= policies
    assert {s.scheduler for s in grid} == {"fifo", "fair", "fair-skip"}
    assert any(s.scarlett for s in grid)
    assert any(s.failures for s in grid)
    assert len(grid) >= 8


# ---------------------------------------------------------------------------
# seeded-random sweep (INVARIANT_EXAMPLES scales it)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(N_RANDOM))
def test_random_scenario_passes_with_checker_armed(seed: int) -> None:
    result = run_scenario(random_scenario(seed))
    assert result.trace_records_checked > 0


def test_random_scenarios_are_reproducible() -> None:
    assert random_scenario(42) == random_scenario(42)
    assert random_scenario(42) != random_scenario(43)


# ---------------------------------------------------------------------------
# trace schema: a traced run emits only known record types, in time order
# ---------------------------------------------------------------------------


def test_trace_jsonl_schema_and_ordering(tmp_path) -> None:
    from dataclasses import replace

    scenario = Scenario("traced-et", named_scenarios()[3].dare, n_jobs=8)
    path = tmp_path / "trace.jsonl"
    config = replace(scenario.to_config(), trace_path=str(path))
    run_scenario_with_config(scenario, config)
    lines = path.read_text().splitlines()
    assert lines, "trace file is empty"
    last_t = float("-inf")
    for line in lines:
        rec = json.loads(line)
        assert rec["type"] in RECORD_TYPES
        assert rec["t"] >= last_t
        last_t = rec["t"]


def run_scenario_with_config(scenario: Scenario, config):
    from repro.experiments.runner import run_experiment

    return run_experiment(config, scenario.build_workload())


# ---------------------------------------------------------------------------
# hypothesis-driven scenario exploration, one strategy per dimension
# ---------------------------------------------------------------------------
#
# Each scenario dimension is drawn independently and composed through
# scenario_from_params, so a failing example SHRINKS per dimension: toward
# the first choice of each sampled_from (off/fifo/wl1), the fewest jobs,
# and the empty failure plan.  The minimal counterexample hypothesis
# reports is therefore a readable description of the breaking workload —
# "lru/fifo/wl1, 6 jobs, node 1 fails at t=10" — not an opaque seed.

if HAVE_HYPOTHESIS:

    @st.composite
    def scenarios(draw) -> Scenario:
        """One full-stack scenario, every dimension independently drawn."""
        nodes = draw(st.lists(
            st.integers(min_value=1, max_value=SPEC.n_nodes - 1),
            unique=True,
            max_size=2,  # rf=3 survives any 2 crashes: the run completes
        ))
        failures = tuple(
            (float(10 * (i + 1)), node) for i, node in enumerate(nodes)
        )
        return scenario_from_params(
            policy=draw(st.sampled_from(POLICY_CHOICES)),
            scheduler=draw(st.sampled_from(SCHEDULER_CHOICES)),
            workload=draw(st.sampled_from(WORKLOAD_CHOICES)),
            n_jobs=draw(st.integers(min_value=6, max_value=14)),
            seed=draw(st.integers(min_value=0, max_value=10_000_000)),
            budget=draw(st.sampled_from(BUDGET_CHOICES)),
            p=draw(st.sampled_from(P_CHOICES)),
            threshold=draw(st.integers(min_value=1, max_value=3)),
            scarlett=draw(st.booleans()),
            failures=failures,
        )

    @settings(
        max_examples=max(2, N_RANDOM // 3),
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
        derandomize=True,
    )
    @given(scenario=scenarios())
    def test_hypothesis_scenarios_preserve_invariants(scenario: Scenario) -> None:
        result = run_scenario(scenario)
        assert result.trace_records_checked > 0
