"""Randomized end-to-end scenario generation for the invariant harness.

A :class:`Scenario` names one full-stack simulation cell — cluster, policy,
scheduler, baseline, failures, workload — small enough to run in seconds
with the :class:`~repro.observability.invariants.InvariantChecker` armed at
every settled event (``invariant_sweep_every`` deliberately tiny).

Two generators feed the tests:

* :func:`named_scenarios` — a fixed grid guaranteeing coverage of greedy
  LRU/LFU, ElephantTrap, the Scarlett baseline, failure injection, and all
  three schedulers;
* :func:`random_scenario` — seeded-random cells for the property sweep
  (`INVARIANT_EXAMPLES` controls how many; hypothesis, when installed,
  drives extra seeds through the same builder).

Both funnel through :func:`scenario_from_params`, a pure mapping from
independent dimensions (policy, scheduler, workload, failures, ...) to a
:class:`Scenario`.  The hypothesis property in
``test_end_to_end_properties`` draws each dimension separately and
composes them through the same function, so a failing example shrinks
*per dimension* — toward ``off``/``fifo``/no failures/fewest jobs — and
the minimal counterexample describes the workload that breaks, not just
an opaque seed.
"""

from __future__ import annotations

import dataclasses
import os
import random
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.baselines.scarlett import ScarlettConfig
from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig, Policy
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.workloads.swim import Workload, synthesize_wl1, synthesize_wl2

#: 1 master + 9 slaves: big enough for placement spread, small enough for CI
SPEC = CCT_SPEC._replace(n_nodes=10)


@dataclass(frozen=True)
class Scenario:
    """One reproducible end-to-end cell."""

    name: str
    dare: DareConfig
    scheduler: str = "fifo"
    workload: str = "wl1"
    n_jobs: int = 10
    seed: int = 20110926
    scarlett: bool = False
    failures: Tuple[Tuple[float, int], ...] = ()

    def to_config(self) -> ExperimentConfig:
        return ExperimentConfig(
            cluster_spec=SPEC,
            scheduler=self.scheduler,
            dare=self.dare,
            seed=self.seed,
            scarlett=ScarlettConfig(epoch_s=60.0) if self.scarlett else None,
            failures=self.failures,
            check_invariants=True,
            invariant_sweep_every=50,
        )

    def build_workload(self) -> Workload:
        rng = np.random.default_rng(self.seed)
        synth = synthesize_wl1 if self.workload == "wl1" else synthesize_wl2
        return synth(rng, n_jobs=self.n_jobs)


def run_scenario(scenario: Scenario) -> ExperimentResult:
    """Run one scenario with the checker armed; raises on any violation.

    When ``INVARIANT_TRACE_DIR`` is set (the CI property sweep does this),
    each run writes its JSONL trace there and removes it again on success —
    a failing scenario leaves its trace behind as a replayable artifact
    for ``python -m repro replay``.
    """
    config = scenario.to_config()
    trace_dir = os.environ.get("INVARIANT_TRACE_DIR", "")
    trace_path = ""
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        trace_path = os.path.join(trace_dir, f"{scenario.name}.jsonl")
        config = dataclasses.replace(config, trace_path=trace_path)
    result = run_experiment(config, scenario.build_workload())
    if trace_path:
        os.remove(trace_path)
    return result


def named_scenarios() -> Tuple[Scenario, ...]:
    """The fixed coverage grid (policy x scheduler x baseline x failures)."""
    return (
        Scenario("off-fifo", DareConfig.off()),
        Scenario("lru-fifo", DareConfig.greedy_lru(budget=0.15)),
        Scenario(
            "lfu-fair",
            DareConfig(policy=Policy.GREEDY_LFU, budget=0.1),
            scheduler="fair",
        ),
        Scenario("et-fifo", DareConfig.elephant_trap(p=0.5, threshold=1)),
        Scenario(
            "et-fair-skip",
            DareConfig.elephant_trap(p=1.0, threshold=2, budget=0.1),
            scheduler="fair-skip",
            workload="wl2",
        ),
        Scenario("off-scarlett", DareConfig.off(), scarlett=True, n_jobs=12),
        Scenario("et-scarlett", DareConfig.elephant_trap(p=0.3), scarlett=True),
        Scenario(
            "lru-failures",
            DareConfig.greedy_lru(budget=0.2),
            failures=((25.0, 2), (70.0, 6)),
            n_jobs=12,
        ),
        Scenario(
            "et-failures-scarlett",
            DareConfig.elephant_trap(p=0.7, threshold=1, budget=0.1),
            scarlett=True,
            failures=((40.0, 4),),
            scheduler="fair",
            n_jobs=12,
        ),
    )


#: the independent dimensions a property-based shrinker should minimize,
#: each with its simplest value first
POLICY_CHOICES = ("off", "lru", "lfu", "et")
SCHEDULER_CHOICES = ("fifo", "fair", "fair-skip")
WORKLOAD_CHOICES = ("wl1", "wl2")
BUDGET_CHOICES = (0.05, 0.1, 0.2, 0.4)
P_CHOICES = (0.1, 0.3, 0.5, 1.0)


def scenario_from_params(
    policy: str,
    scheduler: str,
    workload: str,
    n_jobs: int,
    seed: int,
    budget: float = 0.2,
    p: float = 0.3,
    threshold: int = 1,
    scarlett: bool = False,
    failures: Tuple[Tuple[float, int], ...] = (),
    name: str = "",
) -> Scenario:
    """Pure mapping from independent scenario dimensions to a cell.

    Every generator (seeded-random, hypothesis) builds scenarios through
    this function, so each dimension can vary — and shrink — on its own.
    ``p`` and ``threshold`` only matter for the ElephantTrap policy,
    ``budget`` for any enabled policy.
    """
    if policy == "off":
        dare = DareConfig.off()
    elif policy == "lru":
        dare = DareConfig.greedy_lru(budget=budget)
    elif policy == "lfu":
        dare = DareConfig(policy=Policy.GREEDY_LFU, budget=budget)
    elif policy == "et":
        dare = DareConfig.elephant_trap(p=p, threshold=threshold, budget=budget)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return Scenario(
        name=name or f"{policy}-{scheduler}-{workload}-j{n_jobs}-s{seed}",
        dare=dare,
        scheduler=scheduler,
        workload=workload,
        n_jobs=n_jobs,
        seed=seed,
        scarlett=scarlett,
        failures=failures,
    )


def random_scenario(seed: int) -> Scenario:
    """Derive a pseudo-random scenario cell from ``seed``."""
    rng = random.Random(seed)
    policy = rng.choice(["off", "lru", "lfu", "et", "et"])
    failures: Tuple[Tuple[float, int], ...] = ()
    if rng.random() < 0.35:
        # at most two distinct slave crashes: with replication 3 no block
        # can lose every replica, so the run always completes
        nodes = rng.sample(range(1, SPEC.n_nodes), rng.randint(1, 2))
        failures = tuple(
            sorted((round(rng.uniform(10.0, 150.0), 1), n) for n in nodes)
        )
    return scenario_from_params(
        policy=policy,
        scheduler=rng.choice(SCHEDULER_CHOICES),
        workload=rng.choice(WORKLOAD_CHOICES),
        n_jobs=rng.randint(8, 14),
        seed=seed,
        budget=rng.choice(BUDGET_CHOICES),
        p=rng.choice(P_CHOICES),
        threshold=rng.randint(1, 3),
        scarlett=rng.random() < 0.25,
        failures=failures,
        name=f"random-{seed}",
    )
