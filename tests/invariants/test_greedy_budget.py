"""Satellite: greedy-mode budget eviction under interleaved remote reads.

Drives Algorithm 1 through a remote-read / local-refresh interleaving with
the :class:`InvariantChecker` armed at every record, asserting that the LRU
order decides the victim and that the budget is never exceeded at any point
mid-sequence (the checker validates after *every* charge/refund).
"""

from __future__ import annotations

import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.observability.invariants import InvariantChecker
from repro.observability.trace import (
    BLOCK_EVICTED,
    BUDGET_CHARGE,
    BUDGET_REFUND,
    HEARTBEAT,
    RingBufferSink,
    Tracer,
)


@pytest.fixture
def rig(loaded_namenode, streams):
    """A greedy-LRU service with a 2-block budget, checker armed."""
    tracer = Tracer()
    ring = RingBufferSink(capacity=1024)
    tracer.add_sink(ring)
    loaded_namenode.tracer = tracer
    for dn in loaded_namenode.datanodes.values():
        dn.tracer = tracer
    service = DareReplicationService(
        DareConfig.greedy_lru(), loaded_namenode, streams, tracer=tracer
    )
    for dn in loaded_namenode.datanodes.values():
        dn.dynamic_capacity_bytes = 2 * loaded_namenode.block_size
    checker = InvariantChecker(
        loaded_namenode, dare=service, full_sweep_every=1
    ).attach(tracer)
    return loaded_namenode, service, tracer, ring, checker


def pick_node_and_blocks(namenode):
    """A node plus one block from each of the three files it doesn't hold."""
    by_file = {}
    for node_id, dn in namenode.datanodes.items():
        by_file.clear()
        for block in namenode.blocks.values():
            if not dn.has_block(block.block_id) and block.file_id not in by_file:
                by_file[block.file_id] = block
        if len(by_file) == 3:
            return node_id, list(by_file.values())
    raise AssertionError("no node misses a block of every file; enlarge namespace")


class TestGreedyBudgetEviction:
    def test_lru_order_respected_under_interleaving(self, rig):
        namenode, service, tracer, ring, checker = rig
        node, (a, b, c) = pick_node_and_blocks(namenode)
        dn = namenode.datanodes[node]

        # two remote reads fill the 2-block budget: [a, b] (a is LRU)
        assert service.on_map_task(node, a, data_local=False, now=1.0)
        assert service.on_map_task(node, b, data_local=False, now=2.0)
        assert dn.dynamic_bytes_used == a.size_bytes + b.size_bytes

        # interleaved local read refreshes a -> b becomes the LRU victim
        service.on_map_task(node, a, data_local=True, now=3.0)

        # third remote read must evict b, not the freshly used a
        assert service.on_map_task(node, c, data_local=False, now=4.0)
        assert dn.has_dynamic(a.block_id)
        assert not dn.has_dynamic(b.block_id)
        assert dn.has_dynamic(c.block_id)

        evicted = [r for r in ring.records if r.type == BLOCK_EVICTED]
        assert [r.data["block"] for r in evicted] == [b.block_id]

        # settle: heartbeat-triggered strict sweep + replica-map check pass
        namenode.process_heartbeat(node, 5.0)
        assert checker.sweeps_run > 0

    def test_budget_never_exceeded_mid_sequence(self, rig):
        namenode, service, tracer, ring, checker = rig
        node, blocks = pick_node_and_blocks(namenode)
        dn = namenode.datanodes[node]
        # hammer the node with alternating remote reads; every record is
        # validated by the checker, and every charge/refund stays in budget
        now = 1.0
        for _ in range(4):
            for block in blocks:
                if not dn.has_block(block.block_id):
                    service.on_map_task(node, block, data_local=False, now=now)
                else:
                    service.on_map_task(node, block, data_local=True, now=now)
                now += 1.0
        for rec in ring.records:
            if rec.type in (BUDGET_CHARGE, BUDGET_REFUND):
                assert 0 <= rec.data["used"] <= rec.data["capacity"]
        assert checker.records_seen == len(ring.records)
        tracer.emit(HEARTBEAT, now, node=node)  # final strict sweep
