"""Fixed-seed determinism: traces are byte-identical across reruns.

The hot-path optimizations (inlined scheduling, heap compaction, heartbeat
event reuse, locality indexing) and the sampling profiler are all required
to leave simulation behaviour untouched.  The proof is the JSONL trace: for
every policy x scheduler cell, the same seed must produce the same bytes —
run twice, and again with the profiler on.
"""

import itertools

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.replay import diff_traces
from repro.workloads.swim import synthesize_wl1

POLICIES = {
    "off": DareConfig.off(),
    "lru": DareConfig.greedy_lru(),
    "et": DareConfig.elephant_trap(),
}
SCHEDULERS = ("fifo", "fair", "fair-skip")
SEED = 20110926
N_JOBS = 12


def _run_cell(policy, scheduler, trace_path, profile=False, engine_events=False):
    rng = np.random.default_rng(SEED)
    workload = synthesize_wl1(rng, n_jobs=N_JOBS)
    config = ExperimentConfig(
        scheduler=scheduler,
        dare=POLICIES[policy],
        seed=SEED,
        trace_path=str(trace_path),
        trace_engine_events=engine_events,
        profile=profile,
    )
    return run_experiment(config, workload)


@pytest.mark.parametrize(
    "policy,scheduler", list(itertools.product(POLICIES, SCHEDULERS))
)
def test_cell_trace_is_reproducible(policy, scheduler, tmp_path):
    """Same seed, same bytes — twice plain, once under the profiler."""
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    c = tmp_path / "profiled.jsonl"
    _run_cell(policy, scheduler, a)
    _run_cell(policy, scheduler, b)
    result = _run_cell(policy, scheduler, c, profile=True)
    bytes_a = a.read_bytes()
    assert bytes_a == b.read_bytes(), f"{policy}/{scheduler}: rerun diverged"
    assert bytes_a == c.read_bytes(), f"{policy}/{scheduler}: profiler changed the run"
    assert result.profiler is not None and result.profiler.samples > 0


def test_engine_event_firehose_is_reproducible(tmp_path):
    """The per-callback firehose pins label and seq of every event."""
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _run_cell("et", "fair", a, engine_events=True)
    _run_cell("et", "fair", b, profile=True, engine_events=True)
    assert a.read_bytes() == b.read_bytes()
    diff = diff_traces(str(a), str(b))
    assert diff.identical


# -- scale modes: batched heartbeats and mesoscale are deterministic too ------


def _run_scale_cell(mode, trace_path, n_nodes=150):
    from repro.cluster.cluster import scale_spec

    spec = scale_spec(
        n_nodes,
        mesoscale=(mode == "meso"),
        hb_batch=True if mode == "batch" else None,
    )
    rng = np.random.default_rng(SEED)
    workload = synthesize_wl1(rng, n_jobs=N_JOBS)
    config = ExperimentConfig(
        cluster_spec=spec,
        scheduler="fair",
        dare=POLICIES["et"],
        seed=SEED,
        trace_path=str(trace_path),
    )
    return run_experiment(config, workload)


@pytest.mark.parametrize("mode", ["accurate", "batch", "meso"])
def test_scale_cell_trace_is_reproducible(mode, tmp_path):
    """scale_spec clusters replay byte-identically in every heartbeat mode."""
    a = tmp_path / "a.jsonl"
    b = tmp_path / "b.jsonl"
    _run_scale_cell(mode, a)
    _run_scale_cell(mode, b)
    assert a.read_bytes() == b.read_bytes(), f"{mode}: rerun diverged"


# -- sweep executor: identical bytes regardless of execution strategy ---------


def _sweep_cells():
    from repro.experiments.sweep import SweepCell, WorkloadSpec

    workload = WorkloadSpec("wl1", N_JOBS, SEED)
    return [
        SweepCell(
            ExperimentConfig(scheduler=scheduler, dare=POLICIES[policy], seed=SEED),
            workload,
            tag=f"{scheduler}/{policy}",
        )
        for policy, scheduler in itertools.product(POLICIES, SCHEDULERS)
    ]


def _result_bytes(outcomes):
    from repro.experiments.serialize import result_to_json
    from repro.experiments.sweep import results_of

    return [result_to_json(r) for r in results_of(outcomes)]


def test_sweep_results_identical_across_worker_counts(tmp_path):
    """Serial, 2-worker, 4-worker, and cache-hit runs: equal bytes per cell."""
    from repro.experiments.sweep import ResultCache, run_cells

    cells = _sweep_cells()
    serial = _result_bytes(run_cells(cells, jobs=1))

    # a fresh cache per worker count, so every run really computes its cells
    for jobs in (2, 4):
        cache = ResultCache(tmp_path / f"cache{jobs}")
        parallel = _result_bytes(run_cells(cells, jobs=jobs, cache=cache))
        assert cache.hits == 0 and cache.misses == len(cells)
        assert parallel == serial, f"jobs={jobs} diverged from the serial path"

    # the second pass with the populated cache must reproduce the same bytes
    cached = _result_bytes(run_cells(cells, jobs=1, cache=cache))
    assert cache.hits == len(cells)
    assert cached == serial


def test_sweep_serial_path_matches_run_experiment():
    """jobs=1 runs the legacy in-process loop: results compare equal live."""
    from repro.experiments.sweep import results_of, run_cells

    cells = _sweep_cells()[:2]
    via_sweep = results_of(run_cells(cells, jobs=1))
    for cell, result in zip(cells, via_sweep):
        rng = np.random.default_rng(SEED)
        direct = run_experiment(cell.config, synthesize_wl1(rng, n_jobs=N_JOBS))
        assert result.job_locality == direct.job_locality
        assert result.gmtt_s == direct.gmtt_s
        assert result.events_processed == direct.events_processed
