"""Property-based tests for the extension subsystems (hypothesis)."""

import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.scarlett import ScarlettConfig, ScarlettService
from repro.cluster.cluster import Cluster
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.namenode import NameNode
from repro.metrics.traffic import TrafficMeter
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from tests.conftest import SMALL_SPEC


def make_namenode(file_blocks):
    cluster = Cluster(SMALL_SPEC, RandomStreams(42))
    nn = NameNode(cluster)
    for i, nb in enumerate(file_blocks):
        nn.create_file(f"f{i}", nb * DEFAULT_BLOCK_SIZE)
    return nn


def make_scarlett(nn, budget):
    return ScarlettService(
        ScarlettConfig(epoch_s=100.0, budget=budget),
        nn,
        Engine(),
        TrafficMeter(),
        random.Random(3),
    )


# ---------------------------------------------------------------------------
# Scarlett water-filling
# ---------------------------------------------------------------------------


@given(
    st.lists(st.integers(1, 6), min_size=2, max_size=10),
    st.lists(st.integers(0, 50), min_size=2, max_size=10),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_water_fill_respects_budget(file_blocks, counts, budget):
    nn = make_namenode(file_blocks)
    svc = make_scarlett(nn, budget)
    observed = Counter(
        {f"f{i}": c for i, c in enumerate(counts[: len(file_blocks)]) if c > 0}
    )
    extra = svc._water_fill(observed)
    spent = sum(nn.file(name).size_bytes * k for name, k in extra.items())
    assert spent <= svc.budget_bytes()
    # only observed files receive replicas, and never beyond the slave count
    for name, k in extra.items():
        assert observed[name] > 0
        assert nn.file(name).replication + k <= len(nn.datanodes)
        assert k >= 1


@given(st.integers(1, 4), st.integers(3, 6), st.integers(1, 100))
@settings(max_examples=40, deadline=None)
def test_water_fill_prefers_hotter_files(blocks_each, n_files, hot_count):
    # equal file sizes: affordability can't override hotness ordering
    nn = make_namenode([blocks_each] * n_files)
    svc = make_scarlett(nn, budget=0.15)
    observed = Counter({"f0": hot_count + 10, "f1": 1})
    extra = svc._water_fill(observed)
    # whenever anything is allocated, the hottest file gets at least as much
    if extra:
        assert extra.get("f0", 0) >= extra.get("f1", 0)


# ---------------------------------------------------------------------------
# TrafficMeter
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(TrafficMeter.CATEGORIES),
            st.integers(0, 10**12),
        ),
        max_size=60,
    )
)
def test_traffic_total_is_sum_of_categories(records):
    m = TrafficMeter()
    for cat, nbytes in records:
        m.record(cat, nbytes)
    assert m.total_bytes == sum(n for _, n in records)
    per_cat = Counter()
    for cat, nbytes in records:
        per_cat[cat] += nbytes
    for cat in TrafficMeter.CATEGORIES:
        assert m.bytes(cat) == per_cat[cat]


# ---------------------------------------------------------------------------
# NameNode failure bookkeeping
# ---------------------------------------------------------------------------


@given(st.integers(1, 7), st.lists(st.integers(1, 5), min_size=1, max_size=6))
@settings(max_examples=40, deadline=None)
def test_fail_node_leaves_consistent_locations(victim, file_blocks):
    nn = make_namenode(file_blocks)
    lost = nn.fail_node(victim)
    # the victim appears in no location set afterwards
    for bid, locs in nn._locations.items():
        assert victim not in locs
    # reported remaining counts match the map
    for bid, remaining in lost.items():
        assert len(nn.locations(bid)) == remaining
    # under-replication is detected consistently
    for bid, count in nn.under_replicated().items():
        assert count < nn.blocks[bid].inode.replication
