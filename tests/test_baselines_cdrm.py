"""Unit/integration tests: the CDRM availability-driven baseline."""

import numpy as np
import pytest

from repro.baselines.cdrm import CdrmConfig
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


class TestConfig:
    def test_defaults_valid(self):
        CdrmConfig().validate()

    @pytest.mark.parametrize(
        "kw",
        [
            {"availability_target": 1.0},
            {"availability_target": 0.0},
            {"node_availability": 0.0},
            {"period_s": 0.0},
            {"max_concurrent": 0},
        ],
    )
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            CdrmConfig()._replace(**kw).validate()

    def test_target_replicas_formula(self):
        # 1-(1-0.8)^r >= 0.9999  ->  0.2^r <= 1e-4  ->  r = 6 (0.2^5=3.2e-4)
        cfg = CdrmConfig(availability_target=0.9999, node_availability=0.8)
        assert cfg.target_replicas == 6

    def test_high_node_availability_needs_fewer_replicas(self):
        lo = CdrmConfig(node_availability=0.6).target_replicas
        hi = CdrmConfig(node_availability=0.95).target_replicas
        assert hi < lo


class TestCdrmRuns:
    @pytest.fixture(scope="class")
    def wl(self):
        return synthesize_wl1(np.random.default_rng(7), n_jobs=60)

    @pytest.fixture(scope="class")
    def cdrm_cfg(self):
        return CdrmConfig(
            availability_target=0.999, node_availability=0.8, period_s=60.0,
            max_concurrent=16,
        )

    def test_replicas_reach_target(self, wl, cdrm_cfg):

        r = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, cdrm=cdrm_cfg), wl
        )
        assert r.cdrm_replicas_created > 0
        assert r.traffic_bytes["rebalancing"] > 0

    def test_availability_replication_is_uniform_not_popular(self, wl, cdrm_cfg):
        """CDRM treats every block alike — extra replicas scale with the
        *data set*, not with popularity (the paper's contrast)."""
        r = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, cdrm=cdrm_cfg), wl
        )
        dataset_blocks = sum(f.n_blocks for f in wl.catalog.files)
        target_extra = (cdrm_cfg.target_replicas - 3) * dataset_blocks
        # most of the uniform deficit gets filled (copies race the run end)
        assert r.cdrm_replicas_created > 0.5 * target_extra

    def test_dare_beats_cdrm_on_locality_per_byte(self, wl, cdrm_cfg):
        cdrm = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, cdrm=cdrm_cfg), wl
        )
        dare = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, dare=DareConfig.elephant_trap()),
            wl,
        )
        assert dare.traffic_bytes["rebalancing"] == 0
        assert cdrm.traffic_bytes["rebalancing"] > 0
        # per replication byte spent, DARE's locality is incomparably better
        assert dare.job_locality > 0.6 * cdrm.job_locality

    def test_deterministic(self, wl, cdrm_cfg):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, cdrm=cdrm_cfg)
        a = run_experiment(cfg, wl)
        b = run_experiment(cfg, wl)
        assert a.cdrm_replicas_created == b.cdrm_replicas_created
        assert a.gmtt_s == b.gmtt_s
