"""Unit tests: disk bandwidth models (Table II calibration)."""

import numpy as np

from repro.cluster.disk import CCT_DISK, EC2_DISK, DiskModel


def samples(params, n=2000, seed=5):
    model = DiskModel(params, np.random.default_rng(seed))
    return np.asarray([model.sample() for _ in range(n)])


class TestCctDisk:
    def test_mean_matches_table2(self):
        s = samples(CCT_DISK)
        assert 152 < s.mean() < 163  # paper: 157.8

    def test_clipped_to_observed_range(self):
        s = samples(CCT_DISK)
        assert s.min() >= CCT_DISK.lo
        assert s.max() <= CCT_DISK.hi

    def test_tight_dispersion(self):
        s = samples(CCT_DISK)
        assert s.std() < 10  # paper: 8.02


class TestEc2Disk:
    def test_mean_matches_table2(self):
        s = samples(EC2_DISK)
        assert 125 < s.mean() < 160  # paper: 141.5

    def test_wide_dispersion_from_sharing(self):
        s = samples(EC2_DISK)
        assert s.std() > 50  # paper: 74.2

    def test_burst_mode_reaches_high_bandwidth(self):
        s = samples(EC2_DISK)
        assert s.max() > 300  # whole-disk bursts (paper max: 357.9)

    def test_shared_mode_floors_low(self):
        s = samples(EC2_DISK)
        assert s.min() < 80  # heavily shared spindles (paper min: 67.1)

    def test_sample_nodes_shape(self):
        model = DiskModel(EC2_DISK, np.random.default_rng(1))
        arr = model.sample_nodes(12)
        assert arr.shape == (12,)
        assert (arr > 0).all()
