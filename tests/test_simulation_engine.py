"""Unit tests: the discrete-event engine."""

import pytest

from repro.simulation.engine import Engine, SimulationError


class TestScheduling:
    def test_run_fires_in_time_order(self, engine):
        fired = []
        engine.schedule(2.0, lambda: fired.append("b"))
        engine.schedule(1.0, lambda: fired.append("a"))
        engine.run()
        assert fired == ["a", "b"]

    def test_clock_advances_to_event_time(self, engine):
        seen = []
        engine.schedule(4.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4.5]
        assert engine.now == 4.5

    def test_schedule_in_is_relative(self, engine):
        seen = []
        engine.schedule(3.0, lambda: engine.schedule_in(2.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5.0]

    def test_schedule_in_past_raises(self, engine):
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule(1.0, lambda: None)

    def test_negative_delay_raises(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule_in(-1.0, lambda: None)

    def test_cancel_prevents_firing(self, engine):
        fired = []
        ev = engine.schedule(1.0, lambda: fired.append(1))
        engine.cancel(ev)
        engine.run()
        assert fired == []

    def test_callbacks_can_schedule_more_work(self, engine):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule_in(1.0, lambda: chain(n + 1))

        engine.schedule(0.0, lambda: chain(0))
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestRunUntil:
    def test_until_pauses_before_later_events(self, engine):
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(10.0, lambda: fired.append(10))
        engine.run(until=5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run()
        assert fired == [1, 10]

    def test_until_advances_clock_when_queue_drains(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run(until=7.0)
        assert engine.now == 7.0


class TestStopAndLimits:
    def test_stop_halts_loop(self, engine):
        fired = []
        engine.schedule(1.0, lambda: (fired.append(1), engine.stop()))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run()
        assert fired == [(1, None)] or fired == [1]  # tuple from lambda
        assert engine.pending == 1

    def test_max_events_guards_runaway(self):
        engine = Engine(max_events=10)

        def loop():
            engine.schedule_in(1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run()

    def test_events_processed_counter(self, engine):
        for t in range(5):
            engine.schedule(float(t), lambda: None)
        engine.run()
        assert engine.events_processed == 5

    def test_reset_rewinds(self, engine):
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending == 0
        assert engine.events_processed == 0

    def test_reentrant_run_rejected(self, engine):
        def inner():
            engine.run()

        engine.schedule(0.0, inner)
        with pytest.raises(SimulationError, match="re-entrant"):
            engine.run()


class TestCancelSemantics:
    """Satellite coverage for Engine.cancel (ISSUE 1)."""

    def test_cancelled_event_never_fires(self, engine):
        fired = []
        keep = engine.schedule(1.0, lambda: fired.append("keep"))
        drop = engine.schedule(2.0, lambda: fired.append("drop"))
        engine.cancel(drop)
        engine.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_cancel_mid_run_prevents_firing(self, engine):
        fired = []
        later = engine.schedule(5.0, lambda: fired.append("later"))
        engine.schedule(1.0, lambda: engine.cancel(later))
        engine.run()
        assert fired == []
        assert engine.now == 1.0  # the clock never reached the cancelled event

    def test_cancel_already_fired_event_is_noop(self, engine):
        fired = []
        ev = engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(2.0, lambda: fired.append(2))
        engine.run(until=1.5)
        assert fired == [1] and ev.fired
        engine.cancel(ev)  # must not corrupt the live count
        assert engine.pending == 1
        engine.cancel(ev)
        assert engine.pending == 1
        engine.run()
        assert fired == [1, 2]
        assert engine.pending == 0

    def test_double_cancel_is_noop(self, engine):
        ev = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(ev)
        assert engine.pending == 1
        engine.cancel(ev)
        assert engine.pending == 1

    def test_events_processed_excludes_cancelled(self, engine):
        fired = []
        for t in range(4):
            engine.schedule(float(t), lambda t=t: fired.append(t))
        victim = engine.schedule(1.5, lambda: fired.append("victim"))
        engine.cancel(victim)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.events_processed == 4  # the cancelled event is not counted

    def test_pending_count_tracks_cancellations(self, engine):
        evs = [engine.schedule(float(t), lambda: None) for t in range(3)]
        assert engine.pending == 3
        engine.cancel(evs[0])
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0
