"""Unit tests: NameNode metadata, placement, and heartbeat control plane."""

import pytest

from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.protocol import DNA_DYNREPL, DatanodeCommand


class TestNamespace:
    def test_create_file_allocates_blocks(self, namenode):
        f = namenode.create_file("a", 3 * DEFAULT_BLOCK_SIZE)
        assert f.n_blocks == 3
        assert namenode.file("a") is f

    def test_duplicate_name_rejected(self, namenode):
        namenode.create_file("a", DEFAULT_BLOCK_SIZE)
        with pytest.raises(ValueError):
            namenode.create_file("a", DEFAULT_BLOCK_SIZE)

    def test_missing_file_raises(self, namenode):
        with pytest.raises(FileNotFoundError):
            namenode.file("ghost")

    def test_block_ids_globally_unique(self, namenode):
        a = namenode.create_file("a", 2 * DEFAULT_BLOCK_SIZE)
        b = namenode.create_file("b", 2 * DEFAULT_BLOCK_SIZE)
        ids = [blk.block_id for blk in a.blocks + b.blocks]
        assert len(set(ids)) == 4

    def test_total_dataset_bytes(self, loaded_namenode):
        assert loaded_namenode.total_dataset_bytes == 10 * DEFAULT_BLOCK_SIZE


class TestInitialPlacement:
    def test_each_block_gets_rf_replicas(self, namenode):
        f = namenode.create_file("a", 4 * DEFAULT_BLOCK_SIZE, replication=3)
        for blk in f.blocks:
            assert namenode.replica_count(blk.block_id) == 3

    def test_replicas_on_distinct_slaves(self, namenode):
        f = namenode.create_file("a", 4 * DEFAULT_BLOCK_SIZE, replication=3)
        for blk in f.blocks:
            locs = namenode.locations(blk.block_id)
            assert len(locs) == len(set(locs))
            assert all(namenode.cluster.nodes[n].is_master is False for n in locs)

    def test_datanodes_actually_store_replicas(self, namenode):
        f = namenode.create_file("a", 2 * DEFAULT_BLOCK_SIZE, replication=2)
        for blk in f.blocks:
            for node_id in namenode.locations(blk.block_id):
                assert namenode.datanode(node_id).has_block(blk.block_id)

    def test_rf_capped_at_slave_count(self, namenode):
        f = namenode.create_file("a", DEFAULT_BLOCK_SIZE, replication=100)
        assert namenode.replica_count(f.blocks[0].block_id) == len(namenode.datanodes)

    def test_is_local(self, namenode):
        f = namenode.create_file("a", DEFAULT_BLOCK_SIZE)
        bid = f.blocks[0].block_id
        loc = next(iter(namenode.locations(bid)))
        assert namenode.is_local(bid, loc)


class TestHeartbeatControlPlane:
    def test_dynrepl_becomes_visible_on_heartbeat(self, loaded_namenode):
        nn = loaded_namenode
        blk = nn.file("hot").blocks[0]
        outsider = next(
            nid for nid in nn.datanodes if nid not in nn.locations(blk.block_id)
        )
        dn = nn.datanode(outsider)
        dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE
        dn.insert_dynamic(blk, now=1.0)
        # not visible until the heartbeat delivers the DNA_DYNREPL
        assert outsider not in nn.locations(blk.block_id)
        nn.process_heartbeat(outsider, now=2.0)
        assert outsider in nn.locations(blk.block_id)

    def test_invalidate_removes_from_view(self, loaded_namenode):
        nn = loaded_namenode
        blk = nn.file("hot").blocks[0]
        outsider = next(
            nid for nid in nn.datanodes if nid not in nn.locations(blk.block_id)
        )
        dn = nn.datanode(outsider)
        dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE
        dn.insert_dynamic(blk, 1.0)
        nn.process_heartbeat(outsider, 2.0)
        dn.mark_for_deletion(blk.block_id, 3.0)
        nn.process_heartbeat(outsider, 4.0)
        assert outsider not in nn.locations(blk.block_id)
        assert blk.block_id not in dn.dynamic_blocks  # physically dropped

    def test_command_log_records_applied_messages(self, loaded_namenode):
        nn = loaded_namenode
        blk = nn.file("hot").blocks[0]
        outsider = next(
            nid for nid in nn.datanodes if nid not in nn.locations(blk.block_id)
        )
        dn = nn.datanode(outsider)
        dn.dynamic_capacity_bytes = DEFAULT_BLOCK_SIZE
        dn.insert_dynamic(blk, 1.0)
        nn.process_heartbeat(outsider, 2.0)
        assert any(c.op == DNA_DYNREPL for c in nn.command_log)

    def test_heartbeat_with_empty_outbox_is_noop(self, loaded_namenode):
        before = dict(loaded_namenode._locations)
        loaded_namenode.process_heartbeat(1, now=1.0)
        assert loaded_namenode._locations == before

    def test_integrity_check_passes_on_fresh_namespace(self, loaded_namenode):
        loaded_namenode.check_integrity()

    def test_integrity_check_detects_phantom_replica(self, loaded_namenode):
        nn = loaded_namenode
        blk = nn.file("hot").blocks[0]
        phantom = next(
            nid for nid in nn.datanodes if nid not in nn.locations(blk.block_id)
        )
        nn._locations[blk.block_id].add(phantom)
        with pytest.raises(AssertionError, match="does not store"):
            nn.check_integrity()


class TestProtocolValidation:
    def test_unknown_op_rejected(self):
        cmd = DatanodeCommand("DNA_WHATEVER", 1, 2, 0.0)
        with pytest.raises(ValueError):
            cmd.validate()

    def test_negative_ids_rejected(self):
        with pytest.raises(ValueError):
            DatanodeCommand(DNA_DYNREPL, -1, 2, 0.0).validate()

    def test_constructors(self):
        a = DatanodeCommand.dynrepl(1, 2, 3.0)
        b = DatanodeCommand.invalidate(1, 2, 3.0)
        a.validate()
        b.validate()
        assert a.op != b.op
