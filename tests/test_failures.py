"""Unit/integration tests: failure injection and re-replication."""

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.failures.injector import FailurePlan
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def wl():
    return synthesize_wl1(np.random.default_rng(7), n_jobs=60)


class TestFailurePlan:
    def test_valid_plan(self):
        FailurePlan.at((10.0, 1), (20.0, 2)).validate(8)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FailurePlan.at((-1.0, 1)).validate(8)

    def test_master_cannot_fail(self):
        with pytest.raises(ValueError, match="not a slave"):
            FailurePlan.at((1.0, 0)).validate(8)

    def test_out_of_range_node_rejected(self):
        with pytest.raises(ValueError):
            FailurePlan.at((1.0, 99)).validate(8)

    def test_double_failure_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            FailurePlan.at((1.0, 3), (2.0, 3)).validate(8)


class TestFailureRuns:
    @pytest.fixture(scope="class")
    def failed_run(self, wl):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, failures=((120.0, 3),))
        return run_experiment(cfg, wl)

    def test_all_jobs_still_complete(self, failed_run, wl):
        assert failed_run.n_jobs == wl.n_jobs

    def test_replicas_were_lost_and_repaired(self, failed_run):
        assert failed_run.blocks_lost_replicas > 0
        assert failed_run.repairs_completed > 0
        assert failed_run.data_loss_blocks == 0  # rf 3, one failure

    def test_repair_traffic_recorded(self, failed_run):
        assert failed_run.traffic_bytes["re_replication"] > 0

    def test_no_tasks_run_on_dead_node_after_failure(self, failed_run):
        for rec in failed_run.collector.map_records:
            if rec.node_id == 3:
                assert rec.start_time < 120.0 + 1e-9

    def test_replication_factors_restored(self, wl):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, failures=((120.0, 3),))
        # re-run so we can inspect the namenode through the collector-free API

        result = run_experiment(cfg, wl)
        # repairs completed >= blocks that were under-replicated and fixable
        assert result.repairs_completed >= result.blocks_lost_replicas * 0.5

    def test_determinism_under_failures(self, wl):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, failures=((120.0, 3),))
        a = run_experiment(cfg, wl)
        b = run_experiment(cfg, wl)
        assert a.gmtt_s == b.gmtt_s
        assert a.repairs_completed == b.repairs_completed


class TestTaskRequeue:
    def test_in_flight_tasks_requeued(self, wl):
        # fail a node very early, while the first burst is running
        first_burst = min(s.submit_time for s in wl.specs)
        cfg = ExperimentConfig(
            cluster_spec=SMALL_SPEC,
            failures=tuple((first_burst + 3.0 + i, n) for i, n in enumerate((2, 5))),
        )
        r = run_experiment(cfg, wl)
        assert r.n_jobs == wl.n_jobs  # everything still completes
        # with two nodes dying mid-burst some attempts must have been killed
        assert r.tasks_requeued > 0

    def test_locality_counts_include_killed_attempts(self, wl):
        first_burst = min(s.submit_time for s in wl.specs)
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, failures=((first_burst + 3.0, 2),))
        r = run_experiment(cfg, wl)
        # killed attempts stay in the locality counters (like Hadoop's),
        # so the total is the map count plus the re-executed attempts
        assert r.locality.total >= wl.total_map_tasks()


class TestDareAvailabilityClaim:
    def test_dare_replicas_reduce_repair_need(self, wl):
        """Section IV-B: DARE replicas are first-order replicas and
        contribute to availability — fewer blocks need repair."""
        plan = ((400.0, 3),)
        vanilla = run_experiment(
            ExperimentConfig(cluster_spec=SMALL_SPEC, failures=plan), wl
        )
        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC,
                failures=plan,
                dare=DareConfig.elephant_trap(budget=0.4),
            ),
            wl,
        )
        # same failure; DARE's extra replicas keep more blocks at/above rf
        assert dare.repairs_completed <= vanilla.repairs_completed
