"""The sweep executor: cache semantics, sharding, crash/timeout isolation."""

import json
import multiprocessing as mp
import os
import threading

import pytest

from repro.core.config import DareConfig
from repro.experiments import sweep as sweep_mod
from repro.experiments.runner import ExperimentConfig
from repro.experiments.serialize import (
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
    result_to_json,
)
from repro.experiments.sweep import (
    ResultCache,
    SweepCell,
    SweepError,
    WorkloadSpec,
    cache_key,
    dedupe_cells,
    parse_shard,
    results_of,
    run_cells,
    shard_cells,
)

SEED = 20110926
N_JOBS = 6

needs_fork = pytest.mark.skipif(
    mp.get_start_method() != "fork",
    reason="crash-injection monkeypatching needs fork-inherited workers",
)


def _cell(tag="cell", scheduler="fifo", dare=None, seed=SEED, **config_kwargs):
    config = ExperimentConfig(
        scheduler=scheduler,
        dare=dare or DareConfig.elephant_trap(),
        seed=seed,
        **config_kwargs,
    )
    return SweepCell(config, WorkloadSpec("wl1", N_JOBS, seed), tag=tag)


# -- serialization round-trips ------------------------------------------------


class TestSerialization:
    def test_config_round_trip_is_exact(self):
        config = _cell(failures=((10.0, 3),), fair_delay_s=1.5).config
        assert config_from_dict(config_to_dict(config)) == config

    def test_config_round_trip_through_json(self):
        config = _cell().config
        doc = json.loads(json.dumps(config_to_dict(config)))
        assert config_from_dict(doc) == config

    def test_result_round_trip_preserves_bytes(self):
        [result] = results_of(run_cells([_cell()]))
        restored = result_from_dict(result_to_dict(result))
        assert result_to_json(restored) == result_to_json(result)
        assert restored.job_locality == result.job_locality
        assert restored.collector is not None
        assert restored.collector.job_records == result.collector.job_records
        # the two wall-clock fields are deliberately dropped
        assert restored.engine_wall_s == 0.0
        assert restored.profiler is None

    def test_unknown_format_rejected(self):
        [result] = results_of(run_cells([_cell()]))
        doc = result_to_dict(result)
        doc["format"] = 999
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict(doc)


# -- cache keys ---------------------------------------------------------------


class TestCacheKey:
    def test_stable_across_calls(self):
        cell = _cell()
        assert cache_key(cell.config, cell.workload) == cache_key(
            cell.config, cell.workload
        )

    def test_config_change_invalidates(self):
        base = _cell()
        changed = _cell(seed=SEED + 1)
        assert cache_key(base.config, base.workload) != cache_key(
            changed.config, changed.workload
        )

    def test_workload_change_invalidates(self):
        cell = _cell()
        other = WorkloadSpec("wl1", N_JOBS + 1, SEED)
        assert cache_key(cell.config, cell.workload) != cache_key(cell.config, other)

    def test_trace_and_profile_fields_do_not_affect_key(self):
        plain = _cell()
        traced = _cell(trace_path="/tmp/t.jsonl", profile=True)
        assert cache_key(plain.config, plain.workload) == cache_key(
            traced.config, traced.workload
        )

    def test_tag_and_x_do_not_affect_key(self):
        a, b = _cell(tag="a"), _cell(tag="b")._replace(x=7.0)
        assert cache_key(a.config, a.workload) == cache_key(b.config, b.workload)

    def test_file_workload_keyed_by_content_hash(self, tmp_path):
        from repro.workloads.swim_io import save_workload

        path = tmp_path / "wl.json"
        save_workload(WorkloadSpec("wl1", N_JOBS, SEED).materialize(), str(path))
        spec = WorkloadSpec("file", path=str(path))
        config = _cell().config
        key_before = cache_key(config, spec)
        path.write_text(path.read_text() + "\n")
        assert cache_key(config, spec) != key_before


# -- the result cache ---------------------------------------------------------


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cell()
        first = run_cells([cell], cache=cache)
        assert not first[0].from_cache
        assert cache.misses == 1 and len(cache) == 1
        second = run_cells([cell], cache=cache)
        assert second[0].from_cache
        assert cache.hits == 1
        assert result_to_json(second[0].result) == result_to_json(first[0].result)

    def test_hit_skips_recomputation(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        cell = _cell()
        run_cells([cell], cache=cache)

        def boom(*a, **k):
            raise AssertionError("cache hit must not re-run the experiment")

        monkeypatch.setattr(sweep_mod, "run_experiment", boom)
        [outcome] = run_cells([cell], cache=cache)
        assert outcome.from_cache and outcome.ok

    def test_no_cache_flag_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cell()
        run_cells([cell], cache=cache)
        [outcome] = run_cells([cell], cache=cache, no_cache=True)
        assert not outcome.from_cache
        assert cache.hits == 0

    def test_invalidate_forces_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cell()
        [first] = run_cells([cell], cache=cache)
        assert cache.invalidate(first.key)
        assert not cache.invalidate(first.key)  # already gone
        [second] = run_cells([cell], cache=cache)
        assert not second.from_cache

    def test_corrupt_entry_falls_back_to_rerun(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cell()
        [first] = run_cells([cell], cache=cache)
        cache.path(first.key).write_text("{not json")
        [second] = run_cells([cell], cache=cache)
        assert second.ok and not second.from_cache
        assert cache.corrupt == 1
        # the rerun repaired the entry in place
        [third] = run_cells([cell], cache=cache)
        assert third.from_cache
        assert result_to_json(third.result) == result_to_json(first.result)

    def test_wrong_schema_entry_is_corrupt_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = _cell()
        [first] = run_cells([cell], cache=cache)
        cache.path(first.key).write_text('{"format": 999}')
        [second] = run_cells([cell], cache=cache)
        assert second.ok and not second.from_cache and cache.corrupt == 1

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_cells([_cell(), _cell(seed=SEED + 1)], cache=cache)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_trace_cells_bypass_reads_but_still_store(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cell = _cell()
        run_cells([cell], cache=cache)
        traced = cell._replace(
            config=__import__("dataclasses").replace(
                cell.config, trace_path=str(tmp_path / "t.jsonl")
            )
        )
        [outcome] = run_cells([traced], cache=cache)
        assert not outcome.from_cache  # must really run to write the trace
        assert (tmp_path / "t.jsonl").exists()

    def test_concurrent_writers_same_key_never_expose_partial(self, tmp_path):
        """Racing stores of one key (the service's duplicate-completion case)
        are last-writer-wins: a reader only ever sees one writer's complete
        bytes, and no temp files are left behind."""
        cache = ResultCache(tmp_path)
        key = "ab" + "0" * 62
        n_writers, n_rounds = 6, 40
        # large distinct payloads widen the window a partial write would show
        docs = [
            {"writer": i, "pad": f"{i}" * 65536} for i in range(n_writers)
        ]
        stop = threading.Event()
        bad: list = []

        def read_loop():
            while not stop.is_set():
                try:
                    text = cache.path(key).read_text()
                except OSError:
                    continue  # not written yet
                try:
                    doc = json.loads(text)
                except ValueError:
                    bad.append(text[:80])  # a partial file leaked
                    return
                if doc not in docs:
                    bad.append(doc)
                    return

        def write_loop(i):
            for _ in range(n_rounds):
                cache.store(key, docs[i])

        reader = threading.Thread(target=read_loop)
        writers = [
            threading.Thread(target=write_loop, args=(i,))
            for i in range(n_writers)
        ]
        reader.start()
        for w in writers:
            w.start()
        for w in writers:
            w.join()
        stop.set()
        reader.join()
        assert not bad, f"reader saw a torn/partial cache entry: {bad[0]!r}"
        assert json.loads(cache.path(key).read_text()) in docs
        assert not list(tmp_path.rglob("*.tmp"))  # temp files all cleaned up

    def test_concurrent_writer_processes_same_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" + "0" * 62
        procs = [
            mp.Process(target=_hammer_store, args=(str(tmp_path), key, i, 30))
            for i in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        doc = json.loads(cache.path(key).read_text())
        assert doc["writer"] in range(4) and len(doc["pad"]) == 65536
        assert not list(tmp_path.rglob("*.tmp"))


def _hammer_store(root, key, ident, rounds):
    cache = ResultCache(root)
    for _ in range(rounds):
        cache.store(key, {"writer": ident, "pad": f"{ident}" * 65536})


# -- sharding -----------------------------------------------------------------


class TestSharding:
    @pytest.mark.parametrize("m", [1, 2, 3, 5])
    def test_shards_partition_exactly(self, m):
        cells = [_cell(tag=f"c{i}", seed=SEED + i) for i in range(11)]
        shards = [shard_cells(cells, (k, m)) for k in range(1, m + 1)]
        seen = [c for shard in shards for c in shard]
        assert sorted(c.tag for c in seen) == sorted(c.tag for c in cells)
        assert len(seen) == len(cells)  # no cell in two shards

    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        for bad in ("0/4", "5/4", "x/y", "3", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shard_accepts_spec_string(self):
        cells = [_cell(tag=f"c{i}", seed=SEED + i) for i in range(4)]
        assert [c.tag for c in shard_cells(cells, "1/2")] == ["c0", "c2"]

    def test_dedupe_cells(self):
        a, b = _cell(tag="a"), _cell(tag="dup-of-a")
        c = _cell(tag="c", seed=SEED + 1)
        assert [x.tag for x in dedupe_cells([a, b, c])] == ["a", "c"]


# -- failure isolation --------------------------------------------------------


class TestFailures:
    def test_bad_cell_fails_with_traceback_serial(self):
        good, bad = _cell(tag="good"), _cell(tag="bad", scheduler="nope")
        outcomes = run_cells([bad, good])
        assert not outcomes[0].ok
        assert "nope" in outcomes[0].error
        assert "Traceback" in outcomes[0].error
        assert outcomes[1].ok  # the sweep survived the failed cell
        with pytest.raises(SweepError, match="bad"):
            results_of(outcomes)

    def test_bad_cell_fails_with_traceback_parallel(self):
        good, bad = _cell(tag="good"), _cell(tag="bad", scheduler="nope")
        outcomes = run_cells([bad, good], jobs=2)
        assert not outcomes[0].ok and "Traceback" in outcomes[0].error
        assert outcomes[1].ok

    @needs_fork
    def test_worker_crash_is_retried_then_reported(self, monkeypatch):
        calls = mp.Value("i", 0)

        def die(*a, **k):
            with calls.get_lock():
                calls.value += 1
            os._exit(3)

        monkeypatch.setattr(sweep_mod, "run_experiment", die)
        [outcome] = run_cells([_cell()], jobs=2, crash_retries=1)
        assert not outcome.ok
        assert "worker died" in outcome.error and "exit code 3" in outcome.error
        assert calls.value == 2  # first attempt + one retry

    @needs_fork
    def test_worker_crash_does_not_poison_other_cells(self, monkeypatch):
        real = sweep_mod.run_experiment

        def die_on_fair(config, workload):
            if config.scheduler == "fair":
                os._exit(7)
            return real(config, workload)

        monkeypatch.setattr(sweep_mod, "run_experiment", die_on_fair)
        outcomes = run_cells(
            [_cell(tag="dies", scheduler="fair"), _cell(tag="lives")],
            jobs=2, crash_retries=0,
        )
        assert not outcomes[0].ok and "worker died" in outcomes[0].error
        assert outcomes[1].ok

    @needs_fork
    def test_timeout_kills_cell(self, monkeypatch):
        import time as time_mod

        def hang(*a, **k):
            time_mod.sleep(60.0)

        monkeypatch.setattr(sweep_mod, "run_experiment", hang)
        [outcome] = run_cells([_cell()], jobs=2, timeout_s=0.5)
        assert not outcome.ok
        assert "timed out" in outcome.error


# -- grids --------------------------------------------------------------------


class TestGrids:
    def test_every_named_grid_builds(self):
        from repro.experiments.sweep import GRID_NAMES, build_grid

        for name in GRID_NAMES:
            cells = build_grid(name, n_jobs=N_JOBS)
            assert cells, name
            assert all(isinstance(c, SweepCell) for c in cells)

    def test_all_grid_is_deduplicated(self):
        from repro.experiments.sweep import build_grid

        cells = build_grid("all", n_jobs=N_JOBS)
        keys = [cache_key(c.config, c.workload) for c in cells]
        assert len(keys) == len(set(keys))

    def test_unknown_grid_rejected(self):
        from repro.experiments.sweep import build_grid

        with pytest.raises(ValueError, match="unknown grid"):
            build_grid("fig99")

    def test_fig7_grid_parallel_and_cached_match_serial(self, tmp_path, monkeypatch):
        """The acceptance scenario: jobs=4 over the fig7 grid == serial bytes,
        and a warm second invocation never calls run_experiment."""
        from repro.experiments.figures import fig7_cells

        cells = fig7_cells(n_jobs=N_JOBS)
        serial = [result_to_json(r) for r in results_of(run_cells(cells))]
        cache = ResultCache(tmp_path)
        parallel = [
            result_to_json(r)
            for r in results_of(run_cells(cells, jobs=4, cache=cache))
        ]
        assert parallel == serial

        def boom(*a, **k):
            raise AssertionError("warm sweep must not re-run any cell")

        monkeypatch.setattr(sweep_mod, "run_experiment", boom)
        warm = run_cells(cells, jobs=4, cache=cache)
        assert all(o.from_cache for o in warm)
        assert [result_to_json(r) for r in results_of(warm)] == serial
