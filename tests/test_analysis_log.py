"""Unit tests: the synthetic audit-log generator."""

import numpy as np
import pytest

from repro.analysis.access_log import (
    WEEK_HOURS,
    AccessLog,
    LogParams,
    generate_access_log,
)


@pytest.fixture(scope="module")
def log():
    return generate_access_log(np.random.default_rng(3))


class TestGenerator:
    def test_all_times_within_week(self, log):
        assert (log.times_h >= 0).all()
        assert (log.times_h < WEEK_HOURS).all()

    def test_times_sorted(self, log):
        assert (np.diff(log.times_h) >= 0).all()

    def test_no_access_before_creation(self, log):
        assert (log.ages_at_access() > 0).all()

    def test_file_count_matches_params(self, log):
        assert log.n_files == LogParams().n_files

    def test_popularity_spans_decades(self, log):
        counts = np.sort(log.access_counts())[::-1]
        assert counts[0] > 1000 * max(1, counts[-1])  # ~4 decades (Fig. 2)

    def test_block_counts_heavy_tailed(self, log):
        assert log.n_blocks.min() >= 1
        assert log.n_blocks.max() > 50

    def test_deterministic(self):
        a = generate_access_log(np.random.default_rng(5))
        b = generate_access_log(np.random.default_rng(5))
        assert np.array_equal(a.times_h, b.times_h)
        assert np.array_equal(a.file_ids, b.file_ids)

    def test_small_param_set(self):
        params = LogParams(n_files=50, top_accesses=500)
        small = generate_access_log(np.random.default_rng(1), params)
        assert small.n_files == 50
        assert small.n_accesses > 100


class TestAccessLogApi:
    def test_slice_hours_filters(self, log):
        day2 = log.slice_hours(24.0, 48.0)
        assert (day2.times_h >= 24.0).all()
        assert (day2.times_h < 48.0).all()
        assert day2.n_files == log.n_files  # metadata preserved

    def test_access_counts_sum_to_entries(self, log):
        assert log.access_counts().sum() == log.n_accesses

    def test_entries_row_view(self):
        small = generate_access_log(
            np.random.default_rng(1), LogParams(n_files=10, top_accesses=20)
        )
        rows = small.entries()
        assert len(rows) == small.n_accesses
        assert rows[0].time_h == pytest.approx(float(small.times_h[0]))

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            AccessLog(np.zeros(3), np.zeros(2, dtype=int), np.zeros(1), np.ones(1, dtype=int))
