"""Unit tests: SWIM trace parsing and workload (de)serialization."""

import numpy as np
import pytest

from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.workloads.swim import synthesize_wl1
from repro.workloads.swim_io import (
    SwimParseError,
    load_swim_trace,
    load_workload,
    parse_swim_lines,
    save_workload,
    workload_from_swim_rows,
)
from tests.conftest import SMALL_SPEC

GB = 10**9

SAMPLE = """\
# SWIM sample
job0\t0\t0\t{gb}\t{half}\t{half}
job1\t12\t12\t{gb}\t{half}\t{half}
job2\t25\t13\t{two}\t{gb}\t{half}
job3\t31\t6\t128\t0\t0
""".format(gb=GB, half=GB // 2, two=2 * GB)


class TestParsing:
    def test_parses_sample(self):
        rows = parse_swim_lines(SAMPLE.splitlines())
        assert len(rows) == 4
        assert rows[0]["job_id"] == "job0"
        assert rows[2]["input_bytes"] == 2 * GB

    def test_comments_and_blanks_skipped(self):
        rows = parse_swim_lines(["# c", "", "j0\t0\t0\t100\t1\t1"])
        assert len(rows) == 1

    def test_space_separated_accepted(self):
        rows = parse_swim_lines(["j0 0 0 100 1 1"])
        assert rows[0]["input_bytes"] == 100

    def test_short_line_rejected(self):
        with pytest.raises(SwimParseError, match="6 fields"):
            parse_swim_lines(["j0\t0\t0\t100"])

    def test_garbage_field_rejected(self):
        with pytest.raises(SwimParseError):
            parse_swim_lines(["j0\t0\t0\tpotato\t1\t1"])

    def test_empty_trace_rejected(self):
        with pytest.raises(SwimParseError, match="no job"):
            parse_swim_lines(["# only comments"])


class TestConversion:
    @pytest.fixture
    def wl(self):
        rows = parse_swim_lines(SAMPLE.splitlines())
        return workload_from_swim_rows(rows, np.random.default_rng(3), reuse=2.0)

    def test_one_spec_per_row(self, wl):
        assert wl.n_jobs == 4

    def test_input_sizes_preserved_in_blocks(self, wl):
        blocks = {f.name: f.n_blocks for f in wl.catalog.files}
        expected = -(-GB // DEFAULT_BLOCK_SIZE)
        assert blocks[wl.specs[0].input_file] == expected

    def test_arrival_order_preserved(self, wl):
        times = [s.submit_time for s in wl.specs]
        assert times == sorted(times)

    def test_shuffle_ratio_from_trace(self, wl):
        spec = wl.specs[0]
        assert spec.shuffle_ratio == pytest.approx(0.5)

    def test_time_scale_compresses(self):
        rows = parse_swim_lines(SAMPLE.splitlines())
        wl = workload_from_swim_rows(
            rows, np.random.default_rng(3), time_scale=0.5
        )
        assert max(s.submit_time for s in wl.specs) == pytest.approx(31 * 0.5)

    def test_reuse_controls_catalog_size(self):
        rows = parse_swim_lines(SAMPLE.splitlines()) * 10  # 40 jobs
        for i, r in enumerate(rows):
            r = dict(r)
        lo = workload_from_swim_rows(rows, np.random.default_rng(3), reuse=1.0)
        hi = workload_from_swim_rows(rows, np.random.default_rng(3), reuse=8.0)
        assert len(hi.catalog) < len(lo.catalog)

    def test_invalid_reuse_rejected(self):
        rows = parse_swim_lines(SAMPLE.splitlines())
        with pytest.raises(ValueError):
            workload_from_swim_rows(rows, np.random.default_rng(3), reuse=0.5)

    def test_loaded_trace_runs_end_to_end(self, tmp_path):
        trace = tmp_path / "fb.tsv"
        trace.write_text(SAMPLE)
        wl = load_swim_trace(trace, np.random.default_rng(3))
        result = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)
        assert result.n_jobs == 4


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=30)
        path = tmp_path / "wl.json"
        save_workload(wl, path)
        loaded = load_workload(path)
        assert loaded.name == wl.name
        assert [f for f in loaded.catalog.files] == [f for f in wl.catalog.files]
        assert loaded.specs == wl.specs

    def test_loaded_workload_reproduces_results(self, tmp_path):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=30)
        path = tmp_path / "wl.json"
        save_workload(wl, path)
        loaded = load_workload(path)
        a = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)
        b = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), loaded)
        assert a.gmtt_s == b.gmtt_s

    def test_bad_format_version_rejected(self, tmp_path):
        path = tmp_path / "wl.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError, match="format"):
            load_workload(path)
