"""End-to-end tests: trace reading, shadow reconstruction, verification.

The round-trip contract under test: run an experiment with ``trace_path``
set, reconstruct the control-plane state purely from the JSONL records,
and land on *exactly* the counters and per-node end state the live run
reported — for every policy x scheduler cell, with failures, with
speculation, and with the Scarlett baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scarlett import ScarlettConfig
from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig
from repro.experiments.figures import sweep_from_traces
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.observability.trace import (
    BLOCK_REPLICATED,
    ENGINE_EVENT,
    HEARTBEAT,
    RUN_CONFIG,
    RUN_SUMMARY,
    SCARLETT_EPOCH,
    TASK_SCHEDULED,
    TraceRecord,
    Tracer,
)
from repro.replay import (
    ReconstructionError,
    TraceFormatError,
    load_trace,
    read_trace,
    reconstruct,
)
from repro.replay.reader import parse_line, validate_record
from repro.workloads.swim import synthesize_wl1

SPEC = CCT_SPEC._replace(n_nodes=10)

POLICIES = {
    "off": DareConfig.off(),
    "lru": DareConfig.greedy_lru(budget=0.15),
    "et": DareConfig.elephant_trap(p=0.5, threshold=1, budget=0.15),
}


def run_traced(tmp_path, policy="lru", scheduler="fifo", n_jobs=6, seed=9, **kw):
    """Run one small traced cell; returns (result, trace path)."""
    workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
    path = str(tmp_path / f"{policy}-{scheduler}-{seed}.jsonl")
    config = ExperimentConfig(
        cluster_spec=SPEC,
        scheduler=scheduler,
        dare=POLICIES[policy],
        seed=seed,
        trace_path=path,
        **kw,
    )
    return run_experiment(config, workload), path


class TestRoundTrip:
    @pytest.mark.parametrize("scheduler", ["fifo", "fair", "fair-skip"])
    @pytest.mark.parametrize("policy", sorted(POLICIES))
    def test_every_cell_reconstructs_exactly(self, tmp_path, policy, scheduler):
        result, path = run_traced(tmp_path, policy, scheduler)
        index = load_trace(path)
        assert index.config is not None and index.summary is not None
        state = reconstruct(index)
        report = state.verify()
        assert report.checks and report.ok, report.format()
        assert state.verify_against_result(result).ok

    def test_failure_injection_round_trip(self, tmp_path):
        result, path = run_traced(
            tmp_path, "lru", "fair", n_jobs=10, seed=4,
            failures=((25.0, 2), (60.0, 6)),
        )
        state = reconstruct(load_trace(path))
        report = state.verify()
        assert report.ok, report.format()
        assert state.verify_against_result(result).ok
        assert not state.nodes[2].alive and not state.nodes[6].alive

    def test_speculative_round_trip(self, tmp_path):
        result, path = run_traced(
            tmp_path, "lru", "fair-skip", n_jobs=10, seed=3, speculative=True,
        )
        state = reconstruct(load_trace(path))
        assert state.verify().ok
        assert state.speculative_launched == result.speculative_launched

    def test_scarlett_round_trip_emits_epoch_records(self, tmp_path):
        result, path = run_traced(
            tmp_path, "off", "fifo", n_jobs=10, seed=5,
            scarlett=ScarlettConfig(epoch_s=30.0),
            check_invariants=True, invariant_sweep_every=50,
        )
        index = load_trace(path)
        epochs = index.of_type(SCARLETT_EPOCH)
        assert epochs
        for rec in epochs:
            slack = rec.data["slack_bytes"]
            assert rec.data["spent_bytes"] <= rec.data["budget_bytes"] + slack
        state = reconstruct(index)
        assert state.verify().ok
        assert state.scarlett_epochs == len(epochs)

    def test_engine_event_firehose_round_trip(self, tmp_path):
        _, path = run_traced(
            tmp_path, "off", "fifo", n_jobs=4, trace_engine_events=True
        )
        index = load_trace(path)
        assert index.count(ENGINE_EVENT) > 0
        state = reconstruct(index)
        assert state.verify().ok
        assert state.engine_events == index.count(ENGINE_EVENT)


class TestCrashedRuns:
    def test_crashed_run_leaves_replayable_trace(self, tmp_path):
        workload = synthesize_wl1(np.random.default_rng(3), n_jobs=6)
        path = str(tmp_path / "crash.jsonl")
        config = ExperimentConfig(
            cluster_spec=SPEC, dare=POLICIES["lru"], seed=3, trace_path=path
        )
        tracer = Tracer()
        countdown = [400]

        def bomb(record):
            countdown[0] -= 1
            if countdown[0] <= 0:
                raise RuntimeError("mid-run crash")

        tracer.subscribe(bomb)
        with pytest.raises(RuntimeError, match="mid-run crash"):
            run_experiment(config, workload, tracer=tracer)

        # the finally-guarded close flushed a parseable, footer-less trace
        records = list(read_trace(path))
        assert len(records) >= 399
        assert records[0].type == RUN_CONFIG
        assert all(r.type != RUN_SUMMARY for r in records)
        state = reconstruct(records)  # strict: the prefix is self-consistent
        report = state.verify()
        assert not report.checks
        assert any("crashed" in note for note in report.notes)


class TestCorruptionDetection:
    def test_tampered_summary_fails_verify(self, tmp_path):
        _, path = run_traced(tmp_path)
        records = list(read_trace(path))
        footer = records[-1]
        assert footer.type == RUN_SUMMARY
        data = dict(footer.data)
        data["blocks_created"] += 1
        records[-1] = TraceRecord(footer.type, footer.time, data)
        report = reconstruct(records).verify()
        assert not report.ok
        assert any(c.name == "blocks_created" for c in report.failures())

    def test_dropped_record_never_passes_silently(self, tmp_path):
        _, path = run_traced(tmp_path)
        records = list(read_trace(path))
        idx = next(
            i for i, r in enumerate(records) if r.type == BLOCK_REPLICATED
        )
        del records[idx]
        try:
            state = reconstruct(records)
        except ReconstructionError:
            return  # strict replay caught the hole directly
        assert not state.verify().ok


class TestReaderValidation:
    def _hb(self, t, node=1):
        return TraceRecord(
            HEARTBEAT, t, {"node": node, "free_map_slots": 2, "free_reduce_slots": 2}
        )

    def _write(self, tmp_path, records):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(r.to_json() + "\n" for r in records))
        return str(path)

    def test_unknown_type_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown record type"):
            validate_record(TraceRecord("no.such.type", 0.0, {}))

    def test_missing_required_field_rejected(self):
        with pytest.raises(TraceFormatError, match="missing fields"):
            validate_record(TraceRecord(BLOCK_REPLICATED, 1.0, {"node": 1}))

    def test_unknown_field_rejected(self):
        rec = self._hb(1.0)
        rec.data["mystery"] = 42
        with pytest.raises(TraceFormatError, match="unknown fields"):
            validate_record(rec)

    def test_bad_timestamp_rejected(self):
        for bad in (-1.0, float("nan"), float("inf"), True, "soon"):
            with pytest.raises(TraceFormatError, match="bad timestamp"):
                validate_record(self._hb(bad))

    def test_non_int_node_rejected(self):
        with pytest.raises(TraceFormatError, match="not an int"):
            validate_record(self._hb(1.0, node="one"))

    def test_map_task_requires_locality_fields(self):
        rec = TraceRecord(
            TASK_SCHEDULED, 1.0, {"node": 1, "job": 0, "task": 0, "kind": "map"}
        )
        with pytest.raises(TraceFormatError, match="map task missing"):
            validate_record(rec)

    def test_time_going_backwards_rejected(self, tmp_path):
        path = self._write(tmp_path, [self._hb(5.0), self._hb(1.0)])
        with pytest.raises(TraceFormatError, match="goes backwards"):
            list(read_trace(path))

    def test_config_must_be_first_record(self, tmp_path):
        config = TraceRecord(
            RUN_CONFIG, 6.0,
            {"workload": "wl1", "scheduler": "fifo", "policy": "off", "seed": 1},
        )
        path = self._write(tmp_path, [self._hb(5.0), config])
        with pytest.raises(TraceFormatError, match="first record"):
            list(read_trace(path))

    def test_nothing_after_summary(self, tmp_path):
        summary = TraceRecord(
            RUN_SUMMARY, 5.0,
            {"n_jobs": 0, "blocks_created": 0, "blocks_evicted": 0,
             "locality_node": 0, "locality_rack": 0, "locality_remote": 0,
             "job_locality": 0.0, "nodes": {}},
        )
        path = self._write(tmp_path, [summary, self._hb(6.0)])
        with pytest.raises(TraceFormatError, match="after the run.summary"):
            list(read_trace(path))

    def test_not_json_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(self._hb(1.0).to_json() + "\n{oops\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            list(read_trace(str(path)))

    def test_reserved_key_collision_round_trips(self):
        rec = TraceRecord(
            HEARTBEAT, 2.0,
            {"node": 1, "free_map_slots": 0, "free_reduce_slots": 0,
             "type": "payload-type", "t": 99, "data.x": "already-prefixed"},
        )
        back = parse_line(rec.to_json())
        assert back == rec


class TestTraceIndex:
    def test_lookup_helpers(self, tmp_path):
        _, path = run_traced(tmp_path)
        index = load_trace(path)
        assert index.count(TASK_SCHEDULED) == len(index.of_type(TASK_SCHEDULED))
        node_id = next(iter(index.by_node))
        assert all(r.data["node"] == node_id for r in index.on_node(node_id))
        first, last = index.span
        assert first == 0.0 and last > 0.0

    def test_snapshot_replays_a_prefix(self, tmp_path):
        _, path = run_traced(tmp_path)
        index = load_trace(path)
        mid = index.span[1] / 2
        assert all(r.time <= mid for r in index.until(mid))
        state = index.snapshot(mid)
        final = reconstruct(index)
        assert state.records_applied < final.records_applied
        assert state.blocks_created <= final.blocks_created


class TestTraceBackedFigures:
    def test_sweep_points_match_live_results(self, tmp_path):
        paths, live = [], []
        for policy in ("off", "lru"):
            result, path = run_traced(tmp_path, policy, "fifo")
            live.append(result)
            paths.append(path)
        points = sweep_from_traces(paths, xs=[0.0, 0.15])
        for point, result in zip(points, live):
            assert point.scheduler == "fifo"
            assert point.locality == pytest.approx(result.job_locality, abs=1e-9)
            assert point.blocks_per_job == pytest.approx(
                result.blocks_created_per_job
            )
        assert [p.x for p in points] == [0.0, 0.15]
