"""Fault-injection harness for the distributed sweep service.

Three layers:

* :class:`TestWorkQueue` — deterministic unit tests of the lease state
  machine under an injected fake clock: expiry + reclaim, renewal,
  duplicate/late completion resolution, exponential backoff and poison
  quarantine, work stealing, drain, and journal persistence across a
  coordinator restart.
* ``test_queue_state_machine_*`` — a hypothesis property over random
  interleavings of lease/complete/fail/expire/renew: the queue never
  loses a cell, never double-counts a completion, keeps each canonical
  result stable, and always terminates with every cell done or
  quarantined.  Each op dimension is drawn independently (the
  ``tests/invariants`` shrinking convention), so counterexamples shrink
  toward the shortest readable schedule.
* :class:`TestServiceIntegration` — real coordinator + real workers over
  TCP: a worker SIGKILLed mid-cell (via the CLI's ``--chaos`` injection),
  a frozen worker whose lease is reclaimed, a straggler whose delayed
  completion arrives as a duplicate, a coordinator restart resuming a
  half-done journal, shard parity with offline ``shard K/M`` — each
  ending byte-identical to the serial ``run_cells`` path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig
from repro.experiments.serialize import result_to_dict, result_to_json
from repro.experiments.service import (
    DONE,
    LEASED,
    PENDING,
    QUARANTINED,
    ChaosSpec,
    Coordinator,
    WorkQueue,
    cell_from_doc,
    cell_to_doc,
    parse_address,
    parse_chaos,
    request,
    run_worker,
)
from repro.experiments.sweep import (
    ResultCache,
    SweepCell,
    WorkloadSpec,
    cache_key,
    results_of,
    run_cells,
    shard_cells,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the base image
    HAVE_HYPOTHESIS = False

SEED = 20110926
N_JOBS = 4  # tiny cells (~0.1s) keep the fault-injection suite fast


def _cell(tag: str, seed: int = SEED) -> SweepCell:
    config = ExperimentConfig(dare=DareConfig.elephant_trap(), seed=seed)
    return SweepCell(config, WorkloadSpec("wl1", N_JOBS, seed), tag=tag)


#: a small grid of distinct cells shared by every test in the module
CELLS = tuple(_cell(f"c{i}", SEED + i) for i in range(4))
KEYS = tuple(cache_key(c.config, c.workload) for c in CELLS)


@pytest.fixture(scope="module")
def serial_docs():
    """The canonical result of each CELLS member, computed serially once."""
    results = results_of(run_cells(list(CELLS)))
    return {key: result_to_dict(r) for key, r in zip(KEYS, results)}


class FakeClock:
    """Injectable logical time for deterministic lease-expiry tests."""

    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_queue(clock, n_cells: int = 2, **kwargs) -> WorkQueue:
    defaults = dict(
        lease_s=10.0, max_attempts=3, backoff_s=1.0, backoff_cap_s=8.0,
        steal_after_s=5.0, clock=clock,
    )
    defaults.update(kwargs)
    queue = WorkQueue(**defaults)
    queue.add_cells(CELLS[:n_cells])
    return queue


# -- wire helpers -------------------------------------------------------------


class TestWire:
    def test_parse_address(self):
        assert parse_address("10.0.0.2:7341") == ("10.0.0.2", 7341)
        assert parse_address("7341") == ("127.0.0.1", 7341)
        assert parse_address(":7341") == ("127.0.0.1", 7341)
        with pytest.raises(ValueError, match="bad address"):
            parse_address("host:notaport")

    def test_parse_chaos(self):
        assert parse_chaos("") == ChaosSpec()
        assert parse_chaos("kill-after-lease:2") == ChaosSpec("kill-after-lease", n=2)
        assert parse_chaos("hang-after-lease") == ChaosSpec("hang-after-lease", n=1)
        assert parse_chaos("delay-complete:1.5") == ChaosSpec(
            "delay-complete", delay_s=1.5
        )
        with pytest.raises(ValueError, match="unknown chaos"):
            parse_chaos("explode")

    def test_cell_doc_round_trip(self):
        cell = CELLS[0]
        restored = cell_from_doc(json.loads(json.dumps(cell_to_doc(cell))))
        assert restored == cell


# -- the work-queue state machine (deterministic unit tests) ------------------


class TestWorkQueue:
    def test_lease_then_complete(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        assert grant["key"] == KEYS[0] and not grant["stolen"]
        assert q.counts()[LEASED] == 1
        ack = q.complete(grant["key"], grant["lease_id"], {"m": 1}, worker="w1")
        assert ack["accepted"]
        assert q.done
        assert q.entries[KEYS[0]].completed_by == "w1"

    def test_empty_queue_is_done(self):
        q = make_queue(FakeClock(), n_cells=0)
        assert q.done
        assert q.lease("w1") == {"ok": True, "done": True}

    def test_add_cells_dedupes_by_key(self):
        q = make_queue(FakeClock(), n_cells=2)
        assert q.add_cells(CELLS[:2]) == 0  # same cells, no duplicates
        assert len(q.entries) == 2

    def test_wait_reply_when_everything_leased(self):
        q = make_queue(FakeClock(), n_cells=1)
        q.lease("w1")
        reply = q.lease("w2")  # nothing pending, straggler too young to steal
        assert reply.get("wait") and reply["retry_s"] > 0

    def test_lease_expiry_reclaims_cell(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        first = q.lease("w1")
        clock.advance(q.lease_s + 0.1)
        assert q.expire() == 1
        assert q.expirations == 1
        assert q.entries[KEYS[0]].attempts == 1  # the expiry charged an attempt
        clock.advance(q.backoff_s + 0.1)  # sit out the retry backoff
        second = q.lease("w2")
        assert second["key"] == first["key"]
        assert second["lease_id"] != first["lease_id"]
        assert q.complete(second["key"], second["lease_id"], {"m": 1})["accepted"]

    def test_renew_keeps_lease_alive(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        clock.advance(0.8 * q.lease_s)
        assert q.renew(grant["key"], grant["lease_id"])
        clock.advance(0.8 * q.lease_s)  # past the original deadline
        assert q.expire() == 0
        assert q.entries[KEYS[0]].state == LEASED
        clock.advance(q.lease_s)
        assert q.expire() == 1
        assert not q.renew(grant["key"], grant["lease_id"])  # lease is gone

    def test_late_completion_after_expiry_wins_if_first(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        clock.advance(q.lease_s + 1)
        q.expire()  # w1's lease reclaimed; w1 doesn't know and reports anyway
        ack = q.complete(grant["key"], grant["lease_id"], {"m": "late"}, worker="w1")
        assert ack["accepted"]
        assert q.late_completions == 1
        assert q.entries[KEYS[0]].result == {"m": "late"}

    def test_duplicate_completion_is_discarded(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        clock.advance(q.lease_s + 1)
        q.expire()  # reclaim
        clock.advance(q.backoff_s + 0.1)
        second = q.lease("w2")  # re-lease to another worker
        assert q.complete(second["key"], second["lease_id"], {"m": "w2"})["accepted"]
        late = q.complete(grant["key"], grant["lease_id"], {"m": "w1"}, worker="w1")
        assert late == {"ok": True, "accepted": False, "reason": "duplicate"}
        # deterministic resolution: the first completion stays canonical
        assert q.entries[KEYS[0]].result == {"m": "w2"}
        assert q.duplicates == 1 and q.completions == 1

    def test_backoff_grows_exponentially_then_quarantines(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1, max_attempts=3, backoff_s=1.0,
                       backoff_cap_s=100.0)
        entry = q.entries[KEYS[0]]
        for attempt, backoff in ((1, 1.0), (2, 2.0)):
            grant = q.lease("w1")
            q.fail(grant["key"], grant["lease_id"], f"Traceback...\nboom {attempt}")
            assert entry.state == PENDING
            assert entry.not_before == pytest.approx(clock.t + backoff)
            assert q.lease("w1").get("wait")  # backing off: not leasable yet
            clock.advance(backoff + 0.1)
        grant = q.lease("w1")
        assert grant["attempt"] == 3
        q.fail(grant["key"], grant["lease_id"], "Traceback...\nboom 3")
        assert entry.state == QUARANTINED
        assert "boom 3" in entry.error
        assert entry.history == ["boom 1", "boom 2", "boom 3"]
        assert q.done  # quarantined counts as terminal
        assert q.lease("w1") == {"ok": True, "done": True}

    def test_backoff_is_capped(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1, max_attempts=10, backoff_s=1.0,
                       backoff_cap_s=4.0)
        for _ in range(4):
            clock.advance(10.0)
            grant = q.lease("w1")
            q.fail(grant["key"], grant["lease_id"], "boom")
        assert q.entries[KEYS[0]].not_before - clock.t == pytest.approx(4.0)

    def test_completion_rescues_a_quarantined_cell(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1, max_attempts=1)
        grant = q.lease("w1")
        clock.advance(q.lease_s + 1)
        q.expire()  # single allowed attempt burnt: quarantined
        assert q.entries[KEYS[0]].state == QUARANTINED
        ack = q.complete(grant["key"], grant["lease_id"], {"m": 1}, worker="w1")
        assert ack["accepted"]  # a correct deterministic result still counts
        assert q.entries[KEYS[0]].state == DONE

    def test_steal_releases_straggler_to_idle_worker(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=2, steal_after_s=5.0)
        straggler = q.lease("w1")
        other = q.lease("w1")
        q.complete(other["key"], other["lease_id"], {"m": 1})
        assert q.lease("w2").get("wait")  # straggler not old enough yet
        clock.advance(6.0)
        stolen = q.lease("w2")
        assert stolen["stolen"] and stolen["key"] == straggler["key"]
        assert q.steals == 1
        assert len(q.entries[straggler["key"]].leases) == 2
        # no third replica: max_leases bounds the speculative fan-out
        assert q.lease("w3").get("wait")
        # thief finishes first; the original attempt resolves to a duplicate
        assert q.complete(stolen["key"], stolen["lease_id"], {"m": "thief"})["accepted"]
        late = q.complete(straggler["key"], straggler["lease_id"], {"m": "orig"})
        assert not late["accepted"]
        assert q.entries[straggler["key"]].result == {"m": "thief"}
        assert q.done

    def test_failed_sibling_does_not_reset_surviving_lease(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1, steal_after_s=1.0)
        orig = q.lease("w1")
        clock.advance(2.0)
        thief = q.lease("w2")
        assert thief["stolen"]
        ack = q.fail(thief["key"], thief["lease_id"], "thief exploded")
        assert ack["accepted"] and ack["state"] == LEASED  # original still runs
        assert q.entries[KEYS[0]].attempts == 0  # no attempt charged
        assert q.complete(orig["key"], orig["lease_id"], {"m": 1})["accepted"]

    def test_stale_fail_after_expiry_is_not_double_charged(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        clock.advance(q.lease_s + 1)
        q.expire()  # charged attempt #1
        ack = q.fail(grant["key"], grant["lease_id"], "boom")
        assert ack == {"ok": True, "accepted": False, "reason": "stale-lease"}
        assert q.entries[KEYS[0]].attempts == 1

    def test_unknown_key_is_rejected(self):
        q = make_queue(FakeClock(), n_cells=1)
        assert not q.complete("feed" * 16, "L0", {})["ok"]
        assert not q.fail("feed" * 16, "L0", "boom")["ok"]

    def test_drain_stops_leasing_but_accepts_completions(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=2)
        grant = q.lease("w1")
        q.drain()
        assert q.lease("w2") == {"ok": True, "done": True}  # workers wind down
        assert q.complete(grant["key"], grant["lease_id"], {"m": 1})["accepted"]
        assert q.active_leases() == 0

    def test_journal_round_trip_and_restart(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "queue.json"
        q = make_queue(clock, n_cells=3, path=path)
        done = q.lease("w1")
        q.complete(done["key"], done["lease_id"], {"m": "kept"}, worker="w1")
        q.lease("w1")  # left in flight when the coordinator dies
        grant = q.lease("w1")
        q.fail(grant["key"], grant["lease_id"], "boom")  # backing off

        q2 = WorkQueue.load(path, clock=clock)
        assert q2.order == q.order
        assert q2.lease_seq == q.lease_seq
        assert q2.completions == 1 and q2.failures == 1
        done_entry = q2.entries[done["key"]]
        assert done_entry.state == DONE and done_entry.result == {"m": "kept"}
        # the in-flight lease was reclaimed without charging an attempt
        counts = q2.counts()
        assert counts[PENDING] == 2 and counts[LEASED] == 0
        assert q2.active_leases() == 0
        # the half-done grid runs to completion after the restart
        clock.advance(10.0)
        while not q2.done:
            grant = q2.lease("w2")
            q2.complete(grant["key"], grant["lease_id"], {"m": grant["key"][:4]})
        assert q2.entries[done["key"]].result == {"m": "kept"}  # not recomputed

    def test_journal_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "queue.json"
        path.write_text('{"format": 99}')
        with pytest.raises(ValueError, match="unsupported queue format"):
            WorkQueue.load(path)

    def test_outcomes_preserve_input_order(self, serial_docs):
        q = make_queue(FakeClock(), n_cells=3)
        grants = {g["key"]: g["lease_id"] for g in (q.lease("w") for _ in range(3))}
        for key in (KEYS[2], KEYS[0], KEYS[1]):  # complete out of input order
            assert q.complete(key, grants[key], serial_docs[key])["accepted"]
        outcomes = q.outcomes()
        assert [o.key for o in outcomes] == list(KEYS[:3])
        assert all(o.ok and not o.from_cache for o in outcomes)


# -- hypothesis: random interleavings of the state machine --------------------


def _check_queue_invariants(q: WorkQueue, total: int, done_results: dict) -> None:
    counts = q.counts()
    assert sum(counts.values()) == total  # no cell is ever lost
    for entry in q.entries.values():
        assert entry.state in (PENDING, LEASED, DONE, QUARANTINED)
        if entry.state == LEASED:
            assert 1 <= len(entry.leases) <= q.max_leases
        else:
            assert not entry.leases
        if entry.state == DONE:
            assert entry.result is not None
    # completions are counted exactly once and results stay canonical
    assert q.completions == len(done_results)
    for key, marker in done_results.items():
        assert q.entries[key].result == {"marker": marker}


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
@settings(deadline=None, max_examples=80)
@given(
    n_cells=st.integers(min_value=1, max_value=4),
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # op kind
            st.integers(min_value=0, max_value=7),  # lease index / time step
            st.integers(min_value=0, max_value=2),  # worker index
        ),
        max_size=50,
    ),
)
def test_queue_state_machine_random_interleavings(n_cells, ops):
    """Random lease/complete/fail/expire/renew schedules never lose a cell,
    never double-count a completion, and always terminate."""
    clock = FakeClock()
    q = WorkQueue(lease_s=10.0, max_attempts=3, backoff_s=1.0, backoff_cap_s=8.0,
                  steal_after_s=5.0, clock=clock)
    q.add_cells(CELLS[:n_cells])
    total = n_cells
    issued = []  # every (key, lease_id) ever granted, live or stale
    done_results = {}  # key -> marker of the accepted (canonical) completion
    marker = 0

    def try_complete(key: str, lease_id: str, worker: str) -> None:
        nonlocal marker
        marker += 1
        ack = q.complete(key, lease_id, {"marker": marker}, worker=worker)
        if ack.get("accepted"):
            assert key not in done_results  # a cell completes exactly once
            done_results[key] = marker

    for kind, a, b in ops:
        worker = f"w{b}"
        if kind == 0:
            grant = q.lease(worker)
            if "lease_id" in grant:
                issued.append((grant["key"], grant["lease_id"]))
        elif kind == 1 and issued:
            key, lease_id = issued[a % len(issued)]
            try_complete(key, lease_id, worker)
        elif kind == 2 and issued:
            key, lease_id = issued[a % len(issued)]
            q.fail(key, lease_id, f"injected failure {a}")
        elif kind == 3:
            clock.advance(float(a))
            q.expire()
        elif kind == 4 and issued:
            key, lease_id = issued[a % len(issued)]
            q.renew(key, lease_id)
        _check_queue_invariants(q, total, done_results)

    # liveness: a worker that keeps pulling always drains the queue
    for _ in range(10 * total + 20):
        if q.done:
            break
        clock.advance(q.lease_s + q.backoff_cap_s + 1.0)
        grant = q.lease("driver")
        if "lease_id" in grant:
            try_complete(grant["key"], grant["lease_id"], "driver")
        _check_queue_invariants(q, total, done_results)
    assert q.done
    counts = q.counts()
    assert counts[DONE] + counts[QUARANTINED] == total
    assert counts[DONE] == len(done_results)


# -- integration: real coordinator + real workers over TCP --------------------

_SRC = str(Path(repro.__file__).resolve().parents[1])


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _spawn_cli_worker(port: int, *extra: str) -> subprocess.Popen:
    cmd = [sys.executable, "-m", "repro", "sweep",
           "--worker", f"127.0.0.1:{port}", "--no-cache", "--poll", "0.1",
           *extra]
    return subprocess.Popen(cmd, env=_worker_env(),
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def _worker_thread(address, results: list, **kwargs):
    kwargs.setdefault("no_cache", True)
    kwargs.setdefault("poll_s", 0.05)
    thread = threading.Thread(
        target=lambda: results.append(run_worker(address, **kwargs)), daemon=True
    )
    thread.start()
    return thread


def _service_jsons(coordinator: Coordinator) -> list:
    return [result_to_json(o.result) for o in coordinator.outcomes()]


class TestServiceIntegration:
    def test_two_workers_match_serial_bytes(self, serial_docs):
        serial = [result_to_json(run_cells([c])[0].result) for c in CELLS[:3]]
        with Coordinator(CELLS[:3], lease_s=10.0) as coordinator:
            stats: list = []
            threads = [
                _worker_thread(coordinator.address, stats, worker_id=f"w{i}")
                for i in range(2)
            ]
            assert coordinator.wait(timeout=60.0)
            for thread in threads:
                thread.join(timeout=10.0)
            assert _service_jsons(coordinator) == serial
        assert sum(s.completed for s in stats) == 3

    def test_worker_sigkill_mid_cell_grid_still_byte_identical(self):
        """The acceptance scenario: a worker is SIGKILLed mid-cell, its lease
        is reclaimed (by expiry or stealing), and the finished grid is
        byte-identical to the serial path."""
        cells = list(CELLS[:3])
        serial = [result_to_json(r) for r in results_of(run_cells(cells))]
        with Coordinator(cells, lease_s=1.5) as coordinator:
            port = coordinator.address[1]
            chaos = _spawn_cli_worker(port, "--chaos", "kill-after-lease:1")
            chaos.wait(timeout=30.0)
            assert chaos.returncode == -9  # died by its own SIGKILL, mid-cell
            status = coordinator.status()
            assert status["leased"] >= 1  # the orphaned lease is still held
            stats: list = []
            thread = _worker_thread(coordinator.address, stats, worker_id="survivor")
            assert coordinator.wait(timeout=60.0)
            thread.join(timeout=10.0)
            assert _service_jsons(coordinator) == serial
            status = coordinator.status()
            # the dead worker's cell was recovered by expiry or by stealing
            assert status["expirations"] + status["steals"] >= 1
            assert status["quarantined"] == 0

    def test_frozen_worker_lease_reclaimed_and_late_complete_discarded(self):
        cells = list(CELLS[:2])
        serial = [result_to_json(r) for r in results_of(run_cells(cells))]
        with Coordinator(cells, lease_s=0.4, steal_after_s=0.2) as coordinator:
            address = coordinator.address
            # a frozen worker: leases a cell by hand and never executes it
            frozen = request(address, {"op": "lease", "worker": "frozen"})
            assert "lease_id" in frozen
            stats: list = []
            thread = _worker_thread(address, stats, worker_id="healthy")
            assert coordinator.wait(timeout=60.0)
            thread.join(timeout=10.0)
            assert _service_jsons(coordinator) == serial
            # the thawed worker finally reports: discarded as a duplicate
            late = request(address, {
                "op": "complete", "worker": "frozen", "key": frozen["key"],
                "lease_id": frozen["lease_id"], "result": {"m": "bogus"},
            })
            assert late["accepted"] is False and late["reason"] == "duplicate"
            status = coordinator.status()
            assert status["duplicates"] == 1
            assert status["expirations"] + status["steals"] >= 1

    def test_delayed_completion_resolves_to_one_canonical_result(self):
        """A straggler sleeps past its lease before reporting; the re-executed
        attempt wins and the straggler's completion is the duplicate."""
        cells = [CELLS[0]]
        serial = [result_to_json(r) for r in results_of(run_cells(cells))]
        with Coordinator(cells, lease_s=0.3, steal_after_s=60.0) as coordinator:
            stats_slow: list = []
            slow = _worker_thread(
                coordinator.address, stats_slow, worker_id="straggler",
                chaos=ChaosSpec("delay-complete", delay_s=2.5),
            )
            time.sleep(0.1)  # let the straggler take the lease first
            stats_fast: list = []
            fast = _worker_thread(coordinator.address, stats_fast, worker_id="fast")
            assert coordinator.wait(timeout=60.0)
            slow.join(timeout=15.0)
            fast.join(timeout=15.0)
            assert _service_jsons(coordinator) == serial
            status = coordinator.status()
            assert status["completions"] == 1
            assert status["duplicates"] + status["late_completions"] >= 1
        [slow_stats] = stats_slow
        assert slow_stats.rejected + slow_stats.completed == 1

    def test_failing_cell_backs_off_then_quarantines(self, tmp_path):
        # a cell whose config crashes every worker deterministically
        bad_config = ExperimentConfig(dare=DareConfig.elephant_trap(), seed=SEED,
                                      scheduler="no-such-scheduler")
        bad = SweepCell(bad_config, WorkloadSpec("wl1", N_JOBS, SEED), tag="bad")
        cells = [bad, CELLS[1]]
        with Coordinator(cells, lease_s=10.0, max_attempts=2,
                         backoff_s=0.05) as coordinator:
            stats: list = []
            thread = _worker_thread(coordinator.address, stats, worker_id="w")
            assert coordinator.wait(timeout=60.0)
            thread.join(timeout=10.0)
            outcomes = coordinator.outcomes()
            assert not outcomes[0].ok and "no-such-scheduler" in outcomes[0].error
            assert outcomes[1].ok  # the grid survived the poison cell
            status = coordinator.status()
            assert status["quarantined"] == 1 and status["failures"] == 2
        [worker_stats] = stats
        assert worker_stats.failed == 2  # initial attempt + one backoff retry

    def test_coordinator_restart_resumes_half_done_grid(self, tmp_path, serial_docs):
        cells = list(CELLS[:3])
        serial = [result_to_json(run_cells([c])[0].result) for c in cells]
        queue_path = tmp_path / "queue.json"
        first = Coordinator(cells, queue_path=queue_path, lease_s=10.0).start()
        # one cell completes, one is left mid-lease; then the coordinator dies
        grant = request(first.address, {"op": "lease", "worker": "w1"})
        request(first.address, {
            "op": "complete", "worker": "w1", "key": grant["key"],
            "lease_id": grant["lease_id"], "result": serial_docs[grant["key"]],
        })
        request(first.address, {"op": "lease", "worker": "w1"})  # in flight
        first.close()  # hard stop: no drain, the journal is all that survives

        second = Coordinator(cells, queue_path=queue_path, lease_s=10.0)
        assert second.resumed
        status = second.status()
        assert status["finished"] is False
        assert status[DONE] == 1  # the completed cell survived the restart
        assert status[LEASED] == 0  # the in-flight lease was reclaimed
        with second:
            stats: list = []
            thread = _worker_thread(second.address, stats, worker_id="w2")
            assert second.wait(timeout=60.0)
            thread.join(timeout=10.0)
            assert _service_jsons(second) == serial
            assert second.queue.entries[grant["key"]].completed_by == "w1"
        [worker_stats] = stats
        assert worker_stats.completed == 2  # only the unfinished cells re-ran

    def test_shard_parity_with_offline_shards(self):
        """A sharded coordinator grid is exactly the offline ``shard K/M``
        partition, and its results are byte-identical to running that
        shard serially."""
        cells = list(CELLS)
        seen_keys: list = []
        for k in (1, 2):
            shard = shard_cells(cells, (k, 2))
            shard_keys = [cache_key(c.config, c.workload) for c in shard]
            serial = [result_to_json(r) for r in results_of(run_cells(shard))]
            with Coordinator(shard, lease_s=10.0) as coordinator:
                assert coordinator.queue.order == shard_keys
                stats: list = []
                thread = _worker_thread(coordinator.address, stats)
                assert coordinator.wait(timeout=60.0)
                thread.join(timeout=10.0)
                assert _service_jsons(coordinator) == serial
            seen_keys.extend(shard_keys)
        assert sorted(seen_keys) == sorted(KEYS)  # the shards partition the grid

    def test_workers_share_the_coordinator_cache(self, tmp_path):
        cells = list(CELLS[:2])
        cache = ResultCache(tmp_path / "cache")
        with Coordinator(cells, cache=cache, lease_s=10.0) as coordinator:
            stats: list = []
            thread = _worker_thread(coordinator.address, stats)
            assert coordinator.wait(timeout=60.0)
            thread.join(timeout=10.0)
        assert len(cache) == 2  # accepted completions landed in the shared cache
        # a warm re-serve resolves everything from cache: no leases granted
        with Coordinator(cells, cache=cache, lease_s=10.0) as coordinator:
            assert coordinator.wait(timeout=10.0)
            outcomes = coordinator.outcomes()
            assert all(o.from_cache for o in outcomes)
            assert coordinator.status()["leases_granted"] == 0

    def test_drain_is_graceful(self):
        cells = list(CELLS[:2])
        with Coordinator(cells, lease_s=10.0) as coordinator:
            grant = request(coordinator.address, {"op": "lease", "worker": "w1"})
            coordinator.drain()
            reply = request(coordinator.address, {"op": "lease", "worker": "w2"})
            assert reply.get("done")  # new work is refused while draining
            assert not coordinator.wait(timeout=0.3)  # still one lease in flight
            ack = request(coordinator.address, {
                "op": "complete", "worker": "w1", "key": grant["key"],
                "lease_id": grant["lease_id"], "result": {"m": 1},
            })
            assert ack["accepted"]  # in-flight work still lands
            assert coordinator.wait(timeout=10.0)  # leases drained

    def test_status_op_and_cli(self, capsys):
        from repro.cli import main

        with Coordinator(list(CELLS[:2]), lease_s=10.0) as coordinator:
            host, port = coordinator.address
            # machine-readable: the raw status_doc serializer, parseable
            assert main(["sweep", "--status", f"{host}:{port}", "--json"]) == 0
            doc = json.loads(capsys.readouterr().out)
            assert doc["total"] == 2 and doc["pending"] == 2
            assert doc == coordinator.status()  # one shared serializer
            # default: the human table
            assert main(["sweep", "--status", f"{host}:{port}"]) == 0
            table = capsys.readouterr().out
            assert "cells: 2" in table and "2 pending" in table
        with pytest.raises(SystemExit, match="cannot reach coordinator"):
            main(["sweep", "--status", f"{host}:{port}"])

    def test_unknown_op_and_bad_json_are_rejected(self):
        import socket as socket_mod

        with Coordinator(list(CELLS[:1])) as coordinator:
            reply = request(coordinator.address, {"op": "explode"})
            assert not reply["ok"] and "unknown op" in reply["error"]
            with socket_mod.create_connection(coordinator.address, timeout=5) as s:
                fh = s.makefile("rwb")
                fh.write(b"this is not json\n")
                fh.flush()
                reply = json.loads(fh.readline())
            assert not reply["ok"] and "JSON" in reply["error"]


# -- voluntary release (graceful worker shutdown) -----------------------------


class TestVoluntaryRelease:
    def test_requeue_releases_without_charging_attempt(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant = q.lease("w1")
        ack = q.fail(grant["key"], grant["lease_id"],
                     "worker shutting down", requeue=True)
        assert ack["accepted"] and ack["state"] == PENDING
        entry = q.entries[grant["key"]]
        assert entry.attempts == 0          # no attempt charged...
        assert entry.not_before == clock.t  # ...and no backoff
        assert q.releases == 1 and q.failures == 0
        assert q.status_doc()["releases"] == 1
        # the released cell is immediately leasable again
        regrant = q.lease("w2")
        assert regrant["key"] == grant["key"]

    def test_requeue_with_stale_lease_is_ignored(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1, lease_s=1.0)
        grant = q.lease("w1")
        clock.advance(5.0)
        q.expire()  # the expiry already charged the attempt
        ack = q.fail(grant["key"], grant["lease_id"],
                     "late release", requeue=True)
        assert ack["accepted"] is False and ack["reason"] == "stale-lease"
        assert q.releases == 0

    def test_requeue_with_surviving_stolen_sibling_keeps_cell_leased(self):
        clock = FakeClock()
        q = make_queue(clock, n_cells=1)
        grant1 = q.lease("w1")
        clock.advance(6.0)  # past steal_after_s=5.0, inside lease_s=10.0
        grant2 = q.lease("w2")
        assert grant2["stolen"]
        ack = q.fail(grant1["key"], grant1["lease_id"],
                     "shutdown", requeue=True)
        assert ack["accepted"] and ack["state"] == LEASED
        assert q.releases == 1  # the sibling attempt stays in charge
        assert grant2["lease_id"] in q.entries[grant1["key"]].leases

    def test_releases_counter_survives_journal_reload(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "queue.json"
        q = make_queue(clock, n_cells=1, path=path)
        grant = q.lease("w1")
        q.fail(grant["key"], grant["lease_id"], "shutdown", requeue=True)
        reloaded = WorkQueue.load(path, clock=clock)
        assert reloaded.releases == 1
        assert reloaded.entries[grant["key"]].state == PENDING


# -- protocol hardening: stalled and oversized clients ------------------------


class TestProtocolHardening:
    def test_oversized_request_line_rejected(self):
        import socket as socket_mod

        with Coordinator(list(CELLS[:1]),
                         max_request_bytes=1024) as coordinator:
            with socket_mod.create_connection(
                    coordinator.address, timeout=5) as s:
                fh = s.makefile("rwb")
                fh.write(b'{"op": "ping", "pad": "' + b"x" * 4096 + b'"}\n')
                fh.flush()
                reply = json.loads(fh.readline())
            assert not reply["ok"] and "exceeds 1024 bytes" in reply["error"]
            # the handler thread survived to serve the next client
            assert request(coordinator.address, {"op": "ping"})["ok"]

    def test_stalled_connection_closed_after_read_timeout(self):
        import socket as socket_mod

        with Coordinator(list(CELLS[:1]),
                         read_timeout_s=0.3) as coordinator:
            start = time.monotonic()
            with socket_mod.create_connection(
                    coordinator.address, timeout=10) as s:
                # send nothing: the handler must hang up, not pin a thread
                line = s.makefile("rb").readline()
            assert line == b""  # connection closed without a reply
            assert time.monotonic() - start < 8.0
            assert request(coordinator.address, {"op": "ping"})["ok"]


# -- graceful worker shutdown under a real signal -----------------------------


class TestWorkerGracefulShutdown:
    def test_sigterm_releases_in_flight_lease_in_process(self):
        """run_worker in the main thread, a real SIGTERM mid-cell: the
        in-flight lease is handed back (no attempt charged) and the grid
        still finishes byte-identical to serial."""
        import signal as signal_mod

        cells = list(CELLS[:2])
        serial = [result_to_json(r) for r in results_of(run_cells(cells))]
        with Coordinator(cells, lease_s=30.0) as coordinator:
            address = coordinator.address

            def fire_once_leased():
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if coordinator.status()[LEASED] >= 1:
                        time.sleep(0.3)  # let run_worker set in_flight
                        os.kill(os.getpid(), signal_mod.SIGTERM)
                        return
                    time.sleep(0.02)

            threading.Thread(target=fire_once_leased, daemon=True).start()
            # delay-complete holds the finished cell (and its lease) for
            # 30s before reporting — a deterministic window for the signal
            stats = run_worker(address, worker_id="doomed", no_cache=True,
                               chaos="delay-complete:30")
            assert stats.stopped_by_signal == signal_mod.SIGTERM
            assert stats.released == 1
            status = coordinator.status()
            assert status["releases"] == 1 and status["failures"] == 0
            assert status[LEASED] == 0 and status["finished"] is False
            assert status[PENDING] >= 1  # the released cell, uncharged
            results: list = []
            thread = _worker_thread(address, results, worker_id="healthy")
            assert coordinator.wait(timeout=60.0)
            thread.join(timeout=10.0)
            assert _service_jsons(coordinator) == serial

    def test_cli_worker_sigterm_exits_cleanly_and_releases(self):
        """The acceptance scenario with a real process: SIGTERM a CLI
        worker mid-cell; it exits 0 and its lease returns to pending."""
        import signal as signal_mod

        cells = list(CELLS[:2])
        with Coordinator(cells, lease_s=30.0) as coordinator:
            port = coordinator.address[1]
            proc = _spawn_cli_worker(port, "--chaos", "delay-complete:30")
            try:
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    if coordinator.status()[LEASED] >= 1:
                        break
                    time.sleep(0.05)
                else:
                    pytest.fail("worker never leased a cell")
                time.sleep(0.3)
                proc.send_signal(signal_mod.SIGTERM)
                out, _ = proc.communicate(timeout=30.0)
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            assert proc.returncode == 0  # graceful exit, not a crash
            assert b"worker" in out  # it got far enough to print stats
            status = coordinator.status()
            assert status["releases"] == 1
            assert status[LEASED] == 0 and status[PENDING] >= 1
            assert status["failures"] == 0
