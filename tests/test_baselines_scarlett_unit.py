"""Unit tests: Scarlett's internals (water-fill, copies, aging)."""

import random

import pytest

from repro.baselines.scarlett import ScarlettConfig, ScarlettService
from repro.cluster.cluster import Cluster
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.namenode import NameNode
from repro.metrics.traffic import TrafficMeter
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from tests.conftest import SMALL_SPEC


@pytest.fixture
def world():
    cluster = Cluster(SMALL_SPEC, RandomStreams(11))
    nn = NameNode(cluster)
    nn.create_file("hot", 2 * DEFAULT_BLOCK_SIZE, replication=3)
    nn.create_file("cold", 2 * DEFAULT_BLOCK_SIZE, replication=3)
    engine = Engine()
    svc = ScarlettService(
        ScarlettConfig(epoch_s=100.0, budget=0.5, max_concurrent=8),
        nn,
        engine,
        TrafficMeter(),
        random.Random(2),
        stop_when=lambda: True,  # single epoch per arm()
    )
    return cluster, nn, engine, svc


class _FakeJob:
    def __init__(self, name):
        from repro.mapreduce.job import JobSpec

        self.spec = JobSpec(0, 0.0, name)


class TestEpochMechanics:
    def test_observation_resets_each_epoch(self, world):
        _, nn, engine, svc = world
        svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run()
        assert svc.epochs_run == 1
        assert sum(svc._epoch_counts.values()) == 0  # consumed

    def test_hot_file_gets_extra_replicas(self, world):
        _, nn, engine, svc = world
        for _ in range(10):
            svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run()
        assert svc.replicas_created > 0
        for blk in nn.file("hot").blocks:
            assert len(nn.locations(blk.block_id)) > 3

    def test_unobserved_file_untouched(self, world):
        _, nn, engine, svc = world
        for _ in range(10):
            svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run()
        for blk in nn.file("cold").blocks:
            assert len(nn.locations(blk.block_id)) == 3

    def test_copies_pay_network_traffic(self, world):
        _, nn, engine, svc = world
        for _ in range(10):
            svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run()
        # every installed replica was paid for over the network (racing
        # duplicate copies may pay without installing, never the reverse)
        assert svc.traffic.bytes("rebalancing") >= (
            svc.replicas_created * DEFAULT_BLOCK_SIZE
        )

    def test_aging_removes_replicas_when_popularity_moves(self, world):
        cluster, nn, engine, svc = world
        svc.stop_when = None
        for _ in range(10):
            svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run(until=150.0)  # epoch 1: replicate hot
        created = svc.replicas_created
        assert created > 0
        # epoch 2 observes only 'cold': hot's extras age out
        svc.stop_when = lambda: True
        for _ in range(10):
            svc.observe_submission(_FakeJob("cold"))
        engine.run()
        assert svc.replicas_removed > 0
        for blk in nn.file("hot").blocks:
            assert len(nn.locations(blk.block_id)) == 3  # back to static rf

    def test_namenode_integrity_after_epochs(self, world):
        _, nn, engine, svc = world
        for _ in range(6):
            svc.observe_submission(_FakeJob("hot"))
        svc.arm()
        engine.run()
        nn.check_integrity()
