"""Integration tests: the per-figure drivers (reduced scale)."""

import numpy as np
import pytest

from repro.experiments.figures import (
    fig2_popularity,
    fig3_age_cdf,
    fig4_windows,
    fig5_windows_day,
    fig6_access_cdf,
    fig7_cct,
    fig8a_p_sweep,
    fig9a_budget_sweep_lru,
    fig11_uniformity,
)
from repro.experiments.tables import (
    bandwidth_ratios,
    fig1_hop_distribution,
    table1_rtt,
    table2_bandwidth,
)

N_JOBS = 80  # reduced scale: shapes hold, runtimes stay test-friendly


class TestTables:
    def test_table1_ec2_noisier_than_cct(self):
        rows = {r.cluster: r.stats for r in table1_rtt()}
        assert rows["ec2"].mean > rows["cct"].mean
        assert rows["ec2"].std > rows["cct"].std
        assert rows["ec2"].max > 10  # processor-sharing outliers

    def test_table2_calibration(self):
        rows = {r.label: r.stats for r in table2_bandwidth()}
        assert 150 < rows["cct disk bandwidth"].mean < 165
        assert 115 < rows["cct network bandwidth"].mean < 119
        assert rows["ec2 disk bandwidth"].std > 50
        assert rows["ec2 network bandwidth"].mean < 90

    def test_bandwidth_ratio_key_insight(self):
        ratios = bandwidth_ratios()
        # paper: 74.6% vs 51.75% — CCT's ratio ~40% higher
        assert ratios["cct"] > 1.2 * ratios["ec2"]

    def test_fig1_mode_at_four_hops(self):
        hist = fig1_hop_distribution()
        assert int(np.argmax(hist)) in (3, 4, 5)
        assert hist.sum() == pytest.approx(1.0)


class TestSectionIIIFigures:
    def test_fig2_heavy_tail(self):
        pop = fig2_popularity()
        assert pop["raw"][0] > 100 * pop["raw"][min(999, len(pop["raw"]) - 1)]

    def test_fig3_age_concentration(self):
        out = fig3_age_cdf(grid_hours=np.array([24.0, 168.0]))
        assert 0.6 < out["cdf"][0] < 0.95
        assert out["cdf"][1] == pytest.approx(1.0)

    def test_fig4_both_panels(self):
        panels = fig4_windows()
        for key in ("unweighted", "weighted"):
            _, frac = panels[key]
            assert frac.sum() == pytest.approx(1.0)

    def test_fig5_day_windows_tight(self):
        _, frac = fig5_windows_day()["unweighted"]
        assert frac[:2].sum() > 0.8

    def test_fig6_cdf_shape(self):
        cdf = fig6_access_cdf(n_jobs=N_JOBS)
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] > 0.15  # heavy head


class TestClusterFigures:
    @pytest.fixture(scope="class")
    def cells(self):
        return fig7_cct(n_jobs=N_JOBS)

    def test_fig7_grid_complete(self, cells):
        combos = {(c.scheduler, c.workload) for c in cells}
        assert combos == {("fifo", "wl1"), ("fair", "wl1"), ("fifo", "wl2"), ("fair", "wl2")}

    def test_fig7_dare_improves_fifo_locality(self, cells):
        for c in cells:
            if c.scheduler == "fifo":
                assert c.locality["lru"] > c.locality["vanilla"]
                assert c.locality["elephant-trap"] > c.locality["vanilla"]

    def test_fig7_fair_vanilla_beats_fifo_vanilla(self, cells):
        by = {(c.scheduler, c.workload): c for c in cells}
        for wl in ("wl1", "wl2"):
            assert (
                by[("fair", wl)].locality["vanilla"]
                > by[("fifo", wl)].locality["vanilla"]
            )

    def test_fig7_gmtt_normalized_to_vanilla(self, cells):
        for c in cells:
            assert c.gmtt_normalized["vanilla"] == pytest.approx(1.0)
            assert c.gmtt_normalized["lru"] <= 1.02

    def test_fig8a_locality_rises_with_p(self):
        points = fig8a_p_sweep(p_values=(0.0, 0.3, 0.9), n_jobs=N_JOBS)
        fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
        assert fifo[0.9].locality > fifo[0.0].locality
        assert fifo[0.9].blocks_per_job >= fifo[0.3].blocks_per_job
        assert fifo[0.0].blocks_per_job == 0.0

    def test_fig9a_budget_zero_is_vanilla(self):
        points = fig9a_budget_sweep_lru(budgets=(0.0, 0.4), n_jobs=N_JOBS)
        fifo = {pt.x: pt for pt in points if pt.scheduler == "fifo"}
        assert fifo[0.0].blocks_per_job == 0.0
        assert fifo[0.4].locality > fifo[0.0].locality

    def test_fig11_dare_reduces_cv(self):
        points = fig11_uniformity(p_values=(0.0, 0.3), n_jobs=N_JOBS)
        by_p = {pt.p: pt for pt in points}
        assert by_p[0.0].cv_after == pytest.approx(by_p[0.0].cv_before)
        assert by_p[0.3].cv_after < by_p[0.3].cv_before
