"""Unit tests: deterministic random streams."""

import numpy as np

from repro.simulation.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_nonnegative_63_bit(self):
        for name in ("x", "y", "a.b.c", ""):
            s = derive_seed(99, name)
            assert 0 <= s < 2**63


class TestRandomStreams:
    def test_same_name_same_generator_object(self):
        rs = RandomStreams(7)
        assert rs.numpy("a") is rs.numpy("a")
        assert rs.python("a") is rs.python("a")

    def test_streams_are_independent(self):
        rs = RandomStreams(7)
        a = rs.numpy("a").random(4)
        b = rs.numpy("b").random(4)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).numpy("x").random(8)
        b = RandomStreams(7).numpy("x").random(8)
        assert np.allclose(a, b)

    def test_python_stream_reproducible(self):
        a = [RandomStreams(7).python("x").random() for _ in range(3)]
        b = [RandomStreams(7).python("x").random() for _ in range(3)]
        assert a == b

    def test_spawn_changes_root(self):
        rs = RandomStreams(7)
        child = rs.spawn("child")
        assert child.root_seed != rs.root_seed
        # spawn is deterministic too
        assert RandomStreams(7).spawn("child").root_seed == child.root_seed

    def test_numpy_and_python_streams_do_not_collide(self):
        rs = RandomStreams(7)
        a = rs.numpy("same").random()
        b = rs.python("same").random()
        assert a != b
