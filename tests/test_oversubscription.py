"""Unit tests: multi-rack dedicated topology and oversubscription."""

import numpy as np
import pytest

from repro.cluster.cluster import CCT_SPEC, build_cluster
from repro.cluster.network import CCT_NETWORK, NetworkModel
from repro.cluster.topology import DEDICATED, Topology


class TestDedicatedMultiRack:
    def test_round_robin_striping(self):
        topo = Topology(DEDICATED, 8, np.random.default_rng(0), dedicated_racks=2)
        assert list(topo.rack_of) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_hops_one_same_rack_two_cross(self):
        topo = Topology(DEDICATED, 8, np.random.default_rng(0), dedicated_racks=2)
        assert topo.hops(0, 2) == 1  # same rack
        assert topo.hops(0, 1) == 2  # cross rack

    def test_single_rack_default_unchanged(self):
        topo = Topology(DEDICATED, 8, np.random.default_rng(0))
        assert topo.n_racks == 1

    def test_zero_racks_rejected(self):
        with pytest.raises(ValueError):
            Topology(DEDICATED, 8, np.random.default_rng(0), dedicated_racks=0)


class TestOversubscription:
    def _model(self, factor, racks=2):
        topo = Topology(DEDICATED, 10, np.random.default_rng(0), dedicated_racks=racks)
        params = CCT_NETWORK._replace(cross_rack_factor=factor)
        return NetworkModel(topo, params, np.random.default_rng(1))

    def test_factor_one_is_neutral(self):
        m = self._model(1.0)
        same = m.bandwidth_mbps(0, 2)
        cross = m.bandwidth_mbps(0, 1)
        assert cross == pytest.approx(same, rel=0.05)

    def test_cross_rack_bandwidth_divided(self):
        m = self._model(4.0)
        same = m.bandwidth_mbps(0, 2)
        cross = m.bandwidth_mbps(0, 1)
        assert cross == pytest.approx(same / 4.0, rel=0.05)

    def test_same_rack_unaffected(self):
        neutral = self._model(1.0).bandwidth_mbps(0, 2)
        oversub = self._model(4.0).bandwidth_mbps(0, 2)
        assert oversub == pytest.approx(neutral)

    def test_cross_rack_transfers_slower(self):
        m = self._model(4.0)
        nbytes = 128 * 1024 * 1024
        t_same = m.transfer_seconds(nbytes, 0, 2)
        t_cross = m.transfer_seconds(nbytes, 0, 1)
        assert t_cross > 3 * t_same

    def test_spec_plumbs_through_cluster(self):
        spec = CCT_SPEC._replace(
            dedicated_racks=4,
            network=CCT_NETWORK._replace(cross_rack_factor=3.0),
        )
        cluster = build_cluster(spec)
        assert cluster.topology.n_racks == 4
