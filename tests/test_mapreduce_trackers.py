"""Unit/integration tests: TaskTracker and JobTracker mechanics."""

import pytest

from repro.core.config import DareConfig
from repro.core.manager import DareReplicationService
from repro.mapreduce.job import JobSpec
from repro.mapreduce.jobtracker import JobTracker
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.task import TaskState
from repro.scheduling.fifo import FifoScheduler
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams


@pytest.fixture
def stack(small_cluster, loaded_namenode):
    """A fully wired JobTracker on the small test cluster."""
    engine = Engine()
    streams = RandomStreams(17)
    dare = DareReplicationService(DareConfig.off(), loaded_namenode, streams)
    tm = TaskTimeModel(small_cluster, loaded_namenode, streams.python("tm"))
    jt = JobTracker(
        small_cluster, loaded_namenode, engine, FifoScheduler(), tm, dare
    )
    return engine, jt


class TestTaskTracker:
    def test_heartbeats_stagger_and_repeat(self, stack):
        engine, jt = stack
        jt.expected_jobs = 0
        jt.start_tasktrackers()
        engine.run(until=10.0)
        for tt in jt.tasktrackers.values():
            # ~10 heartbeats in 10 s at a 1 s interval
            assert 8 <= tt.heartbeats_sent <= 11

    def test_heartbeats_stop_when_jobtracker_finished(self, stack):
        engine, jt = stack
        jt.finished = True
        jt.start_tasktrackers()
        engine.run(until=10.0)
        for tt in jt.tasktrackers.values():
            assert tt.heartbeats_sent == 1  # the initial one only

    def test_slot_over_release_guards(self, stack):
        _, jt = stack
        jt.start_tasktrackers()
        tt = next(iter(jt.tasktrackers.values()))
        with pytest.raises(RuntimeError):
            tt.release_map_slot()
        for _ in range(tt.node.map_slots):
            tt.occupy_map_slot()
        with pytest.raises(RuntimeError):
            tt.occupy_map_slot()


class TestJobLifecycle:
    def test_single_job_runs_to_completion(self, stack):
        engine, jt = stack
        spec = JobSpec(job_id=0, submit_time=1.0, input_file="hot", n_reduces=1)
        jt.submit_trace([spec])
        jt.start_tasktrackers()
        engine.run()
        assert jt.finished
        assert jt.completed_jobs == 1
        job = jt.jobs[0]
        assert job.done
        assert job.finish_time > job.submit_time
        assert all(t.state is TaskState.DONE for t in job.maps)
        assert all(t.state is TaskState.DONE for t in job.reduces)

    def test_map_only_job_completes(self, stack):
        engine, jt = stack
        spec = JobSpec(job_id=0, submit_time=1.0, input_file="warm", n_reduces=0)
        jt.submit_trace([spec])
        jt.start_tasktrackers()
        engine.run()
        assert jt.finished

    def test_locality_counts_cover_all_maps(self, stack):
        engine, jt = stack
        spec = JobSpec(job_id=0, submit_time=1.0, input_file="cold", n_reduces=0)
        jt.submit_trace([spec])
        jt.start_tasktrackers()
        engine.run()
        job = jt.jobs[0]
        assert sum(job.locality_counts) == job.n_maps

    def test_reduces_start_after_maps_finish(self, stack):
        engine, jt = stack
        spec = JobSpec(job_id=0, submit_time=1.0, input_file="hot", n_reduces=2)
        jt.submit_trace([spec])
        jt.start_tasktrackers()
        engine.run()
        job = jt.jobs[0]
        last_map_finish = max(t.finish_time for t in job.maps)
        first_reduce_start = min(t.start_time for t in job.reduces)
        assert first_reduce_start >= last_map_finish

    def test_multiple_jobs_fifo_completion(self, stack):
        engine, jt = stack
        specs = [
            JobSpec(job_id=i, submit_time=1.0 + i * 0.1, input_file=f, n_reduces=0)
            for i, f in enumerate(["hot", "warm", "cold"])
        ]
        jt.submit_trace(specs)
        jt.start_tasktrackers()
        engine.run()
        assert jt.completed_jobs == 3

    def test_contention_counters_return_to_zero(self, stack):
        engine, jt = stack
        specs = [
            JobSpec(job_id=i, submit_time=1.0, input_file="cold", n_reduces=1)
            for i in range(3)
        ]
        jt.submit_trace(specs)
        jt.start_tasktrackers()
        engine.run()
        for node in jt.cluster.nodes:
            assert node.active_net_transfers == 0
            assert node.active_disk_reads == 0

    def test_all_slots_free_at_end(self, stack):
        engine, jt = stack
        specs = [
            JobSpec(job_id=i, submit_time=1.0, input_file="hot", n_reduces=1)
            for i in range(4)
        ]
        jt.submit_trace(specs)
        jt.start_tasktrackers()
        engine.run()
        for tt in jt.tasktrackers.values():
            assert tt.free_map_slots == tt.node.map_slots
            assert tt.free_reduce_slots == tt.node.reduce_slots


class TestDareIntegration:
    def test_remote_maps_trigger_replication(self, small_cluster, loaded_namenode):
        engine = Engine()
        streams = RandomStreams(17)
        dare = DareReplicationService(
            DareConfig.greedy_lru(budget=1.0), loaded_namenode, streams
        )
        tm = TaskTimeModel(small_cluster, loaded_namenode, streams.python("tm"))
        jt = JobTracker(small_cluster, loaded_namenode, engine, FifoScheduler(), tm, dare)
        specs = [
            JobSpec(job_id=i, submit_time=1.0 + i * 15.0, input_file="hot", n_reduces=0)
            for i in range(6)
        ]
        jt.submit_trace(specs)
        jt.start_tasktrackers()
        engine.run()
        assert dare.total_replications > 0
        loaded_namenode.flush_all_heartbeats(engine.now)
        loaded_namenode.check_integrity()
        # every hot block should now have more than its 3 static replicas
        for blk in loaded_namenode.file("hot").blocks:
            assert loaded_namenode.replica_count(blk.block_id) >= 3
