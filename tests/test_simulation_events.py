"""Unit tests: event objects and the event queue."""

import pytest

from repro.simulation.events import COMPACT_MIN_CANCELLED, Event, EventQueue


def _noop():
    pass


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        a = Event(1.0, 5, _noop)
        b = Event(2.0, 1, _noop)
        assert a < b

    def test_ties_break_by_sequence(self):
        a = Event(1.0, 1, _noop)
        b = Event(1.0, 2, _noop)
        assert a < b
        assert not (b < a)

    def test_repr_mentions_label(self):
        ev = Event(1.0, 0, _noop, "my-label")
        assert "my-label" in repr(ev)


class TestEventQueue:
    def test_push_pop_in_time_order(self):
        q = EventQueue()
        q.push(3.0, _noop, "c")
        q.push(1.0, _noop, "a")
        q.push(2.0, _noop, "b")
        labels = [q.pop().label for _ in range(3)]
        assert labels == ["a", "b", "c"]

    def test_fifo_order_for_simultaneous_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, _noop, f"e{i}")
        assert [q.pop().label for _ in range(5)] == [f"e{i}" for i in range(5)]

    def test_len_counts_live_events(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert len(q) == 2
        q.cancel(ev)
        assert len(q) == 1

    def test_pop_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, _noop, "cancelled")
        q.push(2.0, _noop, "live")
        q.cancel(ev)
        assert q.pop().label == "live"
        assert q.pop() is None

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.push(5.0, _noop)
        q.cancel(ev)
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        ev = q.push(1.0, _noop)
        assert q
        q.cancel(ev)
        assert not q

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.clear()
        assert q.pop() is None
        assert len(q) == 0


class TestCompaction:
    """Cancel-heavy workloads must not let the heap accrete garbage."""

    def test_heap_stays_bounded_under_cancel_churn(self):
        # regression: speculative-execution-style churn (most scheduled
        # events cancelled before firing) used to grow the heap without
        # bound, degrading every subsequent push/pop
        q = EventQueue()
        for i in range(10_000):
            ev = q.push(float(i), _noop)
            if i % 8:  # cancel 7 of every 8
                q.cancel(ev)
        live = len(q)
        assert live == 1250
        # heap holds at most live + max(live, floor) entries
        assert q.heap_size <= 2 * max(live, COMPACT_MIN_CANCELLED) + 1
        assert q.compactions > 0

    def test_compaction_preserves_pop_order(self):
        q = EventQueue()
        events = [q.push(float(i % 17), _noop, f"e{i}") for i in range(500)]
        expected = []
        for i, ev in enumerate(events):
            if i % 3:
                q.cancel(ev)
            else:
                expected.append(ev)
        expected.sort(key=lambda e: (e.time, e.seq))
        q.compact()  # force one more, on top of any automatic ones
        popped = []
        while q:
            popped.append(q.pop())
        assert [e.label for e in popped] == [e.label for e in expected]

    def test_compaction_preserves_peek(self):
        q = EventQueue()
        keep = q.push(7.0, _noop, "keep")
        for _ in range(COMPACT_MIN_CANCELLED + 1):
            q.cancel(q.push(1.0, _noop))
        assert q.peek_time() == 7.0
        assert q.pop() is keep

    def test_no_compaction_below_floor(self):
        q = EventQueue()
        for _ in range(COMPACT_MIN_CANCELLED - 1):
            q.cancel(q.push(1.0, _noop))
        assert q.compactions == 0
        assert q.heap_size == COMPACT_MIN_CANCELLED - 1

    def test_cancel_after_pop_does_not_corrupt_counters(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert q.pop() is ev
        q.cancel(ev)  # cancelling a fired event is a no-op
        assert len(q) == 1
        assert q.pop() is not None


class TestRepush:
    """Event reuse for periodic chains (heartbeats)."""

    def test_repush_assigns_fresh_seq(self):
        q = EventQueue()
        ev = q.push(1.0, _noop, "hb")
        other = q.push(1.0, _noop)
        assert q.pop() is ev
        q.repush(ev, 1.0)
        # the re-armed event ties on time with `other` but was (re)pushed
        # later, so it must pop after it — same as a fresh push would
        assert q.pop() is other
        assert q.pop() is ev

    def test_repush_matches_fresh_push_seq_assignment(self):
        q1, q2 = EventQueue(), EventQueue()
        # chain A: reuse one event
        ev = q1.push(0.0, _noop, "hb")
        q1.pop()
        q1.repush(ev, 1.0)
        # chain B: allocate per period
        q2.push(0.0, _noop, "hb")
        q2.pop()
        fresh = q2.push(1.0, _noop, "hb")
        assert ev.seq == fresh.seq
        assert ev.time == fresh.time

    def test_repush_pending_event_rejected(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        with pytest.raises(ValueError):
            q.repush(ev, 2.0)

    def test_repush_cancelled_unfired_event_rejected(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.cancel(ev)
        with pytest.raises(ValueError):
            q.repush(ev, 2.0)

    def test_repush_relabels_and_clears_flags(self):
        q = EventQueue()
        ev = q.push(1.0, _noop, "start")
        q.pop()
        q.repush(ev, 2.0, "steady")
        assert ev.label == "steady"
        assert not ev.fired and not ev.cancelled
        assert q.pop() is ev
