"""Unit tests: event objects and the event queue."""

import pytest

from repro.simulation.events import Event, EventQueue


def _noop():
    pass


class TestEventOrdering:
    def test_earlier_time_sorts_first(self):
        a = Event(1.0, 5, _noop)
        b = Event(2.0, 1, _noop)
        assert a < b

    def test_ties_break_by_sequence(self):
        a = Event(1.0, 1, _noop)
        b = Event(1.0, 2, _noop)
        assert a < b
        assert not (b < a)

    def test_repr_mentions_label(self):
        ev = Event(1.0, 0, _noop, "my-label")
        assert "my-label" in repr(ev)


class TestEventQueue:
    def test_push_pop_in_time_order(self):
        q = EventQueue()
        q.push(3.0, _noop, "c")
        q.push(1.0, _noop, "a")
        q.push(2.0, _noop, "b")
        labels = [q.pop().label for _ in range(3)]
        assert labels == ["a", "b", "c"]

    def test_fifo_order_for_simultaneous_events(self):
        q = EventQueue()
        for i in range(5):
            q.push(1.0, _noop, f"e{i}")
        assert [q.pop().label for _ in range(5)] == [f"e{i}" for i in range(5)]

    def test_len_counts_live_events(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.push(2.0, _noop)
        assert len(q) == 2
        q.cancel(ev)
        assert len(q) == 1

    def test_pop_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, _noop, "cancelled")
        q.push(2.0, _noop, "live")
        q.cancel(ev)
        assert q.pop().label == "live"
        assert q.pop() is None

    def test_double_cancel_is_idempotent(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.cancel(ev)
        q.cancel(ev)
        assert len(q) == 0

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, _noop)
        q.push(5.0, _noop)
        q.cancel(ev)
        assert q.peek_time() == 5.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_bool_reflects_liveness(self):
        q = EventQueue()
        assert not q
        ev = q.push(1.0, _noop)
        assert q
        q.cancel(ev)
        assert not q

    def test_clear_empties_queue(self):
        q = EventQueue()
        q.push(1.0, _noop)
        q.clear()
        assert q.pop() is None
        assert len(q) == 0
