"""Unit tests: Algorithm 1 — greedy LRU (and the LFU ablation)."""

import pytest

from repro.core.greedy import GreedyLFUPolicy, GreedyLRUPolicy
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.inode import INode


def blocks_of(name, n, file_id, first_id):
    return INode(file_id, name).allocate_blocks(n * DEFAULT_BLOCK_SIZE, first_id)


@pytest.fixture
def fa():
    return blocks_of("a", 4, 0, 0)


@pytest.fixture
def fb():
    return blocks_of("b", 4, 1, 100)


class TestLRUTracking:
    def test_add_and_contains(self, fa):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        assert fa[0].block_id in p
        assert len(p) == 1

    def test_double_add_rejected(self, fa):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        with pytest.raises(ValueError):
            p.add(fa[0])

    def test_remove_untracked_is_noop(self, fa):
        GreedyLRUPolicy().remove(fa[0].block_id)

    def test_greedy_always_wants_replica_and_refresh(self, fa):
        p = GreedyLRUPolicy()
        assert p.wants_replica(fa[0])
        assert p.wants_refresh(fa[0])
        assert p.probabilistic is False


class TestLRUEviction:
    def test_victim_is_least_recently_used(self, fa, fb):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        p.add(fa[1])
        assert p.pick_victim(fb[0]) is fa[0]

    def test_access_refreshes_order(self, fa, fb):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        p.add(fa[1])
        p.on_local_access(fa[0])  # front block becomes most recent
        assert p.pick_victim(fb[0]) is fa[1]

    def test_same_file_victims_skipped(self, fa, fb):
        p = GreedyLRUPolicy()
        p.add(fa[0])  # LRU front, but same file as the evicting block
        p.add(fb[0])
        assert p.pick_victim(fa[1]) is fb[0]

    def test_no_victim_when_everything_is_same_file(self, fa):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        p.add(fa[1])
        assert p.pick_victim(fa[2]) is None

    def test_empty_policy_has_no_victim(self, fb):
        assert GreedyLRUPolicy().pick_victim(fb[0]) is None

    def test_access_of_untracked_block_ignored(self, fa, fb):
        p = GreedyLRUPolicy()
        p.add(fa[0])
        p.on_local_access(fb[0])  # not tracked; must not corrupt state
        assert p.pick_victim(fb[1]) is fa[0]


class TestLFU:
    def test_victim_is_least_frequently_used(self, fa, fb):
        p = GreedyLFUPolicy()
        p.add(fa[0])
        p.add(fa[1])
        for _ in range(3):
            p.on_local_access(fa[0])
        assert p.pick_victim(fb[0]) is fa[1]

    def test_tie_breaks_by_insertion_order(self, fa, fb):
        p = GreedyLFUPolicy()
        p.add(fa[0])
        p.add(fa[1])
        assert p.pick_victim(fb[0]) is fa[0]

    def test_same_file_excluded(self, fa, fb):
        p = GreedyLFUPolicy()
        p.add(fa[0])
        p.add(fb[0])
        for _ in range(5):
            p.on_local_access(fb[0])
        # fb[0] is more frequent but fa[0] shares the evicting file
        assert p.pick_victim(fa[1]) is fb[0]

    def test_remove_cleans_counts(self, fa):
        p = GreedyLFUPolicy()
        p.add(fa[0])
        p.remove(fa[0].block_id)
        assert fa[0].block_id not in p._counts
