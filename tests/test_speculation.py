"""Unit/integration tests: speculative execution."""

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.mapreduce.job import Job, JobSpec
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.task import TaskState
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


class TestPolicyValidation:
    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(slowdown_factor=1.0)

    def test_min_completed_positive(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(min_completed=0)


class TestCandidateSelection:
    @pytest.fixture
    def job(self, loaded_namenode):
        return Job(JobSpec(0, 0.0, "cold"), loaded_namenode.file("cold"))

    def _finish(self, task, start, end):
        task.state = TaskState.DONE
        task.start_time = start
        task.finish_time = end

    def test_no_candidate_without_enough_completions(self, job):
        policy = SpeculationPolicy(min_completed=3)
        self._finish(job.maps[0], 0.0, 10.0)
        job.maps[1].state = TaskState.RUNNING
        job.maps[1].start_time = 0.0
        job.maps[1].node_id = 1
        assert policy.pick_candidate([job], 100.0, 2, lambda t: False) is None

    def test_straggler_detected(self, job):
        policy = SpeculationPolicy(slowdown_factor=1.5, min_completed=3)
        for t in job.maps[:3]:
            self._finish(t, 0.0, 10.0)
        straggler = job.maps[3]
        straggler.state = TaskState.RUNNING
        straggler.start_time = 0.0
        straggler.node_id = 1
        # mean 10s, threshold 15s: at t=20 the task is a straggler
        found = policy.pick_candidate([job], 20.0, 2, lambda t: False)
        assert found is straggler

    def test_task_within_threshold_not_picked(self, job):
        policy = SpeculationPolicy(slowdown_factor=1.5, min_completed=3)
        for t in job.maps[:3]:
            self._finish(t, 0.0, 10.0)
        job.maps[3].state = TaskState.RUNNING
        job.maps[3].start_time = 0.0
        job.maps[3].node_id = 1
        assert policy.pick_candidate([job], 12.0, 2, lambda t: False) is None

    def test_already_duplicated_task_skipped(self, job):
        policy = SpeculationPolicy(min_completed=3)
        for t in job.maps[:3]:
            self._finish(t, 0.0, 10.0)
        job.maps[3].state = TaskState.RUNNING
        job.maps[3].start_time = 0.0
        job.maps[3].node_id = 1
        assert policy.pick_candidate([job], 50.0, 2, lambda t: True) is None

    def test_own_node_not_offered(self, job):
        policy = SpeculationPolicy(min_completed=3)
        for t in job.maps[:3]:
            self._finish(t, 0.0, 10.0)
        job.maps[3].state = TaskState.RUNNING
        job.maps[3].start_time = 0.0
        job.maps[3].node_id = 7
        assert policy.pick_candidate([job], 50.0, 7, lambda t: False) is None

    def test_slowest_straggler_preferred(self, job):
        policy = SpeculationPolicy(min_completed=3)
        for t in job.maps[:3]:
            self._finish(t, 0.0, 10.0)
        a, b = job.maps[3], job.maps[4]
        for t, start in ((a, 10.0), (b, 0.0)):
            t.state = TaskState.RUNNING
            t.start_time = start
            t.node_id = 1
        assert policy.pick_candidate([job], 60.0, 2, lambda t: False) is b


class TestSpeculativeRuns:
    @pytest.fixture(scope="class")
    def stall_spec(self):
        # crank the stall model so stragglers are guaranteed at test scale
        return SMALL_SPEC._replace(
            cpu_jitter_sigma=0.2, cpu_stall_prob=0.15, cpu_stall_range=(4.0, 10.0)
        )

    @pytest.fixture(scope="class")
    def wl(self):
        return synthesize_wl1(np.random.default_rng(7), n_jobs=80)

    def test_run_completes_with_speculation(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        assert r.n_jobs == wl.n_jobs
        assert r.speculative_launched > 0

    def test_some_duplicates_win(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        assert r.speculative_won > 0
        assert r.speculative_won <= r.speculative_launched

    def test_wasted_counts_every_killed_attempt(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        # every launched duplicate ends a race killing exactly one attempt
        assert r.speculative_wasted == r.speculative_launched

    def test_map_records_still_one_per_task(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        assert len(r.collector.map_records) == wl.total_map_tasks()

    def test_slots_and_counters_clean_at_end(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        # contention counters roll back exactly even with killed attempts
        # (run_experiment would have tripped asserts otherwise); verify via
        # a second identical run being deterministic
        r2 = run_experiment(
            ExperimentConfig(cluster_spec=stall_spec, speculative=True), wl
        )
        assert r.gmtt_s == r2.gmtt_s

    def test_speculation_off_by_default(self, stall_spec, wl):
        r = run_experiment(ExperimentConfig(cluster_spec=stall_spec), wl)
        assert r.speculative_launched == 0

    def test_speculation_composes_with_dare(self, stall_spec, wl):
        r = run_experiment(
            ExperimentConfig(
                cluster_spec=stall_spec,
                speculative=True,
                dare=DareConfig.elephant_trap(),
            ),
            wl,
        )
        assert r.n_jobs == wl.n_jobs
        assert r.blocks_created > 0
