"""Unit tests: popularity models, catalogs, and SWIM trace synthesis."""

import numpy as np
import pytest

from repro.workloads.catalog import FileCatalog, FileSpec, generate_catalog
from repro.workloads.popularity import PopularityModel, access_cdf, zipf_weights
from repro.workloads.swim import (
    WL1_PARAMS,
    WL2_PARAMS,
    synthesize_wl1,
    synthesize_wl2,
    synthesize_workload,
)


class TestZipf:
    def test_weights_sum_to_one(self):
        assert zipf_weights(100, 1.1).sum() == pytest.approx(1.0)

    def test_weights_decrease_with_rank(self):
        w = zipf_weights(50, 0.9)
        assert all(w[i] >= w[i + 1] for i in range(49))

    def test_s_zero_is_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)

    def test_access_cdf_monotone_and_normalized(self):
        cdf = access_cdf(zipf_weights(30, 1.2))
        assert cdf[-1] == pytest.approx(1.0)
        assert all(np.diff(cdf) >= 0)

    def test_popularity_model_sampling_skew(self):
        model = PopularityModel(50, s=1.2, rng=np.random.default_rng(3))
        ranks = model.sample_ranks(20_000)
        counts = np.bincount(ranks, minlength=50)
        assert counts[0] > 4 * counts[10]  # heavy head


class TestCatalog:
    def test_generate_respects_class_counts(self):
        cat = generate_catalog(np.random.default_rng(1), n_small=10, n_medium=4, n_large=2)
        assert len(cat.by_class("small")) == 10
        assert len(cat.by_class("medium")) == 4
        assert len(cat.by_class("large")) == 2

    def test_block_counts_within_ranges(self):
        cat = generate_catalog(
            np.random.default_rng(1), small_blocks=(1, 3), medium_blocks=(8, 16),
            large_blocks=(100, 250),
        )
        for i in cat.by_class("small"):
            assert 1 <= cat[i].n_blocks <= 3
        for i in cat.by_class("large"):
            assert 100 <= cat[i].n_blocks <= 250

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            FileCatalog([FileSpec("a", 1, "small"), FileSpec("a", 2, "small")])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            FileCatalog([])

    def test_total_blocks(self):
        cat = FileCatalog([FileSpec("a", 2, "small"), FileSpec("b", 3, "small")])
        assert cat.total_blocks == 5


class TestSwimSynthesis:
    def test_wl1_job_count_and_ordering(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=100)
        assert wl.n_jobs == 100
        times = [s.submit_time for s in wl.specs]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_wl1_is_small_job_dominated(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=300)
        sizes = {f.name: f.n_blocks for f in wl.catalog.files}
        small = sum(1 for s in wl.specs if sizes[s.input_file] <= 3)
        assert small / wl.n_jobs > 0.85

    def test_wl2_has_periodic_large_jobs(self):
        wl = synthesize_wl2(np.random.default_rng(7), n_jobs=200)
        classes = {f.name: f.size_class for f in wl.catalog.files}
        period = WL2_PARAMS.large_period
        for i in range(0, 200, period):
            assert classes[wl.specs[i].input_file] == "large"

    def test_access_distribution_heavy_tailed(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=500)
        counts = sorted(wl.access_counts().values(), reverse=True)
        # Fig. 6 shape: a few files dominate the accesses
        assert counts[0] > 10 * counts[min(20, len(counts) - 1)]

    def test_empirical_cdf_reaches_one(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=200)
        cdf = wl.empirical_access_cdf()
        assert cdf[-1] == pytest.approx(1.0)

    def test_specs_by_id_lookup(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=50)
        for spec in wl.specs:
            assert wl.specs_by_id[spec.job_id] is spec

    def test_total_map_tasks_consistent(self):
        wl = synthesize_wl1(np.random.default_rng(7), n_jobs=50)
        sizes = {f.name: f.n_blocks for f in wl.catalog.files}
        assert wl.total_map_tasks() == sum(sizes[s.input_file] for s in wl.specs)

    def test_all_specs_validate(self):
        wl = synthesize_wl2(np.random.default_rng(7), n_jobs=100)
        for s in wl.specs:
            s.validate()

    def test_deterministic_given_seed(self):
        a = synthesize_wl1(np.random.default_rng(9), n_jobs=50)
        b = synthesize_wl1(np.random.default_rng(9), n_jobs=50)
        assert [s.input_file for s in a.specs] == [s.input_file for s in b.specs]
        assert [s.submit_time for s in a.specs] == [s.submit_time for s in b.specs]

    def test_catalog_missing_class_rejected(self):
        cat = FileCatalog([FileSpec("a", 1, "small")])
        with pytest.raises(ValueError, match="no 'medium'"):
            synthesize_workload(WL1_PARAMS._replace(n_jobs=10),
                                np.random.default_rng(0), cat)
