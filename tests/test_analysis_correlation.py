"""Unit tests: the co-access correlation analysis (Section III claim)."""

import numpy as np
import pytest

from repro.analysis.access_log import AccessLog, generate_access_log
from repro.analysis.correlation import (
    analyze_correlation,
    co_access_groups,
    correlation_matrix,
    hourly_series,
)


@pytest.fixture(scope="module")
def log():
    return generate_access_log(np.random.default_rng(20110926))


def tiny_log(times, ids, n_files):
    return AccessLog(
        np.asarray(times, dtype=float),
        np.asarray(ids, dtype=np.int64),
        np.zeros(n_files),
        np.ones(n_files, dtype=np.int64),
    )


class TestHourlySeries:
    def test_shape_and_counts(self):
        lg = tiny_log([0.5, 0.6, 30.2], [0, 0, 1], 2)
        series = hourly_series(lg, [0, 1])
        assert series.shape == (2, 168)
        assert series[0, 0] == 2
        assert series[1, 30] == 1

    def test_custom_slots(self):
        lg = tiny_log([1.0, 13.0], [0, 0], 1)
        series = hourly_series(lg, [0], slot_hours=12.0)
        assert series.shape == (1, 14)
        assert series[0, 0] == 1 and series[0, 1] == 1


class TestCorrelationMatrix:
    def test_identical_series_fully_correlated(self):
        s = np.array([[1.0, 2.0, 3.0], [2.0, 4.0, 6.0]])
        corr = correlation_matrix(s)
        assert corr[0, 1] == pytest.approx(1.0)

    def test_opposite_series_anticorrelated(self):
        s = np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        assert correlation_matrix(s)[0, 1] == pytest.approx(-1.0)

    def test_zero_variance_row_correlates_with_nothing(self):
        s = np.array([[1.0, 1.0, 1.0], [1.0, 2.0, 3.0]])
        corr = correlation_matrix(s)
        assert corr[0, 1] == 0.0
        assert corr[0, 0] == 1.0  # diagonal restored

    def test_single_series_rejected(self):
        with pytest.raises(ValueError):
            correlation_matrix(np.ones((1, 5)))


class TestGrouping:
    def test_perfectly_correlated_pair_grouped(self):
        corr = np.array([[1.0, 0.9], [0.9, 1.0]])
        groups = co_access_groups([10, 20], corr, threshold=0.5)
        assert groups == [[10, 20]]

    def test_uncorrelated_files_stay_singletons(self):
        corr = np.eye(3)
        groups = co_access_groups([1, 2, 3], corr, threshold=0.5)
        assert groups == [[1], [2], [3]]


class TestPipelineClaim:
    def test_co_access_groups_exist(self, log):
        """Section III: 'considerable correlation among accesses to
        different files' — shared-pipeline files move together."""
        summary = analyze_correlation(log)
        assert len(summary.groups) >= 3
        assert max(len(g) for g in summary.groups) >= 2

    def test_groups_are_strongly_correlated_internally(self, log):
        summary = analyze_correlation(log)
        group = max(summary.groups, key=len)
        series = hourly_series(log, group)
        corr = correlation_matrix(series)
        iu = np.triu_indices(len(group), 1)
        assert corr[iu].mean() > 0.5  # far above the ~0 background

    def test_background_correlation_is_low(self, log):
        summary = analyze_correlation(log)
        assert abs(summary.mean_pairwise) < 0.15

    def test_needs_at_least_two_hot_files(self):
        lg = tiny_log([1.0] * 5, [0] * 5, 1)
        with pytest.raises(ValueError):
            analyze_correlation(lg)
