"""Integration tests: the end-to-end experiment runner."""

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, make_scheduler, run_experiment
from repro.scheduling.fair import FairScheduler
from repro.scheduling.fifo import FifoScheduler
from repro.workloads.swim import synthesize_wl1
from tests.conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def wl():
    return synthesize_wl1(np.random.default_rng(7), n_jobs=60)


@pytest.fixture(scope="module")
def vanilla(wl):
    return run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)


@pytest.fixture(scope="module")
def dare_et(wl):
    return run_experiment(
        ExperimentConfig(cluster_spec=SMALL_SPEC, dare=DareConfig.elephant_trap()), wl
    )


class TestSchedulerFactory:
    def test_fifo(self):
        assert isinstance(make_scheduler("fifo"), FifoScheduler)

    def test_fair(self):
        assert isinstance(make_scheduler("fair"), FairScheduler)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("lottery")


class TestRunCompleteness:
    def test_all_jobs_complete(self, vanilla, wl):
        assert vanilla.n_jobs == wl.n_jobs

    def test_every_map_task_recorded(self, vanilla, wl):
        assert len(vanilla.collector.map_records) == wl.total_map_tasks()

    def test_locality_counts_match_map_total(self, vanilla, wl):
        assert vanilla.locality.total == wl.total_map_tasks()

    def test_vanilla_creates_no_replicas(self, vanilla):
        assert vanilla.blocks_created == 0
        assert vanilla.replication_disk_writes == 0

    def test_makespan_covers_submissions(self, vanilla, wl):
        assert vanilla.makespan_s >= max(s.submit_time for s in wl.specs)

    def test_metrics_in_sane_ranges(self, vanilla):
        assert 0.0 <= vanilla.job_locality <= 1.0
        assert vanilla.gmtt_s > 0
        assert vanilla.slowdown > 0.9
        assert vanilla.cv_before > 0


class TestDareEffects:
    def test_dare_improves_locality(self, vanilla, dare_et):
        assert dare_et.job_locality > vanilla.job_locality

    def test_dare_creates_replicas(self, dare_et):
        assert dare_et.blocks_created > 0
        assert dare_et.blocks_created_per_job > 0

    def test_dare_does_not_hurt_turnaround(self, vanilla, dare_et):
        assert dare_et.gmtt_s <= vanilla.gmtt_s * 1.05

    def test_dare_improves_placement_uniformity(self, dare_et):
        assert dare_et.cv_after < dare_et.cv_before

    def test_writes_match_replica_creations(self, dare_et):
        assert dare_et.replication_disk_writes >= dare_et.blocks_created


class TestDeterminism:
    def test_same_config_same_result(self, wl):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, dare=DareConfig.elephant_trap())
        a = run_experiment(cfg, wl)
        b = run_experiment(cfg, wl)
        assert a.job_locality == b.job_locality
        assert a.gmtt_s == b.gmtt_s
        assert a.blocks_created == b.blocks_created

    def test_seed_changes_result(self, wl):
        a = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC, seed=1), wl)
        b = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC, seed=2), wl)
        assert a.gmtt_s != b.gmtt_s

    def test_label(self):
        cfg = ExperimentConfig(cluster_spec=SMALL_SPEC, scheduler="fair")
        assert "fair" in cfg.label()


class TestNoExtraNetworkInvariant:
    def test_replications_all_piggybacked(self, wl):
        """DARE's headline invariant: every replica rides an existing
        remote read; the service never initiates transfers."""
        cfg = ExperimentConfig(
            cluster_spec=SMALL_SPEC, dare=DareConfig.greedy_lru(budget=0.5)
        )
        r = run_experiment(cfg, wl)
        remote_maps = r.locality.rack_local + r.locality.remote
        assert r.blocks_created <= remote_maps
