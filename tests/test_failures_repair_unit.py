"""Unit tests: the re-replication service internals."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.failures.repair import ReReplicationService
from repro.hdfs.block import DEFAULT_BLOCK_SIZE
from repro.hdfs.namenode import NameNode
from repro.metrics.traffic import TrafficMeter
from repro.simulation.engine import Engine
from repro.simulation.rng import RandomStreams
from tests.conftest import SMALL_SPEC


@pytest.fixture
def world():
    cluster = Cluster(SMALL_SPEC, RandomStreams(9))
    nn = NameNode(cluster)
    nn.create_file("a", 4 * DEFAULT_BLOCK_SIZE, replication=3)
    nn.create_file("b", 2 * DEFAULT_BLOCK_SIZE, replication=2)
    engine = Engine()
    traffic = TrafficMeter()
    svc = ReReplicationService(nn, engine, traffic, random.Random(5), max_concurrent=2)
    return cluster, nn, engine, traffic, svc


class TestRepairFlow:
    def test_repairs_under_replicated_block(self, world):
        cluster, nn, engine, traffic, svc = world
        victim = next(iter(nn.locations(0)))
        cluster.node(victim).alive = False
        lost = nn.fail_node(victim)
        svc.enqueue_repairs(lost)
        engine.run()
        assert svc.repairs_completed >= len(lost)
        for bid in lost:
            rf = nn.blocks[bid].inode.replication
            assert len(nn.locations(bid)) == rf
        assert traffic.bytes("re_replication") > 0

    def test_fully_replicated_blocks_not_queued(self, world):
        _, nn, engine, _, svc = world
        svc.enqueue_repairs({0: 3})  # already at rf
        engine.run()
        assert svc.repairs_completed == 0

    def test_duplicate_enqueue_is_idempotent(self, world):
        cluster, nn, engine, _, svc = world
        victim = next(iter(nn.locations(0)))
        cluster.node(victim).alive = False
        lost = nn.fail_node(victim)
        svc.enqueue_repairs(lost)
        svc.enqueue_repairs(lost)  # the same blocks again
        engine.run()
        # each block repaired exactly back to rf, not beyond
        for bid in lost:
            assert len(nn.locations(bid)) == nn.blocks[bid].inode.replication

    def test_unrecoverable_when_no_sources(self, world):
        cluster, nn, engine, _, svc = world
        bid = 0
        for node_id in list(nn.locations(bid)):
            cluster.node(node_id).alive = False
            nn.fail_node(node_id)
        svc.enqueue_repairs({bid: 0})
        engine.run()
        assert svc.repairs_unrecoverable >= 1
        assert svc.repairs_completed == 0

    def test_concurrency_cap_respected(self, world):
        cluster, nn, engine, _, svc = world
        victim = next(iter(nn.locations(0)))
        cluster.node(victim).alive = False
        lost = nn.fail_node(victim)
        svc.enqueue_repairs(lost)
        # immediately after enqueue, at most max_concurrent copies started
        assert svc._active <= svc.max_concurrent
        engine.run()

    def test_double_failure_needs_two_copies(self, world):
        cluster, nn, engine, _, svc = world
        bid = 0
        holders = sorted(nn.locations(bid))[:2]
        for node_id in holders:
            cluster.node(node_id).alive = False
            lost = nn.fail_node(node_id)
        svc.enqueue_repairs({bid: len(nn.locations(bid))})
        engine.run()
        assert len(nn.locations(bid)) == nn.blocks[bid].inode.replication

    def test_invalid_concurrency_rejected(self, world):
        _, nn, engine, traffic, _ = world
        with pytest.raises(ValueError):
            ReReplicationService(nn, engine, traffic, random.Random(1), max_concurrent=0)
