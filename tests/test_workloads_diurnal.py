"""Unit/integration tests: the rotating-hot-set diurnal workload."""

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.diurnal import (
    DiurnalParams,
    per_day_locality,
    synthesize_diurnal,
)
from tests.conftest import SMALL_SPEC


@pytest.fixture(scope="module")
def params():
    return DiurnalParams(n_days=3, jobs_per_day=60, day_length_s=300.0)


@pytest.fixture(scope="module")
def wl(params):
    return synthesize_diurnal(np.random.default_rng(5), params)


class TestGeneration:
    def test_job_count(self, wl, params):
        assert wl.n_jobs == params.n_days * params.jobs_per_day

    def test_arrivals_ordered_within_horizon(self, wl, params):
        times = [s.submit_time for s in wl.specs]
        assert times == sorted(times)
        assert times[-1] < params.n_days * params.day_length_s

    def test_hot_group_rotates(self, wl, params):
        # the day's hot group should dominate that day's accesses
        for day in range(params.n_days):
            hot = f"g{day % params.n_groups}_"
            day_specs = wl.specs[
                day * params.jobs_per_day:(day + 1) * params.jobs_per_day
            ]
            hot_jobs = sum(1 for s in day_specs if s.input_file.startswith(hot))
            assert hot_jobs > 0.45 * len(day_specs)

    def test_catalog_covers_all_groups(self, wl, params):
        groups = {f.name.split("_")[0] for f in wl.catalog.files}
        assert groups == {f"g{g}" for g in range(params.n_groups)}

    @pytest.mark.parametrize(
        "kw",
        [
            {"n_days": 0},
            {"hot_fraction": 1.5},
            {"day_length_s": 0.0},
            {"files_per_group": 0},
        ],
    )
    def test_invalid_params_rejected(self, kw):
        with pytest.raises(ValueError):
            DiurnalParams()._replace(**kw).validate()


class TestAdaptation:
    def test_dare_sustains_locality_across_rotations(self, wl, params):
        van = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)
        dare = run_experiment(
            ExperimentConfig(
                cluster_spec=SMALL_SPEC,
                dare=DareConfig.elephant_trap(p=0.5, budget=0.3),
            ),
            wl,
        )
        van_days = per_day_locality(van, params)
        dare_days = per_day_locality(dare, params)
        assert len(dare_days) == params.n_days
        # DARE beats vanilla on every day, including after each rotation
        for v, d in zip(van_days, dare_days):
            assert d > v

    def test_per_day_locality_partitions_jobs(self, wl, params):
        r = run_experiment(ExperimentConfig(cluster_spec=SMALL_SPEC), wl)
        days = per_day_locality(r, params)
        assert all(0.0 <= d <= 1.0 for d in days)
