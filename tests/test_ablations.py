"""Integration tests: the design-choice ablations."""

import pytest

from repro.experiments.ablations import (
    ablation_delay_sweep,
    ablation_disk_writes,
    ablation_eviction_policy,
    ablation_uniform_replication,
    ablation_unlimited_budget,
)

N_JOBS = 80


class TestDiskWrites:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.policy: r for r in ablation_disk_writes(n_jobs=N_JOBS)}

    def test_elephant_trap_writes_less_than_lru(self, rows):
        # the Section I claim: comparable locality at ~half the disk writes
        assert (
            rows["elephant-trap"].replication_disk_writes
            < 0.7 * rows["greedy-lru"].replication_disk_writes
        )

    def test_locality_in_same_ballpark(self, rows):
        assert rows["elephant-trap"].locality > 0.55 * rows["greedy-lru"].locality


class TestEvictionPolicies:
    def test_all_policies_beat_nothing(self):
        rows = ablation_eviction_policy(n_jobs=N_JOBS)
        assert len(rows) == 3
        for r in rows:
            assert r.locality > 0
            assert r.blocks_per_job > 0

    def test_greedy_variants_create_more_replicas_than_et(self):
        rows = {r.policy: r for r in ablation_eviction_policy(n_jobs=N_JOBS)}
        assert rows["greedy-lru"].blocks_per_job > rows["elephant-trap"].blocks_per_job
        assert rows["greedy-lfu"].blocks_per_job > rows["elephant-trap"].blocks_per_job


class TestBudgetBound:
    def test_unlimited_budget_uses_more_storage(self):
        rows = {r.budget: r for r in ablation_unlimited_budget(n_jobs=N_JOBS)}
        assert rows["unlimited"].extra_storage_fraction >= rows["0.2"].extra_storage_fraction
        assert rows["unlimited"].locality >= rows["0.2"].locality * 0.95


class TestDelaySweep:
    def test_delay_improves_vanilla_locality(self):
        rows = {r.delay_s: r for r in ablation_delay_sweep(delays=(0.0, 3.0), n_jobs=N_JOBS)}
        assert rows[3.0].vanilla_locality > rows[0.0].vanilla_locality

    def test_dare_helps_at_every_delay(self):
        for row in ablation_delay_sweep(delays=(0.0, 1.5), n_jobs=N_JOBS):
            assert row.dare_locality >= row.vanilla_locality


class TestUniformReplication:
    def test_dare_beats_equal_storage_uniform_replication(self):
        rows = ablation_uniform_replication(factors=(3, 4), n_jobs=N_JOBS)
        by_label = {r.label: r for r in rows}
        dare = by_label["DARE (rf=3 + budget 0.2)"]
        rf4 = by_label["uniform rf=4"]
        # DARE uses less storage than rf=4 yet achieves better locality
        assert dare.storage_blocks < rf4.storage_blocks
        assert dare.locality > rf4.locality

    def test_uniform_replication_scales_storage_linearly(self):
        rows = ablation_uniform_replication(factors=(3, 6), n_jobs=N_JOBS)
        by_label = {r.label: r for r in rows}
        assert by_label["uniform rf=6"].storage_blocks == 2 * by_label["uniform rf=3"].storage_blocks
