"""Error paths of :mod:`repro.experiments.serialize`.

The happy-path round-trip is exercised all over the suite (cache,
service, checkpoint); these tests pin the *failure* behaviors consumers
rely on — version skew detection, loud rejection of malformed documents,
which unknown fields are tolerated vs. refused, and what happens to
non-finite floats (they survive the repo-internal round-trip, but are
not interoperable JSON — the HTTP edge rejects them, see
``repro.server.http``).
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.experiments.serialize import (
    canonical_json,
    cluster_spec_from_dict,
    config_from_dict,
    config_to_dict,
    result_from_dict,
    result_to_dict,
    result_to_json,
)
from repro.workloads.swim import synthesize_wl1

SEED = 20110926


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(dare=DareConfig.elephant_trap(), seed=SEED)
    workload = synthesize_wl1(np.random.default_rng(SEED), n_jobs=2)
    return run_experiment(config, workload)


class TestVersionSkew:
    @pytest.mark.parametrize("fmt", [0, 2, 99, None, "1"])
    def test_unsupported_format_is_rejected(self, result, fmt):
        doc = result_to_dict(result)
        doc["format"] = fmt
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict(doc)

    def test_missing_format_is_rejected(self, result):
        doc = result_to_dict(result)
        del doc["format"]
        with pytest.raises(ValueError, match="unsupported result format"):
            result_from_dict(doc)


class TestMalformedDocuments:
    def test_missing_result_field_raises_keyerror(self, result):
        doc = result_to_dict(result)
        del doc["mean_map_s"]
        with pytest.raises(KeyError, match="mean_map_s"):
            result_from_dict(doc)

    def test_missing_config_field_raises_keyerror(self, result):
        doc = config_to_dict(result.config)
        del doc["seed"]
        with pytest.raises(KeyError, match="seed"):
            config_from_dict(doc)

    def test_unknown_cluster_spec_field_is_refused(self, result):
        doc = config_to_dict(result.config)
        doc["cluster_spec"]["bogus_knob"] = 1
        with pytest.raises(TypeError, match="bogus_knob"):
            config_from_dict(doc)

    def test_unknown_network_param_is_refused(self, result):
        spec = config_to_dict(result.config)["cluster_spec"]
        spec["network"]["warp_drive"] = True
        with pytest.raises(TypeError, match="warp_drive"):
            cluster_spec_from_dict(spec)

    def test_unknown_policy_value_is_refused(self, result):
        doc = config_to_dict(result.config)
        doc["dare"]["policy"] = "clairvoyant"
        with pytest.raises(ValueError, match="clairvoyant"):
            config_from_dict(doc)

    def test_unknown_top_level_config_keys_are_ignored(self, result):
        # forward-tolerance: a newer writer may add fields; readers take
        # what they know (cache keys exclude these docs anyway)
        doc = config_to_dict(result.config)
        doc["added_in_the_future"] = {"x": 1}
        assert config_from_dict(doc) == result.config


class TestNonFiniteFloats:
    def test_round_trip_preserves_non_finite_floats(self, result):
        doc = result_to_dict(result)
        doc["gmtt_s"] = float("nan")
        doc["slowdown"] = float("-inf")
        text = canonical_json(doc)
        # python's json emits the non-standard NaN/Infinity tokens...
        assert "NaN" in text and "-Infinity" in text
        back = result_from_dict(json.loads(text))
        assert math.isnan(back.gmtt_s)
        assert math.isinf(back.slowdown) and back.slowdown < 0

    def test_non_finite_floats_are_not_interoperable_json(self, result):
        # ...which strict encoders refuse: anything leaving the repo
        # (the HTTP API) must reject them at the edge instead
        doc = result_to_dict(result)
        doc["gmtt_s"] = float("nan")
        with pytest.raises(ValueError):
            json.dumps(doc, allow_nan=False)
        from repro.server.http import _reject_constant

        with pytest.raises(ValueError, match="non-finite"):
            json.loads('{"x": NaN}', parse_constant=_reject_constant)


class TestCanonicalJson:
    def test_key_order_and_whitespace_invariance(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == \
            canonical_json({"a": [1, 2], "b": 1}) == '{"a":[1,2],"b":1}'

    def test_equal_results_equal_bytes(self, result):
        doc = json.loads(result_to_json(result))
        assert canonical_json(doc) == result_to_json(result)
