"""Unit tests: the sampling callback profiler."""

import pytest

from repro.observability.profiling import (
    N_BINS,
    UNLABELED,
    CallbackProfiler,
    bucket_of,
)
from repro.simulation.engine import Engine
from repro.simulation.events import Event


def _event(label="", action=None):
    return Event(0.0, 0, action or (lambda: None), label)


class FakeClock:
    """Deterministic perf_counter: each call advances by the next delta."""

    def __init__(self, step_s):
        self.step_s = step_s
        self.t = 0.0
        self.ticks = 0

    def __call__(self):
        # observe() calls the clock twice per sample; advance on the stop call
        if self.ticks % 2:
            self.t += self.step_s
        self.ticks += 1
        return self.t


class TestBucketOf:
    def test_prefix_before_colon(self):
        assert bucket_of("hb:node07") == "hb"
        assert bucket_of("hb:node13") == "hb"

    def test_no_colon_is_whole_label(self):
        assert bucket_of("submit") == "submit"

    def test_empty_label(self):
        assert bucket_of("") == UNLABELED


class TestSampling:
    def test_samples_every_nth(self):
        prof = CallbackProfiler(sample_every=5, clock=FakeClock(1e-6))
        for _ in range(20):
            prof.observe(_event("x"))
        assert prof.events_seen == 20
        assert prof.samples == 4  # events 1, 6, 11, 16

    def test_every_1_samples_all(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(1e-6))
        for _ in range(10):
            prof.observe(_event("x"))
        assert prof.samples == 10

    def test_sample_every_must_be_positive(self):
        with pytest.raises(ValueError):
            CallbackProfiler(sample_every=0)

    def test_action_runs_for_unsampled_events(self):
        calls = []
        prof = CallbackProfiler(sample_every=100, clock=FakeClock(1e-6))
        for i in range(10):
            prof.observe(_event("x", lambda i=i: calls.append(i)))
        assert calls == list(range(10))


class TestAggregation:
    def test_labels_collapse_into_buckets(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(2e-6))
        for node in range(4):
            prof.observe(_event(f"hb:node{node}"))
        prof.observe(_event("submit"))
        rows = {r.bucket: r for r in prof.report()}
        assert set(rows) == {"hb", "submit"}
        assert rows["hb"].samples == 4

    def test_shares_sum_to_one(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(1e-6))
        for label in ("a", "b", "c", "a"):
            prof.observe(_event(label))
        assert sum(r.share for r in prof.report()) == pytest.approx(1.0)

    def test_report_sorted_hottest_first(self):
        clock = FakeClock(1e-6)
        prof = CallbackProfiler(sample_every=1, clock=clock)
        clock.step_s = 1e-6
        prof.observe(_event("cheap"))
        clock.step_s = 1e-3
        prof.observe(_event("dear"))
        rows = prof.report()
        assert [r.bucket for r in rows] == ["dear", "cheap"]

    def test_histogram_binning(self):
        # 2µs lands in bin 2 ([2, 4) µs)
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(2e-6))
        prof.observe(_event("x"))
        (row,) = prof.report()
        assert len(row.histogram) == N_BINS
        assert row.histogram[2] == 1
        assert sum(row.histogram) == 1

    def test_percentiles_bound_the_samples(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(3e-6))
        for _ in range(10):
            prof.observe(_event("x"))
        (row,) = prof.report()
        # all samples are 3µs; upper-bound estimate from bin [2,4)µs is 4µs
        assert row.p50_us == row.p95_us == 4.0
        assert row.max_us == pytest.approx(3.0)

    def test_top_limits_rows(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(1e-6))
        for label in "abcdef":
            prof.observe(_event(label))
        assert len(prof.report(top=3)) == 3


class TestReporting:
    def test_format_report_empty(self):
        assert "no callbacks" in CallbackProfiler().format_report()

    def test_format_report_mentions_buckets(self):
        prof = CallbackProfiler(sample_every=1, clock=FakeClock(1e-6))
        prof.observe(_event("hb:n1"))
        text = prof.format_report()
        assert "hb" in text
        assert "1 sampled" in text

    def test_to_dict_round_trips_through_json(self):
        import json

        prof = CallbackProfiler(sample_every=1, clock=FakeClock(1e-6))
        prof.observe(_event("hb:n1"))
        doc = json.loads(json.dumps(prof.to_dict()))
        assert doc["samples"] == 1
        assert doc["buckets"][0]["bucket"] == "hb"


class TestEngineIntegration:
    def test_profiler_attaches_to_engine(self):
        engine = Engine()
        prof = CallbackProfiler(sample_every=1)
        engine.profiler = prof
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50:
                engine.schedule_in(1.0, tick, f"tick:{count[0]}")

        engine.schedule(0.0, tick, "tick:0")
        engine.run()
        assert count[0] == 50
        assert prof.events_seen == 50
        assert prof.samples == 50
        assert prof.report()[0].bucket == "tick"

    def test_disabled_profiler_is_detached(self):
        engine = Engine()
        prof = CallbackProfiler()
        prof.enabled = False
        engine.profiler = prof
        engine.schedule(0.0, lambda: None)
        engine.run()
        assert prof.events_seen == 0

    def test_profiled_run_preserves_event_order(self):
        def run(profiled):
            engine = Engine()
            if profiled:
                engine.profiler = CallbackProfiler(sample_every=3)
            order = []
            count = [0]

            def tick():
                count[0] += 1
                order.append((engine.now, count[0]))
                if count[0] < 100:
                    engine.schedule_in(0.5, tick)
                    if count[0] % 4 == 0:
                        engine.cancel(engine.schedule_in(0.25, tick))

            engine.schedule(0.0, tick)
            engine.run()
            return order

        assert run(profiled=False) == run(profiled=True)
