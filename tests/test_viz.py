"""Unit tests: the SVG chart layer and figure renderers."""

import xml.dom.minidom

import pytest

from repro.viz.svg import SvgCanvas, bar_chart, grouped_bar_chart, line_chart


def well_formed(svg: str) -> bool:
    xml.dom.minidom.parseString(svg)
    return True


class TestCanvas:
    def test_px_py_linear_mapping(self):
        c = SvgCanvas(width=200, height=200, margin=(0, 0, 0, 0))
        c.set_ranges((0, 10), (0, 10))
        assert c.px(0) == 0
        assert c.px(10) == 200
        assert c.py(0) == 200  # SVG y is flipped
        assert c.py(10) == 0

    def test_log_mapping(self):
        c = SvgCanvas(width=100, height=100, margin=(0, 0, 0, 0))
        c.set_ranges((1, 100), (1, 100), xlog=True)
        assert c.px(10) == pytest.approx(50)

    def test_log_range_must_be_positive(self):
        c = SvgCanvas()
        with pytest.raises(ValueError):
            c.set_ranges((0, 10), (1, 10), xlog=True)

    def test_degenerate_range_rejected(self):
        c = SvgCanvas()
        with pytest.raises(ValueError):
            c.set_ranges((5, 5), (0, 1))

    def test_render_is_well_formed(self):
        c = SvgCanvas(title="t")
        c.set_ranges((0, 1), (0, 1))
        c.axes("x", "y")
        c.polyline([(0, 0), (1, 1)], "#123456")
        c.text(10, 10, "hello & <goodbye>")  # must be escaped
        svg = c.render()
        assert well_formed(svg)
        assert "hello &amp;" in svg


class TestCharts:
    def test_line_chart(self):
        svg = line_chart([("a", [(0, 1), (1, 2)]), ("b", [(0, 2), (1, 1)])],
                         title="T", xlabel="x", ylabel="y")
        assert well_formed(svg)
        assert "polyline" in svg
        assert "T" in svg

    def test_line_chart_log_axes(self):
        svg = line_chart([("s", [(1, 1), (10, 100), (100, 10000)])],
                         xlog=True, ylog=True)
        assert well_formed(svg)

    def test_line_chart_flat_series_ok(self):
        assert well_formed(line_chart([("s", [(0, 5), (1, 5)])]))

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_bar_chart(self):
        svg = bar_chart(["a", "b", "c"], [1.0, 2.0, 0.5], ylabel="v")
        assert well_formed(svg)
        assert svg.count("<rect") >= 4  # 3 bars + background

    def test_bar_chart_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_grouped_bar_chart(self):
        svg = grouped_bar_chart(
            ["g1", "g2"], [("s1", [1, 2]), ("s2", [2, 1])], title="G"
        )
        assert well_formed(svg)
        assert svg.count("<rect") >= 5  # 4 bars + background + legend

    def test_grouped_bar_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g1", "g2"], [("s1", [1])])


class TestPaperFigures:
    def test_section3_figures_render(self):
        from repro.viz.paper_figures import fig1_svg, fig2_svg, fig3_svg, fig4_svg, fig5_svg

        for fn in (fig1_svg, fig2_svg, fig3_svg, fig4_svg, fig5_svg):
            assert well_formed(fn(seed=3))

    def test_cluster_figures_render_small(self):
        from repro.viz.paper_figures import fig6_svg, fig7_svgs, fig11_svg

        assert well_formed(fig6_svg(n_jobs=40))
        for svg in fig7_svgs(n_jobs=40).values():
            assert well_formed(svg)
        assert well_formed(fig11_svg(n_jobs=40))

    def test_render_all_writes_files(self, tmp_path):
        from repro.viz.paper_figures import render_all

        paths = render_all(tmp_path, n_jobs=30)
        assert len(paths) > 15
        for path in paths:
            assert path.suffix == ".svg"
            assert well_formed(path.read_text())
