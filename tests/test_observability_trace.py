"""Unit tests: the trace bus, sinks, and disabled-tracer overhead contract."""

from __future__ import annotations

import json

import pytest

from repro.hdfs.namenode import NameNode
from repro.observability.trace import (
    BLOCK_REPLICATED,
    ENGINE_EVENT,
    HEARTBEAT,
    NULL_TRACER,
    RECORD_TYPES,
    JsonlSink,
    RingBufferSink,
    TraceRecord,
    Tracer,
)
from repro.simulation.engine import Engine


class TestTracer:
    def test_emit_reaches_sinks_and_subscribers(self):
        tracer = Tracer()
        ring = RingBufferSink()
        seen = []
        tracer.add_sink(ring)
        tracer.subscribe(seen.append)
        rec = tracer.emit(HEARTBEAT, 1.5, node=3)
        assert rec == TraceRecord(HEARTBEAT, 1.5, {"node": 3})
        assert list(ring.records) == [rec]
        assert seen == [rec]

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(enabled=False)
        ring = RingBufferSink()
        tracer.add_sink(ring)
        assert tracer.emit(HEARTBEAT, 0.0, node=1) is None
        assert len(ring) == 0

    def test_null_tracer_is_disabled(self):
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.emit(HEARTBEAT, 0.0) is None

    def test_record_types_are_distinct(self):
        assert len(RECORD_TYPES) == 16

    def test_close_closes_closable_sinks(self, tmp_path):
        tracer = Tracer()
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        tracer.add_sink(sink)
        tracer.add_sink(RingBufferSink())  # no close(); must not break
        tracer.close()
        assert sink._fh.closed


class TestRingBufferSink:
    def test_keeps_only_last_capacity_records(self):
        ring = RingBufferSink(capacity=3)
        for i in range(10):
            ring.write(TraceRecord(HEARTBEAT, float(i), {"node": i}))
        assert len(ring) == 3
        assert [r.time for r in ring.records] == [7.0, 8.0, 9.0]
        assert [r.time for r in ring.tail(2)] == [8.0, 9.0]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonlSink:
    def test_writes_parseable_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            sink.write(TraceRecord(BLOCK_REPLICATED, 2.0, {"node": 1, "block": 9}))
            sink.write(TraceRecord(HEARTBEAT, 3.0, {"node": 1}))
        lines = path.read_text().splitlines()
        assert sink.records_written == 2
        first = json.loads(lines[0])
        assert first == {"type": BLOCK_REPLICATED, "t": 2.0, "node": 1, "block": 9}

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()

    def test_reserved_key_collisions_are_namespaced(self):
        rec = TraceRecord(
            HEARTBEAT, 1.0, {"type": "x", "t": 9, "data.y": 2, "node": 4}
        )
        obj = json.loads(rec.to_json())
        assert obj["type"] == HEARTBEAT and obj["t"] == 1.0
        assert obj["data.type"] == "x"
        assert obj["data.t"] == 9
        assert obj["data.data.y"] == 2
        assert obj["node"] == 4

    def test_flush_every_writes_promptly(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path), flush_every=1)
        sink.write(TraceRecord(HEARTBEAT, 1.0, {"node": 2}))
        assert path.read_text().strip()  # on disk before close
        sink.close()

    def test_flush_every_validated(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "t.jsonl"), flush_every=0)


class TestEngineFirehose:
    def test_engine_events_off_by_default(self):
        tracer = Tracer()
        ring = RingBufferSink()
        tracer.add_sink(ring)
        engine = Engine(tracer=tracer)
        engine.schedule(1.0, lambda: None, "tick")
        engine.run()
        assert not any(r.type == ENGINE_EVENT for r in ring.records)

    def test_engine_events_opt_in(self):
        tracer = Tracer(engine_events=True)
        ring = RingBufferSink()
        tracer.add_sink(ring)
        engine = Engine(tracer=tracer)
        engine.schedule(1.0, lambda: None, "tick")
        engine.schedule(2.0, lambda: None, "tock")
        engine.run()
        labels = [r.data["label"] for r in ring.records if r.type == ENGINE_EVENT]
        assert labels == ["tick", "tock"]


class TestComponentWiring:
    def test_namenode_hands_tracer_to_datanodes(self, small_cluster):
        tracer = Tracer()
        nn = NameNode(small_cluster, tracer=tracer)
        assert all(dn.tracer is tracer for dn in nn.datanodes.values())

    def test_default_is_null_tracer(self, small_cluster):
        nn = NameNode(small_cluster)
        assert nn.tracer is NULL_TRACER
        assert all(dn.tracer is NULL_TRACER for dn in nn.datanodes.values())

    def test_dynamic_insert_and_evict_emit_records(self, small_cluster):
        tracer = Tracer()
        ring = RingBufferSink()
        tracer.add_sink(ring)
        nn = NameNode(small_cluster, tracer=tracer)
        nn.create_file("f", 2 * nn.block_size, replication=2)
        block = nn.blocks[0]
        node = next(
            n for n, dn in nn.datanodes.items() if not dn.has_block(block.block_id)
        )
        dn = nn.datanodes[node]
        dn.dynamic_capacity_bytes = block.size_bytes
        dn.insert_dynamic(block, now=1.0)
        dn.mark_for_deletion(block.block_id, now=2.0)
        types = [r.type for r in ring.records]
        assert types == [
            "budget.charge",
            "block.replicated",
            "budget.refund",
            "block.evicted",
        ]
        assert all(r.data["node"] == node for r in ring.records)
