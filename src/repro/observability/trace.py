"""The structured trace bus.

Components publish typed :class:`TraceRecord` s to a :class:`Tracer`; sinks
(ring buffer, JSONL file) store them and subscribers (the invariant checker)
react to them.  The bus is designed so that a *disabled* tracer costs one
attribute check on the hot path: every instrumented call site is guarded by
``if tracer.enabled:`` and the module-level :data:`NULL_TRACER` singleton is
permanently disabled, so simulations that don't opt in pay essentially
nothing.

Record types
------------
Each record is ``(type, time, data)`` where ``type`` is one of the module
constants below, ``time`` is the simulation clock, and ``data`` is a flat
``dict`` of JSON-serializable fields:

=====================  =========================================================
``BLOCK_REPLICATED``   dynamic replica inserted (node, block, bytes, used, cap)
``BLOCK_EVICTED``      dynamic replica marked for lazy deletion
``BUDGET_CHARGE``      dynamic budget consumed by an insertion
``BUDGET_REFUND``      dynamic budget released by an eviction
``REPLICATION_ABANDONED``  no victim found; replication given up
``TASK_SCHEDULED``     map/reduce attempt launched (node, locality, ...)
``TASK_FINISHED``      map/reduce attempt completed
``HEARTBEAT``          TaskTracker heartbeat (free slots)
``HDFS_HEARTBEAT``     DataNode block report applied (commands drained)
``FAILURE_INJECTED``   node killed by the failure injector
``FAILURE_DETECTED``   NameNode pruned a dead node's replicas
``ENGINE_EVENT``       one engine callback fired (opt-in; very hot)
``SCARLETT_EPOCH``     Scarlett epoch boundary (targets, budget, spent)
``ROLLOUT_DECISION``   rollout engine chose an action (or no-op) at an epoch
``RUN_CONFIG``         run header: experiment cell parameters (first record)
``RUN_SUMMARY``        run footer: final counters + per-node end state
=====================  =========================================================

``RUN_CONFIG`` / ``RUN_SUMMARY`` bracket a complete run so a trace is a
self-contained replayable artifact: :mod:`repro.replay` reconstructs the
control-plane end state purely from the records in between and checks it
against the footer.  A trace that ends without a ``RUN_SUMMARY`` is a
crashed (or still-running) run — still replayable up to its last record.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Optional

# -- record types -------------------------------------------------------------

BLOCK_REPLICATED = "block.replicated"
BLOCK_EVICTED = "block.evicted"
BUDGET_CHARGE = "budget.charge"
BUDGET_REFUND = "budget.refund"
REPLICATION_ABANDONED = "replication.abandoned"
TASK_SCHEDULED = "task.scheduled"
TASK_FINISHED = "task.finished"
HEARTBEAT = "heartbeat"
HDFS_HEARTBEAT = "hdfs.heartbeat"
FAILURE_INJECTED = "failure.injected"
FAILURE_DETECTED = "failure.detected"
ENGINE_EVENT = "engine.event"
SCARLETT_EPOCH = "scarlett.epoch"
ROLLOUT_DECISION = "rollout.decision"
RUN_CONFIG = "run.config"
RUN_SUMMARY = "run.summary"

#: every record type the stack emits, for schema validation in tests
RECORD_TYPES = frozenset(
    {
        BLOCK_REPLICATED,
        BLOCK_EVICTED,
        BUDGET_CHARGE,
        BUDGET_REFUND,
        REPLICATION_ABANDONED,
        TASK_SCHEDULED,
        TASK_FINISHED,
        HEARTBEAT,
        HDFS_HEARTBEAT,
        FAILURE_INJECTED,
        FAILURE_DETECTED,
        ENGINE_EVENT,
        SCARLETT_EPOCH,
        ROLLOUT_DECISION,
        RUN_CONFIG,
        RUN_SUMMARY,
    }
)

#: JSONL keys owned by the envelope, not the record's data payload
RESERVED_KEYS = ("type", "t")

#: prefix under which colliding data keys are namespaced in the JSONL form
DATA_KEY_PREFIX = "data."


class TraceRecord(NamedTuple):
    """One published event: ``(type, time, data)``."""

    type: str
    time: float
    data: Dict[str, object]

    def to_json(self) -> str:
        """Serialize as one JSONL line.

        The envelope owns the ``type`` and ``t`` keys.  A data field that
        collides with them (or that itself starts with the namespacing
        prefix) is written as ``data.<key>`` so the line stays one valid
        JSON object and the round-trip through
        :func:`repro.replay.reader.read_trace` is lossless.
        """
        payload: Dict[str, object] = {"type": self.type, "t": self.time}
        for key, value in self.data.items():
            if key in RESERVED_KEYS or key.startswith(DATA_KEY_PREFIX):
                key = DATA_KEY_PREFIX + key
            payload[key] = value
        return json.dumps(payload, sort_keys=True)


# -- sinks ---------------------------------------------------------------------


class RingBufferSink:
    """Keeps the last ``capacity`` records in memory (the diagnostic tail)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)

    def write(self, record: TraceRecord) -> None:
        self.records.append(record)

    def tail(self, n: int = 20) -> List[TraceRecord]:
        """The most recent ``n`` records, oldest first."""
        return list(self.records)[-n:]

    def __len__(self) -> int:
        return len(self.records)


class JsonlSink:
    """Appends every record to a JSONL file (one object per line).

    Flushes to the OS every ``flush_every`` records so a crashed run's
    trace is replayable up to (nearly) its last event; the runner closes
    the sink in a ``try/finally`` which flushes the remainder.

    ``append=True`` continues an existing file instead of truncating it —
    the checkpoint layer restores a run by writing the snapshot's trace
    prefix and appending the resumed run's records after it.
    """

    def __init__(self, path: str, flush_every: int = 256, append: bool = False) -> None:
        if flush_every < 1:
            raise ValueError("flush_every must be >= 1")
        self.path = path
        self._fh = open(path, "a" if append else "w", encoding="utf-8")
        self.records_written = 0
        self._flush_every = flush_every

    def write(self, record: TraceRecord) -> None:
        self._fh.write(record.to_json())
        self._fh.write("\n")
        self.records_written += 1
        if self.records_written % self._flush_every == 0:
            self._fh.flush()

    def flush(self) -> None:
        """Push buffered records to the OS without closing the file."""
        if not self._fh.closed:
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- the bus ---------------------------------------------------------------------


class Tracer:
    """Publish/subscribe bus for simulation trace records.

    ``enabled`` is the master switch: call sites guard their ``emit`` with
    it, and :meth:`emit` itself re-checks so an unguarded call is still
    safe.  ``engine_events`` additionally opts in to the per-callback
    :data:`ENGINE_EVENT` firehose, which is orders of magnitude hotter than
    the rest of the schema and off by default even on enabled tracers.
    """

    __slots__ = ("enabled", "engine_events", "_sinks", "_subscribers")

    def __init__(self, enabled: bool = True, engine_events: bool = False) -> None:
        self.enabled = enabled
        self.engine_events = engine_events
        self._sinks: List[object] = []
        self._subscribers: List[Callable[[TraceRecord], None]] = []

    # -- wiring ---------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a storage sink (anything with ``write(record)``)."""
        self._sinks.append(sink)

    def subscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Attach a reactive subscriber called with every record."""
        self._subscribers.append(fn)

    def unsubscribe(self, fn: Callable[[TraceRecord], None]) -> None:
        """Detach a subscriber added by :meth:`subscribe`.

        A no-op when ``fn`` was never attached, so teardown paths can
        call it unconditionally.
        """
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass

    # -- publishing -------------------------------------------------------------

    def emit(self, type: str, time: float, **data: object) -> Optional[TraceRecord]:
        """Publish one record to every sink and subscriber.

        Returns the record (or ``None`` when disabled) so tests can assert
        on what was published.
        """
        if not self.enabled:
            return None
        record = TraceRecord(type, time, data)
        for sink in self._sinks:
            sink.write(record)
        for fn in self._subscribers:
            fn(record)
        return record

    def close(self) -> None:
        """Close every sink that supports closing."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


#: the permanently disabled tracer every component defaults to
NULL_TRACER = Tracer(enabled=False)
