"""Runtime invariant checking over the trace bus.

The :class:`InvariantChecker` subscribes to a :class:`~repro.observability.trace.Tracer`
and re-validates cross-component bookkeeping as the simulation runs, so an
accounting bug surfaces at the event that introduced it — with the trace
tail in hand — instead of skewing a figure thousands of events later.

Checked invariants
------------------
After **every** record, scoped to the node the record names:

* **Budget accounting** — ``DataNode.dynamic_bytes_used`` equals the summed
  size of live (not pending-deletion) dynamic replicas, never negative and
  never above ``dynamic_capacity_bytes``; ``pending_deletion`` only names
  blocks the node actually stores.
* **Policy coherence** — every block a DARE policy tracks is a live dynamic
  replica on its node; ElephantTrap access counts are non-negative and the
  ring holds no duplicates.
* **Slot accounting** — a TaskTracker's free map/reduce slots stay within
  ``[0, capacity]`` (busy slots never exceed capacity).

After every ``scarlett.epoch`` record (and in full sweeps when a Scarlett
service is wired in):

* **Scarlett epoch accounting** — bytes held as extra replicas stay within
  the epoch budget plus the in-flight slack (at most ``max_concurrent``
  copies can land after a boundary re-plan), and every extra-replica pair
  on a live node is actually stored there.

At **settled** points (heartbeats, task launch/finish — never mid-eviction),
throttled by ``full_sweep_every`` records, a full sweep additionally asserts:

* **Replica-map consistency** — the NameNode's location map matches DataNode
  contents modulo in-flight heartbeat messages
  (:meth:`~repro.hdfs.namenode.NameNode.check_integrity`).
* **Strict policy sync** — on every live node the policy-tracked set equals
  the set of live dynamic replicas exactly.

A failed check raises :class:`InvariantViolation` carrying the offending
record and the recent trace tail.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Set

from repro.observability.trace import (
    HDFS_HEARTBEAT,
    HEARTBEAT,
    SCARLETT_EPOCH,
    TASK_FINISHED,
    TASK_SCHEDULED,
    RingBufferSink,
    TraceRecord,
    Tracer,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.baselines.scarlett import ScarlettService
    from repro.core.manager import DareReplicationService
    from repro.hdfs.datanode import DataNode
    from repro.hdfs.namenode import NameNode
    from repro.mapreduce.jobtracker import JobTracker

#: record types at which cross-component state is settled (no eviction loop
#: or insert/track pair is mid-flight), so strict equality checks are safe
SETTLED_TYPES = frozenset({HEARTBEAT, HDFS_HEARTBEAT, TASK_SCHEDULED, TASK_FINISHED})


class InvariantViolation(AssertionError):
    """An invariant failed; carries the trigger record and the trace tail."""

    def __init__(
        self,
        message: str,
        record: Optional[TraceRecord] = None,
        tail: Iterable[TraceRecord] = (),
    ) -> None:
        self.record = record
        self.tail = list(tail)
        lines = [message]
        if record is not None:
            lines.append(f"  triggered by: {record.to_json()}")
        if self.tail:
            lines.append(f"  trace tail ({len(self.tail)} records, oldest first):")
            lines.extend(f"    {r.to_json()}" for r in self.tail)
        super().__init__("\n".join(lines))


def _tracked_ids(policy) -> Set[int]:
    """Block ids a DARE policy currently tracks (LRU/LFU or ElephantTrap)."""
    if hasattr(policy, "tracked_blocks"):
        return set(policy.tracked_blocks())
    return {b.block_id for b in policy.ring_blocks()}


class InvariantChecker:
    """Subscribes to the trace bus and validates bookkeeping per event.

    Parameters
    ----------
    namenode:
        The metadata master (always required: it owns the DataNodes).
    dare:
        The replication service, when DARE policy coherence should be
        checked.
    jobtracker:
        The compute master, when slot accounting should be checked.
    scarlett:
        The epoch-based proactive baseline, when its budget accounting
        should be checked.
    tail_size:
        How many recent records to keep for diagnostics.
    full_sweep_every:
        Run the expensive whole-cluster sweep at most once per this many
        records (``1`` = at every settled record; useful in unit tests).
    """

    def __init__(
        self,
        namenode: "NameNode",
        dare: Optional["DareReplicationService"] = None,
        jobtracker: Optional["JobTracker"] = None,
        scarlett: Optional["ScarlettService"] = None,
        tail_size: int = 64,
        full_sweep_every: int = 2000,
    ) -> None:
        if full_sweep_every < 1:
            raise ValueError("full_sweep_every must be >= 1")
        self.namenode = namenode
        self.dare = dare
        self.jobtracker = jobtracker
        self.scarlett = scarlett
        self.full_sweep_every = full_sweep_every
        self._ring = RingBufferSink(tail_size)
        self.records_seen = 0
        self.sweeps_run = 0
        self._since_sweep = full_sweep_every  # sweep at the first opportunity

    # -- wiring -----------------------------------------------------------------

    def attach(self, tracer: Tracer) -> "InvariantChecker":
        """Subscribe to ``tracer`` (tail sink first, then the checks)."""
        tracer.add_sink(self._ring)
        tracer.subscribe(self.on_record)
        return self

    # -- entry points -------------------------------------------------------------

    def on_record(self, record: TraceRecord) -> None:
        """Validate state after one published record."""
        self.records_seen += 1
        self._since_sweep += 1
        node_id = record.data.get("node")
        if isinstance(node_id, int):
            self._check_node(node_id, record)
        if record.type == SCARLETT_EPOCH:
            self._check_scarlett(record)
        if record.type in SETTLED_TYPES and self._since_sweep >= self.full_sweep_every:
            self.check_now(record)

    def check_now(self, record: Optional[TraceRecord] = None) -> None:
        """Run the full cross-component sweep immediately.

        Called from :meth:`on_record` at settled points and by the runner
        once more after the simulation drains.
        """
        self._since_sweep = 0
        self.sweeps_run += 1
        try:
            self.namenode.check_integrity()
        except AssertionError as exc:
            self._fail(f"replica-map consistency: {exc}", record)
        for node_id in self.namenode.datanodes:
            self._check_node(node_id, record, strict=True)
        self._check_scarlett(record)

    # -- the checks ----------------------------------------------------------------

    def _fail(self, message: str, record: Optional[TraceRecord]) -> None:
        raise InvariantViolation(message, record, self._ring.tail(20))

    def _check_node(
        self, node_id: int, record: Optional[TraceRecord], strict: bool = False
    ) -> None:
        dn = self.namenode.datanodes.get(node_id)
        if dn is not None:
            self._check_budget(dn, record)
            self._check_policy(dn, record, strict)
        self._check_slots(node_id, record)

    def _check_budget(self, dn: "DataNode", record: Optional[TraceRecord]) -> None:
        live_bytes = sum(
            b.size_bytes
            for bid, b in dn.dynamic_blocks.items()
            if bid not in dn.pending_deletion
        )
        if dn.dynamic_bytes_used != live_bytes:
            self._fail(
                f"node {dn.node_id}: dynamic_bytes_used={dn.dynamic_bytes_used} "
                f"but live dynamic replicas sum to {live_bytes}",
                record,
            )
        if dn.dynamic_bytes_used < 0:
            self._fail(
                f"node {dn.node_id}: negative budget usage {dn.dynamic_bytes_used}",
                record,
            )
        if dn.dynamic_bytes_used > dn.dynamic_capacity_bytes:
            self._fail(
                f"node {dn.node_id}: budget exceeded "
                f"({dn.dynamic_bytes_used} > {dn.dynamic_capacity_bytes})",
                record,
            )
        stray = dn.pending_deletion - set(dn.dynamic_blocks)
        if stray:
            self._fail(
                f"node {dn.node_id}: pending deletion of unknown blocks {sorted(stray)}",
                record,
            )

    def _check_policy(
        self, dn: "DataNode", record: Optional[TraceRecord], strict: bool
    ) -> None:
        if self.dare is None or not self.dare.states:
            return
        state = self.dare.states.get(dn.node_id)
        if state is None or not dn.node.alive:
            # a failed node's policy state is frozen garbage; it can never
            # be consulted again (dead nodes don't heartbeat)
            return
        tracked = _tracked_ids(state.policy)
        live = {bid for bid in dn.dynamic_blocks if bid not in dn.pending_deletion}
        phantom = tracked - live
        if phantom:
            self._fail(
                f"node {dn.node_id}: policy tracks blocks {sorted(phantom)} "
                "with no live dynamic replica",
                record,
            )
        if strict and tracked != live:
            self._fail(
                f"node {dn.node_id}: policy tracks {sorted(tracked)} but live "
                f"dynamic replicas are {sorted(live)}",
                record,
            )
        ring_blocks = getattr(state.policy, "ring_blocks", None)
        if ring_blocks is not None:
            ids = [b.block_id for b in ring_blocks()]
            if len(ids) != len(set(ids)):
                self._fail(f"node {dn.node_id}: ElephantTrap ring has duplicates", record)
            for bid in ids:
                if state.policy.access_count(bid) < 0:
                    self._fail(
                        f"node {dn.node_id}: block {bid} has negative access "
                        f"count {state.policy.access_count(bid)}",
                        record,
                    )

    def _check_scarlett(self, record: Optional[TraceRecord]) -> None:
        if self.scarlett is None:
            return
        svc = self.scarlett
        budget = svc.budget_bytes()
        spent = svc.extra_bytes()
        # copies already in flight at a boundary re-plan may still land on
        # top of the new plan: at most max_concurrent of them
        slack = svc.slack_bytes()
        if spent > budget + slack:
            self._fail(
                f"scarlett: extra-replica bytes {spent} exceed epoch budget "
                f"{budget} + in-flight slack {slack}",
                record,
            )
        if record is not None and record.type == SCARLETT_EPOCH:
            if record.data["spent_bytes"] > record.data["budget_bytes"] + slack:
                self._fail(
                    f"scarlett: epoch record reports spent_bytes="
                    f"{record.data['spent_bytes']} over budget_bytes="
                    f"{record.data['budget_bytes']} + slack {slack}",
                    record,
                )
        for name, pairs in svc._extra.items():
            for bid, node_id in pairs:
                dn = self.namenode.datanodes.get(node_id)
                if dn is None or not dn.node.alive:
                    continue  # dead-node pairs linger until aged out
                if bid not in dn.static_blocks:
                    self._fail(
                        f"scarlett: extra replica of block {bid} ({name}) "
                        f"recorded on live node {node_id} but not stored there",
                        record,
                    )

    def _check_slots(self, node_id: int, record: Optional[TraceRecord]) -> None:
        if self.jobtracker is None:
            return
        tt = self.jobtracker.tasktrackers.get(node_id)
        if tt is None:
            return
        if not (0 <= tt.free_map_slots <= tt.node.map_slots):
            self._fail(
                f"node {node_id}: free map slots {tt.free_map_slots} outside "
                f"[0, {tt.node.map_slots}]",
                record,
            )
        if not (0 <= tt.free_reduce_slots <= tt.node.reduce_slots):
            self._fail(
                f"node {node_id}: free reduce slots {tt.free_reduce_slots} outside "
                f"[0, {tt.node.reduce_slots}]",
                record,
            )
