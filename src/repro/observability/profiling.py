"""Sampling wall-clock profiler for engine callbacks.

The simulator's cost is almost entirely "callbacks fired by
:meth:`Engine.run`", so the natural unit of profiling is the event label.
:class:`CallbackProfiler` times every ``sample_every``-th callback with
``time.perf_counter`` and aggregates the samples into per-bucket wall-time
histograms, where a *bucket* is the label prefix before the first ``:``
(``hb:node07`` and ``hb:node13`` both land in ``hb``).  Unsampled events
cost one integer decrement, so the profiler is cheap enough to leave on for
whole experiment sweeps (``repro run --profile`` / ``repro perf``).

Sampling is counter-based, not random: it perturbs neither the simulation
RNG streams nor the event order, so a profiled run produces a byte-identical
trace to an unprofiled one (the determinism suite asserts this).

Histogram bins are powers of two in microseconds (bin ``i`` holds samples
in ``[2**(i-1), 2**i) µs``; bin 0 is sub-microsecond), giving usable
percentile estimates over five orders of magnitude with 24 ints per bucket.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, NamedTuple, Optional

#: sample period that is prime, so periodic event patterns do not alias
DEFAULT_SAMPLE_EVERY = 7

#: power-of-two µs histogram bins: last bin is >= ~8.4 s, plenty for one callback
N_BINS = 24

#: bucket assigned to events scheduled without a label
UNLABELED = "(unlabeled)"


class BucketStats(NamedTuple):
    """Aggregated samples for one label bucket."""

    bucket: str
    samples: int
    total_s: float          # wall time across *sampled* calls only
    mean_us: float
    p50_us: float           # histogram upper-bound estimate
    p95_us: float           # histogram upper-bound estimate
    max_us: float
    share: float            # fraction of all sampled wall time
    histogram: List[int]


def bucket_of(label: str) -> str:
    """Collapse an event label to its histogram bucket."""
    if not label:
        return UNLABELED
    colon = label.find(":")
    return label if colon < 0 else label[:colon]


def _bin_index(elapsed_us: float) -> int:
    idx = int(elapsed_us).bit_length()
    return idx if idx < N_BINS else N_BINS - 1


def _bin_upper_us(idx: int) -> float:
    """Upper bound (µs) of histogram bin ``idx``."""
    return float(1 << idx)


class CallbackProfiler:
    """Label-bucketed sampling profiler, attached via ``Engine.profiler``.

    The engine calls :meth:`observe` with each popped event; every
    ``sample_every``-th call is timed around ``event.action()`` and folded
    into its bucket's histogram.  ``enabled = False`` detaches the profiler
    without unhooking it (the engine re-checks per ``run()``).
    """

    __slots__ = (
        "enabled",
        "sample_every",
        "events_seen",
        "samples",
        "_countdown",
        "_clock",
        "_buckets",
    )

    def __init__(
        self,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.enabled = True
        self.sample_every = sample_every
        self.events_seen = 0
        self.samples = 0
        self._countdown = 1  # sample the first event, then every Nth
        self._clock = clock
        # bucket -> [samples, total_s, max_s, histogram]
        self._buckets: Dict[str, list] = {}

    # -- the hot hook -------------------------------------------------------

    def observe(self, event) -> None:
        """Run ``event.action``, timing it if this event is sampled."""
        self.events_seen += 1
        countdown = self._countdown - 1
        if countdown > 0:
            self._countdown = countdown
            event.action()
            return
        self._countdown = self.sample_every
        clock = self._clock
        start = clock()
        event.action()
        elapsed = clock() - start
        self.samples += 1
        stats = self._buckets.get(bucket_of(event.label))
        if stats is None:
            stats = [0, 0.0, 0.0, [0] * N_BINS]
            self._buckets[bucket_of(event.label)] = stats
        stats[0] += 1
        stats[1] += elapsed
        if elapsed > stats[2]:
            stats[2] = elapsed
        stats[3][_bin_index(elapsed * 1e6)] += 1

    # -- reporting ----------------------------------------------------------

    @staticmethod
    def _percentile_us(histogram: List[int], q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile from a bin histogram."""
        total = sum(histogram)
        if total == 0:
            return 0.0
        rank = q * total
        seen = 0
        for idx, count in enumerate(histogram):
            seen += count
            if seen >= rank:
                return _bin_upper_us(idx)
        return _bin_upper_us(N_BINS - 1)

    def report(self, top: Optional[int] = None) -> List[BucketStats]:
        """Bucket stats sorted by total sampled wall time, hottest first."""
        grand_total = sum(s[1] for s in self._buckets.values()) or 1.0
        rows = []
        for bucket, (n, total, max_s, hist) in self._buckets.items():
            rows.append(
                BucketStats(
                    bucket=bucket,
                    samples=n,
                    total_s=total,
                    mean_us=total / n * 1e6,
                    p50_us=self._percentile_us(hist, 0.50),
                    p95_us=self._percentile_us(hist, 0.95),
                    max_us=max_s * 1e6,
                    share=total / grand_total,
                    histogram=list(hist),
                )
            )
        rows.sort(key=lambda r: (-r.total_s, r.bucket))
        return rows if top is None else rows[:top]

    def format_report(self, top: int = 12) -> str:
        """Human-readable top-N table for the CLI."""
        rows = self.report(top)
        if not rows:
            return "profiler: no callbacks sampled"
        lines = [
            f"callback profile: {self.events_seen} events, "
            f"{self.samples} sampled (every {self.sample_every})",
            f"{'bucket':<22s} {'share':>6s} {'samples':>8s} {'mean':>9s} "
            f"{'p50':>8s} {'p95':>8s} {'max':>9s}",
        ]
        for r in rows:
            lines.append(
                f"{r.bucket:<22.22s} {r.share:>6.1%} {r.samples:>8d} "
                f"{r.mean_us:>7.1f}us {r.p50_us:>6.0f}us {r.p95_us:>6.0f}us "
                f"{r.max_us:>7.1f}us"
            )
        return "\n".join(lines)

    def to_dict(self, top: Optional[int] = None) -> dict:
        """JSON-serializable form of the report (for ``repro perf --json``)."""
        return {
            "sample_every": self.sample_every,
            "events_seen": self.events_seen,
            "samples": self.samples,
            "buckets": [
                {
                    "bucket": r.bucket,
                    "samples": r.samples,
                    "total_s": r.total_s,
                    "mean_us": r.mean_us,
                    "p50_us": r.p50_us,
                    "p95_us": r.p95_us,
                    "max_us": r.max_us,
                    "share": r.share,
                    "histogram": r.histogram,
                }
                for r in self.report(top)
            ],
        }
