"""Bounded, sequenced fan-out for trace records and progress events.

The trace bus (:mod:`repro.observability.trace`) is a synchronous
pub/sub: subscribers run inline on the simulation thread.  The server
(:mod:`repro.server`) needs the opposite shape — producers publish from
executor threads while any number of slow consumers (SSE connections)
read at their own pace without ever blocking the simulation.

:class:`RecordStream` is that bridge: a thread-safe, bounded ring of
``(seq, kind, data)`` events.  Sequence numbers are monotonically
increasing and never reused, so a reader that fell behind the ring
capacity can *detect* exactly how many events it lost (``dropped``)
instead of silently skipping them; a reader that keeps up sees every
event.  Publishing never blocks and never waits on readers — the ring
evicts the oldest event, which is the backpressure contract the SSE
layer documents (``docs/SERVER.md``).

Waiters are plain callables invoked (outside the lock) after every
publish; the asyncio server registers ``loop.call_soon_threadsafe``
wake-ups through them so SSE connections sleep until there is something
to send.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, NamedTuple, Tuple


class StreamEvent(NamedTuple):
    """One published event: ``(seq, kind, data)``."""

    seq: int
    kind: str
    data: Dict[str, object]


class RecordStream:
    """A bounded, sequence-numbered, thread-safe event ring.

    ``capacity`` bounds memory per stream; readers poll with
    :meth:`read_since` and learn how many events the ring evicted before
    they got there.  :meth:`close` marks the stream finished — readers
    drain the remaining buffered events and stop.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("stream capacity must be positive")
        self.capacity = capacity
        self._events: Deque[StreamEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._waiters: List[Callable[[], None]] = []
        self.closed = False
        #: total events evicted from the ring before any reader saw them
        #: is per-reader (reported by read_since); this counts publishes
        self.published = 0

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent event (0 = none yet)."""
        with self._lock:
            return self._seq

    def publish(self, kind: str, data: Dict[str, object]) -> int:
        """Append one event; returns its sequence number.  Never blocks."""
        with self._lock:
            if self.closed:
                return self._seq
            self._seq += 1
            self.published += 1
            event = StreamEvent(self._seq, kind, data)
            self._events.append(event)
            waiters = list(self._waiters)
            seq = self._seq
        for wake in waiters:
            wake()
        return seq

    def read_since(self, seq: int) -> Tuple[List[StreamEvent], int, bool]:
        """Events with sequence > ``seq``: ``(events, dropped, closed)``.

        ``dropped`` is how many events between ``seq`` and the first
        returned one were evicted from the ring before this reader got
        to them (0 when the reader kept up).  ``closed`` is True once
        the stream is finished *and* fully drained.
        """
        with self._lock:
            events = [e for e in self._events if e.seq > seq]
            if events:
                dropped = max(0, events[0].seq - seq - 1)
            else:
                dropped = max(0, self._seq - seq)
            done = self.closed and (not events or events[-1].seq == self._seq)
        return events, dropped, done

    def add_waiter(self, wake: Callable[[], None]) -> None:
        """Register a callable invoked after every publish (and close)."""
        with self._lock:
            self._waiters.append(wake)

    def remove_waiter(self, wake: Callable[[], None]) -> None:
        """Unregister a waiter registered with :meth:`add_waiter`."""
        with self._lock:
            try:
                self._waiters.remove(wake)
            except ValueError:
                pass

    def close(self) -> None:
        """Mark the stream finished; readers drain and stop (idempotent)."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            waiters = list(self._waiters)
        for wake in waiters:
            wake()
