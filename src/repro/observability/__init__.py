"""Simulation observability: structured tracing + runtime invariant checks.

``trace`` is dependency-free and safe to import from any layer (components
take a :class:`~repro.observability.trace.Tracer` defaulting to the disabled
:data:`~repro.observability.trace.NULL_TRACER`).  ``invariants`` sits above
the component layers and is imported lazily here to avoid cycles.
"""

from __future__ import annotations

from repro.observability.profiling import BucketStats, CallbackProfiler
from repro.observability.trace import (
    NULL_TRACER,
    JsonlSink,
    RingBufferSink,
    TraceRecord,
    Tracer,
)

__all__ = [
    "NULL_TRACER",
    "BucketStats",
    "CallbackProfiler",
    "JsonlSink",
    "RingBufferSink",
    "TraceRecord",
    "Tracer",
    "InvariantChecker",
    "InvariantViolation",
]


def __getattr__(name: str):
    if name in ("InvariantChecker", "InvariantViolation"):
        from repro.observability import invariants

        return getattr(invariants, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
