"""Deterministic snapshot/restore/fork of a live :class:`Simulation`.

A snapshot pickles the entire simulator object graph mid-run — engine
clock and event heap (every event action is a typed intent: a
``functools.partial`` over a bound method or a ``__slots__`` callable,
never a closure), NameNode/DataNode block maps and budgets,
JobTracker/TaskTracker slots and in-flight attempts, policy state
(greedy LRU order, ElephantTrap clock hand and counts, Scarlett epoch
accounting), and every RNG stream.  Pickle memoization preserves the
aliasing the simulator relies on (heap entries are the same ``Event``
objects the running attempts hold; tasks back-reference their jobs), so
a restored run continues exactly where the original paused.

Two objects are *excluded* from the payload and re-wired on restore:

* the shared :class:`Tracer` (it holds an open file handle); every
  component's reference is replaced by a persistent-id token and resolved
  to a fresh bus on load, and
* the sampling profiler (wall-clock state, meaningless after restore).

Determinism contract: a restored (or forked) run produces a JSONL trace
byte-identical to the cold run from the same seed.  The snapshot embeds
the flushed trace-prefix bytes of the source run's sink, restore writes
them to the new trace path, and the resumed run appends — so the file is
indistinguishable from one written in a single pass.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import asdict, dataclass
from typing import Dict, Optional

from repro.experiments.runner import Simulation
from repro.experiments.serialize import config_to_dict
from repro.observability.profiling import CallbackProfiler
from repro.observability.trace import NULL_TRACER, JsonlSink, Tracer

#: bump when the pickled payload layout changes shape
SNAPSHOT_FORMAT = 1

_TOKEN_TRACER = "tracer"
_TOKEN_NULL_TRACER = "null-tracer"
_TOKEN_PROFILER = "profiler"


class _SimulationPickler(pickle.Pickler):
    """Pickler that tokens out the shared tracer and the profiler.

    ``static_ids`` (used by the incremental-snapshot layer) additionally
    tokens out objects pickled in an earlier *static* payload: it maps
    ``id(obj)`` to that payload's pickle-memo index, and any object found
    in it is emitted as a bare-``int`` persistent id instead of being
    re-pickled.  The lookups below are ordered hottest-first — this
    method runs once per object in the graph.
    """

    def __init__(
        self,
        buffer: io.BytesIO,
        static_ids: Optional[Dict[int, int]] = None,
    ) -> None:
        super().__init__(buffer, protocol=pickle.HIGHEST_PROTOCOL)
        self._static_ids = static_ids if static_ids is not None else {}

    def persistent_id(self, obj: object):
        token = self._static_ids.get(id(obj))
        if token is not None:
            return token
        if obj is NULL_TRACER:
            return _TOKEN_NULL_TRACER
        if isinstance(obj, Tracer):
            return _TOKEN_TRACER
        if isinstance(obj, CallbackProfiler):
            return _TOKEN_PROFILER
        return None


class _SimulationUnpickler(pickle.Unpickler):
    """Unpickler that resolves tracer tokens to the restore-time bus.

    ``static_map`` resolves the ``int`` persistent ids written by a
    delta-snapshot pickler: it maps static-payload memo indices to the
    already-unpickled static objects (see
    :mod:`repro.checkpoint.incremental`).
    """

    def __init__(
        self,
        buffer: io.BytesIO,
        tracer: Tracer,
        static_map: Optional[Dict[int, object]] = None,
    ) -> None:
        super().__init__(buffer)
        self._tracer = tracer
        self._static_map = static_map if static_map is not None else {}

    def persistent_load(self, pid) -> object:
        if type(pid) is int:
            try:
                return self._static_map[pid]
            except KeyError:
                raise pickle.UnpicklingError(
                    f"unknown static object token {pid!r}"
                ) from None
        if pid == _TOKEN_TRACER:
            return self._tracer
        if pid == _TOKEN_NULL_TRACER:
            return NULL_TRACER
        if pid == _TOKEN_PROFILER:
            return None
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


@dataclass
class Snapshot:
    """A paused simulation, frozen as bytes plus restart metadata."""

    format: int
    #: simulation time the snapshot was taken at
    time: float
    #: engine callbacks fired before the snapshot
    events_processed: int
    #: the cell's full config (serialize.config_to_dict), for inspection
    config: Dict
    #: the source tracer's firehose flag, reproduced on restore
    engine_events: bool
    #: whether the source run had an enabled tracer
    traced: bool
    #: the pickled Simulation object graph
    payload: bytes
    #: flushed JSONL bytes of the source run's trace file, if it had one
    trace_prefix: Optional[bytes]

    # -- restore / fork ------------------------------------------------------

    def restore(
        self, trace_path: str = "", tracer: Optional[Tracer] = None
    ) -> Simulation:
        """Materialize an independent live Simulation from the snapshot.

        Each call unpickles a fresh copy, so calling repeatedly *forks*:
        the copies share nothing and can be run (and patched) separately.

        ``trace_path`` continues the source run's trace there: the
        embedded prefix is written first and the resumed run appends,
        yielding a file byte-identical to a cold run's.  Requires the
        source run to have traced to a file.  Without ``trace_path`` the
        run is restored with an enabled (but sinkless) bus when the
        source was traced, else with the null tracer.  An explicit
        ``tracer`` overrides all of that.
        """
        if tracer is None:
            if trace_path:
                if self.trace_prefix is None:
                    raise ValueError(
                        "snapshot has no trace prefix (the source run did not "
                        "trace to a file); restore without trace_path instead"
                    )
                with open(trace_path, "wb") as fh:
                    fh.write(self.trace_prefix)
                tracer = Tracer(engine_events=self.engine_events)
                tracer.add_sink(JsonlSink(trace_path, append=True))
            elif self.traced:
                tracer = Tracer(engine_events=self.engine_events)
            else:
                tracer = NULL_TRACER
        sim = _SimulationUnpickler(io.BytesIO(self.payload), tracer).load()
        if sim.checker is not None and tracer.enabled:
            # the invariant checker's ring sink and record subscription
            # lived on the old bus; re-attach them to the new one
            sim.checker.attach(tracer)
        return sim

    #: forking is restoring — every call yields an independent copy
    fork = restore

    # -- disk round-trip -----------------------------------------------------

    def save(self, path: str) -> None:
        """Write the snapshot to ``path`` (see :meth:`load`)."""
        with open(path, "wb") as fh:
            pickle.dump(asdict(self), fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        """Read a snapshot written by :meth:`save`.

        Raises ``ValueError`` on anything that is not a current-format
        checkpoint file, ``OSError`` on an unreadable path.
        """
        with open(path, "rb") as fh:
            try:
                doc = pickle.load(fh)
            except Exception as exc:
                raise ValueError(f"not a checkpoint file: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
            raise ValueError(
                "unsupported snapshot format "
                f"{doc.get('format') if isinstance(doc, dict) else type(doc).__name__!r}"
            )
        return cls(**doc)


def snapshot(sim: Simulation) -> Snapshot:
    """Freeze a (typically paused) simulation into a :class:`Snapshot`.

    Safe to call between :meth:`Simulation.run` invocations — i.e. never
    from inside an event callback.  The source simulation is left fully
    usable; its trace sink is flushed so the embedded prefix covers every
    record emitted so far.
    """
    tracer = sim.tracer
    prefix: Optional[bytes] = None
    if tracer.enabled:
        for sink in tracer._sinks:
            if isinstance(sink, JsonlSink):
                sink.flush()
                with open(sink.path, "rb") as fh:
                    prefix = fh.read()
                break
    buffer = io.BytesIO()
    _SimulationPickler(buffer).dump(sim)
    return Snapshot(
        format=SNAPSHOT_FORMAT,
        time=sim.engine.now,
        events_processed=sim.engine.events_processed,
        config=config_to_dict(sim.config),
        engine_events=tracer.engine_events,
        traced=tracer.enabled,
        payload=buffer.getvalue(),
        trace_prefix=prefix,
    )
