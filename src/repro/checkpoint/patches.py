"""What-if patches: small counterfactual edits applied to a restored run.

A :class:`Patch` mutates a live (paused) :class:`Simulation` between
``run(until=t)`` and the resuming ``run()`` — the "replay what-if" loop:
reconstruct the world as of time *t* from a checkpoint, change one thing,
and watch the divergent future unfold under the same RNG streams.

Patches are deterministic: applying the same patch to a forked restore
and to a cold run paused at the same time produces byte-identical
continuations, so the what-if delta is attributable to the patch alone.

``parse_patch`` maps the CLI's compact specs onto patch objects:

===========================  =================================================
``kill:NODE[:DELAY]``        crash node ``NODE`` ``DELAY`` seconds from now
                             (default: immediately), with HDFS-style
                             detection and re-replication
``policy:off|lru|lfu|et``    swap every node's DARE policy, carrying live
                             dynamic replicas over into the new policy state
``pin:BLOCK:NODE``           materialize a *static* replica of ``BLOCK`` on
                             ``NODE`` — static replicas are never
                             DARE-evicted, so the block is pinned there
===========================  =================================================
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING

from repro.core.config import DareConfig, Policy
from repro.core.manager import DareReplicationService
from repro.failures.injector import FailureInjector, FailurePlan
from repro.failures.repair import ReReplicationService

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import Simulation


class Patch:
    """One counterfactual edit; subclasses implement :meth:`apply`."""

    def apply(self, sim: "Simulation") -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class KillNode(Patch):
    """Crash a slave node ``delay_s`` seconds after the patch point.

    Reuses the failure-injection machinery end to end: in-flight tasks are
    requeued immediately and the NameNode prunes the node (triggering
    re-replication) after the configured detection delay.  A run without a
    failure plan gains the repair service on demand.
    """

    def __init__(self, node_id: int, delay_s: float = 0.0) -> None:
        if delay_s < 0:
            raise ValueError("kill delay must be nonnegative")
        self.node_id = node_id
        self.delay_s = delay_s

    def apply(self, sim: "Simulation") -> None:
        n_nodes = len(sim.cluster.nodes)
        if not (1 <= self.node_id < n_nodes):
            raise ValueError(
                f"node {self.node_id} is not a slave (master is 0, "
                f"cluster has {n_nodes} nodes)"
            )
        if sim.injector is None:
            sim.repair = ReReplicationService(
                sim.namenode, sim.engine, sim.traffic, sim.streams.python("repair")
            )
            sim.injector = FailureInjector(
                FailurePlan(()),
                sim.engine,
                sim.namenode,
                sim.jobtracker,
                sim.repair,
                detection_delay_s=sim.config.failure_detection_s,
                tracer=sim.tracer,
            )
        sim.engine.schedule_in(
            self.delay_s,
            partial(sim.injector._fail, self.node_id),
            f"fail:node{self.node_id}",
        )

    def describe(self) -> str:
        when = "now" if self.delay_s == 0 else f"in {self.delay_s:g}s"
        return f"kill node {self.node_id} ({when})"


class FlipPolicy(Patch):
    """Swap the cluster's DARE configuration mid-run.

    Builds a fresh :class:`DareReplicationService` under the new config and
    re-registers every live dynamic replica into the new per-node policy
    state, so the new eviction policy governs the replicas the old one
    created.  Replica counters restart at zero — the result's
    ``blocks_created`` reflects post-flip activity only.
    """

    def __init__(self, dare: DareConfig) -> None:
        self.dare = dare.validate()

    def apply(self, sim: "Simulation") -> None:
        service = DareReplicationService(
            self.dare, sim.namenode, sim.streams, tracer=sim.tracer
        )
        for node_id, state in service.states.items():
            dn = sim.namenode.datanode(node_id)
            for bid, block in dn.dynamic_blocks.items():
                if bid not in dn.pending_deletion:
                    state.policy.add(block)
            # a shrunken budget grandfathers existing replicas: they stay
            # until the policy evicts them to admit new ones
            if dn.dynamic_bytes_used > dn.dynamic_capacity_bytes:
                dn.dynamic_capacity_bytes = dn.dynamic_bytes_used
        sim.dare = service
        sim.jobtracker.dare = service
        if sim.checker is not None:
            sim.checker.dare = service

    def describe(self) -> str:
        return f"flip DARE policy to {self.dare.policy.value}"


class PinReplica(Patch):
    """Materialize a static replica of a block on a chosen node.

    Static replicas are outside the dynamic budget and never evicted, so
    this pins the block to the node for the rest of the run (the
    locality counterfactual: "what if the hot block had been *here*?").
    A no-op when the node already stores the block.
    """

    def __init__(self, block_id: int, node_id: int) -> None:
        self.block_id = block_id
        self.node_id = node_id

    def apply(self, sim: "Simulation") -> None:
        namenode = sim.namenode
        if self.block_id not in namenode.blocks:
            raise ValueError(f"unknown block {self.block_id}")
        if self.node_id not in namenode.datanodes:
            raise ValueError(f"node {self.node_id} runs no DataNode")
        if namenode.datanode(self.node_id).has_block(self.block_id):
            return
        namenode.add_repaired_replica(self.block_id, self.node_id)

    def describe(self) -> str:
        return f"pin block {self.block_id} on node {self.node_id}"


#: ``policy:`` spec values accepted by :func:`parse_patch`
_POLICY_SPECS = {
    "off": DareConfig.off(),
    "lru": DareConfig.greedy_lru(),
    "lfu": DareConfig(policy=Policy.GREEDY_LFU),
    "et": DareConfig.elephant_trap(),
}


def parse_patch(spec: str) -> Patch:
    """Parse a CLI patch spec (see the module docstring's table)."""
    kind, _, rest = spec.partition(":")
    try:
        if kind == "kill":
            node, _, delay = rest.partition(":")
            return KillNode(int(node), float(delay) if delay else 0.0)
        if kind == "policy":
            if rest not in _POLICY_SPECS:
                raise ValueError(
                    f"unknown policy {rest!r} "
                    f"(expected one of {sorted(_POLICY_SPECS)})"
                )
            return FlipPolicy(_POLICY_SPECS[rest])
        if kind == "pin":
            block, _, node = rest.partition(":")
            return PinReplica(int(block), int(node))
    except ValueError as exc:
        raise ValueError(f"bad patch spec {spec!r}: {exc}") from None
    raise ValueError(
        f"bad patch spec {spec!r} (expected kill:NODE[:DELAY], "
        "policy:off|lru|lfu|et, or pin:BLOCK:NODE)"
    )
