"""Simulation checkpoints: snapshot/restore/fork and what-if patches.

See ``docs/CHECKPOINT.md`` for the snapshot format, the determinism
contract, and the sweep prefix-sharing heuristic built on top of it.
"""

from repro.checkpoint.incremental import (
    DELTA_FORMAT,
    DeltaSnapshot,
    SnapshotSession,
    StaticPool,
)
from repro.checkpoint.patches import (
    FlipPolicy,
    KillNode,
    Patch,
    PinReplica,
    parse_patch,
)
from repro.checkpoint.snapshot import SNAPSHOT_FORMAT, Snapshot, snapshot

__all__ = [
    "SNAPSHOT_FORMAT",
    "DELTA_FORMAT",
    "Snapshot",
    "snapshot",
    "DeltaSnapshot",
    "SnapshotSession",
    "StaticPool",
    "Patch",
    "KillNode",
    "FlipPolicy",
    "PinReplica",
    "parse_patch",
]
