"""Incremental (delta) snapshots for repeated same-run forking.

The rollout engine snapshots the same live simulation once per decision
epoch, and most of what it pickles never changes between epochs: the
frozen :class:`ExperimentConfig`, the synthesized workload, the cluster
topology, and the HDFS file tree (INodes and Blocks are immutable once
``Simulation.__init__`` has created them — HDFS files are read-only and
replica locations live in the DataNode maps, not on the blocks).

:class:`SnapshotSession` exploits that: it pickles those *static* roots
once, records the pickle-memo index every static object landed at, and
then pickles each epoch's *delta* payload with every static object
replaced by a bare-``int`` persistent id (its memo index).  Restoring a
:class:`DeltaSnapshot` unpickles the static payload once per process
(cached in a :class:`StaticPool`), reads the resulting memo to map
indices back to objects, and resolves the delta's int tokens against it.
Because the static objects are genuinely immutable, every fork restored
from the same session may *share* them — with the pool and with each
other — without any cross-talk.

Dirty detection: the session fingerprints the file tree
(``(len(files), len(blocks))``) at every :meth:`SnapshotSession.snapshot`
and transparently rebases (re-pickles the static payload) if it changed,
so a future mid-run file creation degrades to correct-but-slower rather
than corrupting forks.  ``check=True`` additionally verifies every delta
snapshot against a classic full snapshot: both are restored and
re-pickled with the same tokenless pickler, and the byte streams must
match exactly.
"""

from __future__ import annotations

import io
import pickle
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.checkpoint.snapshot import (
    _SimulationPickler,
    _SimulationUnpickler,
    snapshot as full_snapshot,
)
from repro.experiments.runner import Simulation
from repro.experiments.serialize import config_to_dict
from repro.observability.trace import NULL_TRACER, Tracer

#: format tag carried by delta snapshots (full snapshots use format 1)
DELTA_FORMAT = 2


def _static_roots(sim: Simulation) -> Tuple:
    """The immutable-after-setup subsystems shared by every epoch.

    Order matters: the tuple is pickled as one document and its memo
    indices become the token namespace for every delta pickled against
    it.
    """
    return (
        sim.config,
        sim.workload,
        sim.cluster.topology,
        tuple(sim.namenode.files.values()),
    )


def _file_tree_version(sim: Simulation) -> Tuple[int, int]:
    """Cheap fingerprint of the one static subsystem that *could* grow."""
    return (len(sim.namenode.files), len(sim.namenode.blocks))


def _pickle_static(roots: Tuple) -> Tuple[bytes, Dict[int, Tuple[int, object]]]:
    """Pickle the static roots; return (payload, pickle memo).

    The memo maps ``id(obj) -> (memo_index, obj)``; keeping it (and thus
    a reference to every memoized object) alive is what keeps the
    ``id()`` keys valid for the session's lifetime.
    """
    buffer = io.BytesIO()
    pickler = _SimulationPickler(buffer)
    pickler.dump(roots)
    return buffer.getvalue(), pickler.memo.copy()


def _unpickle_static(payload: bytes) -> Dict[int, object]:
    """Unpickle a static payload; return its memo as {index: object}."""
    unpickler = _SimulationUnpickler(io.BytesIO(payload), NULL_TRACER)
    unpickler.load()
    return unpickler.memo.copy()


class StaticPool:
    """Restore-side cache of unpickled static payloads.

    Keyed by payload bytes, so a session rebase (new static payload)
    naturally misses and re-populates.  Holding one pool per process —
    host or pool worker — means the static graph is unpickled once and
    shared by every subsequent fork, which is safe because the objects
    are immutable.
    """

    def __init__(self) -> None:
        # one (payload, memo) slot, swapped atomically so concurrent
        # thread-backend restores never see a payload/memo mismatch
        self._entry: Optional[Tuple[bytes, Dict[int, object]]] = None

    def resolve(self, payload: bytes) -> Dict[int, object]:
        """The {memo-index: object} map for ``payload``, cached."""
        entry = self._entry
        if entry is None or entry[0] != payload:
            entry = (payload, _unpickle_static(payload))
            self._entry = entry
        return entry[1]


@dataclass
class DeltaSnapshot:
    """One epoch's mutable state, pickled against a static payload.

    Unlike :class:`~repro.checkpoint.snapshot.Snapshot` this is an
    in-memory handoff between the rollout driver and its fork scorers —
    it carries no trace prefix and has no disk round-trip.
    """

    format: int
    #: simulation time the snapshot was taken at
    time: float
    #: engine callbacks fired before the snapshot
    events_processed: int
    #: the cell's full config (serialize.config_to_dict), for inspection
    config: Dict
    #: the source tracer's firehose flag, reproduced on restore
    engine_events: bool
    #: whether the source run had an enabled tracer
    traced: bool
    #: the delta-pickled Simulation graph (static objects tokened out)
    payload: bytes
    #: the static payload the delta's int tokens resolve against
    static_payload: bytes

    def restore(
        self,
        tracer: Optional[Tracer] = None,
        pool: Optional[StaticPool] = None,
    ) -> Simulation:
        """Materialize an independent fork of the snapshotted simulation.

        Forks share the (immutable) static objects — with each other when
        the same ``pool`` is passed, and with the live host simulation
        when the pool belongs to its :class:`SnapshotSession`.  Without a
        ``tracer`` the fork gets an enabled sinkless bus when the source
        was traced, else the null tracer.
        """
        if tracer is None:
            if self.traced:
                tracer = Tracer(engine_events=self.engine_events)
            else:
                tracer = NULL_TRACER
        static_map = (pool or StaticPool()).resolve(self.static_payload)
        sim = _SimulationUnpickler(
            io.BytesIO(self.payload), tracer, static_map
        ).load()
        if sim.checker is not None and tracer.enabled:
            sim.checker.attach(tracer)
        return sim

    #: forking is restoring — every call yields an independent copy
    fork = restore


class SnapshotSession:
    """Per-run snapshot factory that amortizes the static subsystems.

    Create one per host simulation, call :meth:`snapshot` at every
    decision epoch.  The first call (and any call after the file tree
    changed) pays a full static pickle; steady-state calls pickle only
    the mutable graph.  The session's :attr:`pool` resolves host-side
    restores against the host's own static objects, so in-process forks
    don't even unpickle the static payload.
    """

    def __init__(self, sim: Simulation, check: bool = False) -> None:
        self.sim = sim
        self.check = check
        #: host-side restore cache (shares the live sim's static objects)
        self.pool = StaticPool()
        self._version: Optional[Tuple[int, int]] = None
        self._static_payload = b""
        self._static_ids: Dict[int, int] = {}
        #: the static pickler's memo, kept alive so id() keys stay valid
        self._memo: Dict[int, Tuple[int, object]] = {}
        # rack_members() populates a lazy per-rack cache on first use;
        # warm it now so the topology is frozen before it is pickled
        topo = sim.cluster.topology
        if topo.n_nodes:
            topo.rack_members(0)

    def _rebase(self) -> None:
        """(Re-)pickle the static payload from the live simulation."""
        roots = _static_roots(self.sim)
        self._static_payload, self._memo = _pickle_static(roots)
        self._static_ids = {
            obj_id: entry[0] for obj_id, entry in self._memo.items()
        }
        self._version = _file_tree_version(self.sim)
        # pre-seed the host pool with the live objects themselves: a
        # host-side restore then shares them instead of unpickling
        self.pool._entry = (
            self._static_payload,
            {entry[0]: entry[1] for entry in self._memo.values()},
        )

    def snapshot(self) -> DeltaSnapshot:
        """Freeze the current state as a :class:`DeltaSnapshot`.

        Same calling contract as :func:`repro.checkpoint.snapshot`: only
        between ``run()`` calls, never from inside an event callback.
        """
        if self._version is None or _file_tree_version(self.sim) != self._version:
            self._rebase()
        buffer = io.BytesIO()
        _SimulationPickler(buffer, self._static_ids).dump(self.sim)
        tracer = self.sim.tracer
        snap = DeltaSnapshot(
            format=DELTA_FORMAT,
            time=self.sim.engine.now,
            events_processed=self.sim.engine.events_processed,
            config=config_to_dict(self.sim.config),
            engine_events=tracer.engine_events,
            traced=tracer.enabled,
            payload=buffer.getvalue(),
            static_payload=self._static_payload,
        )
        if self.check:
            self._self_check(snap)
        return snap

    def _self_check(self, snap: DeltaSnapshot) -> None:
        """Assert delta-restore ≡ full-snapshot-restore, byte-for-byte.

        Both restored simulations are re-pickled with the plain
        (tokenless) pickler; the streams must match exactly.  Costs a
        full snapshot + two restores + two pickles per epoch, which is
        why it rides the ``--check-invariants`` flag.
        """
        full = full_snapshot(self.sim)
        delta_sim = snap.restore(tracer=NULL_TRACER)
        full_sim = full.restore(tracer=NULL_TRACER)
        delta_bytes = _repickle(delta_sim)
        full_bytes = _repickle(full_sim)
        if delta_bytes != full_bytes:
            raise AssertionError(
                "delta snapshot diverged from full snapshot at "
                f"t={snap.time}: restored graphs re-pickle to different "
                f"bytes ({len(delta_bytes)} vs {len(full_bytes)})"
            )


def _repickle(sim: Simulation) -> bytes:
    """Pickle a restored simulation with the plain tokenless pickler."""
    buffer = io.BytesIO()
    _SimulationPickler(buffer).dump(sim)
    return buffer.getvalue()
