"""Node-failure injection."""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.observability.trace import (
    FAILURE_DETECTED,
    FAILURE_INJECTED,
    NULL_TRACER,
    Tracer,
)
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.failures.repair import ReReplicationService
    from repro.hdfs.namenode import NameNode
    from repro.mapreduce.jobtracker import JobTracker


class FailurePlan(NamedTuple):
    """A deterministic failure schedule: (time_s, node_id) pairs."""

    events: Tuple[Tuple[float, int], ...]

    @classmethod
    def at(cls, *events: Tuple[float, int]) -> "FailurePlan":
        """Build a plan from (time, node) pairs."""
        return cls(tuple(events))

    def validate(self, n_nodes: int) -> "FailurePlan":
        """Raise on malformed plans; return self."""
        seen = set()
        for t, node in self.events:
            if t < 0:
                raise ValueError(f"failure at negative time {t}")
            if not (1 <= node < n_nodes):
                raise ValueError(f"node {node} is not a slave (master is 0)")
            if node in seen:
                raise ValueError(f"node {node} fails twice")
            seen.add(node)
        return self


class FailureInjector:
    """Executes a :class:`FailurePlan` against a running simulation.

    Killing a node, in order:

    1. the machine stops (``node.alive = False``) — its TaskTracker never
       heartbeats again;
    2. in-flight tasks on the node are killed and requeued on the
       JobTracker (MapReduce task re-execution);
    3. after ``detection_delay_s`` (heartbeat-expiry on the masters) the
       NameNode prunes the node from every block's location set and the
       re-replication service is notified of the lost replicas.

    Between (1) and (3) the schedulers may still *plan* against the stale
    location view — exactly the window real Hadoop has between a crash and
    TaskTracker/DataNode expiry.
    """

    def __init__(
        self,
        plan: FailurePlan,
        engine: Engine,
        namenode: "NameNode",
        jobtracker: "JobTracker",
        repair: Optional["ReReplicationService"] = None,
        detection_delay_s: float = 10.0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if detection_delay_s < 0:
            raise ValueError("detection delay must be nonnegative")
        self.tracer = tracer
        self.plan = plan.validate(len(namenode.cluster.nodes))
        self.engine = engine
        self.namenode = namenode
        self.jobtracker = jobtracker
        self.repair = repair
        self.detection_delay_s = detection_delay_s
        self.failed_nodes: List[int] = []
        #: block_id -> live replica count at detection time
        self.lost_replicas: Dict[int, int] = {}
        #: blocks that had zero live replicas at detection time
        self.data_loss_blocks: List[int] = []

    def arm(self) -> None:
        """Schedule the plan's failure events."""
        for t, node in self.plan.events:
            self.engine.schedule(
                t, partial(self._fail, node), f"fail:node{node}"
            )

    # -- the failure sequence -------------------------------------------------

    def _fail(self, node_id: int) -> None:
        node = self.namenode.cluster.node(node_id)
        if not node.alive:
            return
        node.alive = False
        self.failed_nodes.append(node_id)
        requeued = self.jobtracker.requeue_tasks_from(node_id)
        if self.tracer.enabled:
            self.tracer.emit(
                FAILURE_INJECTED, self.engine.now, node=node_id, requeued=requeued
            )
        self.engine.schedule_in(
            self.detection_delay_s,
            partial(self._detect, node_id),
            f"detect-fail:node{node_id}",
        )

    def _detect(self, node_id: int) -> None:
        lost = self.namenode.fail_node(node_id)
        for bid, remaining in lost.items():
            self.lost_replicas[bid] = remaining
            if remaining == 0:
                self.data_loss_blocks.append(bid)
        if self.tracer.enabled:
            self.tracer.emit(
                FAILURE_DETECTED,
                self.engine.now,
                node=node_id,
                blocks_lost=len(lost),
                data_loss=sum(1 for r in lost.values() if r == 0),
            )
        if self.repair is not None:
            self.repair.enqueue_repairs(lost)

    # -- reporting --------------------------------------------------------------

    @property
    def blocks_that_lost_replicas(self) -> int:
        """Distinct blocks that lost at least one replica."""
        return len(self.lost_replicas)

    @property
    def data_loss_count(self) -> int:
        """Blocks left with zero live replicas (unrecoverable)."""
        return len(self.data_loss_blocks)
