"""HDFS re-replication of under-replicated blocks."""

from __future__ import annotations

import random
from functools import partial
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.metrics.traffic import TrafficMeter
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.namenode import NameNode


class ReReplicationService:
    """Repairs under-replicated blocks the way the HDFS NameNode does.

    Blocks that fell below their replication factor are queued (fewest
    remaining replicas first — HDFS's priority order) and copied from a
    surviving holder to a fresh target over the network.  A cluster-wide
    concurrency cap throttles repair the way
    ``dfs.namenode.replication.max-streams`` does, so a failure does not
    instantly saturate the fabric.
    """

    def __init__(
        self,
        namenode: "NameNode",
        engine: Engine,
        traffic: TrafficMeter,
        rng: random.Random,
        max_concurrent: int = 4,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError("need at least one repair stream")
        self.namenode = namenode
        self.engine = engine
        self.traffic = traffic
        self._rng = rng
        self.max_concurrent = max_concurrent
        #: (remaining_replicas, seq, block_id) min-queue, drained in order
        self._queue: List[Tuple[int, int, int]] = []
        self._queued_blocks: Set[int] = set()
        self._seq = 0
        self._active = 0
        self.repairs_completed = 0
        self.repairs_unrecoverable = 0

    # -- queueing -----------------------------------------------------------

    def enqueue_repairs(self, lost: Dict[int, int]) -> None:
        """Queue every block that fell below its replication factor."""
        for bid, remaining in lost.items():
            rf = self.namenode.blocks[bid].inode.replication
            if remaining >= rf or bid in self._queued_blocks:
                continue
            self._queue.append((remaining, self._seq, bid))
            self._queued_blocks.add(bid)
            self._seq += 1
        self._queue.sort()
        self._pump()

    def _pump(self) -> None:
        while self._active < self.max_concurrent and self._queue:
            _, _, bid = self._queue.pop(0)
            self._queued_blocks.discard(bid)
            self._start_repair(bid)  # skips simply continue the loop

    # -- one repair ------------------------------------------------------------

    def _eligible_targets(self, bid: int) -> List[int]:
        locs = self.namenode.locations(bid)
        return [
            n.node_id
            for n in self.namenode.cluster.slaves
            if n.alive and n.node_id not in locs
        ]

    def _start_repair(self, bid: int) -> None:
        locs = [
            n
            for n in self.namenode.locations(bid)
            if self.namenode.cluster.node(n).alive
        ]
        block = self.namenode.blocks[bid]
        rf = block.inode.replication
        if len(locs) >= rf:
            return  # repaired by a racing copy or a DARE replica
        if not locs:
            self.repairs_unrecoverable += 1
            return
        targets = self._eligible_targets(bid)
        if not targets:
            self.repairs_unrecoverable += 1
            return
        source = self._rng.choice(locs)
        target = self._rng.choice(targets)
        self._active += 1
        cluster = self.namenode.cluster
        cluster.node(source).active_net_transfers += 1
        cluster.node(target).active_net_transfers += 1
        duration = cluster.network.transfer_seconds(
            block.size_bytes, source, target,
            contention=max(1, cluster.node(source).active_net_transfers),
        )
        self.traffic.record("re_replication", block.size_bytes)
        self.engine.schedule_in(
            duration,
            partial(self._finish_repair, bid, source, target),
            f"repair:block{bid}",
        )

    def _finish_repair(self, bid: int, source: int, target: int) -> None:
        cluster = self.namenode.cluster
        cluster.node(source).active_net_transfers -= 1
        cluster.node(target).active_net_transfers -= 1
        self._active -= 1
        block = self.namenode.blocks[bid]
        if cluster.node(target).alive and not self.namenode.datanode(target).has_block(bid):
            self.namenode.add_repaired_replica(bid, target)
            self.repairs_completed += 1
            # still under-replicated (e.g. rf 3 lost 2)? queue another copy
            if len(self.namenode.locations(bid)) < block.inode.replication:
                self.enqueue_repairs({bid: len(self.namenode.locations(bid))})
        self._pump()

    # -- reporting ---------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Repairs queued but not yet started."""
        return len(self._queue)
