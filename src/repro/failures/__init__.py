"""Failure injection and recovery.

The paper notes that DARE's dynamic replicas "are first-order replicas and
as such they also contribute to increasing availability of the data in the
presence of failures" (Section IV-B).  This package makes that claim
testable: a :class:`~repro.failures.injector.FailureInjector` kills nodes
mid-run (tasks are re-queued, the NameNode prunes locations), and a
:class:`~repro.failures.repair.ReReplicationService` repairs
under-replicated blocks over the network the way HDFS does — so
experiments can measure data loss, repair traffic, and job disruption with
and without DARE.
"""

from repro.failures.injector import FailureInjector, FailurePlan
from repro.failures.repair import ReReplicationService

__all__ = ["FailureInjector", "FailurePlan", "ReReplicationService"]
