"""Shadow-state reconstruction: rebuild the control plane from a trace.

:class:`ShadowState` is a model of everything the trace schema makes
observable — per-node dynamic-replica sets and budget accounting,
TaskTracker slot occupancy, per-job locality tallies, failure effects —
rebuilt *purely* from :class:`~repro.observability.trace.TraceRecord` s,
never from live simulator objects.  Replaying a complete trace must land
on exactly the counters the live run reported; any mismatch means either
the trace or the simulator's bookkeeping is wrong, which is the point.

Reconstruction enforces its own invariants while applying records (a
replicated block must not already be live, the ``used`` value carried by a
``budget.charge`` must equal the shadow's prediction, heartbeat-reported
free slots must match shadow occupancy, ...).  A violation raises
:class:`ReconstructionError` carrying the offending record and a
ring-buffer context tail — the same diagnostic shape as the live
:class:`~repro.observability.invariants.InvariantChecker`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, NamedTuple, Optional, Set, Tuple

from repro.metrics.locality import LocalityStats
from repro.observability.trace import (
    BLOCK_EVICTED,
    BLOCK_REPLICATED,
    BUDGET_CHARGE,
    BUDGET_REFUND,
    ENGINE_EVENT,
    FAILURE_DETECTED,
    FAILURE_INJECTED,
    HDFS_HEARTBEAT,
    HEARTBEAT,
    REPLICATION_ABANDONED,
    RUN_CONFIG,
    RUN_SUMMARY,
    SCARLETT_EPOCH,
    TASK_FINISHED,
    TASK_SCHEDULED,
    RingBufferSink,
    TraceRecord,
)

#: the ``locality`` field values of ``task.scheduled``, in tally order
_LOCALITY_INDEX = {"NODE_LOCAL": 0, "RACK_LOCAL": 1, "REMOTE": 2}


class ReconstructionError(AssertionError):
    """A record contradicts the shadow state built from its predecessors."""

    def __init__(
        self,
        message: str,
        record: Optional[TraceRecord] = None,
        tail: Iterable[TraceRecord] = (),
    ) -> None:
        self.record = record
        self.tail = list(tail)
        lines = [message]
        if record is not None:
            lines.append(f"  triggered by: {record.to_json()}")
        if self.tail:
            lines.append(f"  trace tail ({len(self.tail)} records, oldest first):")
            lines.extend(f"    {r.to_json()}" for r in self.tail)
        super().__init__("\n".join(lines))


@dataclass
class ShadowNode:
    """One node's reconstructed storage + compute state."""

    node_id: int
    #: live + pending-deletion dynamic replicas: block id -> bytes
    dynamic: Dict[int, int] = field(default_factory=dict)
    #: blocks marked for lazy deletion, not yet physically dropped
    pending: Set[int] = field(default_factory=set)
    #: dynamic budget bytes in use (live replicas only)
    used: int = 0
    #: learned from the first budget record naming this node
    capacity: Optional[int] = None
    #: busy task slots, learned from task.scheduled/finished
    busy_map: int = 0
    busy_reduce: int = 0
    #: learned from the first heartbeat naming this node
    map_slots: Optional[int] = None
    reduce_slots: Optional[int] = None
    alive: bool = True
    heartbeats: int = 0

    def live(self) -> Set[int]:
        """Live dynamic replica block ids (pending deletions excluded)."""
        return set(self.dynamic) - self.pending


@dataclass
class ShadowJob:
    """One job's reconstructed locality tally."""

    job_id: int
    #: non-speculative map launches by placement: [node, rack, remote]
    locality_counts: List[int] = field(default_factory=lambda: [0, 0, 0])

    @property
    def data_locality(self) -> float:
        total = sum(self.locality_counts)
        return self.locality_counts[0] / total if total else 0.0


class CheckResult(NamedTuple):
    """One verified counter: the trace-derived vs. the live value."""

    name: str
    trace_value: object
    live_value: object

    @property
    def ok(self) -> bool:
        return self.trace_value == self.live_value


class VerifyReport(NamedTuple):
    """Outcome of a reconstruction-vs-live cross-check."""

    checks: List[CheckResult]
    notes: List[str]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def format(self) -> str:
        lines = []
        for c in self.checks:
            mark = "ok  " if c.ok else "FAIL"
            lines.append(f"  {mark} {c.name:<28s} trace={c.trace_value!r}"
                         + ("" if c.ok else f" live={c.live_value!r}"))
        for note in self.notes:
            lines.append(f"  note {note}")
        verdict = "VERIFIED" if self.ok else "MISMATCH"
        lines.append(f"{verdict}: {sum(c.ok for c in self.checks)}/"
                     f"{len(self.checks)} counters match")
        return "\n".join(lines)


class ShadowState:
    """The trace-reconstructed control plane.

    Feed records in trace order through :meth:`apply` (or build one with
    :func:`reconstruct`).  ``strict`` controls whether cross-checks that
    compare a record's self-reported values against the shadow's
    prediction raise (default) or are skipped — turn it off to push a
    deliberately corrupted trace through for divergence analysis.
    """

    def __init__(self, strict: bool = True, tail_size: int = 20) -> None:
        self.strict = strict
        self.nodes: Dict[int, ShadowNode] = {}
        self.jobs: Dict[int, ShadowJob] = {}
        #: in-flight attempts: (job, task, kind) -> node ids (dupes allowed)
        self.attempts: Dict[Tuple[int, int, str], List[int]] = {}
        self.records_applied = 0
        self.last_time = 0.0
        self.blocks_created = 0
        self.blocks_evicted = 0
        self.replications_abandoned = 0
        self.tasks_requeued = 0
        self.speculative_launched = 0
        self.engine_events = 0
        self.config: Optional[TraceRecord] = None
        self.summary: Optional[TraceRecord] = None
        self.scarlett_epochs = 0
        self._ring = RingBufferSink(tail_size)

    # -- plumbing ----------------------------------------------------------

    def _node(self, node_id: int) -> ShadowNode:
        node = self.nodes.get(node_id)
        if node is None:
            node = self.nodes[node_id] = ShadowNode(node_id)
        return node

    def _job(self, job_id: int) -> ShadowJob:
        job = self.jobs.get(job_id)
        if job is None:
            job = self.jobs[job_id] = ShadowJob(job_id)
        return job

    def _fail(self, message: str, record: TraceRecord) -> None:
        raise ReconstructionError(
            f"record #{self.records_applied}: {message}", record, self._ring.tail(20)
        )

    def _check(self, condition: bool, message: str, record: TraceRecord) -> None:
        if self.strict and not condition:
            self._fail(message, record)

    def clone(self) -> "ShadowState":
        """An independent deep copy (for what-if application of a record)."""
        return copy.deepcopy(self)

    # -- record application -------------------------------------------------

    def apply(self, record: TraceRecord) -> None:
        """Fold one record into the shadow state."""
        handler = _HANDLERS.get(record.type)
        if handler is not None:
            handler(self, record)
        self.records_applied += 1
        self.last_time = record.time
        self._ring.write(record)

    # handlers (dispatched via _HANDLERS) --------------------------------

    def _on_block_replicated(self, rec: TraceRecord) -> None:
        node = self._node(rec.data["node"])
        bid, nbytes = rec.data["block"], rec.data["bytes"]
        self._check(
            bid not in node.live(),
            f"node {node.node_id}: replicated block {bid} is already live",
            rec,
        )
        # an insert may revive a pending-deletion replica without a rewrite
        node.pending.discard(bid)
        node.dynamic[bid] = nbytes
        node.used += nbytes
        if node.capacity is not None:
            self._check(
                node.used <= node.capacity,
                f"node {node.node_id}: budget exceeded "
                f"({node.used} > {node.capacity})",
                rec,
            )
        self.blocks_created += 1

    def _on_block_evicted(self, rec: TraceRecord) -> None:
        node = self._node(rec.data["node"])
        bid, nbytes = rec.data["block"], rec.data["bytes"]
        self._check(
            bid in node.dynamic and bid not in node.pending,
            f"node {node.node_id}: evicted block {bid} is not a live "
            "dynamic replica",
            rec,
        )
        node.pending.add(bid)
        node.used -= nbytes
        self._check(
            node.used >= 0,
            f"node {node.node_id}: negative budget usage {node.used}",
            rec,
        )
        self.blocks_evicted += 1

    # budget.charge / budget.refund precede their block.* twin in the
    # emission order, so they are *look-ahead* checks: the record's
    # self-reported post-operation `used` must equal the shadow's
    # prediction, and `capacity` must be stable.
    def _on_budget_charge(self, rec: TraceRecord) -> None:
        self._check_budget_record(rec, sign=+1)

    def _on_budget_refund(self, rec: TraceRecord) -> None:
        self._check_budget_record(rec, sign=-1)

    def _check_budget_record(self, rec: TraceRecord, sign: int) -> None:
        node = self._node(rec.data["node"])
        expected = node.used + sign * rec.data["bytes"]
        self._check(
            rec.data["used"] == expected,
            f"node {node.node_id}: budget record reports used="
            f"{rec.data['used']} but shadow predicts {expected}",
            rec,
        )
        cap = rec.data["capacity"]
        if node.capacity is None:
            node.capacity = cap
        else:
            self._check(
                cap == node.capacity,
                f"node {node.node_id}: capacity changed "
                f"{node.capacity} -> {cap}",
                rec,
            )

    def _on_replication_abandoned(self, rec: TraceRecord) -> None:
        self.replications_abandoned += 1

    def _on_task_scheduled(self, rec: TraceRecord) -> None:
        d = rec.data
        node = self._node(d["node"])
        kind = d["kind"]
        if kind == "map":
            node.busy_map += 1
            if node.map_slots is not None:
                self._check(
                    node.busy_map <= node.map_slots,
                    f"node {node.node_id}: {node.busy_map} busy map slots "
                    f"exceed capacity {node.map_slots}",
                    rec,
                )
        else:
            node.busy_reduce += 1
        self.attempts.setdefault((d["job"], d["task"], kind), []).append(d["node"])
        if d.get("speculative"):
            self.speculative_launched += 1
        elif kind == "map":
            idx = _LOCALITY_INDEX.get(d.get("locality"))
            if idx is None:
                self._fail(f"unknown locality {d.get('locality')!r}", rec)
            self._job(d["job"]).locality_counts[idx] += 1
        else:
            self._job(d["job"])  # reduces still register the job

    def _on_task_finished(self, rec: TraceRecord) -> None:
        d = rec.data
        key = (d["job"], d["task"], d["kind"])
        attempts = self.attempts.pop(key, [])
        self._check(
            d["node"] in attempts,
            f"task j{d['job']}/{d['kind']}{d['task']} finished on node "
            f"{d['node']} with no attempt running there",
            rec,
        )
        # the finishing attempt frees its slot; first-wins kills every
        # sibling attempt, whose slots free at the same instant
        for node_id in attempts:
            node = self._node(node_id)
            if d["kind"] == "map":
                node.busy_map -= 1
                self._check(
                    node.busy_map >= 0,
                    f"node {node_id}: negative busy map slots",
                    rec,
                )
            else:
                node.busy_reduce -= 1
                self._check(
                    node.busy_reduce >= 0,
                    f"node {node_id}: negative busy reduce slots",
                    rec,
                )

    def _on_heartbeat(self, rec: TraceRecord) -> None:
        d = rec.data
        node = self._node(d["node"])
        node.heartbeats += 1
        free_map, free_reduce = d["free_map_slots"], d["free_reduce_slots"]
        if node.map_slots is None:
            node.map_slots = free_map + node.busy_map
            node.reduce_slots = free_reduce + node.busy_reduce
        else:
            self._check(
                free_map == node.map_slots - node.busy_map,
                f"node {node.node_id}: heartbeat reports {free_map} free map "
                f"slots but shadow occupancy implies "
                f"{node.map_slots - node.busy_map}",
                rec,
            )
            self._check(
                free_reduce == node.reduce_slots - node.busy_reduce,
                f"node {node.node_id}: heartbeat reports {free_reduce} free "
                f"reduce slots but shadow occupancy implies "
                f"{node.reduce_slots - node.busy_reduce}",
                rec,
            )

    def _on_hdfs_heartbeat(self, rec: TraceRecord) -> None:
        # a DataNode heartbeat physically completes its lazy deletions
        node = self._node(rec.data["node"])
        for bid in node.pending:
            node.dynamic.pop(bid, None)
        node.pending.clear()

    def _on_failure_injected(self, rec: TraceRecord) -> None:
        d = rec.data
        node = self._node(d["node"])
        node.alive = False
        # every attempt on the dead node is killed; those with a surviving
        # sibling keep running elsewhere, the rest are requeued
        killed = 0
        for key, nodes in list(self.attempts.items()):
            while node.node_id in nodes:
                nodes.remove(node.node_id)
                killed += 1
            if not nodes:
                del self.attempts[key]
        node.busy_map = 0
        node.busy_reduce = 0
        self._check(
            d["requeued"] <= killed,
            f"node {node.node_id}: {d['requeued']} attempts requeued but "
            f"only {killed} were running there",
            rec,
        )
        self.tasks_requeued += d["requeued"]

    def _on_failure_detected(self, rec: TraceRecord) -> None:
        # NameNode prune: the dead node's storage is wiped from the view
        node = self._node(rec.data["node"])
        node.dynamic.clear()
        node.pending.clear()
        node.used = 0

    def _on_engine_event(self, rec: TraceRecord) -> None:
        self.engine_events += 1

    def _on_scarlett_epoch(self, rec: TraceRecord) -> None:
        self.scarlett_epochs += 1
        self._check(
            rec.data["epoch"] == self.scarlett_epochs,
            f"scarlett epoch {rec.data['epoch']} out of sequence "
            f"(expected {self.scarlett_epochs})",
            rec,
        )
        # copies in flight at the boundary may overshoot by the recorded slack
        slack = rec.data.get("slack_bytes", 0)
        self._check(
            rec.data["spent_bytes"] <= rec.data["budget_bytes"] + slack,
            f"scarlett epoch {rec.data['epoch']}: spent "
            f"{rec.data['spent_bytes']} exceeds budget "
            f"{rec.data['budget_bytes']} + slack {slack}",
            rec,
        )

    def _on_run_config(self, rec: TraceRecord) -> None:
        self.config = rec

    def _on_run_summary(self, rec: TraceRecord) -> None:
        self.summary = rec

    # -- derived views -----------------------------------------------------

    def locality_stats(self) -> LocalityStats:
        """Cluster-wide map placement tallies, from the shadow jobs."""
        node = rack = remote = 0
        for job in self.jobs.values():
            node += job.locality_counts[0]
            rack += job.locality_counts[1]
            remote += job.locality_counts[2]
        return LocalityStats(node, rack, remote)

    def job_locality(self) -> float:
        """Unweighted mean of per-job data locality (Fig. 7a metric)."""
        if not self.jobs:
            return 0.0
        fractions = [j.data_locality for j in self.jobs.values()]
        return sum(fractions) / len(fractions)

    def live_replicas(self) -> Dict[int, Set[int]]:
        """Per-node live dynamic replica sets (empty nodes omitted)."""
        return {nid: n.live() for nid, n in self.nodes.items() if n.live()}

    # -- verification ------------------------------------------------------

    def verify(self) -> VerifyReport:
        """Cross-check the reconstruction against the run.summary footer."""
        if self.summary is None:
            return VerifyReport(
                checks=[],
                notes=[
                    "trace has no run.summary footer: the run crashed or is "
                    "still in flight; reconstruction covers "
                    f"{self.records_applied} records up to t={self.last_time:.1f}"
                ],
            )
        s = self.summary.data
        stats = self.locality_stats()
        checks = [
            CheckResult("n_jobs", len(self.jobs), s["n_jobs"]),
            CheckResult("locality_node", stats.node_local, s["locality_node"]),
            CheckResult("locality_rack", stats.rack_local, s["locality_rack"]),
            CheckResult("locality_remote", stats.remote, s["locality_remote"]),
            CheckResult("blocks_created", self.blocks_created, s["blocks_created"]),
            CheckResult("blocks_evicted", self.blocks_evicted, s["blocks_evicted"]),
        ]
        if "replication_disk_writes" in s:
            checks.append(
                CheckResult(
                    "replication_disk_writes",
                    self.blocks_created,
                    s["replication_disk_writes"],
                )
            )
        if "tasks_requeued" in s:
            checks.append(
                CheckResult("tasks_requeued", self.tasks_requeued, s["tasks_requeued"])
            )
        if "speculative_launched" in s:
            checks.append(
                CheckResult(
                    "speculative_launched",
                    self.speculative_launched,
                    s["speculative_launched"],
                )
            )
        # job_locality is a float mean; summation order can differ between
        # the collector (completion order) and the shadow (launch order)
        checks.append(
            CheckResult(
                "job_locality",
                round(self.job_locality(), 9),
                round(s["job_locality"], 9),
            )
        )
        per_job = s.get("job_locality_counts")
        if per_job is not None:
            shadow_jobs = {
                str(jid): list(j.locality_counts) for jid, j in self.jobs.items()
            }
            live_jobs = {str(k): list(v) for k, v in per_job.items()}
            checks.append(
                CheckResult("job_locality_counts", shadow_jobs, live_jobs)
            )
        # per-node end state: live dynamic replica sets + budget bytes
        live_nodes = {
            int(k): v for k, v in s["nodes"].items()
        }
        all_ids = set(live_nodes) | set(self.nodes)
        shadow_dyn = {
            nid: sorted(self.nodes[nid].live()) if nid in self.nodes else []
            for nid in all_ids
        }
        summary_dyn = {
            nid: sorted(live_nodes.get(nid, {}).get("dynamic", []))
            for nid in all_ids
        }
        checks.append(CheckResult("dynamic_replica_sets", shadow_dyn, summary_dyn))
        shadow_used = {
            nid: self.nodes[nid].used if nid in self.nodes else 0 for nid in all_ids
        }
        summary_used = {
            nid: live_nodes.get(nid, {}).get("used", 0) for nid in all_ids
        }
        checks.append(CheckResult("budget_bytes_used", shadow_used, summary_used))
        notes = []
        if "makespan_s" in s:
            notes.append(f"makespan {s['makespan_s']:.1f}s, "
                         f"{self.records_applied} records reconstructed")
        return VerifyReport(checks=checks, notes=notes)

    def verify_against_result(self, result) -> VerifyReport:
        """Cross-check against a live :class:`ExperimentResult` directly.

        The per-node end state is only recorded in the run.summary footer,
        so this covers the counter slice an ``ExperimentResult`` carries.
        """
        stats = self.locality_stats()
        checks = [
            CheckResult("n_jobs", len(self.jobs), result.n_jobs),
            CheckResult("locality_node", stats.node_local, result.locality.node_local),
            CheckResult("locality_rack", stats.rack_local, result.locality.rack_local),
            CheckResult("locality_remote", stats.remote, result.locality.remote),
            CheckResult(
                "job_locality",
                round(self.job_locality(), 9),
                round(result.job_locality, 9),
            ),
            CheckResult("blocks_created", self.blocks_created, result.blocks_created),
            CheckResult("blocks_evicted", self.blocks_evicted, result.blocks_evicted),
            CheckResult(
                "replication_disk_writes",
                self.blocks_created,
                result.replication_disk_writes,
            ),
            CheckResult("tasks_requeued", self.tasks_requeued, result.tasks_requeued),
            CheckResult(
                "speculative_launched",
                self.speculative_launched,
                result.speculative_launched,
            ),
        ]
        return VerifyReport(checks=checks, notes=[])


_HANDLERS = {
    BLOCK_REPLICATED: ShadowState._on_block_replicated,
    BLOCK_EVICTED: ShadowState._on_block_evicted,
    BUDGET_CHARGE: ShadowState._on_budget_charge,
    BUDGET_REFUND: ShadowState._on_budget_refund,
    REPLICATION_ABANDONED: ShadowState._on_replication_abandoned,
    TASK_SCHEDULED: ShadowState._on_task_scheduled,
    TASK_FINISHED: ShadowState._on_task_finished,
    HEARTBEAT: ShadowState._on_heartbeat,
    HDFS_HEARTBEAT: ShadowState._on_hdfs_heartbeat,
    FAILURE_INJECTED: ShadowState._on_failure_injected,
    FAILURE_DETECTED: ShadowState._on_failure_detected,
    ENGINE_EVENT: ShadowState._on_engine_event,
    SCARLETT_EPOCH: ShadowState._on_scarlett_epoch,
    RUN_CONFIG: ShadowState._on_run_config,
    RUN_SUMMARY: ShadowState._on_run_summary,
}


def reconstruct(
    records: Iterable[TraceRecord], strict: bool = True
) -> ShadowState:
    """Replay ``records`` (in trace order) into a fresh shadow state."""
    state = ShadowState(strict=strict)
    for record in records:
        state.apply(record)
    return state
