"""Trace-driven replay: reconstruction, verification, and divergence.

A JSONL trace written by :class:`repro.observability.trace.JsonlSink` is a
first-class replayable artifact.  This package consumes it:

* :mod:`repro.replay.reader` — stream records back from disk, validate
  them against the published schema, and index them by time/type/node;
* :mod:`repro.replay.shadow` — rebuild the control-plane state (dynamic
  replica sets, budgets, slots, per-job locality) purely from records,
  with a ``snapshot(t)`` API and an exact cross-check against the live
  run's final counters;
* :mod:`repro.replay.divergence` — align two traces and pinpoint the
  first record where they disagree, with a shadow-state delta and a
  ring-buffer-style context tail;
* :mod:`repro.replay.metrics` — locality/eviction aggregates and
  time-series derived from traces instead of live collector counters, so
  figures get replayable provenance.

See ``docs/REPLAY.md`` for format guarantees and diff semantics.
"""

from __future__ import annotations

from repro.replay.divergence import DivergenceReport, TraceDiff, diff_traces, first_divergence
from repro.replay.reader import (
    TraceFormatError,
    TraceIndex,
    load_trace,
    read_trace,
    validate_record,
)
from repro.replay.shadow import (
    ReconstructionError,
    ShadowState,
    VerifyReport,
    reconstruct,
)

__all__ = [
    "DivergenceReport",
    "ReconstructionError",
    "ShadowState",
    "TraceDiff",
    "TraceFormatError",
    "TraceIndex",
    "VerifyReport",
    "diff_traces",
    "first_divergence",
    "load_trace",
    "read_trace",
    "reconstruct",
    "validate_record",
]
