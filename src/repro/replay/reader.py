"""Stream, validate, and index JSONL trace files.

The on-disk format is one JSON object per line: ``{"type": ..., "t": ...,
...fields}`` (see ``docs/OBSERVABILITY.md``).  :func:`read_trace` inverts
:meth:`repro.observability.trace.TraceRecord.to_json` exactly — including
the ``data.``-namespacing of payload keys that collide with the envelope —
and enforces the format guarantees replay relies on:

* every ``type`` is a known :data:`~repro.observability.trace.RECORD_TYPES`
  member and carries that type's required fields (and no unknown ones);
* timestamps are finite numbers and nondecreasing (records are emitted
  from inside the event loop in fire order);
* a ``run.config`` record, when present, is the first record; a
  ``run.summary``, when present, is the last.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.observability.trace import (
    BLOCK_EVICTED,
    BLOCK_REPLICATED,
    BUDGET_CHARGE,
    BUDGET_REFUND,
    DATA_KEY_PREFIX,
    ENGINE_EVENT,
    FAILURE_DETECTED,
    FAILURE_INJECTED,
    HDFS_HEARTBEAT,
    HEARTBEAT,
    RECORD_TYPES,
    REPLICATION_ABANDONED,
    ROLLOUT_DECISION,
    RUN_CONFIG,
    RUN_SUMMARY,
    SCARLETT_EPOCH,
    TASK_FINISHED,
    TASK_SCHEDULED,
    TraceRecord,
)


class TraceFormatError(ValueError):
    """A trace line violates the published record schema."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        self.line_no = line_no
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)


#: required data fields per record type
REQUIRED_FIELDS: Dict[str, FrozenSet[str]] = {
    BLOCK_REPLICATED: frozenset({"node", "block", "file", "bytes"}),
    BLOCK_EVICTED: frozenset({"node", "block", "file", "bytes"}),
    BUDGET_CHARGE: frozenset({"node", "block", "bytes", "used", "capacity"}),
    BUDGET_REFUND: frozenset({"node", "block", "bytes", "used", "capacity"}),
    REPLICATION_ABANDONED: frozenset({"node", "block", "file"}),
    TASK_SCHEDULED: frozenset({"node", "job", "task", "kind"}),
    TASK_FINISHED: frozenset({"node", "job", "task", "kind"}),
    HEARTBEAT: frozenset({"node", "free_map_slots", "free_reduce_slots"}),
    HDFS_HEARTBEAT: frozenset({"node", "commands"}),
    FAILURE_INJECTED: frozenset({"node", "requeued"}),
    FAILURE_DETECTED: frozenset({"node", "blocks_lost", "data_loss"}),
    ENGINE_EVENT: frozenset({"label", "seq"}),
    SCARLETT_EPOCH: frozenset(
        {"epoch", "files_hot", "extra_replicas", "budget_bytes", "spent_bytes"}
    ),
    ROLLOUT_DECISION: frozenset(
        {"epoch", "candidates", "applied", "score", "baseline"}
    ),
    RUN_CONFIG: frozenset({"workload", "scheduler", "policy", "seed"}),
    RUN_SUMMARY: frozenset(
        {
            "n_jobs",
            "blocks_created",
            "blocks_evicted",
            "locality_node",
            "locality_rack",
            "locality_remote",
            "job_locality",
            "nodes",
        }
    ),
}

#: additional fields a record type may carry
OPTIONAL_FIELDS: Dict[str, FrozenSet[str]] = {
    TASK_SCHEDULED: frozenset({"locality", "data_local", "block", "speculative"}),
    # block/node are null on a no-op decision, so they skip the int check
    ROLLOUT_DECISION: frozenset({"block", "node"}),
    TASK_FINISHED: frozenset({"locality", "speculative"}),
    SCARLETT_EPOCH: frozenset(
        {"replicas_created", "replicas_removed", "queued", "slack_bytes"}
    ),
    RUN_CONFIG: frozenset(
        {
            "jobs",
            "cluster",
            "budget",
            "replication",
            "engine_events",
            "scarlett",
            "cdrm",
            "failures",
            "speculative",
            # lossless ExperimentConfig payload (serialize.config_to_dict),
            # the input to `replay whatif` state reconstruction
            "config",
        }
    ),
    RUN_SUMMARY: frozenset(
        {
            "replication_disk_writes",
            "tasks_requeued",
            "speculative_launched",
            "scarlett_replicas_created",
            "job_locality_counts",
            "makespan_s",
        }
    ),
}

#: fields a map-kind task record must additionally carry
_MAP_SCHEDULED_FIELDS = frozenset({"locality", "data_local", "block"})


def parse_line(line: str, line_no: Optional[int] = None) -> TraceRecord:
    """Parse one JSONL line back into a :class:`TraceRecord`.

    Inverts ``TraceRecord.to_json``: envelope keys come off the top, and a
    single leading ``data.`` prefix is stripped from namespaced payload
    keys.
    """
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not valid JSON: {exc}", line_no) from None
    if not isinstance(obj, dict):
        raise TraceFormatError("record is not a JSON object", line_no)
    try:
        rtype = obj.pop("type")
        time = obj.pop("t")
    except KeyError as exc:
        raise TraceFormatError(f"missing envelope key {exc}", line_no) from None
    data = {}
    for key, value in obj.items():
        if key.startswith(DATA_KEY_PREFIX):
            key = key[len(DATA_KEY_PREFIX):]
        data[key] = value
    return TraceRecord(rtype, time, data)


def validate_record(record: TraceRecord, line_no: Optional[int] = None) -> None:
    """Check one record against the per-type field schema."""
    if record.type not in RECORD_TYPES:
        raise TraceFormatError(f"unknown record type {record.type!r}", line_no)
    if not isinstance(record.time, (int, float)) or isinstance(record.time, bool) \
            or not math.isfinite(record.time) or record.time < 0:
        raise TraceFormatError(
            f"{record.type}: bad timestamp {record.time!r}", line_no
        )
    required = REQUIRED_FIELDS[record.type]
    optional = OPTIONAL_FIELDS.get(record.type, frozenset())
    keys = set(record.data)
    missing = required - keys
    if missing:
        raise TraceFormatError(
            f"{record.type}: missing fields {sorted(missing)}", line_no
        )
    unknown = keys - required - optional
    if unknown:
        raise TraceFormatError(
            f"{record.type}: unknown fields {sorted(unknown)}", line_no
        )
    if record.type == TASK_SCHEDULED and record.data.get("kind") == "map":
        map_missing = _MAP_SCHEDULED_FIELDS - keys
        if map_missing:
            raise TraceFormatError(
                f"{record.type}: map task missing fields {sorted(map_missing)}",
                line_no,
            )
    node = record.data.get("node")
    if "node" in required and (isinstance(node, bool) or not isinstance(node, int)):
        raise TraceFormatError(f"{record.type}: node {node!r} is not an int", line_no)


def read_trace(path: str, validate: bool = True) -> Iterator[TraceRecord]:
    """Stream records from a JSONL trace file, validating as they go."""
    last_t = -math.inf
    seen_summary_at: Optional[int] = None
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            record = parse_line(line, line_no)
            if validate:
                validate_record(record, line_no)
                if record.time < last_t:
                    raise TraceFormatError(
                        f"{record.type}: time {record.time} goes backwards "
                        f"(previous record at t={last_t})",
                        line_no,
                    )
                if record.type == RUN_CONFIG and line_no != 1:
                    raise TraceFormatError(
                        "run.config must be the first record", line_no
                    )
                if seen_summary_at is not None:
                    raise TraceFormatError(
                        f"record after the run.summary footer "
                        f"(summary at line {seen_summary_at})",
                        line_no,
                    )
                if record.type == RUN_SUMMARY:
                    seen_summary_at = line_no
                last_t = record.time
            yield record


class TraceIndex:
    """An in-memory trace with by-time / by-type / by-node lookup."""

    def __init__(self, records: Iterable[TraceRecord], path: str = "") -> None:
        self.path = path
        self.records: List[TraceRecord] = list(records)
        self._times: List[float] = [r.time for r in self.records]
        self.by_type: Dict[str, List[int]] = {}
        self.by_node: Dict[int, List[int]] = {}
        for i, rec in enumerate(self.records):
            self.by_type.setdefault(rec.type, []).append(i)
            node = rec.data.get("node")
            if isinstance(node, int) and not isinstance(node, bool):
                self.by_node.setdefault(node, []).append(i)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    # -- lookups -----------------------------------------------------------

    def of_type(self, rtype: str) -> List[TraceRecord]:
        """All records of one type, in trace order."""
        return [self.records[i] for i in self.by_type.get(rtype, [])]

    def on_node(self, node_id: int) -> List[TraceRecord]:
        """All records naming ``node_id``, in trace order."""
        return [self.records[i] for i in self.by_node.get(node_id, [])]

    def count(self, rtype: str) -> int:
        """Number of records of one type."""
        return len(self.by_type.get(rtype, []))

    def until(self, t: float) -> List[TraceRecord]:
        """The prefix of records with ``time <= t``."""
        return self.records[: bisect_right(self._times, t)]

    @property
    def config(self) -> Optional[TraceRecord]:
        """The ``run.config`` header, if the trace has one."""
        idxs = self.by_type.get(RUN_CONFIG)
        return self.records[idxs[0]] if idxs else None

    @property
    def summary(self) -> Optional[TraceRecord]:
        """The ``run.summary`` footer, if the run completed."""
        idxs = self.by_type.get(RUN_SUMMARY)
        return self.records[idxs[-1]] if idxs else None

    @property
    def span(self) -> Tuple[float, float]:
        """(first, last) record times; ``(0.0, 0.0)`` for an empty trace."""
        if not self.records:
            return (0.0, 0.0)
        return (self._times[0], self._times[-1])

    def snapshot(self, t: float) -> "ShadowState":
        """Reconstruct the shadow control-plane state as of time ``t``."""
        from repro.replay.shadow import reconstruct

        return reconstruct(self.until(t))


def load_trace(path: str, validate: bool = True) -> TraceIndex:
    """Read and index a whole trace file."""
    return TraceIndex(read_trace(path, validate=validate), path=path)
