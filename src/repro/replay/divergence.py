"""Divergence bisection: align two traces and find the first disagreement.

Two runs of the same workload (different config, seed, or code revision)
produce traces that share a prefix and then split; the first divergent
record is where their control-plane decisions first differ — everything
after it is cascade.  :func:`first_divergence` walks the two streams in
lockstep with early exit (the streaming-equivalent of bisection: JSONL
must be read front-to-back anyway, so a prefix-hash bisection would touch
the same bytes) and stops at the first mismatch.

The report carries the machinery a debugging session needs:

* the divergent record from each side (one side may simply end early);
* the shared shadow state at the split, plus the *delta* produced by
  applying each side's divergent record to it — i.e. what each run did
  differently, in state terms, not just record terms;
* a ring-buffer-style context tail of the shared prefix.

``run.config`` / ``run.summary`` meta records are excluded from the
alignment (two configs differ by construction); config differences are
reported separately.  Enable the ``engine.event`` firehose
(``--trace-engine-events``) on both runs for the highest-fidelity
alignment — every callback becomes a comparison point, so the split lands
on the exact engine event rather than the next control-plane record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import zip_longest
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.observability.trace import RUN_CONFIG, RUN_SUMMARY, TraceRecord
from repro.replay.reader import load_trace
from repro.replay.shadow import ReconstructionError, ShadowState, reconstruct

#: meta records bracketing a run; never part of the event alignment
META_TYPES: FrozenSet[str] = frozenset({RUN_CONFIG, RUN_SUMMARY})


@dataclass
class DivergenceReport:
    """Where and how two traces split."""

    #: position in the aligned (meta-stripped) event streams
    index: int
    #: the records that disagree; ``None`` when that trace ended early
    record_a: Optional[TraceRecord]
    record_b: Optional[TraceRecord]
    #: the last records of the shared prefix, oldest first
    context: List[TraceRecord] = field(default_factory=list)
    #: shadow-state fields that differ after applying each side's record:
    #: name -> (value_a, value_b)
    state_delta: Dict[str, Tuple[object, object]] = field(default_factory=dict)
    #: config fields that differ between the two runs
    config_delta: Dict[str, Tuple[object, object]] = field(default_factory=dict)

    def format(self, label_a: str = "A", label_b: str = "B") -> str:
        """Human-readable diff report."""
        lines = [f"traces diverge at event #{self.index}"]
        for label, rec in ((label_a, self.record_a), (label_b, self.record_b)):
            if rec is None:
                lines.append(f"  {label}: <trace ends>")
            else:
                lines.append(f"  {label}: {rec.to_json()}")
        if self.config_delta:
            lines.append("config differences:")
            for key in sorted(self.config_delta):
                va, vb = self.config_delta[key]
                lines.append(f"  {key}: {va!r} vs {vb!r}")
        if self.state_delta:
            lines.append("shadow-state delta after applying each side's record:")
            for key in sorted(self.state_delta):
                va, vb = self.state_delta[key]
                lines.append(f"  {key}: {va!r} vs {vb!r}")
        if self.context:
            lines.append(
                f"context tail ({len(self.context)} shared records, oldest first):"
            )
            lines.extend(f"  {r.to_json()}" for r in self.context)
        return "\n".join(lines)


@dataclass
class TraceDiff:
    """Outcome of diffing two traces."""

    path_a: str
    path_b: str
    n_records_a: int
    n_records_b: int
    #: ``None`` when the aligned event streams are identical
    divergence: Optional[DivergenceReport]

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def format(self) -> str:
        head = (
            f"A: {self.path_a} ({self.n_records_a} records)\n"
            f"B: {self.path_b} ({self.n_records_b} records)"
        )
        if self.divergence is None:
            return head + "\ntraces are identical (meta records excluded)"
        return head + "\n" + self.divergence.format()


def _strip_meta(records: Iterable[TraceRecord]) -> List[TraceRecord]:
    return [r for r in records if r.type not in META_TYPES]


def _config_delta(
    config_a: Optional[TraceRecord], config_b: Optional[TraceRecord]
) -> Dict[str, Tuple[object, object]]:
    a = dict(config_a.data) if config_a is not None else {}
    b = dict(config_b.data) if config_b is not None else {}
    delta = {}
    for key in sorted(set(a) | set(b)):
        if a.get(key) != b.get(key):
            delta[key] = (a.get(key), b.get(key))
    return delta


def _shadow_fields(state: ShadowState) -> Dict[str, object]:
    """Flatten the shadow fields worth diffing at a divergence point."""
    out: Dict[str, object] = {
        "blocks_created": state.blocks_created,
        "blocks_evicted": state.blocks_evicted,
        "replications_abandoned": state.replications_abandoned,
        "tasks_requeued": state.tasks_requeued,
        "speculative_launched": state.speculative_launched,
    }
    for nid in sorted(state.nodes):
        node = state.nodes[nid]
        out[f"node{nid}.live_replicas"] = tuple(sorted(node.live()))
        out[f"node{nid}.pending_deletion"] = tuple(sorted(node.pending))
        out[f"node{nid}.budget_used"] = node.used
        out[f"node{nid}.busy_map"] = node.busy_map
        out[f"node{nid}.busy_reduce"] = node.busy_reduce
        out[f"node{nid}.alive"] = node.alive
    for jid in sorted(state.jobs):
        out[f"job{jid}.locality_counts"] = tuple(state.jobs[jid].locality_counts)
    return out


def _state_delta(
    prefix: List[TraceRecord],
    record_a: Optional[TraceRecord],
    record_b: Optional[TraceRecord],
) -> Dict[str, Tuple[object, object]]:
    """Apply each divergent record to the shared-prefix shadow and diff."""
    # the prefix is common to both traces, so one reconstruction serves;
    # lenient mode keeps corrupted traces analyzable
    base = reconstruct(prefix, strict=False)
    sides = []
    for rec in (record_a, record_b):
        side = base.clone()
        if rec is not None:
            try:
                side.apply(rec)
            except ReconstructionError:  # pragma: no cover - lenient mode
                pass
        sides.append(_shadow_fields(side))
    fields_a, fields_b = sides
    delta = {}
    for key in sorted(set(fields_a) | set(fields_b)):
        if fields_a.get(key) != fields_b.get(key):
            delta[key] = (fields_a.get(key), fields_b.get(key))
    return delta


def first_divergence(
    records_a: Iterable[TraceRecord],
    records_b: Iterable[TraceRecord],
    context: int = 10,
    with_state_delta: bool = True,
) -> Optional[DivergenceReport]:
    """The first aligned position where the two event streams disagree.

    Records compare as ``(type, time, data)`` triples — a single changed
    field, timestamp jitter, or a missing record all count.  Returns
    ``None`` when one stream equals the other exactly (meta records
    stripped); when one trace is a strict prefix of the other, the
    divergence is at the shorter trace's end.
    """
    stream_a = _strip_meta(records_a)
    stream_b = _strip_meta(records_b)
    for i, (rec_a, rec_b) in enumerate(zip_longest(stream_a, stream_b)):
        if rec_a == rec_b:
            continue
        prefix = stream_a[:i]
        return DivergenceReport(
            index=i,
            record_a=rec_a,
            record_b=rec_b,
            context=prefix[-context:],
            state_delta=(
                _state_delta(prefix, rec_a, rec_b) if with_state_delta else {}
            ),
        )
    return None


def diff_traces(
    path_a: str,
    path_b: str,
    context: int = 10,
    validate: bool = True,
) -> TraceDiff:
    """Load two trace files and bisect them to their first divergence."""
    index_a = load_trace(path_a, validate=validate)
    index_b = load_trace(path_b, validate=validate)
    report = first_divergence(index_a, index_b, context=context)
    if report is not None:
        report.config_delta = _config_delta(index_a.config, index_b.config)
    return TraceDiff(
        path_a=path_a,
        path_b=path_b,
        n_records_a=len(index_a),
        n_records_b=len(index_b),
        divergence=report,
    )
