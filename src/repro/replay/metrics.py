"""Trace-derived metrics: figure inputs with replayable provenance.

The live :class:`~repro.metrics.collector.MetricsCollector` tallies
counters as the simulation runs; these functions compute the same
locality aggregates — plus time-series the collector never kept — from a
JSONL trace after the fact.  A figure built this way carries its own
provenance: the trace file *is* the measurement, and
``python -m repro replay verify`` proves it equals what the live run saw.
"""

from __future__ import annotations

from typing import Iterable, List, NamedTuple, Optional

from repro.metrics.locality import LocalityStats
from repro.observability.trace import (
    BLOCK_EVICTED,
    BLOCK_REPLICATED,
    REPLICATION_ABANDONED,
    TASK_SCHEDULED,
    TraceRecord,
)
from repro.replay.shadow import reconstruct


class LocalityBucket(NamedTuple):
    """Map placements launched during one time bucket."""

    t_start: float
    node_local: int
    rack_local: int
    remote: int

    @property
    def total(self) -> int:
        return self.node_local + self.rack_local + self.remote

    @property
    def locality(self) -> float:
        return self.node_local / self.total if self.total else 0.0


class ReplicationBucket(NamedTuple):
    """Dynamic-replica churn during one time bucket."""

    t_start: float
    replicated: int
    evicted: int
    abandoned: int


_LOCALITY_FIELD = {"NODE_LOCAL": 0, "RACK_LOCAL": 1, "REMOTE": 2}


def locality_stats(records: Iterable[TraceRecord]) -> LocalityStats:
    """Cluster-wide map-placement tallies, straight from the trace."""
    return reconstruct(records, strict=False).locality_stats()


def job_locality(records: Iterable[TraceRecord]) -> float:
    """Unweighted mean per-job data locality (the Fig. 7a/10a metric)."""
    return reconstruct(records, strict=False).job_locality()


def blocks_per_job(records: Iterable[TraceRecord]) -> float:
    """Dynamic replicas created per job (the Figs. 8-9 bottom panels)."""
    state = reconstruct(records, strict=False)
    return state.blocks_created / max(1, len(state.jobs))


def locality_timeseries(
    records: Iterable[TraceRecord],
    bucket_s: float = 60.0,
    end: Optional[float] = None,
) -> List[LocalityBucket]:
    """Map placements bucketed by launch time.

    Speculative duplicates are excluded, matching the live per-job
    tallies.  Buckets run from 0 to the last launch (or ``end``); empty
    buckets are kept so plots show gaps.
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    counts: List[List[int]] = []
    last_t = 0.0
    for rec in records:
        if rec.type != TASK_SCHEDULED or rec.data.get("kind") != "map":
            continue
        if rec.data.get("speculative"):
            continue
        idx = _LOCALITY_FIELD[rec.data["locality"]]
        bucket = int(rec.time // bucket_s)
        while len(counts) <= bucket:
            counts.append([0, 0, 0])
        counts[bucket][idx] += 1
        last_t = max(last_t, rec.time)
    if end is not None:
        while len(counts) * bucket_s < end:
            counts.append([0, 0, 0])
    return [
        LocalityBucket(i * bucket_s, c[0], c[1], c[2]) for i, c in enumerate(counts)
    ]


def eviction_timeseries(
    records: Iterable[TraceRecord],
    bucket_s: float = 60.0,
    end: Optional[float] = None,
) -> List[ReplicationBucket]:
    """Replica creations / evictions / abandonments bucketed by time.

    The thrashing indicator: a healthy policy replicates early and evicts
    rarely; eviction spikes tracking replication spikes are churn.
    """
    if bucket_s <= 0:
        raise ValueError("bucket_s must be positive")
    counts: List[List[int]] = []
    kinds = {BLOCK_REPLICATED: 0, BLOCK_EVICTED: 1, REPLICATION_ABANDONED: 2}
    for rec in records:
        idx = kinds.get(rec.type)
        if idx is None:
            continue
        bucket = int(rec.time // bucket_s)
        while len(counts) <= bucket:
            counts.append([0, 0, 0])
        counts[bucket][idx] += 1
    if end is not None:
        while len(counts) * bucket_s < end:
            counts.append([0, 0, 0])
    return [
        ReplicationBucket(i * bucket_s, c[0], c[1], c[2])
        for i, c in enumerate(counts)
    ]
