"""Data-locality aggregates."""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.metrics.collector import JobRecord


class LocalityStats(NamedTuple):
    """Cluster-wide task-placement breakdown."""

    node_local: int
    rack_local: int
    remote: int

    @property
    def total(self) -> int:
        """Launched map tasks."""
        return self.node_local + self.rack_local + self.remote

    @property
    def locality(self) -> float:
        """Fraction data-local — the paper's headline metric."""
        return self.node_local / self.total if self.total else 0.0

    @property
    def remote_fraction(self) -> float:
        """Fraction of maps that had to fetch their block over the network."""
        return (self.rack_local + self.remote) / self.total if self.total else 0.0


def cluster_locality(jobs: Iterable[JobRecord]) -> LocalityStats:
    """Aggregate task placement over all jobs' locality counters."""
    node = rack = remote = 0
    for rec in jobs:
        node += rec.locality_counts[0]
        rack += rec.locality_counts[1]
        remote += rec.locality_counts[2]
    return LocalityStats(node, rack, remote)


def mean_job_locality(jobs: Iterable[JobRecord]) -> float:
    """Unweighted mean of per-job locality (Fig. 7a's "data locality of
    jobs"), which gives small jobs the same weight as large ones."""
    fractions = [rec.data_locality for rec in jobs]
    if not fractions:
        raise ValueError("no job records")
    return sum(fractions) / len(fractions)
