"""Geometric mean turnaround time (Eq. 1).

The paper uses the geometric rather than arithmetic mean "because the
latter is dominated by long jobs".  Computed in log space to avoid overflow
on long traces.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.metrics.collector import JobRecord


def geometric_mean_turnaround(jobs: Iterable[JobRecord]) -> float:
    """GMTT = (prod_k TT_k)^(1/|K|) over the completed jobs."""
    log_sum = 0.0
    n = 0
    for rec in jobs:
        tt = rec.turnaround
        if tt <= 0:
            raise ValueError(f"job {rec.job_id} has nonpositive turnaround {tt}")
        log_sum += math.log(tt)
        n += 1
    if n == 0:
        raise ValueError("no job records")
    return math.exp(log_sum / n)
