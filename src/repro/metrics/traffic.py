"""Network-traffic accounting.

Data locality matters because every non-local map read crosses the (often
oversubscribed) network fabric; the paper motivates DARE partly through
reduced network traffic and its energy implications (Section V-B).  This
meter attributes every byte the simulated cluster moves to a category so
experiments can report exactly how much traffic DARE removes — and how much
a proactive baseline like Scarlett *adds*.
"""

from __future__ import annotations

from typing import Dict


class TrafficMeter:
    """Byte counters per traffic category."""

    #: traffic categories, in reporting order
    CATEGORIES = (
        "remote_map_reads",   # block fetches by non-data-local map tasks
        "shuffle",            # map output pulled by reducers
        "output_pipeline",    # HDFS write pipeline for job output (rf-1 hops)
        "rebalancing",        # proactive replication (Scarlett-style epochs)
        "re_replication",     # repair traffic after node failures
        "rollout",            # forced replications chosen by the rollout engine
    )

    def __init__(self) -> None:
        self._bytes: Dict[str, int] = {c: 0 for c in self.CATEGORIES}

    def record(self, category: str, nbytes: int) -> None:
        """Attribute ``nbytes`` of network transfer to ``category``."""
        if category not in self._bytes:
            raise KeyError(f"unknown traffic category {category!r}")
        if nbytes < 0:
            raise ValueError("negative byte count")
        self._bytes[category] += nbytes

    def bytes(self, category: str) -> int:
        """Bytes moved in one category."""
        return self._bytes[category]

    @property
    def total_bytes(self) -> int:
        """All network bytes moved during the run."""
        return sum(self._bytes.values())

    @property
    def by_category(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._bytes)

    def gigabytes(self, category: str) -> float:
        """Convenience: GB in one category."""
        return self._bytes[category] / 1e9

    def report(self) -> str:
        """Printable breakdown."""
        lines = ["network traffic (GB):"]
        for c in self.CATEGORIES:
            lines.append(f"  {c:<18s} {self._bytes[c] / 1e9:10.2f}")
        lines.append(f"  {'total':<18s} {self.total_bytes / 1e9:10.2f}")
        return "\n".join(lines)
