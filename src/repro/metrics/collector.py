"""Run-time metric collection."""

from __future__ import annotations

from typing import List, NamedTuple, Tuple

from repro.mapreduce.job import Job
from repro.mapreduce.task import MapTask, ReduceTask


class MapRecord(NamedTuple):
    """One completed map task."""

    job_id: int
    start_time: float
    duration: float
    locality: int  # Locality enum value: 0 node, 1 rack, 2 remote
    node_id: int


class JobRecord(NamedTuple):
    """One completed job."""

    job_id: int
    submit_time: float
    first_task_time: float
    finish_time: float
    n_maps: int
    n_reduces: int
    locality_counts: Tuple[int, int, int]
    input_bytes: int

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time."""
        return self.finish_time - self.submit_time

    @property
    def data_locality(self) -> float:
        """Fraction of this job's maps that ran node-local."""
        total = sum(self.locality_counts)
        return self.locality_counts[0] / total if total else 0.0


class MetricsCollector:
    """Accumulates task- and job-level records during a run."""

    def __init__(self) -> None:
        self.map_records: List[MapRecord] = []
        self.reduce_durations: List[float] = []
        self.job_records: List[JobRecord] = []

    # -- hooks called by the JobTracker -----------------------------------

    def on_map_complete(self, task: MapTask) -> None:
        """Record a finished map task."""
        self.map_records.append(
            MapRecord(
                task.job.spec.job_id,
                task.start_time,
                task.duration,
                int(task.locality),
                task.node_id,
            )
        )

    def on_reduce_complete(self, task: ReduceTask) -> None:
        """Record a finished reduce task."""
        self.reduce_durations.append(task.duration)

    def on_job_complete(self, job: Job) -> None:
        """Record a finished job."""
        self.job_records.append(
            JobRecord(
                job.spec.job_id,
                job.submit_time,
                job.first_task_time if job.first_task_time is not None else job.submit_time,
                job.finish_time,
                job.n_maps,
                len(job.reduces),
                tuple(job.locality_counts),
                job.inode.size_bytes,
            )
        )

    # -- simple aggregates ---------------------------------------------------

    @property
    def n_jobs(self) -> int:
        """Completed job count."""
        return len(self.job_records)

    def mean_map_duration(self) -> float:
        """Mean completion time of map tasks (Section V-C's extra metric)."""
        if not self.map_records:
            raise ValueError("no map records")
        return sum(r.duration for r in self.map_records) / len(self.map_records)
