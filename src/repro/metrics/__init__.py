"""Evaluation metrics, matching Section V-A's definitions.

* **data locality** — fraction of map tasks that ran on a node holding
  their input block (the paper's main system metric);
* **GMTT** — geometric mean of job turnaround times (Eq. 1);
* **slowdown** — job running time divided by its running time on a free
  cluster with 100 % data locality;
* **popularity index / coefficient of variation** — per-node sum of
  ``blockSize * blockPopularity`` and the cv of its distribution across
  nodes (the replica-placement uniformity measure of Fig. 11);
* **blocks created per job / disk writes** — the replication-overhead
  metrics of Figs. 8–9 and the thrashing analysis.
"""

from repro.metrics.collector import JobRecord, MapRecord, MetricsCollector
from repro.metrics.locality import LocalityStats, cluster_locality, mean_job_locality
from repro.metrics.turnaround import geometric_mean_turnaround
from repro.metrics.slowdown import ideal_turnaround, mean_slowdown, slowdowns
from repro.metrics.placement import coefficient_of_variation, popularity_indices
from repro.metrics.hotspots import HotspotSummary, load_timeline, summarize_hotspots
from repro.metrics.traffic import TrafficMeter

__all__ = [
    "MetricsCollector",
    "MapRecord",
    "JobRecord",
    "LocalityStats",
    "cluster_locality",
    "mean_job_locality",
    "geometric_mean_turnaround",
    "ideal_turnaround",
    "slowdowns",
    "mean_slowdown",
    "popularity_indices",
    "coefficient_of_variation",
    "HotspotSummary",
    "load_timeline",
    "summarize_hotspots",
    "TrafficMeter",
]
