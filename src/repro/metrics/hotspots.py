"""Compute-side hotspot analysis.

Fig. 11 measures placement uniformity in *storage* terms (popularity
indices of the blocks each node holds).  The complementary compute-side
question — Scarlett's stated motivation — is whether task load piles onto
the replica holders of hot files.  This module reconstructs per-node
concurrent-map-load timelines from the collector's task records and
summarizes their skew, so experiments can show DARE flattening compute
hotspots, not just storage ones.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, NamedTuple, Tuple

import numpy as np

from repro.metrics.collector import MapRecord


def load_timeline(
    records: Iterable[MapRecord], node_ids: Iterable[int]
) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
    """Per-node concurrent running-map counts over event times.

    Returns ``(times, {node_id: load_at_each_time})`` where times are the
    sorted task start/finish instants (a step function's breakpoints).
    """
    records = list(records)
    if not records:
        raise ValueError("no map records")
    node_ids = list(node_ids)
    events: List[Tuple[float, int, int]] = []  # (time, delta, node)
    for r in records:
        events.append((r.start_time, +1, r.node_id))
        events.append((r.start_time + r.duration, -1, r.node_id))
    events.sort()
    # coalesce simultaneous events: one sample per distinct instant, taken
    # after every delta at that instant applied (no phantom intermediate
    # states when a wave of tasks starts together)
    unique_times: List[float] = []
    samples: Dict[int, List[int]] = {n: [] for n in node_ids}
    current = {n: 0 for n in node_ids}
    i = 0
    while i < len(events):
        t = events[i][0]
        while i < len(events) and events[i][0] == t:
            _, delta, node = events[i]
            if node in current:
                current[node] += delta
            i += 1
        unique_times.append(t)
        for n in node_ids:
            samples[n].append(current[n])
    times = np.asarray(unique_times)
    loads = {n: np.asarray(v, dtype=np.int64) for n, v in samples.items()}
    return times, loads


class HotspotSummary(NamedTuple):
    """Skew statistics of the per-node compute load."""

    #: highest concurrent map count seen on any single node
    peak_node_load: int
    #: mean over time of (hottest node's load / mean node load), busy times only
    mean_imbalance: float
    #: fraction of busy time during which one node carries >2x the mean load
    hotspot_time_fraction: float


def summarize_hotspots(
    records: Iterable[MapRecord], node_ids: Iterable[int]
) -> HotspotSummary:
    """Reduce the load timeline to the three headline skew numbers."""
    times, loads = load_timeline(records, node_ids)
    matrix = np.stack([loads[n] for n in sorted(loads)])  # nodes x events
    totals = matrix.sum(axis=0)
    busy = totals > 0
    if not busy.any():
        raise ValueError("cluster never ran a task")
    peak = int(matrix.max())
    mean_load = totals[busy] / matrix.shape[0]
    max_load = matrix[:, busy].max(axis=0)
    imbalance = max_load / mean_load
    return HotspotSummary(
        peak_node_load=peak,
        mean_imbalance=float(imbalance.mean()),
        hotspot_time_fraction=float((imbalance > 2.0).mean()),
    )
