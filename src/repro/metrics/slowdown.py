"""Job slowdown vs. a dedicated cluster.

Section V-A: "the slowdown of a job is defined as its running time on a
loaded system divided by the running time on a dedicated system; for the
case of Hadoop, we calculate the latter as the running time (job completion
time - job arrival time) in a completely free Hadoop cluster with 100% data
locality."

The dedicated-cluster runtime is computed with a wave model: map tasks run
in ``ceil(maps / cluster map slots)`` waves of the ideal (local-read) map
duration, then reduces in ``ceil(reduces / cluster reduce slots)`` waves.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.cluster.cluster import Cluster
from repro.mapreduce.job import JobSpec
from repro.mapreduce.runtime import TaskTimeModel
from repro.metrics.collector import JobRecord


def ideal_turnaround(
    spec: JobSpec,
    input_bytes: int,
    n_blocks: int,
    cluster: Cluster,
    time_model: TaskTimeModel,
) -> float:
    """Running time on a free cluster with 100% locality."""
    map_slots = cluster.total_map_slots
    reduce_slots = max(1, cluster.total_reduce_slots)
    block_bytes = input_bytes // max(1, n_blocks)
    t_map = time_model.ideal_map_seconds(block_bytes, spec.map_cpu_s)
    waves = math.ceil(n_blocks / max(1, map_slots))
    total = waves * t_map
    if spec.n_reduces > 0:
        shuffle = int(input_bytes * spec.shuffle_ratio / spec.n_reduces)
        output = int(input_bytes * spec.output_ratio / spec.n_reduces)
        t_red = time_model.ideal_reduce_seconds(shuffle, output, spec.reduce_cpu_s)
        total += math.ceil(spec.n_reduces / reduce_slots) * t_red
    # even on a free cluster a task waits for a heartbeat to be scheduled
    total += cluster.spec.heartbeat_s
    return total


def slowdowns(
    records: Iterable[JobRecord],
    specs_by_id: Dict[int, JobSpec],
    cluster: Cluster,
    time_model: TaskTimeModel,
) -> List[float]:
    """Per-job slowdown factors (>= can dip slightly below 1 only through
    model noise; the dedicated-runtime estimate is deterministic)."""
    out: List[float] = []
    for rec in records:
        spec = specs_by_id[rec.job_id]
        ideal = ideal_turnaround(spec, rec.input_bytes, rec.n_maps, cluster, time_model)
        out.append(rec.turnaround / ideal)
    return out


def mean_slowdown(
    records: Iterable[JobRecord],
    specs_by_id: Dict[int, JobSpec],
    cluster: Cluster,
    time_model: TaskTimeModel,
) -> float:
    """Mean slowdown over the workload (Fig. 7c / 10c)."""
    values = slowdowns(records, specs_by_id, cluster, time_model)
    if not values:
        raise ValueError("no job records")
    return sum(values) / len(values)
