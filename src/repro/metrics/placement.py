"""Replica-placement uniformity (Fig. 11).

Section V-A: "we assign a popularity value to each file based on its access
count for each workload.  We calculate the popularity index (PI) of data
node i as sum_j blockSize_j * blockPopularity_j, for every block j in i...
As a measure of the uniformity of this distribution, we use the coefficient
of variation (cv = sigma / |mu|)."
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List

import numpy as np

from repro.hdfs.namenode import NameNode
from repro.mapreduce.job import JobSpec


def file_access_counts(specs: Iterable[JobSpec]) -> Counter:
    """Access count per file name for a workload trace."""
    return Counter(spec.input_file for spec in specs)


def popularity_indices(
    namenode: NameNode, access_counts: Dict[str, int]
) -> np.ndarray:
    """PI of every slave node, ordered by node id.

    Block popularity is the owning file's access count; blocks of files the
    workload never reads contribute zero, matching the paper's
    workload-specific popularity assignment.
    """
    file_pop = {
        inode.file_id: access_counts.get(name, 0)
        for name, inode in namenode.files.items()
    }
    pis: List[float] = []
    for node_id in sorted(namenode.datanodes):
        dn = namenode.datanodes[node_id]
        pi = 0.0
        for bid in dn.stored_block_ids():
            block = namenode.block(bid)
            pi += block.size_bytes * file_pop[block.file_id]
        pis.append(pi)
    return np.asarray(pis)


def coefficient_of_variation(values: np.ndarray) -> float:
    """cv = sigma / |mu|; smaller means more uniform."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("empty distribution")
    mu = values.mean()
    if mu == 0:
        raise ValueError("zero-mean distribution has undefined cv")
    return float(values.std() / abs(mu))
