"""Synthetic HDFS audit-log generation.

Substitutes the Yahoo! production log (which is not redistributable) with a
generator matching the paper's published findings:

* heavy-tailed file popularity spanning ~4 decades of access counts
  (Fig. 2);
* strong temporal correlation — ~80 % of a file's accesses within its
  first day of life, median age near 10 h (Fig. 3);
* per-file accesses arrive in *tight daily clusters* around a
  characteristic hour (the cluster "is used mainly to perform different
  types of analysis on a common (time-varying) data set"): "fresh" files
  concentrate almost everything in the first occurrence (sub-hour 80 %
  windows, Fig. 5), while "periodic" files are re-read every day with
  slowly decaying intensity, producing the ~121 h spike of Fig. 4;
* heavy-tailed file sizes (1 to ~1000 blocks of 128 MB).

System files (job.jar, job.xml, job.split) are *not* generated, matching
the paper's explicit exclusion of them from the analysis.
"""

from __future__ import annotations

from typing import List, NamedTuple

import numpy as np

#: hours in the analysis window (the paper analyzes one week)
WEEK_HOURS = 168.0


class LogParams(NamedTuple):
    """Shape parameters of the synthetic audit log."""

    n_files: int = 3000
    #: Zipf exponent of per-file total access counts
    zipf_s: float = 1.3
    #: access count of the most popular file
    top_accesses: int = 30_000
    #: file temporal classes: P(fresh), P(daily-decaying); remainder is
    #: steady-periodic (re-read every day of the week, ~uniform intensity)
    class_probs: tuple = (0.72, 0.18)
    #: fresh files: day-over-day intensity decay factor range
    fresh_decay: tuple = (0.02, 0.30)
    #: daily-decaying files: decay factor range
    daily_decay: tuple = (0.55, 0.85)
    #: steady-periodic files: decay factor range (near 1 = uniform week)
    steady_decay: tuple = (0.96, 1.0)
    #: std.dev. of the within-cluster access time (hours)
    cluster_sigma_h: float = 0.30
    #: fraction of files whose hot hour trails creation immediately
    pipeline_fraction: float = 0.35
    #: immediate-pipeline delay: exponential mean (hours)
    pipeline_mean_h: float = 3.0
    #: log-normal file size (in 128 MB blocks): mu, sigma of log
    blocks_mu: float = 1.0
    blocks_sigma: float = 1.4
    #: hours over which files are created (rest of the week only re-reads)
    creation_span_h: float = 120.0
    #: number of shared analysis "pipelines"; periodic files belonging to
    #: the same pipeline are re-read at the same hour (the co-access
    #: correlation of Section III)
    n_pipelines: int = 8


class LogEntry(NamedTuple):
    """One audit-log line (reads only — HDFS files are immutable)."""

    time_h: float
    file_id: int


class AccessLog:
    """Column-oriented audit log with per-file metadata."""

    def __init__(
        self,
        times_h: np.ndarray,
        file_ids: np.ndarray,
        created_h: np.ndarray,
        n_blocks: np.ndarray,
    ) -> None:
        if times_h.shape != file_ids.shape:
            raise ValueError("times and file ids must align")
        if created_h.shape != n_blocks.shape:
            raise ValueError("per-file arrays must align")
        order = np.argsort(times_h, kind="stable")
        self.times_h = times_h[order]
        self.file_ids = file_ids[order]
        self.created_h = created_h
        self.n_blocks = n_blocks

    @property
    def n_accesses(self) -> int:
        """Total log entries."""
        return int(self.times_h.size)

    @property
    def n_files(self) -> int:
        """Distinct files in the namespace."""
        return int(self.created_h.size)

    def access_counts(self) -> np.ndarray:
        """Accesses per file id (0 for never-read files)."""
        return np.bincount(self.file_ids, minlength=self.n_files)

    def ages_at_access(self) -> np.ndarray:
        """File age (hours) at each access — the Fig. 3 sample."""
        return self.times_h - self.created_h[self.file_ids]

    def entries(self) -> List[LogEntry]:
        """Row view (tests and small-scale inspection only)."""
        return [
            LogEntry(float(t), int(f)) for t, f in zip(self.times_h, self.file_ids)
        ]

    def slice_hours(self, start_h: float, end_h: float) -> "AccessLog":
        """Entries within [start_h, end_h) — used for the Fig. 5 day slice."""
        mask = (self.times_h >= start_h) & (self.times_h < end_h)
        return AccessLog(
            self.times_h[mask], self.file_ids[mask], self.created_h, self.n_blocks
        )


def generate_access_log(
    rng: np.random.Generator, params: LogParams = LogParams()
) -> AccessLog:
    """Generate one week of synthetic audit log."""
    n = params.n_files
    ranks = np.arange(1, n + 1, dtype=float)
    counts = np.maximum(1, np.round(params.top_accesses * ranks ** (-params.zipf_s)))
    counts = counts.astype(np.int64)
    # shuffle which file id holds which rank (ids carry no popularity info)
    counts = counts[rng.permutation(n)]

    created = rng.uniform(0.0, params.creation_span_h, size=n)
    n_blocks = np.maximum(
        1, np.round(rng.lognormal(params.blocks_mu, params.blocks_sigma, size=n))
    ).astype(np.int64)

    rank_by_count = np.empty(n, dtype=np.int64)
    rank_by_count[np.argsort(counts)[::-1]] = np.arange(1, n + 1)

    # first read occurrence: some files feed an immediate pipeline, the
    # rest wait for a batch job at an unrelated hour of the day.  The
    # hottest files are read by scheduled analyses spread over the day,
    # never by a single immediate pipeline.
    is_pipeline = (rng.random(n) < params.pipeline_fraction) & (rank_by_count > 10)
    first_delay = np.where(
        is_pipeline,
        rng.exponential(params.pipeline_mean_h, size=n),
        rng.uniform(0.0, 24.0, size=n),
    )
    # the hottest files feed same-day analyses: their first read lands
    # within the working hours after the data arrives
    first_delay = np.where(rank_by_count <= 10, rng.uniform(0.5, 14.0, size=n), first_delay)
    first_occurrence = created + first_delay

    # temporal class: fresh burst / daily-decaying / steady-periodic.
    # Steady re-reading concentrates in the moderately popular band (the
    # shared data sets), not the very hottest files (which are the daily
    # *new* versions of the common data set, each read in a fresh burst).
    u = rng.random(n)
    p_fresh, p_daily = params.class_probs
    in_band = (rank_by_count >= 4) & (rank_by_count <= 100)
    p_steady = np.where(in_band, 1.0 - p_fresh - p_daily + 0.22, 0.03)
    is_steady = u < p_steady
    is_fresh = ~is_steady & (u < p_steady + p_fresh)
    is_daily = ~is_steady & ~is_fresh
    # the very hottest files are the daily *new* versions of the common
    # data set: always a fresh burst, never re-read for long
    is_daily &= rank_by_count > 3
    is_fresh |= (rank_by_count <= 3) & ~is_steady
    decay = np.empty(n)
    decay[is_fresh] = rng.uniform(*params.fresh_decay, size=int(is_fresh.sum()))
    decay[is_daily] = rng.uniform(*params.daily_decay, size=int(is_daily.sum()))
    decay[is_steady] = rng.uniform(*params.steady_decay, size=int(is_steady.sum()))
    # the steadily re-read data sets are loaded at the start of the week
    created = np.where(is_steady, rng.uniform(0.0, 24.0, size=n), created)
    first_occurrence = created + first_delay

    # periodic files belong to shared analysis pipelines: every file of a
    # pipeline is re-read at (nearly) the same hour of the day, which is
    # what correlates accesses across files (Section III)
    pipeline_hours = rng.uniform(0.0, 24.0, size=params.n_pipelines)
    pipeline_of = rng.integers(0, params.n_pipelines, size=n)
    hot_hour = pipeline_hours[pipeline_of] + rng.normal(0.0, 0.2, size=n)
    is_periodic = is_daily | is_steady
    delay_to_hot = (hot_hour - created) % 24.0
    first_occurrence = np.where(is_periodic, created + delay_to_hot, first_occurrence)

    times_parts: List[np.ndarray] = []
    ids_parts: List[np.ndarray] = []
    for fid in range(n):
        c = int(counts[fid])
        t_first = first_occurrence[fid]
        # daily occurrences until the week ends, intensity decaying by
        # `decay` each day
        n_days = max(1, int(np.ceil((WEEK_HOURS - t_first) / 24.0)))
        day_weights = decay[fid] ** np.arange(n_days)
        day_weights /= day_weights.sum()
        day = rng.choice(n_days, size=c, p=day_weights)
        t = t_first + day * 24.0 + rng.normal(0.0, params.cluster_sigma_h, size=c)
        t = np.clip(t, created[fid] + 1e-3, None)
        t = t[t < WEEK_HOURS]
        times_parts.append(t)
        ids_parts.append(np.full(t.size, fid, dtype=np.int64))

    times = np.concatenate(times_parts)
    ids = np.concatenate(ids_parts)
    return AccessLog(times, ids, created, n_blocks)
