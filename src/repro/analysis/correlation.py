"""Access-correlation analysis.

Section III's second finding (beyond skewed popularity) is "considerable
correlation among accesses to different files": the same analyses re-read
groups of files together, daily, so their access time series move in
lockstep.  This is what motivates DARE's *placement* goal — files accessed
concurrently should not pile onto the same nodes.

The analysis bins each file's accesses into hourly counts, computes the
Pearson correlation between the hot files' series, and extracts co-access
groups (files whose pairwise correlation exceeds a threshold, grouped
greedily).  On the synthetic log, steady-periodic files sharing a hot hour
form exactly such groups.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

import numpy as np

from repro.analysis.access_log import WEEK_HOURS, AccessLog
from repro.analysis.patterns import big_files


def hourly_series(
    log: AccessLog, file_ids: Sequence[int], slot_hours: float = 1.0
) -> np.ndarray:
    """Per-file hourly access counts; shape (len(file_ids), n_slots)."""
    n_slots = int(np.ceil(WEEK_HOURS / slot_hours))
    edges = np.arange(n_slots + 1) * slot_hours
    out = np.zeros((len(file_ids), n_slots))
    for row, fid in enumerate(file_ids):
        t = log.times_h[log.file_ids == fid]
        out[row], _ = np.histogram(t, bins=edges)
    return out


def correlation_matrix(series: np.ndarray) -> np.ndarray:
    """Pearson correlations between file series (zero-variance rows -> 0)."""
    if series.ndim != 2 or series.shape[0] < 2:
        raise ValueError("need at least two series")
    std = series.std(axis=1)
    safe = series.copy()
    # zero-variance rows would produce NaNs; they correlate with nothing
    zero = std == 0
    with np.errstate(invalid="ignore"):
        corr = np.corrcoef(safe)
    corr = np.nan_to_num(corr, nan=0.0)
    corr[zero, :] = 0.0
    corr[:, zero] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr


class CorrelationSummary(NamedTuple):
    """Headline numbers of the co-access analysis."""

    n_files: int
    mean_pairwise: float
    #: fraction of pairs with correlation above 0.5 ("considerable")
    strong_fraction: float
    #: greedily extracted co-access groups (lists of file ids)
    groups: Tuple[Tuple[int, ...], ...]


def co_access_groups(
    file_ids: Sequence[int], corr: np.ndarray, threshold: float = 0.5
) -> List[List[int]]:
    """Greedy grouping: a file joins a group when its correlation with the
    group's seed exceeds ``threshold``."""
    remaining = list(range(len(file_ids)))
    groups: List[List[int]] = []
    while remaining:
        seed = remaining.pop(0)
        group = [seed]
        keep = []
        for j in remaining:
            if corr[seed, j] >= threshold:
                group.append(j)
            else:
                keep.append(j)
        remaining = keep
        groups.append([int(file_ids[i]) for i in group])
    return groups


def analyze_correlation(
    log: AccessLog,
    top_files: int = 40,
    threshold: float = 0.5,
    slot_hours: float = 1.0,
) -> CorrelationSummary:
    """Full pipeline: pick the hot files, correlate, group, summarize."""
    chosen = big_files(log)[:top_files]
    if len(chosen) < 2:
        raise ValueError("not enough hot files for a correlation analysis")
    series = hourly_series(log, chosen, slot_hours)
    corr = correlation_matrix(series)
    iu = np.triu_indices(len(chosen), 1)
    pairwise = corr[iu]
    groups = co_access_groups(chosen, corr, threshold)
    return CorrelationSummary(
        n_files=len(chosen),
        mean_pairwise=float(pairwise.mean()),
        strong_fraction=float((pairwise >= threshold).mean()),
        groups=tuple(tuple(g) for g in groups if len(g) > 1),
    )
