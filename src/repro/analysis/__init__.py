"""Data-access-pattern analysis (Section III).

The paper analyzes one week of HDFS audit logs from a 4000-node Yahoo!
production cluster (``ydata-hdfs-audit-logs-v1_0``, not publicly
redistributable).  We substitute a synthetic audit-log generator whose
distributions follow the paper's published findings, and implement the same
analysis pipeline on top:

* **Fig. 2** — file popularity vs rank (heavy-tailed), raw and weighted by
  the number of 128 MB blocks;
* **Fig. 3** — CDF of file age at access (~80 % of accesses within the
  first day of a file's life; median around 10 hours);
* **Fig. 4** — distribution of the smallest window of consecutive hourly
  slots containing >=80 % of a file's accesses, over the whole week
  (spike near 121 h: files accessed daily);
* **Fig. 5** — the same analysis restricted to one day (most files' burst
  fits within one hour).
"""

from repro.analysis.access_log import AccessLog, LogEntry, LogParams, generate_access_log
from repro.analysis.correlation import (
    CorrelationSummary,
    analyze_correlation,
    co_access_groups,
    correlation_matrix,
    hourly_series,
)
from repro.analysis.patterns import (
    age_at_access_cdf,
    big_files,
    popularity_by_rank,
    window_distribution,
)

__all__ = [
    "AccessLog",
    "LogEntry",
    "LogParams",
    "generate_access_log",
    "popularity_by_rank",
    "age_at_access_cdf",
    "big_files",
    "window_distribution",
    "CorrelationSummary",
    "analyze_correlation",
    "co_access_groups",
    "correlation_matrix",
    "hourly_series",
]
