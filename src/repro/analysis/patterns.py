"""Section III analyses: popularity, temporal correlation, burst windows."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.access_log import WEEK_HOURS, AccessLog


def popularity_by_rank(log: AccessLog, weighted: bool = False) -> np.ndarray:
    """Access counts sorted by rank, most popular first (Fig. 2).

    With ``weighted=True`` each file's count is multiplied by its number of
    128 MB blocks (the lower panel of Fig. 2).
    """
    counts = log.access_counts().astype(float)
    if weighted:
        counts = counts * log.n_blocks
    counts = counts[counts > 0]
    return np.sort(counts)[::-1]


def age_at_access_cdf(
    log: AccessLog, grid_hours: np.ndarray
) -> np.ndarray:
    """CDF of file age at access evaluated on ``grid_hours`` (Fig. 3)."""
    ages = log.ages_at_access()
    if ages.size == 0:
        raise ValueError("empty access log")
    ages = np.sort(ages)
    return np.searchsorted(ages, grid_hours, side="right") / ages.size


def median_age_hours(log: AccessLog) -> float:
    """Median file age at access (the paper reports ~9 h 45 m)."""
    return float(np.median(log.ages_at_access()))


def big_files(log: AccessLog, coverage: float = 0.8) -> np.ndarray:
    """File ids that together account for ``coverage`` of all accesses.

    The paper's Fig. 4/5 restrict the window analysis to these "big files"
    (files responsible for 80 % or more of the total accesses).
    """
    counts = log.access_counts()
    order = np.argsort(counts)[::-1]
    cum = np.cumsum(counts[order])
    cutoff = int(np.searchsorted(cum, coverage * cum[-1], side="left")) + 1
    chosen = order[:cutoff]
    return chosen[counts[chosen] > 0]


def _smallest_window(hist: np.ndarray, fraction: float) -> int:
    """Smallest number of consecutive slots holding >= fraction of mass.

    Binary-searches the window size; the max window sum is monotone in the
    window length, so the search is exact.
    """
    total = hist.sum()
    if total <= 0:
        raise ValueError("file has no accesses in the histogram")
    target = fraction * total
    cs = np.concatenate([[0], np.cumsum(hist)])
    lo, hi = 1, hist.size
    while lo < hi:
        mid = (lo + hi) // 2
        if (cs[mid:] - cs[:-mid]).max() >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo


def window_distribution(
    log: AccessLog,
    slot_hours: float = 1.0,
    fraction: float = 0.8,
    coverage: float = 0.8,
    weighted: bool = False,
    start_h: float = 0.0,
    end_h: float = WEEK_HOURS,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distribution of the smallest 80 %-access window (Figs. 4 and 5).

    Returns ``(window_sizes, fraction_of_files)`` where
    ``fraction_of_files[i]`` is the fraction of big files whose smallest
    window equals ``window_sizes[i]`` slots.  With ``weighted=True`` files
    are weighted by their access counts (the (b) panels).  Restricting
    ``[start_h, end_h)`` to one day gives Fig. 5.
    """
    sub = log.slice_hours(start_h, end_h)
    chosen = big_files(sub, coverage)
    n_slots = int(np.ceil((end_h - start_h) / slot_hours))
    edges = start_h + np.arange(n_slots + 1) * slot_hours
    windows = []
    weights = []
    for fid in chosen:
        t = sub.times_h[sub.file_ids == fid]
        hist, _ = np.histogram(t, bins=edges)
        windows.append(_smallest_window(hist, fraction))
        weights.append(t.size if weighted else 1)
    windows = np.asarray(windows)
    weights = np.asarray(weights, dtype=float)
    sizes = np.arange(1, n_slots + 1)
    mass = np.zeros(n_slots)
    for w, wt in zip(windows, weights):
        mass[w - 1] += wt
    return sizes, mass / weights.sum()
