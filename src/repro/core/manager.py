"""The DARE replication service: per-node policy state wired into the
map-task launch path.

``DareReplicationService.on_map_task`` is the single entry point the
MapReduce runtime calls for every scheduled map task (Algorithms 1 and 2
both trigger "if a map task is scheduled").  It is careful to generate *no
data transfers of its own*: a replica is only ever created from bytes the
task already fetched, which the test suite verifies through the
``replications_piggybacked`` counter.
"""

from __future__ import annotations

from typing import Dict

from repro.core.budget import ReplicationBudget
from repro.core.config import DareConfig
from repro.hdfs.block import Block
from repro.hdfs.namenode import NameNode
from repro.observability.trace import NULL_TRACER, REPLICATION_ABANDONED, Tracer
from repro.policies.base import PolicyContext
from repro.policies.registry import create_policy
from repro.simulation.rng import RandomStreams


class NodeReplicaState:
    """One node's DARE state: its policy instance plus counters."""

    __slots__ = ("node_id", "policy", "observe", "replications", "abandoned")

    def __init__(self, node_id: int, policy) -> None:
        self.node_id = node_id
        self.policy = policy
        #: the optional feature-observation hook, resolved once — the
        #: paper baselines don't define it and pay one None check per task
        self.observe = getattr(policy, "on_access", None)
        #: replicas successfully created on this node
        self.replications = 0
        #: replications abandoned because no victim could be found
        self.abandoned = 0

    def __getstate__(self):
        # the bound method in ``observe`` is re-resolved on restore so the
        # pickled form stays minimal and alias-stable
        return (self.node_id, self.policy, self.replications, self.abandoned)

    def __setstate__(self, state) -> None:
        self.node_id, self.policy, self.replications, self.abandoned = state
        self.observe = getattr(self.policy, "on_access", None)


def _make_policy(
    config: DareConfig,
    node_id: int,
    streams: RandomStreams,
    namenode: NameNode = None,
    shared=None,
):
    """Resolve the node policy through the plugin registry.

    ``Policy.value`` doubles as the registry name, so every baseline and
    plugin is constructed through the same path (byte-identical to the
    pre-registry inline constructors — pinned by tests/test_policies.py).
    """
    ctx = PolicyContext(
        node_id=node_id,
        config=config,
        streams=streams,
        namenode=namenode,
        shared=shared if shared is not None else {},
    )
    return create_policy(config.policy.value, ctx)


class DareReplicationService:
    """Cluster-wide coordinator of the per-node replication managers.

    Each node runs its policy *independently* (the algorithm is fully
    distributed); this object only exists to own the shared configuration,
    size the budget, and aggregate counters for the metrics.
    """

    def __init__(
        self,
        config: DareConfig,
        namenode: NameNode,
        streams: RandomStreams,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        config.validate()
        self.config = config
        self.namenode = namenode
        self.tracer = tracer
        self.states: Dict[int, NodeReplicaState] = {}
        #: cluster-wide singletons shared by this service's policy plugins
        #: (e.g. the learned policy's AccessStats); see PolicyContext.shared
        self.shared: Dict[str, object] = {}
        if config.enabled:
            budget = ReplicationBudget(config.budget)
            self.per_node_budget_bytes = budget.apply(namenode)
            for node_id in namenode.datanodes:
                self.states[node_id] = NodeReplicaState(
                    node_id,
                    _make_policy(config, node_id, streams, namenode, self.shared),
                )
        else:
            self.per_node_budget_bytes = 0
        #: total replica insertions piggybacked on remote reads
        self.replications_piggybacked = 0
        #: replicas created proactively by the rollout engine
        self.replications_forced = 0

    # -- the hook ------------------------------------------------------------

    def on_map_task(self, node_id: int, block: Block, data_local: bool, now: float) -> bool:
        """Called when a map task is scheduled on ``node_id`` for ``block``.

        ``data_local`` reflects whether the executing node holds a replica.
        Returns True when a dynamic replica was created by this call.
        """
        if not self.config.enabled:
            return False
        state = self.states[node_id]
        policy = state.policy
        if state.observe is not None:
            # feature-aware plugins see every access before deciding
            state.observe(block, data_local, now)
        if data_local:
            # local read: (possibly coin-gated) usage refresh
            if not policy.probabilistic or policy.wants_refresh(block):
                policy.on_local_access(block)
            return False
        # remote read: the node has just fetched the block anyway —
        # decide whether to keep it
        if not policy.wants_replica(block):
            return False
        return self._try_replicate(state, block, now)

    def force_replicate(self, node_id: int, block: Block, now: float) -> bool:
        """Proactively replicate ``block`` onto ``node_id`` (rollout engine).

        Unlike :meth:`on_map_task` this is not piggybacked on a fetch the
        task already paid for — the caller is responsible for charging
        the transfer.  Budget enforcement and victim eviction go through
        the node's policy exactly as for an organic replication.
        """
        if not self.config.enabled:
            return False
        return self._try_replicate(self.states[node_id], block, now, forced=True)

    def _try_replicate(
        self, state: NodeReplicaState, block: Block, now: float, forced: bool = False
    ) -> bool:
        dn = self.namenode.datanode(state.node_id)
        if dn.has_block(block.block_id):
            # e.g. two concurrent remote tasks for the same block: the
            # second fetch finds the replica already inserted
            return False
        if block.size_bytes > dn.dynamic_capacity_bytes:
            return False  # budget can never hold this block
        while dn.would_exceed_budget(block):
            victim = state.policy.pick_victim(block)
            if victim is None:
                # couldn't find a block to evict; will not replicate
                state.abandoned += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        REPLICATION_ABANDONED,
                        now,
                        node=state.node_id,
                        block=block.block_id,
                        file=block.inode.name,
                    )
                return False
            state.policy.remove(victim.block_id)
            dn.mark_for_deletion(victim.block_id, now)
        dn.insert_dynamic(block, now)
        state.policy.add(block)
        state.replications += 1
        if forced:
            self.replications_forced += 1
        else:
            self.replications_piggybacked += 1
        return True

    # -- aggregate counters ---------------------------------------------------

    @property
    def total_replications(self) -> int:
        """Dynamic replicas created across all nodes."""
        return sum(s.replications for s in self.states.values())

    @property
    def total_abandoned(self) -> int:
        """Replications abandoned for lack of a victim."""
        return sum(s.abandoned for s in self.states.values())

    def total_disk_writes(self) -> int:
        """Disk writes attributable to dynamic replication."""
        return sum(dn.blocks_replicated for dn in self.namenode.datanodes.values())

    def total_evictions(self) -> int:
        """Dynamic replicas evicted across all nodes."""
        return sum(dn.blocks_evicted for dn in self.namenode.datanodes.values())
