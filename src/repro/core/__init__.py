"""DARE — the paper's core contribution.

Distributed, adaptive data replication that piggybacks on the remote reads
non-data-local map tasks already perform.  Each slave node independently
runs one of two replica-management policies:

* :class:`~repro.core.greedy.GreedyLRUPolicy` — Algorithm 1: every remote
  map read inserts a replica; eviction under the storage budget is least
  recently used, never victimizing a block of the same file as the
  incoming replica;
* :class:`~repro.core.elephant_trap.ElephantTrapPolicy` — Algorithm 2: a
  probabilistic adaptation of the ElephantTrap heavy-hitter detector.
  Replication and access-count refresh each happen only with probability
  *p*; eviction walks a circular list of dynamic replicas, halving access
  counts (competitive aging) until a victim below *threshold* is found.

:class:`~repro.core.manager.DareReplicationService` wires a policy instance
per node into the map-task launch path and enforces the replication budget.
"""

from repro.core.config import DareConfig, Policy
from repro.core.budget import ReplicationBudget
from repro.core.greedy import GreedyLRUPolicy
from repro.core.elephant_trap import ElephantTrapPolicy
from repro.core.manager import DareReplicationService, NodeReplicaState

__all__ = [
    "DareConfig",
    "Policy",
    "ReplicationBudget",
    "GreedyLRUPolicy",
    "ElephantTrapPolicy",
    "DareReplicationService",
    "NodeReplicaState",
]
