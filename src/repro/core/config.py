"""DARE configuration.

The three tunables match the configuration parameters the paper added to
Hadoop (Section V-A): the ElephantTrap sampling probability ``p``, the aging
``threshold``, and the storage ``budget``.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class Policy(enum.Enum):
    """Which replica-management scheme a node runs."""

    #: vanilla Hadoop — no dynamic replication
    OFF = "off"
    #: Algorithm 1 — greedy insertion, LRU eviction
    GREEDY_LRU = "greedy-lru"
    #: Algorithm 2 — probabilistic insertion, ElephantTrap aging eviction
    ELEPHANT_TRAP = "elephant-trap"
    #: ablation baseline — greedy insertion, least-frequently-used eviction
    GREEDY_LFU = "greedy-lfu"


class DareConfig(NamedTuple):
    """Immutable DARE parameter set.

    Parameters
    ----------
    policy:
        Replica-management scheme.
    p:
        ElephantTrap sampling probability (coin-toss for both replication
        and access-count refresh).  Ignored by the greedy policies.
    threshold:
        ElephantTrap aging threshold: a block whose (halved) access count
        drops below this value is evictable.  The paper sweeps 1..5.
    budget:
        Dynamic-replica storage budget as a fraction of the per-node share
        of stored (physical) data.  The paper calls 0.10–0.20 reasonable
        and sweeps 0.0–0.9.
    """

    policy: Policy = Policy.OFF
    p: float = 0.3
    threshold: int = 1
    budget: float = 0.2

    def validate(self) -> "DareConfig":
        """Raise ``ValueError`` on out-of-range parameters; return self."""
        if not isinstance(self.policy, Policy):
            raise ValueError(f"policy must be a Policy, got {self.policy!r}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if not (0.0 <= self.budget):
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        return self

    @property
    def enabled(self) -> bool:
        """True when dynamic replication is active."""
        return self.policy is not Policy.OFF

    @classmethod
    def off(cls) -> "DareConfig":
        """Vanilla Hadoop (no DARE)."""
        return cls(policy=Policy.OFF)

    @classmethod
    def greedy_lru(cls, budget: float = 0.2) -> "DareConfig":
        """Algorithm 1 with the given budget."""
        return cls(policy=Policy.GREEDY_LRU, budget=budget).validate()

    @classmethod
    def elephant_trap(
        cls, p: float = 0.3, threshold: int = 1, budget: float = 0.2
    ) -> "DareConfig":
        """Algorithm 2 — the paper's headline configuration is the default."""
        return cls(
            policy=Policy.ELEPHANT_TRAP, p=p, threshold=threshold, budget=budget
        ).validate()
