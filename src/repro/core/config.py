"""DARE configuration.

The three tunables match the configuration parameters the paper added to
Hadoop (Section V-A): the ElephantTrap sampling probability ``p``, the aging
``threshold``, and the storage ``budget``.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Sequence, Tuple


class Policy(enum.Enum):
    """Which replica-management scheme a node runs.

    The enum value doubles as the policy's name in the plugin registry
    (:mod:`repro.policies.registry`), which is where instances are built.
    """

    #: vanilla Hadoop — no dynamic replication
    OFF = "off"
    #: Algorithm 1 — greedy insertion, LRU eviction
    GREEDY_LRU = "greedy-lru"
    #: Algorithm 2 — probabilistic insertion, ElephantTrap aging eviction
    ELEPHANT_TRAP = "elephant-trap"
    #: ablation baseline — greedy insertion, least-frequently-used eviction
    GREEDY_LFU = "greedy-lfu"
    #: beyond the paper — offline-trained logistic scorer (repro train)
    LEARNED = "learned"


class DareConfig(NamedTuple):
    """Immutable DARE parameter set.

    Parameters
    ----------
    policy:
        Replica-management scheme.
    p:
        ElephantTrap sampling probability (coin-toss for both replication
        and access-count refresh).  Ignored by the greedy policies.
    threshold:
        ElephantTrap aging threshold: a block whose (halved) access count
        drops below this value is evictable.  The paper sweeps 1..5.
    budget:
        Dynamic-replica storage budget as a fraction of the per-node share
        of stored (physical) data.  The paper calls 0.10–0.20 reasonable
        and sweeps 0.0–0.9.
    model:
        Logistic weights of the :data:`Policy.LEARNED` scorer (features +
        trailing bias, see :mod:`repro.policies.learned`).  Kept here — a
        tuple of floats — so learned cells stay hashable and cacheable
        like every other cell; empty for all other policies.
    """

    policy: Policy = Policy.OFF
    p: float = 0.3
    threshold: int = 1
    budget: float = 0.2
    model: Tuple[float, ...] = ()

    def validate(self) -> "DareConfig":
        """Raise ``ValueError`` on out-of-range parameters; return self."""
        if not isinstance(self.policy, Policy):
            raise ValueError(f"policy must be a Policy, got {self.policy!r}")
        if not (0.0 <= self.p <= 1.0):
            raise ValueError(f"p must be in [0, 1], got {self.p}")
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if not (0.0 <= self.budget):
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        if self.policy is Policy.LEARNED:
            from repro.policies.learned import N_FEATURES

            if len(self.model) != N_FEATURES + 1:
                raise ValueError(
                    f"learned policy needs {N_FEATURES + 1} model weights "
                    f"({N_FEATURES} features + bias), got {len(self.model)}"
                )
        return self

    @property
    def enabled(self) -> bool:
        """True when dynamic replication is active."""
        return self.policy is not Policy.OFF

    @classmethod
    def off(cls) -> "DareConfig":
        """Vanilla Hadoop (no DARE)."""
        return cls(policy=Policy.OFF)

    @classmethod
    def greedy_lru(cls, budget: float = 0.2) -> "DareConfig":
        """Algorithm 1 with the given budget."""
        return cls(policy=Policy.GREEDY_LRU, budget=budget).validate()

    @classmethod
    def elephant_trap(
        cls, p: float = 0.3, threshold: int = 1, budget: float = 0.2
    ) -> "DareConfig":
        """Algorithm 2 — the paper's headline configuration is the default."""
        return cls(
            policy=Policy.ELEPHANT_TRAP, p=p, threshold=threshold, budget=budget
        ).validate()

    @classmethod
    def greedy_lfu(cls, budget: float = 0.2) -> "DareConfig":
        """The greedy-insertion / LFU-eviction ablation."""
        return cls(policy=Policy.GREEDY_LFU, budget=budget).validate()

    @classmethod
    def learned(
        cls, weights: Sequence[float], budget: float = 0.2
    ) -> "DareConfig":
        """The offline-trained scored policy with the given model weights."""
        return cls(
            policy=Policy.LEARNED,
            budget=budget,
            model=tuple(float(w) for w in weights),
        ).validate()
