"""Algorithm 2 — probabilistic replication with ElephantTrap eviction.

The ElephantTrap [Lu, Prabhakar, Bonomi, HOTI'07] identifies "elephants"
(large, fast flows) with a sampled circular list; DARE adapts it to find the
blocks that are both heavily and *intensely* accessed:

* a coin is tossed per scheduled map task; only with probability ``p`` does
  the task's access affect the structure at all — replicating on a remote
  read, or refreshing the access count on a local read of a tracked block;
* new replicas enter the circular list *right before* the eviction pointer
  (so they are examined last on the next eviction walk) with access count 0;
* when the budget forces an eviction, the pointer walks the ring, **halving
  each visited block's access count** (competitive aging) until it finds a
  block whose count is below ``threshold``; if a full lap finds none, or the
  candidate belongs to the same file as the incoming block, the replication
  is abandoned (``markBlockForDeletion`` returns null).

Sampling plus competitive aging is what suppresses thrashing: the paper
reports locality comparable to greedy LRU with about half the disk writes.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.hdfs.block import Block


class ElephantTrapPolicy:
    """Per-node ElephantTrap state: circular list + access counts."""

    #: insertion/refresh are gated by the manager's coin toss
    probabilistic = True

    def __init__(self, p: float, threshold: int, rng: random.Random) -> None:
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"p must be in [0,1], got {p}")
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.p = p
        self.threshold = threshold
        self._rng = rng
        #: the circular list of dynamically replicated blocks
        self._ring: List[Block] = []
        #: eviction pointer: index into the ring
        self._ptr = 0
        #: blocks2accessCount
        self._counts: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._ring)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._counts

    # -- coin tosses --------------------------------------------------------

    def wants_replica(self, block: Block) -> bool:
        """Toss the coin that gates replication of a remote read."""
        return self._rng.random() < self.p

    def wants_refresh(self, block: Block) -> bool:
        """Toss the coin that gates an access-count refresh."""
        return self._rng.random() < self.p

    # -- ring maintenance ----------------------------------------------------

    def add(self, block: Block) -> None:
        """Insert right before the eviction pointer with count 0."""
        if block.block_id in self._counts:
            raise ValueError(f"block {block.block_id} already tracked")
        self._ring.insert(self._ptr, block)
        self._ptr = (self._ptr + 1) % max(1, len(self._ring))
        # a ring of size 1 keeps the pointer on the sole element
        if len(self._ring) == 1:
            self._ptr = 0
        self._counts[block.block_id] = 0

    def remove(self, block_id: int) -> None:
        """Remove a block from ring and counts, fixing the pointer."""
        if block_id not in self._counts:
            return
        idx = next(i for i, b in enumerate(self._ring) if b.block_id == block_id)
        del self._ring[idx]
        del self._counts[block_id]
        if not self._ring:
            self._ptr = 0
        else:
            if idx < self._ptr:
                self._ptr -= 1
            self._ptr %= len(self._ring)

    def on_local_access(self, block: Block) -> None:
        """Increment the access count of a tracked block (already coin-gated)."""
        if block.block_id in self._counts:
            self._counts[block.block_id] += 1

    # -- eviction ---------------------------------------------------------------

    def pick_victim(self, evicting: Block) -> Optional[Block]:
        """The ``markBlockForDeletion`` walk of Algorithm 2.

        Walks the ring from the eviction pointer, halving access counts,
        until a block with count below ``threshold`` appears or a full lap
        completes.  Returns ``None`` (abandon replication) when no suitable
        victim exists or the candidate shares a file with ``evicting``.
        """
        n = len(self._ring)
        if n == 0:
            return None
        steps = 0
        victim = self._ring[self._ptr]
        while self._counts[victim.block_id] >= self.threshold and steps < n:
            # competitive aging: halve and move on
            self._counts[victim.block_id] //= 2
            self._ptr = (self._ptr + 1) % n
            victim = self._ring[self._ptr]
            steps += 1
        if self._counts[victim.block_id] >= self.threshold:
            return None  # full lap, everything still popular
        if victim.same_file(evicting):
            return None  # same popularity class — do not victimize
        return victim

    # -- introspection -------------------------------------------------------------

    def access_count(self, block_id: int) -> int:
        """Current (aged) access count of a tracked block."""
        return self._counts[block_id]

    def ring_blocks(self) -> List[Block]:
        """Ring contents in pointer order (tests)."""
        return self._ring[self._ptr:] + self._ring[: self._ptr]
