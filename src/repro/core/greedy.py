"""Algorithm 1 — greedy replication with LRU eviction.

Per the paper: every non-data-local map read inserts the fetched block as a
dynamic replica; when the budget would be exceeded, the least recently used
dynamic replica is evicted, skipping victims that belong to the same file as
the incoming block ("has the same popularity as the evicting replica").
The usage-order queue "is refreshed on every read; blocks are inserted in
tail and removed from front".

An LFU variant (:class:`GreedyLFUPolicy`) is provided as the ablation the
paper alludes to ("Choice between LRU and LFU should be made after profiling
typical workloads").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.hdfs.block import Block


class GreedyLRUPolicy:
    """Per-node LRU tracking of dynamic replicas (Algorithm 1)."""

    #: greedy policies replicate on every remote read
    probabilistic = False

    def __init__(self) -> None:
        # OrderedDict as an LRU queue: front = least recently used
        self._order: "OrderedDict[int, Block]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._order

    def add(self, block: Block) -> None:
        """Track a freshly inserted dynamic replica (tail = most recent)."""
        if block.block_id in self._order:
            raise ValueError(f"block {block.block_id} already tracked")
        self._order[block.block_id] = block

    def remove(self, block_id: int) -> None:
        """Stop tracking an evicted replica."""
        self._order.pop(block_id, None)

    def on_local_access(self, block: Block) -> None:
        """Refresh the usage order on every read of a tracked block."""
        if block.block_id in self._order:
            self._order.move_to_end(block.block_id)

    def wants_replica(self, block: Block) -> bool:
        """Greedy: any non-local access is worth replicating."""
        return True

    def wants_refresh(self, block: Block) -> bool:
        """Greedy: refresh on every read."""
        return True

    def pick_victim(self, evicting: Block) -> Optional[Block]:
        """Front-of-queue LRU victim, skipping same-file blocks.

        Returns ``None`` when every tracked block belongs to the evicting
        block's file (nothing safe to evict).  Matches the
        ``markBlockForDeletion`` loop of Algorithm 1.
        """
        for block in self._order.values():
            if not block.same_file(evicting):
                return block
        return None

    def tracked_blocks(self) -> Dict[int, Block]:
        """Snapshot of tracked dynamic replicas (tests/metrics)."""
        return dict(self._order)


class GreedyLFUPolicy(GreedyLRUPolicy):
    """Ablation: greedy insertion with least-frequently-used eviction."""

    def __init__(self) -> None:
        super().__init__()
        self._counts: Dict[int, int] = {}

    def add(self, block: Block) -> None:
        super().add(block)
        self._counts[block.block_id] = 0

    def remove(self, block_id: int) -> None:
        super().remove(block_id)
        self._counts.pop(block_id, None)

    def on_local_access(self, block: Block) -> None:
        if block.block_id in self._counts:
            self._counts[block.block_id] += 1

    def pick_victim(self, evicting: Block) -> Optional[Block]:
        """Lowest-access-count victim, same-file blocks excluded.

        Ties break by insertion order (oldest first), which keeps the
        policy deterministic.
        """
        best: Optional[Block] = None
        best_count = None
        for bid, block in self._order.items():
            if block.same_file(evicting):
                continue
            c = self._counts[bid]
            if best_count is None or c < best_count:
                best, best_count = block, c
        return best
