"""Replication budget sizing.

The paper limits "the extra storage consumed by the dynamically replicated
data" to a configurable fraction.  We interpret the fraction relative to the
per-node share of the *physical* data already stored (logical data times its
replication factor), so ``budget = 0.2`` lets dynamic replicas grow total
cluster storage use by at most 20 % — the natural reading of "extra storage
consumed".
"""

from __future__ import annotations

from repro.hdfs.namenode import NameNode


class ReplicationBudget:
    """Computes the per-node dynamic-replica capacity in bytes."""

    def __init__(self, fraction: float) -> None:
        if fraction < 0:
            raise ValueError("budget fraction must be >= 0")
        self.fraction = fraction

    def per_node_capacity_bytes(self, namenode: NameNode) -> int:
        """Dynamic capacity for one slave, given the current namespace."""
        n_slaves = len(namenode.datanodes)
        if n_slaves == 0:
            return 0
        physical = sum(
            f.size_bytes * f.replication for f in namenode.files.values()
        )
        return int(self.fraction * physical / n_slaves)

    def apply(self, namenode: NameNode) -> int:
        """Set every DataNode's dynamic capacity; returns the per-node bytes."""
        cap = self.per_node_capacity_bytes(namenode)
        for dn in namenode.datanodes.values():
            dn.dynamic_capacity_bytes = cap
        return cap
