"""Render every evaluation figure to SVG.

One function per figure takes the corresponding driver's data (or computes
it) and returns an SVG string; :func:`render_all` writes the full set to a
directory, giving the reproduction actual images to diff against the paper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.experiments import figures as drivers
from repro.experiments.tables import fig1_hop_distribution
from repro.viz.svg import bar_chart, grouped_bar_chart, line_chart

DEFAULT_SEED = drivers.DEFAULT_SEED


def fig1_svg(seed: int = DEFAULT_SEED) -> str:
    """Fig. 1: hop-count distribution between EC2 node pairs."""
    hist = fig1_hop_distribution(seed)
    labels = [str(h) for h in range(len(hist))]
    return bar_chart(
        labels,
        list(hist),
        title="Fig. 1 — hops between EC2 node pairs",
        ylabel="proportion of node pairs",
    )


def fig2_svg(seed: int = DEFAULT_SEED) -> str:
    """Fig. 2: file popularity vs rank (log-log)."""
    pop = drivers.fig2_popularity(seed)
    series = []
    for key in ("raw", "weighted"):
        vals = pop[key]
        pts = [(float(r + 1), float(v)) for r, v in enumerate(vals) if v > 0]
        series.append((key, pts[:: max(1, len(pts) // 300)]))
    return line_chart(
        series,
        title="Fig. 2 — accesses per file by rank",
        xlabel="file rank",
        ylabel="number of accesses",
        xlog=True,
        ylog=True,
    )


def fig3_svg(seed: int = DEFAULT_SEED) -> str:
    """Fig. 3: CDF of file age at access."""
    out = drivers.fig3_age_cdf(seed)
    pts = list(zip(out["grid_hours"].tolist(), out["cdf"].tolist()))
    return line_chart(
        [("all accesses", pts)],
        title="Fig. 3 — CDF of file age at access",
        xlabel="file age (hours)",
        ylabel="fraction of accesses",
        y_range=(0.0, 1.0),
    )


def _window_series(panels: Dict, keys=("unweighted", "weighted")) -> List:
    series = []
    for key in keys:
        sizes, frac = panels[key]
        pts = [(float(s), float(f)) for s, f in zip(sizes, frac) if f > 0]
        series.append((key, pts))
    return series


def fig4_svg(seed: int = DEFAULT_SEED) -> str:
    """Fig. 4: 80%-access windows over the week (log y)."""
    panels = drivers.fig4_windows(seed)
    return line_chart(
        _window_series(panels),
        title="Fig. 4 — smallest window with 80% of accesses (week)",
        xlabel="window size (hours)",
        ylabel="fraction of files",
        ylog=True,
    )


def fig5_svg(seed: int = DEFAULT_SEED) -> str:
    """Fig. 5: the same analysis within day 2."""
    panels = drivers.fig5_windows_day(seed)
    return line_chart(
        _window_series(panels),
        title="Fig. 5 — 80% windows within day 2",
        xlabel="window size (hours)",
        ylabel="fraction of files",
        ylog=True,
    )


def fig6_svg(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> str:
    """Fig. 6: access CDF of the experiment workload."""
    cdf = drivers.fig6_access_cdf(n_jobs, seed)
    pts = [(float(r + 1), float(c)) for r, c in enumerate(cdf)]
    return line_chart(
        [("access CDF", pts)],
        title="Fig. 6 — experiment workload access CDF",
        xlabel="file rank",
        ylabel="probability",
        y_range=(0.0, 1.0),
    )


def _cells_to_bars(cells, metric: str, title: str, ylabel: str) -> str:
    groups = [f"{c.scheduler}({c.workload})" for c in cells]
    series = [
        (policy, [getattr(c, metric)[policy] for c in cells])
        for policy in drivers.POLICY_LABELS
    ]
    return grouped_bar_chart(groups, series, title=title, ylabel=ylabel)


def fig7_svgs(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> Dict[str, str]:
    """Fig. 7a-c as three grouped bar charts."""
    cells = drivers.fig7_cct(n_jobs, seed)
    return {
        "fig7a_locality": _cells_to_bars(
            cells, "locality", "Fig. 7a — data locality (CCT)", "job data locality"
        ),
        "fig7b_gmtt": _cells_to_bars(
            cells, "gmtt_normalized", "Fig. 7b — normalized GMTT (CCT)",
            "GMTT / vanilla",
        ),
        "fig7c_slowdown": _cells_to_bars(
            cells, "slowdown", "Fig. 7c — mean slowdown (CCT)", "slowdown"
        ),
    }


def _sweep_svgs(points, title: str, xlabel: str) -> Dict[str, str]:
    """The paper stacks a locality panel over a blocks-created panel; we
    render the two panels as separate SVG documents."""
    loc_series = []
    blk_series = []
    for sched in ("fifo", "fair"):
        loc_series.append(
            (sched, [(p.x, 100 * p.locality) for p in points if p.scheduler == sched])
        )
        blk_series.append(
            (sched, [(p.x, p.blocks_per_job) for p in points if p.scheduler == sched])
        )
    return {
        "locality": line_chart(loc_series, title=title + " — locality",
                               xlabel=xlabel, ylabel="data locality (%)",
                               y_range=(0, 100)),
        "blocks": line_chart(blk_series, title=title + " — replication cost",
                             xlabel=xlabel, ylabel="avg blocks created per job"),
    }


def fig8_svgs(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> Dict[str, str]:
    """Fig. 8a/8b sensitivity sweeps."""
    out: Dict[str, str] = {}
    for panel, svg in _sweep_svgs(
        drivers.fig8a_p_sweep(n_jobs=n_jobs, seed=seed),
        "Fig. 8a — ElephantTrap probability p", "p",
    ).items():
        out[f"fig8a_p_{panel}"] = svg
    for panel, svg in _sweep_svgs(
        drivers.fig8b_threshold_sweep(n_jobs=n_jobs, seed=seed),
        "Fig. 8b — aging threshold", "threshold",
    ).items():
        out[f"fig8b_threshold_{panel}"] = svg
    return out


def fig9_svgs(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> Dict[str, str]:
    """Fig. 9a/9b budget sweeps."""
    out: Dict[str, str] = {}
    for panel, svg in _sweep_svgs(
        drivers.fig9a_budget_sweep_lru(n_jobs=n_jobs, seed=seed),
        "Fig. 9a — budget (greedy LRU)", "budget",
    ).items():
        out[f"fig9a_budget_lru_{panel}"] = svg
    for p, points in drivers.fig9b_budget_sweep_et(
        n_jobs=n_jobs, seed=seed
    ).items():
        tag = f"fig9b_budget_et_p{str(p).replace('.', '')}"
        for panel, svg in _sweep_svgs(
            points, f"Fig. 9b — budget (ElephantTrap p={p})", "budget"
        ).items():
            out[f"{tag}_{panel}"] = svg
    return out


def fig10_svgs(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> Dict[str, str]:
    """Fig. 10a-c on the EC2 cluster."""
    cells = drivers.fig10_ec2(n_jobs, seed)
    return {
        "fig10a_locality": _cells_to_bars(
            cells, "locality", "Fig. 10a — data locality (EC2)", "job data locality"
        ),
        "fig10b_gmtt": _cells_to_bars(
            cells, "gmtt_normalized", "Fig. 10b — normalized GMTT (EC2)",
            "GMTT / vanilla",
        ),
        "fig10c_slowdown": _cells_to_bars(
            cells, "slowdown", "Fig. 10c — mean slowdown (EC2)", "slowdown"
        ),
    }


def fig11_svg(n_jobs: int = 500, seed: int = DEFAULT_SEED) -> str:
    """Fig. 11: placement uniformity before/after DARE."""
    points = drivers.fig11_uniformity(n_jobs=n_jobs, seed=seed)
    before = [(pt.p, pt.cv_before) for pt in points]
    after = [(pt.p, pt.cv_after) for pt in points]
    return line_chart(
        [("before DARE", before), ("after DARE", after)],
        title="Fig. 11 — uniformity of replica placement",
        xlabel="ElephantTrap probability (p)",
        ylabel="coefficient of variation",
    )


def policy_grid_svg(n_jobs: int = 0) -> str:
    """Beyond the paper: the learned-vs-baseline policy benchmark grid.

    Runs the pinned ``repro policy-bench`` smoke tier (its own workload
    seeds and job count, so the figure matches the CI gate exactly);
    pass ``n_jobs`` to override the tier size.
    """
    from repro.policies.bench import SMOKE_JOBS, render_policy_grid, run_policy_bench

    return render_policy_grid(run_policy_bench(n_jobs=n_jobs or SMOKE_JOBS))


def render_all(
    out_dir: Union[str, Path],
    n_jobs: int = 500,
    seed: int = DEFAULT_SEED,
) -> List[Path]:
    """Render every figure into ``out_dir``; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    docs: Dict[str, str] = {
        "fig1_hops": fig1_svg(seed),
        "fig2_popularity": fig2_svg(seed),
        "fig3_age_cdf": fig3_svg(seed),
        "fig4_windows_week": fig4_svg(seed),
        "fig5_windows_day": fig5_svg(seed),
        "fig6_access_cdf": fig6_svg(n_jobs, seed),
        "fig11_uniformity": fig11_svg(n_jobs, seed),
        "policy_grid": policy_grid_svg(),
    }
    docs.update(fig7_svgs(n_jobs, seed))
    docs.update(fig8_svgs(n_jobs, seed))
    docs.update(fig9_svgs(n_jobs, seed))
    docs.update(fig10_svgs(n_jobs, seed))
    written = []
    for name, svg in docs.items():
        path = out / f"{name}.svg"
        path.write_text(svg)
        written.append(path)
    return sorted(written)
