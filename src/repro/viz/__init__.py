"""Figure rendering.

A small, dependency-free SVG charting layer
(:mod:`repro.viz.svg`) plus one renderer per paper figure
(:mod:`repro.viz.paper_figures`), so ``python -m repro render`` can
regenerate the evaluation's plots as actual images without matplotlib.
"""

from repro.viz.svg import SvgCanvas, bar_chart, grouped_bar_chart, line_chart

__all__ = ["SvgCanvas", "bar_chart", "grouped_bar_chart", "line_chart"]
