"""A minimal SVG chart library (no third-party dependencies).

Three chart types cover everything the paper plots: grouped bar charts
(Figs. 7, 10), line charts with one or more series (Figs. 1, 3, 8, 9, 11),
and log-log scatter/line plots (Figs. 2, 4, 5 use log axes).  The output
is plain SVG 1.1 text, viewable in any browser.

The API is deliberately small and value-oriented: each function takes data
and returns an SVG string; :class:`SvgCanvas` handles coordinates, axes,
ticks, and text so chart builders stay short.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple
from xml.sax.saxutils import escape

#: a colorblind-friendly categorical palette
PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")


def _fmt(x: float) -> str:
    """Compact number formatting for tick labels."""
    if x == 0:
        return "0"
    if abs(x) >= 1000 or (abs(x) < 0.01):
        return f"{x:.0e}".replace("e+0", "e").replace("e-0", "e-")
    if abs(x) >= 10:
        return f"{x:.0f}"
    return f"{x:g}"


class SvgCanvas:
    """Accumulates SVG elements inside a margin-aware plot area."""

    def __init__(
        self,
        width: int = 560,
        height: int = 360,
        margin: Tuple[int, int, int, int] = (42, 20, 46, 64),  # t r b l
        title: str = "",
    ) -> None:
        self.width = width
        self.height = height
        self.m_top, self.m_right, self.m_bottom, self.m_left = margin
        self.title = title
        self._elems: List[str] = []
        # data-space ranges, set by set_ranges
        self._x0 = self._x1 = self._y0 = self._y1 = 0.0
        self._xlog = self._ylog = False

    # -- coordinate mapping ------------------------------------------------

    @property
    def plot_w(self) -> int:
        return self.width - self.m_left - self.m_right

    @property
    def plot_h(self) -> int:
        return self.height - self.m_top - self.m_bottom

    def set_ranges(
        self,
        x: Tuple[float, float],
        y: Tuple[float, float],
        xlog: bool = False,
        ylog: bool = False,
    ) -> None:
        """Define the data-space ranges for px/py mapping."""
        if xlog and (x[0] <= 0 or x[1] <= 0):
            raise ValueError("log x-axis requires positive range")
        if ylog and (y[0] <= 0 or y[1] <= 0):
            raise ValueError("log y-axis requires positive range")
        if x[0] == x[1] or y[0] == y[1]:
            raise ValueError("degenerate axis range")
        self._x0, self._x1 = x
        self._y0, self._y1 = y
        self._xlog, self._ylog = xlog, ylog

    def _frac(self, v: float, lo: float, hi: float, log: bool) -> float:
        if log:
            return (math.log10(v) - math.log10(lo)) / (
                math.log10(hi) - math.log10(lo)
            )
        return (v - lo) / (hi - lo)

    def px(self, x: float) -> float:
        """Data x -> pixel x."""
        return self.m_left + self.plot_w * self._frac(x, self._x0, self._x1, self._xlog)

    def py(self, y: float) -> float:
        """Data y -> pixel y (SVG y grows downward)."""
        return (
            self.m_top
            + self.plot_h
            - self.plot_h * self._frac(y, self._y0, self._y1, self._ylog)
        )

    # -- primitives ----------------------------------------------------------

    def add(self, element: str) -> None:
        """Append a raw SVG element."""
        self._elems.append(element)

    def line(self, x1: float, y1: float, x2: float, y2: float,
             color: str = "#444", width: float = 1.0, dash: str = "") -> None:
        d = f' stroke-dasharray="{dash}"' if dash else ""
        self.add(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{color}" stroke-width="{width}"{d}/>'
        )

    def rect(self, x: float, y: float, w: float, h: float, color: str) -> None:
        self.add(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
            f'fill="{color}"/>'
        )

    def circle(self, x: float, y: float, r: float, color: str) -> None:
        self.add(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{r:.1f}" fill="{color}"/>')

    def text(self, x: float, y: float, s: str, size: int = 11,
             anchor: str = "middle", color: str = "#222", rotate: float = 0.0) -> None:
        t = f' transform="rotate({rotate:.0f} {x:.1f} {y:.1f})"' if rotate else ""
        self.add(
            f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{color}" '
            f'font-family="sans-serif"{t}>{escape(s)}</text>'
        )

    def polyline(self, points: Sequence[Tuple[float, float]],
                 color: str, width: float = 1.8) -> None:
        pts = " ".join(f"{self.px(x):.1f},{self.py(y):.1f}" for x, y in points)
        self.add(
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{width}"/>'
        )

    # -- axes ------------------------------------------------------------------

    def _log_ticks(self, lo: float, hi: float) -> List[float]:
        lo_e = math.floor(math.log10(lo))
        hi_e = math.ceil(math.log10(hi))
        return [10.0 ** e for e in range(int(lo_e), int(hi_e) + 1)]

    def _lin_ticks(self, lo: float, hi: float, n: int = 6) -> List[float]:
        span = hi - lo
        step = 10 ** math.floor(math.log10(span / n))
        for mult in (1, 2, 5, 10):
            if span / (step * mult) <= n:
                step *= mult
                break
        first = math.ceil(lo / step) * step
        ticks = []
        t = first
        while t <= hi + 1e-9 * span:
            ticks.append(round(t, 10))
            t += step
        return ticks

    def axes(self, xlabel: str = "", ylabel: str = "") -> None:
        """Draw the frame, ticks, labels, and title."""
        x0, y0 = self.m_left, self.m_top + self.plot_h
        x1, y1 = self.m_left + self.plot_w, self.m_top
        self.line(x0, y0, x1, y0)  # x axis
        self.line(x0, y0, x0, y1)  # y axis
        xticks = (
            self._log_ticks(self._x0, self._x1)
            if self._xlog
            else self._lin_ticks(self._x0, self._x1)
        )
        for t in xticks:
            if not (self._x0 <= t <= self._x1):
                continue
            px = self.px(t)
            self.line(px, y0, px, y0 + 4)
            self.text(px, y0 + 16, _fmt(t), size=10)
        yticks = (
            self._log_ticks(self._y0, self._y1)
            if self._ylog
            else self._lin_ticks(self._y0, self._y1)
        )
        for t in yticks:
            if not (self._y0 <= t <= self._y1):
                continue
            py = self.py(t)
            self.line(x0 - 4, py, x0, py)
            self.line(x0, py, x1, py, color="#eee")
            self.text(x0 - 8, py + 3, _fmt(t), size=10, anchor="end")
        if xlabel:
            self.text(self.m_left + self.plot_w / 2, self.height - 8, xlabel)
        if ylabel:
            self.text(14, self.m_top + self.plot_h / 2, ylabel, rotate=-90)
        if self.title:
            self.text(self.width / 2, 20, self.title, size=13)

    def legend(self, labels: Sequence[str], colors: Sequence[str]) -> None:
        """Simple swatch legend in the top-right of the plot area."""
        x = self.m_left + self.plot_w - 10
        y = self.m_top + 8
        for i, (label, color) in enumerate(zip(labels, colors)):
            self.rect(x - 150, y + 16 * i - 8, 10, 10, color)
            self.text(x - 135, y + 16 * i + 1, label, size=10, anchor="start")

    def render(self) -> str:
        """The final SVG document."""
        body = "\n".join(self._elems)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )


# ---------------------------------------------------------------------------
# chart builders
# ---------------------------------------------------------------------------


def line_chart(
    series: Sequence[Tuple[str, Sequence[Tuple[float, float]]]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    xlog: bool = False,
    ylog: bool = False,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Render one or more (label, [(x, y), ...]) series as lines."""
    if not series or not any(pts for _, pts in series):
        raise ValueError("no data")
    xs = [x for _, pts in series for x, _ in pts]
    ys = [y for _, pts in series for _, y in pts]
    canvas = SvgCanvas(title=title)
    y_lo, y_hi = y_range if y_range else (min(ys), max(ys))
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 0.5, y_hi + 0.5
    canvas.set_ranges((min(xs), max(xs)), (y_lo, y_hi), xlog=xlog, ylog=ylog)
    canvas.axes(xlabel, ylabel)
    for i, (label, pts) in enumerate(series):
        color = PALETTE[i % len(PALETTE)]
        canvas.polyline(sorted(pts), color)
        for x, y in pts:
            canvas.circle(canvas.px(x), canvas.py(y), 2.4, color)
    canvas.legend([s for s, _ in series], PALETTE)
    return canvas.render()


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render a single-series bar chart."""
    if len(labels) != len(values) or not labels:
        raise ValueError("labels and values must align and be nonempty")
    canvas = SvgCanvas(title=title)
    hi = max(max(values), 1e-12)
    canvas.set_ranges((0, len(labels)), (0, hi * 1.1))
    canvas.axes("", ylabel)
    bw = canvas.plot_w / len(labels)
    for i, (label, v) in enumerate(zip(labels, values)):
        x = canvas.m_left + i * bw + bw * 0.15
        y = canvas.py(v)
        canvas.rect(x, y, bw * 0.7, canvas.m_top + canvas.plot_h - y, PALETTE[0])
        canvas.text(canvas.m_left + (i + 0.5) * bw,
                    canvas.m_top + canvas.plot_h + 16, label, size=10)
    return canvas.render()


def grouped_bar_chart(
    groups: Sequence[str],
    series: Sequence[Tuple[str, Sequence[float]]],
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render grouped bars: one cluster of len(series) bars per group."""
    if not groups or not series:
        raise ValueError("no data")
    for label, vals in series:
        if len(vals) != len(groups):
            raise ValueError(f"series {label!r} length mismatch")
    canvas = SvgCanvas(title=title)
    hi = max(v for _, vals in series for v in vals)
    canvas.set_ranges((0, len(groups)), (0, max(hi, 1e-12) * 1.15))
    canvas.axes("", ylabel)
    gw = canvas.plot_w / len(groups)
    n = len(series)
    bw = gw * 0.8 / n
    for gi, group in enumerate(groups):
        for si, (label, vals) in enumerate(series):
            x = canvas.m_left + gi * gw + gw * 0.1 + si * bw
            y = canvas.py(vals[gi])
            canvas.rect(x, y, bw * 0.9, canvas.m_top + canvas.plot_h - y,
                        PALETTE[si % len(PALETTE)])
        canvas.text(canvas.m_left + (gi + 0.5) * gw,
                    canvas.m_top + canvas.plot_h + 16, group, size=10)
    canvas.legend([s for s, _ in series], PALETTE)
    return canvas.render()
