"""DataNode: per-node block storage and dynamic-replica accounting."""

from __future__ import annotations

from typing import Dict, List

from repro.cluster.node import Node
from repro.hdfs.block import Block
from repro.hdfs.ordered_set import OrderedSet
from repro.hdfs.protocol import DatanodeCommand
from repro.observability.trace import (
    BLOCK_EVICTED,
    BLOCK_REPLICATED,
    BUDGET_CHARGE,
    BUDGET_REFUND,
    NULL_TRACER,
    Tracer,
)


class DataNode:
    """Block storage on one slave node.

    Distinguishes *static* replicas (placed by the NameNode at file-creation
    time) from *dynamic* replicas (inserted by DARE on the back of remote
    reads).  Dynamic replicas consume a separate budgeted capacity and are
    the only replicas DARE may evict.

    Outgoing control-plane messages (``DNA_DYNREPL`` announcements and
    ``DNA_INVALIDATE`` confirmations) accumulate in :attr:`outbox` and are
    drained by the next heartbeat.
    """

    __slots__ = (
        "node",
        "static_blocks",
        "dynamic_blocks",
        "dynamic_bytes_used",
        "dynamic_capacity_bytes",
        "pending_deletion",
        "outbox",
        "disk_writes",
        "blocks_replicated",
        "blocks_evicted",
        "tracer",
    )

    def __init__(
        self,
        node: Node,
        dynamic_capacity_bytes: int = 0,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.node = node
        self.static_blocks: Dict[int, Block] = {}
        self.dynamic_blocks: Dict[int, Block] = {}
        self.dynamic_bytes_used = 0
        self.dynamic_capacity_bytes = dynamic_capacity_bytes
        #: blocks marked for lazy deletion, not yet reported to the NameNode
        #: (insertion-ordered so deletion sweeps replay identically after a
        #: checkpoint restore)
        self.pending_deletion: OrderedSet[int] = OrderedSet()
        self.outbox: List[DatanodeCommand] = []
        # lifetime counters for the disk-write / thrashing analyses
        self.disk_writes = 0
        self.blocks_replicated = 0
        self.blocks_evicted = 0
        self.tracer = tracer

    # -- queries -----------------------------------------------------------

    def has_block(self, block_id: int) -> bool:
        """True when the block is stored here and not awaiting deletion."""
        if block_id in self.pending_deletion:
            return False
        return block_id in self.static_blocks or block_id in self.dynamic_blocks

    def has_dynamic(self, block_id: int) -> bool:
        """True when a live *dynamic* replica of the block is stored here."""
        return block_id in self.dynamic_blocks and block_id not in self.pending_deletion

    @property
    def node_id(self) -> int:
        """Owning cluster node id."""
        return self.node.node_id

    @property
    def dynamic_bytes_free(self) -> int:
        """Remaining dynamic-replica budget in bytes."""
        return self.dynamic_capacity_bytes - self.dynamic_bytes_used

    # -- static replica placement (file creation) ---------------------------

    def store_static(self, block: Block) -> None:
        """Store an initial replica placed by the NameNode."""
        if block.block_id in self.static_blocks:
            raise ValueError(f"block {block.block_id} already stored on node {self.node_id}")
        self.static_blocks[block.block_id] = block
        self.disk_writes += 1

    # -- dynamic replicas (DARE) --------------------------------------------

    def would_exceed_budget(self, block: Block) -> bool:
        """True if inserting ``block`` would exceed the dynamic budget."""
        return self.dynamic_bytes_used + block.size_bytes > self.dynamic_capacity_bytes

    def insert_dynamic(self, block: Block, now: float) -> None:
        """Insert a dynamically replicated block (Algorithm 1/2 insert step).

        The data is already on the node — it was fetched by the remote map
        task — so this costs one local disk write and zero network traffic.
        """
        if self.has_block(block.block_id):
            raise ValueError(
                f"block {block.block_id} already on node {self.node_id}; "
                "a task reading it would have been data-local"
            )
        if self.would_exceed_budget(block):
            raise ValueError(
                f"inserting block {block.block_id} exceeds dynamic budget on "
                f"node {self.node_id} ({self.dynamic_bytes_used}+{block.size_bytes}"
                f">{self.dynamic_capacity_bytes})"
            )
        # an insert may revive a block marked for (but not yet completed)
        # lazy deletion: cancel the pending deletion instead of re-writing
        self.pending_deletion.discard(block.block_id)
        self.dynamic_blocks[block.block_id] = block
        self.dynamic_bytes_used += block.size_bytes
        self.disk_writes += 1
        self.blocks_replicated += 1
        self.outbox.append(DatanodeCommand.dynrepl(self.node_id, block.block_id, now))
        if self.tracer.enabled:
            self.tracer.emit(
                BUDGET_CHARGE,
                now,
                node=self.node_id,
                block=block.block_id,
                bytes=block.size_bytes,
                used=self.dynamic_bytes_used,
                capacity=self.dynamic_capacity_bytes,
            )
            self.tracer.emit(
                BLOCK_REPLICATED,
                now,
                node=self.node_id,
                block=block.block_id,
                file=block.inode.name,
                bytes=block.size_bytes,
            )

    def mark_for_deletion(self, block_id: int, now: float) -> None:
        """Mark a dynamic replica for lazy deletion, freeing budget now.

        The paper removes victims lazily "to avoid conflicting with other
        operations"; budget is released immediately so the incoming replica
        fits, while the NameNode learns of the invalidation at the next
        heartbeat.
        """
        block = self.dynamic_blocks.get(block_id)
        if block is None:
            raise KeyError(f"block {block_id} is not a dynamic replica on node {self.node_id}")
        if block_id in self.pending_deletion:
            return
        self.pending_deletion.add(block_id)
        self.dynamic_bytes_used -= block.size_bytes
        self.blocks_evicted += 1
        self.outbox.append(DatanodeCommand.invalidate(self.node_id, block_id, now))
        if self.tracer.enabled:
            self.tracer.emit(
                BUDGET_REFUND,
                now,
                node=self.node_id,
                block=block_id,
                bytes=block.size_bytes,
                used=self.dynamic_bytes_used,
                capacity=self.dynamic_capacity_bytes,
            )
            self.tracer.emit(
                BLOCK_EVICTED,
                now,
                node=self.node_id,
                block=block_id,
                file=block.inode.name,
                bytes=block.size_bytes,
            )

    def complete_deletions(self) -> List[int]:
        """Physically drop lazily deleted blocks; returns their ids."""
        done = list(self.pending_deletion)
        for bid in done:
            self.dynamic_blocks.pop(bid, None)
        self.pending_deletion.clear()
        return done

    def drain_outbox(self) -> List[DatanodeCommand]:
        """Take all queued control messages (called on heartbeat)."""
        out = self.outbox
        self.outbox = []
        return out

    def stored_block_ids(self) -> OrderedSet[int]:
        """All live block ids on this node, in storage-insertion order."""
        ids: OrderedSet[int] = OrderedSet(self.static_blocks)
        for bid in self.dynamic_blocks:
            ids.add(bid)
        for bid in self.pending_deletion:
            ids.discard(bid)
        return ids
