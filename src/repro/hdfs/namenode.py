"""NameNode: the HDFS metadata master."""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cluster.cluster import Cluster
from repro.hdfs.block import DEFAULT_BLOCK_SIZE, Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.inode import INode
from repro.hdfs.ordered_set import OrderedSet
from repro.hdfs.placement import DefaultPlacementPolicy, PlacementPolicy
from repro.hdfs.protocol import DNA_DYNREPL, DNA_INVALIDATE, DatanodeCommand
from repro.observability.trace import HDFS_HEARTBEAT, NULL_TRACER, Tracer


class ReplicaSet(OrderedSet[int]):
    """One block's location set, wired into the NameNode's replica indexes.

    Every mutation — wherever it originates (heartbeat control plane,
    repair, Scarlett/CDRM rebalancing, tests poking ``_locations``
    directly) — keeps three structures consistent:

    * ``rack_counts``: replicas per rack, the rack-shard the locality scan
      (:meth:`repro.mapreduce.job.Job.find_pending_map`) tests in O(1)
      instead of an ``isdisjoint`` over the rack's member set;
    * the NameNode's per-node reverse index (``_blocks_on``), which turns
      ``fail_node`` from a full block-map scan into a per-node lookup;
    * the NameNode's incremental under-replicated set (``_under``).

    Iteration order stays insertion order (it feeds RNG draws downstream),
    and pickling restores entries through ``__setitem__``.  The backref and
    the derived ``rack_counts`` are deliberately *not* pickled — they are
    pure functions of the membership and the (static) topology, and
    carrying one index dict per block roughly doubles snapshot cost — so a
    ReplicaSet is only fully usable again after
    :meth:`NameNode.__setstate__` has re-linked it.
    """

    __slots__ = ("_nn", "block_id", "rf", "rack_counts")

    def __getstate__(self):
        # membership travels as dict items; _nn and rack_counts are
        # rebuilt by NameNode.__setstate__
        return (self.block_id, self.rf)

    def __setstate__(self, state) -> None:
        self.block_id, self.rf = state

    def __init__(
        self, nn: "NameNode", block_id: int, rf: int, targets: tuple = ()
    ) -> None:
        super().__init__()
        self._nn = nn
        self.block_id = block_id
        self.rf = rf
        self.rack_counts: Dict[int, int] = {}
        for t in targets:
            self.add(t)
        if len(self) < rf:
            # short placement (fewer slaves than the replication factor):
            # under-replicated from birth, not only after a discard
            nn._under.add(block_id)

    def add(self, node_id: int) -> None:
        if node_id in self:
            return
        dict.__setitem__(self, node_id, None)
        nn = self._nn
        rack = nn._rack_of[node_id]
        self.rack_counts[rack] = self.rack_counts.get(rack, 0) + 1
        nn._blocks_on.setdefault(node_id, set()).add(self.block_id)
        if len(self) >= self.rf:
            nn._under.discard(self.block_id)

    def discard(self, node_id: int) -> None:
        if node_id not in self:
            return
        dict.pop(self, node_id, None)
        nn = self._nn
        rack = nn._rack_of[node_id]
        left = self.rack_counts.get(rack, 0) - 1
        if left > 0:
            self.rack_counts[rack] = left
        else:
            self.rack_counts.pop(rack, None)
        holder = nn._blocks_on.get(node_id)
        if holder is not None:
            holder.discard(self.block_id)
        if len(self) < self.rf:
            nn._under.add(self.block_id)

    def remove(self, node_id: int) -> None:
        if node_id not in self:
            raise KeyError(node_id)
        self.discard(node_id)


class NameNode:
    """Metadata master: namespace, block map, and replica bookkeeping.

    The scheduler (and any other client) resolves block locations through
    :meth:`locations`; that view is updated by DataNode heartbeats, so
    DARE-created replicas become schedulable one heartbeat after insertion,
    exactly as in the paper's modified Hadoop.  The NameNode tolerates
    over-replicated blocks (implementation change (b) in Section V-A) —
    dynamic replicas may push a block's replica count above the file's
    nominal replication factor without triggering re-replication or pruning.

    Block ids are dense and ascending, so the hottest read path — the
    locality scan — indexes ``_locs_by_id`` (a list sharing the same
    :class:`ReplicaSet` objects as the ``_locations`` dict) instead of
    hashing into the global block map.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Optional[PlacementPolicy] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cluster = cluster
        self.block_size = block_size
        self.tracer = tracer
        self.files: Dict[str, INode] = {}
        self.blocks: Dict[int, Block] = {}
        # python-int rack ids (topology.rack_of holds numpy scalars, too
        # slow to hash on the per-mutation index updates)
        self._rack_of: List[int] = [int(r) for r in cluster.topology.rack_of]
        #: node id -> block ids the NameNode's view places on that node
        self._blocks_on: Dict[int, Set[int]] = {}
        #: block ids whose live replica count is below the file's factor
        self._under: Set[int] = set()
        # insertion-ordered so replica scans (and the RNG draws they feed)
        # are identical on both sides of a checkpoint restore; keys are
        # ascending block ids (allocation order)
        self._locations: Dict[int, ReplicaSet] = {}
        #: dense block-id -> ReplicaSet, aliasing _locations' values
        self._locs_by_id: List[ReplicaSet] = []
        self.datanodes: Dict[int, DataNode] = {
            n.node_id: DataNode(n, tracer=tracer) for n in cluster.slaves
        }
        self.placement: PlacementPolicy = placement or DefaultPlacementPolicy(
            cluster.slave_ids,
            cluster.topology,
            cluster.streams.python("hdfs.placement"),
        )
        self._next_file_id = 0
        self._next_block_id = 0
        #: applied control messages, for tests / invariant checks
        self.command_log: List[DatanodeCommand] = []

    # -- pickling ------------------------------------------------------------

    def __getstate__(self):
        # the replica indexes are derived state: dropping them (and the
        # per-set counters, see ReplicaSet.__getstate__) keeps checkpoint
        # snapshots at their pre-index size
        state = self.__dict__.copy()
        for key in ("_blocks_on", "_under", "_locs_by_id"):
            del state[key]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._blocks_on = {}
        self._under = set()
        self._locs_by_id = []
        rack_of = self._rack_of
        for locs in self._locations.values():
            locs._nn = self
            counts: Dict[int, int] = {}
            for node_id in locs:
                rack = rack_of[node_id]
                counts[rack] = counts.get(rack, 0) + 1
                self._blocks_on.setdefault(node_id, set()).add(locs.block_id)
            locs.rack_counts = counts
            if len(locs) < locs.rf:
                self._under.add(locs.block_id)
            self._locs_by_id.append(locs)

    # -- namespace ----------------------------------------------------------

    def create_file(
        self,
        name: str,
        size_bytes: int,
        replication: int = 3,
        writer: Optional[int] = None,
        now: float = 0.0,
    ) -> INode:
        """Create a file, allocate blocks, and place the static replicas."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        inode = INode(self._next_file_id, name, replication, created_at=now)
        self._next_file_id += 1
        blocks = inode.allocate_blocks(size_bytes, self._next_block_id, self.block_size)
        self._next_block_id += len(blocks)
        for block in blocks:
            targets = self.placement.choose_targets(replication, writer)
            self.blocks[block.block_id] = block
            locs = ReplicaSet(self, block.block_id, replication, tuple(targets))
            self._locations[block.block_id] = locs
            self._locs_by_id.append(locs)
            for t in targets:
                self.datanodes[t].store_static(block)
        self.files[name] = inode
        return inode

    def file(self, name: str) -> INode:
        """Look up a file by name."""
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def block(self, block_id: int) -> Block:
        """Look up a block by id."""
        return self.blocks[block_id]

    # -- replica views --------------------------------------------------------

    def locations(self, block_id: int) -> ReplicaSet:
        """Node ids known (to the NameNode) to hold the block."""
        return self._locations[block_id]

    def is_local(self, block_id: int, node_id: int) -> bool:
        """True when the NameNode's view places a replica on ``node_id``."""
        return node_id in self._locs_by_id[block_id]

    def replica_count(self, block_id: int) -> int:
        """Current replica count in the NameNode's view."""
        return len(self._locs_by_id[block_id])

    def datanode(self, node_id: int) -> DataNode:
        """The DataNode running on ``node_id``."""
        return self.datanodes[node_id]

    @property
    def total_dataset_bytes(self) -> int:
        """Sum of logical file sizes (one copy each, not counting replicas)."""
        return sum(f.size_bytes for f in self.files.values())

    # -- heartbeat control plane ----------------------------------------------

    def process_heartbeat(self, node_id: int, now: float) -> List[DatanodeCommand]:
        """Apply the control messages a heartbeating DataNode reports.

        Returns the applied commands (useful for logging/tests).  This is
        where ``DNA_DYNREPL`` replicas enter — and invalidated replicas
        leave — the scheduler's location view.
        """
        dn = self.datanodes[node_id]
        # most heartbeats carry no control messages: skip the outbox drain
        # and deletion scan entirely on that path (this runs for every
        # TaskTracker beat, so the empty case is by far the hottest)
        if dn.outbox:
            cmds = dn.drain_outbox()
            for cmd in cmds:
                cmd.validate()
                if cmd.op == DNA_DYNREPL:
                    self._locations[cmd.block_id].add(node_id)
                elif cmd.op == DNA_INVALIDATE:
                    self._locations[cmd.block_id].discard(node_id)
            self.command_log.extend(cmds)
        else:
            cmds = []
        # physical lazy deletion happens when the node is idle enough to
        # heartbeat, matching "blocks marked for deletion are lazily removed"
        if dn.pending_deletion:
            dn.complete_deletions()
        if self.tracer.enabled:
            self.tracer.emit(
                HDFS_HEARTBEAT, now, node=node_id, commands=len(cmds)
            )
        return cmds

    def flush_all_heartbeats(self, now: float = 0.0) -> None:
        """Process a heartbeat from every DataNode (test/metric helper)."""
        for node_id in self.datanodes:
            self.process_heartbeat(node_id, now)

    # -- failures -----------------------------------------------------------------

    def fail_node(self, node_id: int) -> Dict[int, int]:
        """Remove a dead DataNode from every block's location set.

        Returns ``{block_id: remaining_replicas}`` for each block that lost
        a replica — the input to re-replication.  The node's queued control
        messages are dropped (a dead node never heartbeats again).

        The per-node reverse index makes this O(blocks on the node) rather
        than a scan of the whole block map; the emitted ordering — stored
        blocks first (DataNode insertion order), then stale announced-only
        entries ascending by block id — matches the original full-scan
        implementation exactly, because the block map's iteration order is
        allocation order.
        """
        dn = self.datanodes[node_id]
        dn.outbox.clear()
        lost: Dict[int, int] = {}
        locs_by_id = self._locs_by_id
        for bid in list(dn.stored_block_ids()) + list(dn.pending_deletion):
            locs = locs_by_id[bid]
            if node_id in locs:
                locs.discard(node_id)
                lost[bid] = len(locs)
        # stale location entries (e.g. announced replicas) via the reverse
        # index; the first pass already removed its bids from it
        stale = self._blocks_on.get(node_id)
        if stale:
            for bid in sorted(stale):
                locs = locs_by_id[bid]
                locs.discard(node_id)
                lost[bid] = len(locs)
        dn.static_blocks.clear()
        dn.dynamic_blocks.clear()
        dn.pending_deletion.clear()
        dn.dynamic_bytes_used = 0
        return lost

    def under_replicated(self) -> Dict[int, int]:
        """Blocks whose live replica count is below the file's factor."""
        locs_by_id = self._locs_by_id
        return {bid: len(locs_by_id[bid]) for bid in sorted(self._under)}

    def add_repaired_replica(self, block_id: int, node_id: int) -> None:
        """Install a re-replicated block on a target node."""
        block = self.blocks[block_id]
        dn = self.datanodes[node_id]
        if dn.has_block(block_id):
            raise ValueError(f"node {node_id} already stores block {block_id}")
        dn.store_static(block)
        self._locations[block_id].add(node_id)

    # -- integrity ---------------------------------------------------------------

    def check_integrity(self) -> None:
        """Assert the location map is consistent with DataNode contents.

        The NameNode view may *lag* the DataNodes (pending announcements /
        invalidations), but must never claim a replica that neither exists
        nor is pending announcement, and every stored block must either be
        in the view or awaiting its DNA_DYNREPL.
        """
        for block_id, locs in self._locations.items():
            for node_id in locs:
                dn = self.datanodes[node_id]
                pending_inval = any(
                    c.op == DNA_INVALIDATE and c.block_id == block_id for c in dn.outbox
                ) or block_id in dn.pending_deletion
                if not dn.has_block(block_id) and not pending_inval:
                    raise AssertionError(
                        f"NameNode claims block {block_id} on node {node_id}, "
                        "but the DataNode does not store it"
                    )
        for node_id, dn in self.datanodes.items():
            for bid in dn.stored_block_ids():
                pending_ann = any(
                    c.op == DNA_DYNREPL and c.block_id == bid for c in dn.outbox
                )
                if node_id not in self._locations[bid] and not pending_ann:
                    raise AssertionError(
                        f"node {node_id} stores block {bid} unknown to the NameNode"
                    )
