"""NameNode: the HDFS metadata master."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.hdfs.block import DEFAULT_BLOCK_SIZE, Block
from repro.hdfs.datanode import DataNode
from repro.hdfs.inode import INode
from repro.hdfs.ordered_set import OrderedSet
from repro.hdfs.placement import DefaultPlacementPolicy, PlacementPolicy
from repro.hdfs.protocol import DNA_DYNREPL, DNA_INVALIDATE, DatanodeCommand
from repro.observability.trace import HDFS_HEARTBEAT, NULL_TRACER, Tracer


class NameNode:
    """Metadata master: namespace, block map, and replica bookkeeping.

    The scheduler (and any other client) resolves block locations through
    :meth:`locations`; that view is updated by DataNode heartbeats, so
    DARE-created replicas become schedulable one heartbeat after insertion,
    exactly as in the paper's modified Hadoop.  The NameNode tolerates
    over-replicated blocks (implementation change (b) in Section V-A) —
    dynamic replicas may push a block's replica count above the file's
    nominal replication factor without triggering re-replication or pruning.
    """

    def __init__(
        self,
        cluster: Cluster,
        placement: Optional[PlacementPolicy] = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cluster = cluster
        self.block_size = block_size
        self.tracer = tracer
        self.files: Dict[str, INode] = {}
        self.blocks: Dict[int, Block] = {}
        # insertion-ordered so replica scans (and the RNG draws they feed)
        # are identical on both sides of a checkpoint restore
        self._locations: Dict[int, OrderedSet[int]] = {}
        self.datanodes: Dict[int, DataNode] = {
            n.node_id: DataNode(n, tracer=tracer) for n in cluster.slaves
        }
        self.placement: PlacementPolicy = placement or DefaultPlacementPolicy(
            cluster.slave_ids,
            cluster.topology,
            cluster.streams.python("hdfs.placement"),
        )
        self._next_file_id = 0
        self._next_block_id = 0
        #: applied control messages, for tests / invariant checks
        self.command_log: List[DatanodeCommand] = []

    # -- namespace ----------------------------------------------------------

    def create_file(
        self,
        name: str,
        size_bytes: int,
        replication: int = 3,
        writer: Optional[int] = None,
        now: float = 0.0,
    ) -> INode:
        """Create a file, allocate blocks, and place the static replicas."""
        if name in self.files:
            raise ValueError(f"file {name!r} already exists")
        inode = INode(self._next_file_id, name, replication, created_at=now)
        self._next_file_id += 1
        blocks = inode.allocate_blocks(size_bytes, self._next_block_id, self.block_size)
        self._next_block_id += len(blocks)
        for block in blocks:
            targets = self.placement.choose_targets(replication, writer)
            self.blocks[block.block_id] = block
            self._locations[block.block_id] = OrderedSet(targets)
            for t in targets:
                self.datanodes[t].store_static(block)
        self.files[name] = inode
        return inode

    def file(self, name: str) -> INode:
        """Look up a file by name."""
        try:
            return self.files[name]
        except KeyError:
            raise FileNotFoundError(name) from None

    def block(self, block_id: int) -> Block:
        """Look up a block by id."""
        return self.blocks[block_id]

    # -- replica views --------------------------------------------------------

    def locations(self, block_id: int) -> OrderedSet[int]:
        """Node ids known (to the NameNode) to hold the block."""
        return self._locations[block_id]

    def is_local(self, block_id: int, node_id: int) -> bool:
        """True when the NameNode's view places a replica on ``node_id``."""
        return node_id in self._locations[block_id]

    def replica_count(self, block_id: int) -> int:
        """Current replica count in the NameNode's view."""
        return len(self._locations[block_id])

    def datanode(self, node_id: int) -> DataNode:
        """The DataNode running on ``node_id``."""
        return self.datanodes[node_id]

    @property
    def total_dataset_bytes(self) -> int:
        """Sum of logical file sizes (one copy each, not counting replicas)."""
        return sum(f.size_bytes for f in self.files.values())

    # -- heartbeat control plane ----------------------------------------------

    def process_heartbeat(self, node_id: int, now: float) -> List[DatanodeCommand]:
        """Apply the control messages a heartbeating DataNode reports.

        Returns the applied commands (useful for logging/tests).  This is
        where ``DNA_DYNREPL`` replicas enter — and invalidated replicas
        leave — the scheduler's location view.
        """
        dn = self.datanodes[node_id]
        # most heartbeats carry no control messages: skip the outbox drain
        # and deletion scan entirely on that path (this runs for every
        # TaskTracker beat, so the empty case is by far the hottest)
        if dn.outbox:
            cmds = dn.drain_outbox()
            for cmd in cmds:
                cmd.validate()
                if cmd.op == DNA_DYNREPL:
                    self._locations[cmd.block_id].add(node_id)
                elif cmd.op == DNA_INVALIDATE:
                    self._locations[cmd.block_id].discard(node_id)
            self.command_log.extend(cmds)
        else:
            cmds = []
        # physical lazy deletion happens when the node is idle enough to
        # heartbeat, matching "blocks marked for deletion are lazily removed"
        if dn.pending_deletion:
            dn.complete_deletions()
        if self.tracer.enabled:
            self.tracer.emit(
                HDFS_HEARTBEAT, now, node=node_id, commands=len(cmds)
            )
        return cmds

    def flush_all_heartbeats(self, now: float = 0.0) -> None:
        """Process a heartbeat from every DataNode (test/metric helper)."""
        for node_id in self.datanodes:
            self.process_heartbeat(node_id, now)

    # -- failures -----------------------------------------------------------------

    def fail_node(self, node_id: int) -> Dict[int, int]:
        """Remove a dead DataNode from every block's location set.

        Returns ``{block_id: remaining_replicas}`` for each block that lost
        a replica — the input to re-replication.  The node's queued control
        messages are dropped (a dead node never heartbeats again).
        """
        dn = self.datanodes[node_id]
        dn.outbox.clear()
        lost: Dict[int, int] = {}
        for bid in list(dn.stored_block_ids()) + list(dn.pending_deletion):
            locs = self._locations[bid]
            if node_id in locs:
                locs.discard(node_id)
                lost[bid] = len(locs)
        # also clear any stale location entries (e.g. announced replicas)
        for bid, locs in self._locations.items():
            if node_id in locs:
                locs.discard(node_id)
                lost[bid] = len(locs)
        dn.static_blocks.clear()
        dn.dynamic_blocks.clear()
        dn.pending_deletion.clear()
        dn.dynamic_bytes_used = 0
        return lost

    def under_replicated(self) -> Dict[int, int]:
        """Blocks whose live replica count is below the file's factor."""
        out: Dict[int, int] = {}
        for bid, locs in self._locations.items():
            rf = self.blocks[bid].inode.replication
            if len(locs) < rf:
                out[bid] = len(locs)
        return out

    def add_repaired_replica(self, block_id: int, node_id: int) -> None:
        """Install a re-replicated block on a target node."""
        block = self.blocks[block_id]
        dn = self.datanodes[node_id]
        if dn.has_block(block_id):
            raise ValueError(f"node {node_id} already stores block {block_id}")
        dn.store_static(block)
        self._locations[block_id].add(node_id)

    # -- integrity ---------------------------------------------------------------

    def check_integrity(self) -> None:
        """Assert the location map is consistent with DataNode contents.

        The NameNode view may *lag* the DataNodes (pending announcements /
        invalidations), but must never claim a replica that neither exists
        nor is pending announcement, and every stored block must either be
        in the view or awaiting its DNA_DYNREPL.
        """
        for block_id, locs in self._locations.items():
            for node_id in locs:
                dn = self.datanodes[node_id]
                pending_inval = any(
                    c.op == DNA_INVALIDATE and c.block_id == block_id for c in dn.outbox
                ) or block_id in dn.pending_deletion
                if not dn.has_block(block_id) and not pending_inval:
                    raise AssertionError(
                        f"NameNode claims block {block_id} on node {node_id}, "
                        "but the DataNode does not store it"
                    )
        for node_id, dn in self.datanodes.items():
            for bid in dn.stored_block_ids():
                pending_ann = any(
                    c.op == DNA_DYNREPL and c.block_id == bid for c in dn.outbox
                )
                if node_id not in self._locations[bid] and not pending_ann:
                    raise AssertionError(
                        f"node {node_id} stores block {bid} unknown to the NameNode"
                    )
