"""Insertion-ordered set with pickle-stable iteration order.

Builtin ``set`` iteration order depends on element hashes *and* on the
insertion/deletion history of the exact set object; it is not preserved
across a pickle round-trip.  That is fatal for checkpoint/restore
(:mod:`repro.checkpoint`): any ``rng.choice(list(s))`` or first-match scan
downstream of a restored set must see the same ordering a cold run saw,
or the restored run silently diverges.

``OrderedSet`` is a ``dict`` with ``None`` values wearing a set API.
Membership, length, and iteration run at C speed through the dict, and
iteration order is insertion order — which a pickle round-trip preserves
exactly (dict subclasses are restored item by item, in order).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, TypeVar

T = TypeVar("T")


class OrderedSet(Dict[T, None]):
    """A set whose iteration order is insertion order, pickle-stable."""

    __slots__ = ()

    def __init__(self, iterable: Iterable[T] = ()) -> None:
        dict.__init__(self)
        for item in iterable:
            dict.__setitem__(self, item, None)

    # -- set mutations -------------------------------------------------------

    def add(self, item: T) -> None:
        """Insert ``item`` (appends to the order when new)."""
        dict.__setitem__(self, item, None)

    def discard(self, item: T) -> None:
        """Remove ``item`` if present."""
        dict.pop(self, item, None)

    def remove(self, item: T) -> None:
        """Remove ``item``; KeyError when absent."""
        del self[item]

    # -- set queries ---------------------------------------------------------

    def isdisjoint(self, other: Iterable[T]) -> bool:
        """True when no element is shared with ``other``."""
        return self.keys().isdisjoint(other)

    def __sub__(self, other: Iterable[T]) -> "OrderedSet[T]":
        excluded = other if isinstance(other, (set, frozenset, dict)) else set(other)
        return OrderedSet(k for k in self if k not in excluded)

    def __rsub__(self, other: Iterable[T]) -> "OrderedSet[T]":
        return OrderedSet(k for k in other if k not in self)

    def __eq__(self, other: object) -> bool:
        # set semantics: equality ignores order, and compares equal to
        # builtin sets with the same elements
        if isinstance(other, (set, frozenset)):
            return len(self) == len(other) and all(k in other for k in self)
        if isinstance(other, dict):
            return dict.__eq__(self, other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __iter__(self) -> Iterator[T]:
        return dict.__iter__(self)

    def __repr__(self) -> str:
        return f"OrderedSet({list(self)!r})"
