"""HDFS substrate: a metadata-faithful model of the Hadoop file system.

Modeled components (HDFS terminology, as the paper uses it):

* **blocks** — fixed-size units of file data (128 MB default), each
  replicated on a configurable number of DataNodes;
* **INodes / files** — a file is an ordered list of blocks; INodes carry a
  back-pointer from block to owning file (the paper's modification, needed
  so eviction never victimizes a block of the same file being inserted);
* **DataNode** — per-node block storage with dynamic-replica budget
  accounting and disk-write counters;
* **NameNode** — the metadata master: block -> locations map, file
  namespace, replica bookkeeping, and the heartbeat-carried control plane
  (including the ``DNA_DYNREPL`` analogue by which DARE-created replicas
  become visible to the scheduler);
* **placement** — the default Hadoop placement policy used for the initial
  (static) replicas.
"""

from repro.hdfs.block import Block, DEFAULT_BLOCK_SIZE
from repro.hdfs.inode import INode
from repro.hdfs.datanode import DataNode
from repro.hdfs.namenode import NameNode
from repro.hdfs.placement import DefaultPlacementPolicy, PlacementPolicy
from repro.hdfs.protocol import DatanodeCommand, DNA_DYNREPL, DNA_INVALIDATE

__all__ = [
    "Block",
    "DEFAULT_BLOCK_SIZE",
    "INode",
    "DataNode",
    "NameNode",
    "PlacementPolicy",
    "DefaultPlacementPolicy",
    "DatanodeCommand",
    "DNA_DYNREPL",
    "DNA_INVALIDATE",
]
