"""HDFS blocks."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.inode import INode

#: HDFS default block size used throughout the reproduction (the paper's
#: Yahoo! analysis weights popularity by number of 128 MB blocks).
DEFAULT_BLOCK_SIZE = 128 * 1024 * 1024


class Block:
    """One fixed-size unit of file data.

    Carries a back-pointer to the owning :class:`~repro.hdfs.inode.INode`,
    mirroring the paper's implementation note: "INodes were modified to
    contain information about which file they belong to, so that we can
    avoid choosing a victim belonging to the same file as the evicting
    replica."
    """

    __slots__ = ("block_id", "inode", "index", "size_bytes")

    def __init__(self, block_id: int, inode: "INode", index: int, size_bytes: int) -> None:
        if size_bytes <= 0:
            raise ValueError("block size must be positive")
        self.block_id = block_id
        self.inode = inode
        self.index = index  # position within the file
        self.size_bytes = size_bytes

    @property
    def file_id(self) -> int:
        """Id of the owning file."""
        return self.inode.file_id

    def same_file(self, other: "Block") -> bool:
        """True when both blocks belong to the same file."""
        return self.inode.file_id == other.inode.file_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Block {self.block_id} of file {self.inode.name!r}[{self.index}]>"
