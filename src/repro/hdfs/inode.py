"""HDFS INodes (files)."""

from __future__ import annotations

from typing import List

from repro.hdfs.block import Block, DEFAULT_BLOCK_SIZE


class INode:
    """A file: an ordered, immutable list of blocks.

    HDFS files are read-only once written (Section II-A), so an INode's
    block list never changes after :meth:`allocate_blocks`.
    """

    __slots__ = ("file_id", "name", "replication", "blocks", "created_at")

    def __init__(
        self,
        file_id: int,
        name: str,
        replication: int = 3,
        created_at: float = 0.0,
    ) -> None:
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.file_id = file_id
        self.name = name
        self.replication = replication
        self.blocks: List[Block] = []
        self.created_at = created_at

    def allocate_blocks(
        self, size_bytes: int, first_block_id: int, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> List[Block]:
        """Split ``size_bytes`` of data into blocks (last may be partial)."""
        if self.blocks:
            raise ValueError(f"file {self.name!r} already has blocks (files are immutable)")
        if size_bytes <= 0:
            raise ValueError("file size must be positive")
        blocks: List[Block] = []
        remaining = size_bytes
        idx = 0
        while remaining > 0:
            b = Block(first_block_id + idx, self, idx, min(block_size, remaining))
            blocks.append(b)
            remaining -= b.size_bytes
            idx += 1
        self.blocks = blocks
        return blocks

    @property
    def n_blocks(self) -> int:
        """Number of blocks."""
        return len(self.blocks)

    @property
    def size_bytes(self) -> int:
        """Total file size."""
        return sum(b.size_bytes for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<INode {self.name!r} {self.n_blocks} blocks rf={self.replication}>"
