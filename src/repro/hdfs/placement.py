"""Initial (static) replica placement policies.

``DefaultPlacementPolicy`` mirrors Hadoop's rack-aware default: first replica
on the writer's node (or a random node for files loaded from outside the
cluster), second on a node in a different rack, third on a different node in
the same rack as the second, and any further replicas on random nodes.  On a
single-rack cluster (CCT) this degenerates to distinct random nodes, which is
Hadoop's actual behaviour there too.

Draws are order statistics over rack shards: instead of materialising an
O(N) candidate list per replica (ruinous at 10k-100k nodes), the policy
draws ``randrange(n_candidates)`` and resolves the k-th eligible node with
a bisect over per-rack sorted id arrays.  ``random.Random.choice(seq)`` and
``randrange(len(seq))`` consume the identical underlying ``_randbelow``
stream, so placements are byte-identical to the candidate-list
implementation — the determinism suite holds this property.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from repro.cluster.topology import Topology


def _kth_excluding(ids: List[int], skip_sorted: List[int], k: int) -> int:
    """The ``k``-th element of ascending ``ids`` after removing ``skip_sorted``.

    Each skip value at or before the running answer shifts it one slot
    right; skip values past it cannot affect the answer.  O(|skip| log N).
    """
    idx = k
    for s in skip_sorted:
        pos = bisect_left(ids, s)
        if pos < len(ids) and ids[pos] == s:
            if pos <= idx:
                idx += 1
            else:
                break
    return ids[idx]


class PlacementPolicy:
    """Interface: choose target nodes for a new block's replicas."""

    def choose_targets(
        self,
        n_replicas: int,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Return ``n_replicas`` distinct node ids."""
        raise NotImplementedError


class DefaultPlacementPolicy(PlacementPolicy):
    """Hadoop's default rack-aware placement."""

    def __init__(
        self,
        slave_ids: Sequence[int],
        topology: Topology,
        rng: random.Random,
    ) -> None:
        if not slave_ids:
            raise ValueError("no slave nodes to place replicas on")
        self.slave_ids = list(slave_ids)
        self.topology = topology
        self._rng = rng
        self._id_set = frozenset(self.slave_ids)
        # the order-statistic fast path requires candidate lists in ascending
        # order; callers passing an unsorted id sequence (none in the tree,
        # but the constructor accepts any Sequence) fall back to explicit
        # candidate lists, which consume the same rng stream
        self._ascending = all(
            a < b for a, b in zip(self.slave_ids, self.slave_ids[1:])
        )
        self._rack_ids: Dict[int, List[int]] = {}
        rack_of = topology.rack_of
        for n in self.slave_ids:
            self._rack_ids.setdefault(int(rack_of[n]), []).append(n)

    def _random_slave(self, exclude: set) -> Optional[int]:
        ex = [n for n in exclude if n in self._id_set]
        n_cand = len(self.slave_ids) - len(ex)
        if n_cand <= 0:
            return None
        if not self._ascending:
            candidates = [n for n in self.slave_ids if n not in exclude]
            return self._rng.choice(candidates)
        k = self._rng.randrange(n_cand)
        return _kth_excluding(self.slave_ids, sorted(ex), k)

    def _random_slave_in_rack(self, rack: int, exclude: set) -> Optional[int]:
        rack_ids = self._rack_ids.get(rack, [])
        rack_of = self.topology.rack_of
        ex = [
            n for n in exclude if n in self._id_set and int(rack_of[n]) == rack
        ]
        n_cand = len(rack_ids) - len(ex)
        if n_cand <= 0:
            return None
        if not self._ascending:
            candidates = [
                n
                for n in self.slave_ids
                if n not in exclude and rack_of[n] == rack
            ]
            return self._rng.choice(candidates)
        k = self._rng.randrange(n_cand)
        return _kth_excluding(rack_ids, sorted(ex), k)

    def _random_slave_off_rack(self, rack: int, exclude: set) -> Optional[int]:
        rack_ids = self._rack_ids.get(rack, [])
        skip = {n for n in exclude if n in self._id_set}
        skip.update(rack_ids)
        n_cand = len(self.slave_ids) - len(skip)
        if n_cand <= 0:
            return None
        if not self._ascending:
            rack_of = self.topology.rack_of
            candidates = [
                n
                for n in self.slave_ids
                if n not in exclude and rack_of[n] != rack
            ]
            return self._rng.choice(candidates)
        k = self._rng.randrange(n_cand)
        return _kth_excluding(self.slave_ids, sorted(skip), k)

    def choose_targets(
        self,
        n_replicas: int,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Pick replica target nodes per the default policy."""
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        n_replicas = min(n_replicas, len(self.slave_ids))
        chosen: List[int] = []
        used: set = set()

        # replica 1: writer node if it is a slave, else random
        first = writer if writer in self._id_set else self._random_slave(used)
        chosen.append(first)
        used.add(first)
        if len(chosen) == n_replicas:
            return chosen

        # replica 2: different rack if one exists
        rack1 = int(self.topology.rack_of[first])
        second = self._random_slave_off_rack(rack1, used)
        if second is None:
            second = self._random_slave(used)
        if second is not None:
            chosen.append(second)
            used.add(second)
        if len(chosen) >= n_replicas:
            return chosen[:n_replicas]

        # replica 3: same rack as replica 2
        rack2 = int(self.topology.rack_of[chosen[-1]])
        third = self._random_slave_in_rack(rack2, used)
        if third is None:
            third = self._random_slave(used)
        if third is not None:
            chosen.append(third)
            used.add(third)

        # replicas 4+: random remaining nodes
        while len(chosen) < n_replicas:
            nxt = self._random_slave(used)
            if nxt is None:
                break
            chosen.append(nxt)
            used.add(nxt)
        return chosen
