"""Initial (static) replica placement policies.

``DefaultPlacementPolicy`` mirrors Hadoop's rack-aware default: first replica
on the writer's node (or a random node for files loaded from outside the
cluster), second on a node in a different rack, third on a different node in
the same rack as the second, and any further replicas on random nodes.  On a
single-rack cluster (CCT) this degenerates to distinct random nodes, which is
Hadoop's actual behaviour there too.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.cluster.topology import Topology


class PlacementPolicy:
    """Interface: choose target nodes for a new block's replicas."""

    def choose_targets(
        self,
        n_replicas: int,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Return ``n_replicas`` distinct node ids."""
        raise NotImplementedError


class DefaultPlacementPolicy(PlacementPolicy):
    """Hadoop's default rack-aware placement."""

    def __init__(
        self,
        slave_ids: Sequence[int],
        topology: Topology,
        rng: random.Random,
    ) -> None:
        if not slave_ids:
            raise ValueError("no slave nodes to place replicas on")
        self.slave_ids = list(slave_ids)
        self.topology = topology
        self._rng = rng

    def _random_slave(self, exclude: set) -> Optional[int]:
        candidates = [n for n in self.slave_ids if n not in exclude]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _random_slave_in_rack(self, rack: int, exclude: set) -> Optional[int]:
        candidates = [
            n
            for n in self.slave_ids
            if n not in exclude and self.topology.rack_of[n] == rack
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _random_slave_off_rack(self, rack: int, exclude: set) -> Optional[int]:
        candidates = [
            n
            for n in self.slave_ids
            if n not in exclude and self.topology.rack_of[n] != rack
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def choose_targets(
        self,
        n_replicas: int,
        writer: Optional[int] = None,
    ) -> List[int]:
        """Pick replica target nodes per the default policy."""
        if n_replicas < 1:
            raise ValueError("need at least one replica")
        n_replicas = min(n_replicas, len(self.slave_ids))
        chosen: List[int] = []
        used: set = set()

        # replica 1: writer node if it is a slave, else random
        first = writer if writer in self.slave_ids else self._random_slave(used)
        chosen.append(first)
        used.add(first)
        if len(chosen) == n_replicas:
            return chosen

        # replica 2: different rack if one exists
        rack1 = int(self.topology.rack_of[first])
        second = self._random_slave_off_rack(rack1, used)
        if second is None:
            second = self._random_slave(used)
        if second is not None:
            chosen.append(second)
            used.add(second)
        if len(chosen) >= n_replicas:
            return chosen[:n_replicas]

        # replica 3: same rack as replica 2
        rack2 = int(self.topology.rack_of[chosen[-1]])
        third = self._random_slave_in_rack(rack2, used)
        if third is None:
            third = self._random_slave(used)
        if third is not None:
            chosen.append(third)
            used.add(third)

        # replicas 4+: random remaining nodes
        while len(chosen) < n_replicas:
            nxt = self._random_slave(used)
            if nxt is None:
                break
            chosen.append(nxt)
            used.add(nxt)
        return chosen
