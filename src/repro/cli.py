"""Command-line interface.

Four subcommands cover the library's workflows::

    python -m repro probe                      # Tables I-II, Fig. 1
    python -m repro analyze                    # Section III log analyses
    python -m repro run --workload wl1 --scheduler fifo --policy et
    python -m repro synth --workload wl2 --jobs 300 --out wl2.json
    python -m repro figures --jobs 200 --only fig7,fig11
    python -m repro sweep --grid all --jobs 4 --cache-dir .sweep-cache
    python -m repro sweep --grid all --serve :7341 --queue-path queue.json
    python -m repro sweep --worker HOST:7341
    python -m repro serve --port 8750 --cache-dir .sweep-cache
    python -m repro replay verify trace.jsonl
    python -m repro replay diff lru.jsonl et.jsonl
    python -m repro replay whatif trace.jsonl --at 120 --patch kill:3 --out wf.jsonl
    python -m repro checkpoint save --at 60 --out run.ckpt --trace run.jsonl
    python -m repro checkpoint resume run.ckpt --trace resumed.jsonl
    python -m repro perf --jobs 300 --scheduler fair --top 10
    python -m repro train --traces corpus/ --synthesize --out model.json
    python -m repro run --policy learned --model model.json
    python -m repro run --policy rollout --rollout-epoch 10
    python -m repro policy-bench --json bench.json --svg bench.svg

``run`` accepts built-in workload names (wl1/wl2), a saved workload JSON,
or a SWIM-format TSV trace, and can inject node failures or enable the
Scarlett baseline for comparisons.

``sweep`` runs a named grid of experiment cells (figures, sensitivity
sweeps, ablations) across worker processes, reusing previously computed
cells from a content-addressed result cache; ``--shard K/M`` splits a
grid across CI jobs.  ``--serve``/``--worker`` promote the same grid to
a coordinator + remote-worker service with lease-based fault tolerance
(crashed workers lose their leases, failed cells retry with backoff,
stragglers are speculatively re-executed) whose results are
byte-identical to the serial path.

``serve`` runs the long-lived HTTP front door (REST + SSE) over the same
sweep machinery: clients POST grids to ``/api/jobs``, stream progress
and trace records from ``/api/jobs/{id}/events``, and fetch result
documents byte-identical to the serial path (see ``docs/SERVER.md``).

``replay`` consumes the JSONL traces ``run --trace`` writes: ``summary``
prints record counts and reconstructed headline stats, ``verify`` rebuilds
the control-plane state from the records and checks it against the
``run.summary`` footer (exit 0 only on an exact match), ``diff`` bisects
two traces to their first divergent record, and ``whatif`` rebuilds the
traced run as a *live* simulation at time T, applies counterfactual
patches (kill a node, flip the policy, pin a replica), and resumes it.

``checkpoint`` pauses a run at a time horizon, freezes its full state to
disk, and later resumes it (optionally patched); a resumed trace is
byte-identical to one from an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.baselines.scarlett import ScarlettConfig
from repro.cluster.cluster import CCT_SPEC, EC2_SPEC
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, run_experiment
from repro.workloads.swim import Workload, synthesize_wl1, synthesize_wl2

_CLUSTERS = {"cct": CCT_SPEC, "ec2": EC2_SPEC}

#: hard ceiling for --nodes; the simulator is sized (and CI-gated) up to here
MAX_SCALE_NODES = 100_000

#: above this, event-accurate per-node heartbeats are a footgun: tens of
#: millions of heartbeat events per simulated hour — require the
#: mesoscale opt-in instead of silently grinding
MESOSCALE_FLOOR = 25_000


def _scale_spec_or_exit(nodes: int, mesoscale: bool, check_invariants: bool):
    """Validate a --nodes request and build its spec, or exit with advice."""
    from repro.cluster.cluster import scale_spec

    if nodes > MAX_SCALE_NODES:
        raise SystemExit(
            f"--nodes {nodes:,} exceeds the supported maximum of "
            f"{MAX_SCALE_NODES:,} (the scaling benches gate up to 100k)"
        )
    if mesoscale and check_invariants:
        raise SystemExit(
            "--mesoscale and --check-invariants are incompatible: the strict "
            "invariant sweep audits every TaskTracker, and mesoscale pools "
            "idle trackers away; drop one of the two flags"
        )
    if nodes > MESOSCALE_FLOOR and not mesoscale:
        raise SystemExit(
            f"--nodes {nodes:,} without --mesoscale keeps all {nodes:,} nodes "
            f"event-accurate (per-node heartbeats); pass --mesoscale to pool "
            f"idle nodes into rack hubs, or stay at <= {MESOSCALE_FLOOR:,} nodes"
        )
    try:
        return scale_spec(nodes, mesoscale=mesoscale)
    except ValueError as exc:
        raise SystemExit(str(exc))


def _cluster_spec(args: argparse.Namespace):
    """The cluster for a run: --nodes builds a scale spec, else --cluster."""
    nodes = getattr(args, "nodes", 0)
    mesoscale = getattr(args, "mesoscale", False)
    if not nodes:
        if mesoscale:
            raise SystemExit("--mesoscale requires --nodes (scale clusters only)")
        return _CLUSTERS[args.cluster]
    return _scale_spec_or_exit(
        nodes, mesoscale, getattr(args, "check_invariants", False)
    )


def _policy(args: argparse.Namespace) -> DareConfig:
    if args.policy == "off":
        return DareConfig.off()
    if args.policy in ("lru", "rollout"):
        # rollout-greedy runs the rollout engine over a greedy-lru host
        return DareConfig.greedy_lru(budget=args.budget)
    if args.policy == "lfu":
        return DareConfig.greedy_lfu(budget=args.budget)
    if args.policy == "et":
        return DareConfig.elephant_trap(
            p=args.p, threshold=args.threshold, budget=args.budget
        )
    if args.policy == "learned":
        from repro.policies.learned import DEFAULT_WEIGHTS, load_model

        model = getattr(args, "model", "")
        weights = load_model(model) if model else DEFAULT_WEIGHTS
        return DareConfig.learned(weights, budget=args.budget)
    raise SystemExit(f"unknown policy {args.policy!r}")


def _rollout_config(args: argparse.Namespace):
    """The RolloutConfig for ``--policy rollout`` runs (else None)."""
    if getattr(args, "policy", "") != "rollout":
        return None
    from repro.policies.rollout import RolloutConfig

    return RolloutConfig(
        epoch_s=args.rollout_epoch,
        branches=args.rollout_branches,
        horizon_s=args.rollout_horizon,
        max_epochs=args.rollout_max_epochs,
        jobs=getattr(args, "rollout_jobs", 1),
        prune=getattr(args, "rollout_prune", 0),
    ).validate()


def _workload(args: argparse.Namespace) -> Workload:
    rng = np.random.default_rng(args.seed)
    name = args.workload
    if name == "wl1":
        return synthesize_wl1(rng, n_jobs=args.jobs)
    if name == "wl2":
        return synthesize_wl2(rng, n_jobs=args.jobs)
    if name.endswith(".json"):
        from repro.workloads.swim_io import load_workload

        return load_workload(name)
    if name.endswith((".tsv", ".txt")):
        from repro.workloads.swim_io import load_swim_trace

        return load_swim_trace(name, rng)
    raise SystemExit(
        f"unknown workload {name!r} (expected wl1, wl2, *.json, or *.tsv)"
    )


def _parse_failures(items: List[str]):
    out = []
    for item in items:
        try:
            t, node = item.split(":")
            out.append((float(t), int(node)))
        except ValueError:
            raise SystemExit(f"bad --fail spec {item!r}; expected TIME:NODE")
    return tuple(out)


# -- subcommands -------------------------------------------------------------


def cmd_probe(args: argparse.Namespace) -> int:
    from repro.experiments.tables import (
        bandwidth_ratios,
        fig1_hop_distribution,
        print_table1,
        print_table2,
        table1_rtt,
        table2_bandwidth,
    )

    print_table1(table1_rtt(args.seed))
    print()
    print_table2(table2_bandwidth(args.seed))
    ratios = bandwidth_ratios(args.seed)
    print(f"\nnet/disk ratio: cct={ratios['cct']:.3f} ec2={ratios['ec2']:.3f}")
    print("\nEC2 hop-count distribution:")
    for h, frac in enumerate(fig1_hop_distribution(args.seed)):
        if frac > 0:
            print(f"  {h:>2d} hops: {frac:.3f}")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import generate_access_log
    from repro.analysis.patterns import (
        age_at_access_cdf,
        median_age_hours,
        popularity_by_rank,
        window_distribution,
    )

    log = generate_access_log(np.random.default_rng(args.seed))
    print(f"audit log: {log.n_accesses} accesses to {log.n_files} files")
    pop = popularity_by_rank(log)
    print(f"popularity: rank1={pop[0]:.0f} rank100={pop[min(99, len(pop)-1)]:.0f}")
    cdf = age_at_access_cdf(log, np.array([1.0, 24.0, 168.0]))
    print(f"age CDF @1h/1d/1w: {cdf[0]:.2f}/{cdf[1]:.2f}/{cdf[2]:.2f} "
          f"(median {median_age_hours(log):.1f}h)")
    _, frac = window_distribution(log)
    print(f"80% windows: <=2h {frac[:2].sum():.2f}, daily spike {frac[112:130].sum():.2f}")
    from repro.analysis.correlation import analyze_correlation

    summary = analyze_correlation(log)
    sizes = sorted((len(g) for g in summary.groups), reverse=True)
    print(f"co-access groups among hot files: {len(summary.groups)} "
          f"(sizes {sizes[:5]}), background corr {summary.mean_pairwise:+.2f}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    workload = _workload(args)
    scarlett = (
        ScarlettConfig(epoch_s=args.scarlett_epoch, budget=args.budget)
        if args.scarlett
        else None
    )
    config = ExperimentConfig(
        cluster_spec=_cluster_spec(args),
        scheduler=args.scheduler,
        dare=_policy(args),
        rollout=_rollout_config(args),
        seed=args.seed,
        scarlett=scarlett,
        failures=_parse_failures(args.fail),
        trace_path=args.trace,
        trace_engine_events=args.trace_engine_events,
        check_invariants=args.check_invariants,
        profile=args.profile,
        profile_sample_every=args.profile_every,
    )
    result = run_experiment(config, workload)
    print(result.summary_row())
    if args.trace:
        print(f"  trace written:    {args.trace}")
    if args.check_invariants:
        print(f"  invariants:       ok ({result.trace_records_checked} records, "
              f"{result.invariant_sweeps} full sweeps)")
    print(f"  cluster locality: {result.locality.locality:.3f} "
          f"({result.locality.node_local}/{result.locality.total} map tasks)")
    print(f"  mean map time:    {result.mean_map_s:.2f}s")
    print(f"  makespan:         {result.makespan_s:.0f}s")
    print(f"  cv before/after:  {result.cv_before:.3f} / {result.cv_after:.3f}")
    if result.blocks_created:
        print(f"  replicas created: {result.blocks_created} "
              f"(evicted {result.blocks_evicted})")
    if result.scarlett_replicas_created:
        print(f"  scarlett replicas: {result.scarlett_replicas_created}")
    if config.failures:
        print(f"  failures: {len(config.failures)} nodes; "
              f"{result.blocks_lost_replicas} blocks lost replicas, "
              f"{result.repairs_completed} repaired, "
              f"{result.data_loss_blocks} lost forever, "
              f"{result.tasks_requeued} task attempts requeued")
    print("  network traffic (GB): " + ", ".join(
        f"{k}={v / 1e9:.1f}" for k, v in result.traffic_bytes.items() if v
    ))
    if result.profiler is not None:
        rate = result.events_processed / result.engine_wall_s if result.engine_wall_s else 0.0
        print(f"  engine: {result.events_processed} events in "
              f"{result.engine_wall_s:.3f}s ({rate:,.0f} events/s)")
        print(result.profiler.format_report())
    return 0


def cmd_perf(args: argparse.Namespace) -> int:
    """Profile one simulation cell and report per-callback costs."""
    workload = _workload(args)
    config = ExperimentConfig(
        cluster_spec=_CLUSTERS[args.cluster],
        scheduler=args.scheduler,
        dare=_policy(args),
        seed=args.seed,
        profile=True,
        profile_sample_every=args.every,
    )
    result = run_experiment(config, workload)
    rate = result.events_processed / result.engine_wall_s if result.engine_wall_s else 0.0
    profiler = result.profiler
    assert profiler is not None
    if args.json:
        import json

        doc = {
            "workload": args.workload,
            "jobs": workload.n_jobs,
            "scheduler": args.scheduler,
            "policy": args.policy,
            "seed": args.seed,
            "events_processed": result.events_processed,
            "engine_wall_s": result.engine_wall_s,
            "events_per_sec": rate,
            "profile": profiler.to_dict(top=args.top),
        }
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    print(f"{workload.name}/{args.scheduler}/{args.policy}: "
          f"{result.events_processed} events in {result.engine_wall_s:.3f}s "
          f"({rate:,.0f} events/s)")
    print(profiler.format_report(top=args.top))
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    from repro.policies.learned import save_model
    from repro.policies.train import (
        dataset_from_traces,
        fit_logistic,
        synthesize_corpus,
        trace_paths,
    )

    if args.synthesize:
        print(f"synthesizing trace corpus in {args.traces} "
              f"(wl1 x {args.jobs} jobs, seeds {args.seeds}) ...")
        synthesize_corpus(args.traces, n_jobs=args.jobs, seeds=tuple(args.seeds))
    paths = trace_paths(args.traces)
    if not paths:
        raise SystemExit(
            f"no .jsonl traces in {args.traces!r} (pass --synthesize to "
            "generate the smoke corpus there first)"
        )
    examples = dataset_from_traces(paths)
    if not examples:
        raise SystemExit("corpus produced no training examples")
    result = fit_logistic(examples, epochs=args.epochs, lr=args.lr)
    print(f"fit on {result.n_examples} examples from {len(paths)} traces "
          f"({result.n_positive} positive)")
    print(f"loss {result.loss:.4f}  training accuracy {result.accuracy:.3f}")
    print("weights:", " ".join(f"{w:g}" for w in result.weights))
    if args.out:
        save_model(
            result.weights,
            args.out,
            n_examples=result.n_examples,
            accuracy=result.accuracy,
            loss=result.loss,
        )
        print(f"model written: {args.out} "
              f"(use with `repro run --policy learned --model {args.out}`)")
    return 0


def cmd_policy_bench(args: argparse.Namespace) -> int:
    import json as _json

    from repro.policies.bench import (
        BENCH_SEEDS,
        FULL_JOBS,
        format_report,
        render_policy_grid,
        run_policy_bench,
    )
    from repro.policies.learned import DEFAULT_WEIGHTS, load_model

    seeds = tuple(args.seeds) if args.seeds else BENCH_SEEDS
    n_jobs = FULL_JOBS if args.full else args.jobs
    model = load_model(args.model) if args.model else DEFAULT_WEIGHTS
    doc = run_policy_bench(
        n_jobs=n_jobs, seeds=seeds, model=model,
        progress=print if args.verbose else None,
    )
    print(format_report(doc))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(render_policy_grid(doc))
        print(f"wrote {args.svg}")
    gate = doc.get("gate")
    if gate is not None and not gate["ok"] and not args.no_gate:
        print("policy-bench gate FAILED", file=sys.stderr)
        return 1
    return 0


def _load_trace_or_exit(path: str):
    from repro.replay import TraceFormatError, load_trace

    try:
        return load_trace(path)
    except OSError as exc:
        raise SystemExit(f"cannot read trace {path!r}: {exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"malformed trace {path!r}: {exc}")


def cmd_replay_summary(args: argparse.Namespace) -> int:
    from repro.replay import reconstruct

    index = _load_trace_or_exit(args.trace)
    first, last = index.span
    print(f"{args.trace}: {len(index)} records spanning "
          f"t={first:.1f}s..{last:.1f}s")
    config = index.config
    if config is not None:
        fields = ", ".join(f"{k}={config.data[k]}" for k in sorted(config.data))
        print(f"  config:  {fields}")
    print("  footer:  " + ("present (run completed)" if index.summary is not None
                           else "MISSING (run crashed or still in flight)"))
    for rtype in sorted(index.by_type):
        print(f"  {rtype:<24s} {index.count(rtype):>7d}")
    state = reconstruct(index, strict=False)
    loc = state.locality_stats()
    print(f"  reconstructed: {len(state.jobs)} jobs, "
          f"locality {loc.locality:.3f} ({loc.node_local}/{loc.total} maps), "
          f"{state.blocks_created} replicas created, "
          f"{state.blocks_evicted} evicted")
    return 0


def cmd_replay_verify(args: argparse.Namespace) -> int:
    from repro.replay import ReconstructionError, reconstruct

    index = _load_trace_or_exit(args.trace)
    try:
        state = reconstruct(index)
    except ReconstructionError as exc:
        print(f"reconstruction failed: {exc}")
        return 1
    report = state.verify()
    print(report.format())
    if not report.checks:
        return 1  # nothing to verify against: no run.summary footer
    return 0 if report.ok else 1


def cmd_replay_diff(args: argparse.Namespace) -> int:
    from repro.replay import TraceFormatError, diff_traces

    try:
        diff = diff_traces(args.trace_a, args.trace_b, context=args.context)
    except OSError as exc:
        raise SystemExit(f"cannot read trace: {exc}")
    except TraceFormatError as exc:
        raise SystemExit(f"malformed trace: {exc}")
    print(diff.format())
    return 0 if diff.identical else 1


def _rebuild_whatif_workload(header, args: argparse.Namespace) -> Workload:
    """Rebuild the traced run's workload from the header (or --workload)."""
    if args.workload:
        return _workload(args)
    name = header.data["workload"]
    if name not in ("wl1", "wl2"):
        raise SystemExit(
            f"trace was recorded against workload {name!r}, which cannot be "
            "resynthesized from the header; pass --workload PATH to the "
            "saved workload file"
        )
    rng = np.random.default_rng(args.seed)
    synth = synthesize_wl1 if name == "wl1" else synthesize_wl2
    return synth(rng, n_jobs=header.data["jobs"])


def cmd_replay_whatif(args: argparse.Namespace) -> int:
    """Reconstruct a traced run to time t, apply patches, resume live."""
    import dataclasses

    from repro.checkpoint import parse_patch
    from repro.checkpoint.snapshot import snapshot as take_snapshot
    from repro.experiments.runner import Simulation, make_tracer
    from repro.experiments.serialize import config_from_dict

    index = _load_trace_or_exit(args.trace)
    header = index.config
    if header is None:
        raise SystemExit(f"trace {args.trace!r} has no run.config header")
    payload = header.data.get("config")
    if payload is None:
        raise SystemExit(
            f"trace {args.trace!r} predates embedded configs; re-record it "
            "with `repro run --trace` to use what-if replay"
        )
    try:
        patches = [parse_patch(spec) for spec in args.patch]
    except ValueError as exc:
        raise SystemExit(str(exc))

    config = config_from_dict(payload)
    if args.seed is None:
        args.seed = config.seed
    workload = _rebuild_whatif_workload(header, args)
    config = dataclasses.replace(config, trace_path=args.out)

    base = Simulation(config, workload, tracer=make_tracer(config))
    base.run(until=args.at)
    snap = take_snapshot(base)
    base.close()
    print(f"reconstructed to t={snap.time:.1f}s "
          f"({snap.events_processed} events replayed)")

    fork = snap.restore(trace_path=args.out)
    for patch in patches:
        patch.apply(fork)
        print(f"  applied: {patch.describe()}")
    fork.run()
    result = fork.finalize()
    fork.close()
    print(result.summary_row())
    if args.out:
        from repro.replay import diff_traces

        print(f"  what-if trace written: {args.out}")
        diff = diff_traces(args.trace, args.out)
        if diff.identical:
            print("  no divergence from the original run")
        else:
            rec = diff.divergence.record_a or diff.divergence.record_b
            print(f"  diverges from the original at event "
                  f"#{diff.divergence.index} (t={rec.time:.1f}s); "
                  f"run `repro replay diff` for the full report")
    return 0


def _checkpoint_config(args: argparse.Namespace) -> ExperimentConfig:
    scarlett = (
        ScarlettConfig(epoch_s=args.scarlett_epoch, budget=args.budget)
        if args.scarlett
        else None
    )
    return ExperimentConfig(
        cluster_spec=_CLUSTERS[args.cluster],
        scheduler=args.scheduler,
        dare=_policy(args),
        seed=args.seed,
        scarlett=scarlett,
        failures=_parse_failures(args.fail),
        trace_path=args.trace,
        check_invariants=args.check_invariants,
    )


def cmd_checkpoint_save(args: argparse.Namespace) -> int:
    """Run a cell up to a time horizon and save the frozen state."""
    from repro.checkpoint.snapshot import snapshot as take_snapshot
    from repro.experiments.runner import Simulation, make_tracer

    workload = _workload(args)
    config = _checkpoint_config(args)
    sim = Simulation(config, workload, tracer=make_tracer(config))
    sim.run(until=args.at)
    snap = take_snapshot(sim)
    sim.close()
    snap.save(args.out)
    print(f"checkpoint written: {args.out}")
    print(f"  t={snap.time:.1f}s, {snap.events_processed} events, "
          f"{len(snap.payload)} state bytes"
          + (f", {len(snap.trace_prefix)} trace-prefix bytes"
             if snap.trace_prefix is not None else ""))
    return 0


def cmd_checkpoint_resume(args: argparse.Namespace) -> int:
    """Restore a saved checkpoint, optionally patch it, and run to the end."""
    from repro.checkpoint import Snapshot, parse_patch

    try:
        snap = Snapshot.load(args.path)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load checkpoint {args.path!r}: {exc}")
    try:
        patches = [parse_patch(spec) for spec in args.patch]
    except ValueError as exc:
        raise SystemExit(str(exc))
    try:
        sim = snap.restore(trace_path=args.trace)
    except ValueError as exc:
        raise SystemExit(str(exc))
    print(f"resumed from t={snap.time:.1f}s "
          f"({snap.events_processed} events already simulated)")
    for patch in patches:
        patch.apply(sim)
        print(f"  applied: {patch.describe()}")
    sim.run()
    result = sim.finalize()
    sim.close()
    print(result.summary_row())
    if args.trace:
        print(f"  trace written: {args.trace} "
              "(byte-identical to an uninterrupted run)")
    return 0


def cmd_synth(args: argparse.Namespace) -> int:
    from repro.workloads.swim_io import save_workload

    workload = _workload(args)
    if args.out:
        save_workload(workload, args.out)
        print(f"wrote {workload.n_jobs} jobs / {len(workload.catalog)} files "
              f"to {args.out}")
    if args.stats or not args.out:
        from repro.workloads.stats import compute_stats

        print(compute_stats(workload).report())
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import figures as F
    from repro.experiments.figures import print_fig7, print_sweep
    from repro.experiments.sweep import ResultCache

    only = set(args.only.split(",")) if args.only else None
    workers = args.workers
    cache = ResultCache(args.cache_dir) if args.cache_dir else None

    def want(tag: str) -> bool:
        return only is None or tag in only

    if want("fig7"):
        print_fig7(F.fig7_cct(n_jobs=args.jobs, jobs=workers, cache=cache))
    if want("fig8"):
        print_sweep(F.fig8a_p_sweep(n_jobs=args.jobs, jobs=workers, cache=cache), "p")
        print_sweep(
            F.fig8b_threshold_sweep(n_jobs=args.jobs, jobs=workers, cache=cache),
            "threshold",
        )
    if want("fig9"):
        print_sweep(
            F.fig9a_budget_sweep_lru(n_jobs=args.jobs, jobs=workers, cache=cache),
            "budget",
        )
    if want("fig10"):
        print_fig7(
            F.fig10_ec2(n_jobs=args.jobs, jobs=workers, cache=cache), "Fig. 10 (EC2)"
        )
    if want("fig11"):
        for pt in F.fig11_uniformity(n_jobs=args.jobs, jobs=workers, cache=cache):
            print(f"p={pt.p:.1f} cv {pt.cv_before:.3f} -> {pt.cv_after:.3f}")
    return 0


def _parse_address_or_exit(spec: str):
    from repro.experiments.service import parse_address

    try:
        return parse_address(spec)
    except ValueError as exc:
        raise SystemExit(str(exc))


def cmd_sweep(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    import os

    from repro.experiments import sweep as S

    if args.worker:
        from repro.experiments import service as svc

        address = _parse_address_or_exit(args.worker)
        cache = None if args.no_cache else S.ResultCache(args.cache_dir)
        try:
            chaos = svc.parse_chaos(args.chaos)
        except ValueError as exc:
            raise SystemExit(str(exc))
        try:
            stats = svc.run_worker(
                address,
                worker_id=args.worker_id or None,
                cache=cache,
                no_cache=args.no_cache,
                poll_s=args.poll,
                chaos=chaos,
            )
        except svc.ServiceError as exc:
            raise SystemExit(str(exc))
        print(f"worker {stats.worker_id}: {stats.leases} leases, "
              f"{stats.completed} completed ({stats.cached} cached), "
              f"{stats.failed} failed, {stats.rejected} duplicate")
        return 0
    if args.status:
        from repro.experiments import service as svc

        address = _parse_address_or_exit(args.status)
        try:
            reply = svc.request(address, {"op": "status"})
        except (OSError, svc.ServiceError) as exc:
            raise SystemExit(
                f"cannot reach coordinator at {address[0]}:{address[1]}: {exc}"
            )
        status = reply.get("status", reply)
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(svc.format_status_table(status))
        return 0

    try:
        cells = S.build_grid(args.grid, n_jobs=args.n_jobs, seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.nodes or args.mesoscale:
        # re-run the whole grid on a synthetic scale cluster; validated
        # up front so an infeasible combination dies here with advice,
        # not mid-sweep with an OOM or a silent invariant skip
        if not args.nodes:
            raise SystemExit("--mesoscale requires --nodes (scale clusters only)")
        spec = _scale_spec_or_exit(args.nodes, args.mesoscale, args.check_invariants)
        cells = [
            c._replace(config=dataclasses.replace(c.config, cluster_spec=spec))
            for c in cells
        ]
    if args.shard:
        try:
            cells = S.shard_cells(cells, args.shard)
        except ValueError as exc:
            raise SystemExit(str(exc))
    if args.check_invariants:
        cells = [
            c._replace(config=dataclasses.replace(c.config, check_invariants=True))
            for c in cells
        ]
    if args.trace_dir:
        os.makedirs(args.trace_dir, exist_ok=True)
        cells = [
            c._replace(config=dataclasses.replace(c.config, trace_path=os.path.join(
                args.trace_dir, c.label().replace("/", "_") + ".jsonl")))
            for c in cells
        ]
    cache = None if args.no_cache else S.ResultCache(args.cache_dir)
    if args.serve:
        from repro.experiments import service as svc

        host, port = _parse_address_or_exit(args.serve)
        coordinator = svc.Coordinator(
            cells,
            host=host,
            port=port,
            queue_path=args.queue_path,
            cache=cache,
            lease_s=args.lease,
            max_attempts=args.max_attempts,
            steal_after_s=args.steal_after or None,
        )
        coordinator.start()
        bound_host, bound_port = coordinator.address
        verb = "resumed" if coordinator.resumed else "serving"
        print(f"coordinator listening on {bound_host}:{bound_port} "
              f"({verb} {len(cells)} cells; lease {args.lease:g}s)", flush=True)
        try:
            coordinator.wait()
        finally:
            coordinator.close()
        outcomes = coordinator.outcomes()
        status = coordinator.status()
        print(f"service: {status['leases_granted']} leases, "
              f"{status['expirations']} expired, {status['steals']} stolen, "
              f"{status['duplicates']} duplicate completions, "
              f"{status['quarantined']} quarantined")
    else:
        outcomes = S.run_cells(
            cells,
            jobs=args.jobs,
            cache=cache,
            timeout_s=args.timeout or None,
            progress=S.cache_progress(cache),
        )
    n_failed = sum(1 for o in outcomes if not o.ok)
    n_cached = sum(1 for o in outcomes if o.from_cache)
    if cache is not None:
        print(f"sweep: {len(outcomes)} cells, {n_cached} cached, "
              f"{n_failed} failed ({cache.hits} cache hits, "
              f"{cache.misses} misses, {cache.corrupt} corrupt)")
    else:
        print(f"sweep: {len(outcomes)} cells, {n_failed} failed (cache off)")
    if args.out:
        doc = S.outcomes_to_doc(
            outcomes, grid=args.grid, n_jobs=args.n_jobs,
            seed=args.seed, shard=args.shard,
        )
        with open(args.out, "w") as fh:
            fh.write(S.doc_to_text(doc))
        print(f"wrote {args.out}")
    for o in outcomes:
        if not o.ok:
            print(f"FAILED {o.cell.label()}:", file=sys.stderr)
            print("  " + o.error.strip().replace("\n", "\n  "), file=sys.stderr)
    return 1 if n_failed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the long-lived HTTP service (REST + SSE) over the sweep executor."""
    import asyncio

    from repro.experiments.jobs import JobManager
    from repro.experiments.sweep import ResultCache
    from repro.server.app import Server, run_server
    from repro.server.jobstore import JobJournal, restore

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    journal = JobJournal(args.jobstore) if args.jobstore else None
    manager = JobManager(
        cache=cache,
        workers=args.workers,
        isolation=args.isolation,
        max_queued_jobs=args.max_jobs,
        max_cells_per_job=args.max_cells,
        cell_timeout_s=args.timeout or None,
        lease_s=args.lease,
        max_attempts=args.max_attempts,
        journal=journal,
    )
    if args.jobstore:
        adopted = restore(manager, args.jobstore)
        if adopted:
            print(f"restored {adopted} job(s) from {args.jobstore}", flush=True)
    manager.start()
    server = Server(
        manager,
        host=args.host,
        port=args.port,
        rate=args.rate,
        burst=args.burst,
        max_body_bytes=args.max_body_bytes,
        request_timeout_s=args.request_timeout,
        keepalive_s=args.keepalive,
        shutdown_grace_s=args.grace,
    )
    try:
        asyncio.run(run_server(server))
    except KeyboardInterrupt:
        pass
    print("server drained", flush=True)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report
    from repro.experiments.sweep import ResultCache

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    paths = write_report(
        args.out, n_jobs=args.jobs, seed=args.seed, jobs=args.workers, cache=cache
    )
    for kind, path in paths.items():
        print(f"wrote {kind}: {path}")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    from repro.viz.paper_figures import render_all

    paths = render_all(args.out, n_jobs=args.jobs, seed=args.seed)
    for path in paths:
        print(f"wrote {path}")
    return 0


# -- entry point ----------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="DARE (CLUSTER 2011) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("probe", help="cluster measurements (Tables I-II, Fig. 1)")
    p.add_argument("--seed", type=int, default=20110926)
    p.set_defaults(func=cmd_probe)

    p = sub.add_parser("analyze", help="audit-log analyses (Figs. 2-5)")
    p.add_argument("--seed", type=int, default=20110926)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("run", help="run one cluster experiment")
    p.add_argument("--workload", default="wl1",
                   help="wl1, wl2, a saved .json, or a SWIM .tsv")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--cluster", choices=sorted(_CLUSTERS), default="cct")
    p.add_argument("--nodes", type=int, default=0, metavar="N",
                   help="run on a synthetic scale cluster of N nodes "
                        f"(lite network, 40-node racks; max {MAX_SCALE_NODES:,}) "
                        "instead of --cluster")
    p.add_argument("--mesoscale", action="store_true",
                   help="with --nodes: pool idle nodes into per-rack hubs "
                        f"(required above {MESOSCALE_FLOOR:,} nodes)")
    p.add_argument("--scheduler", choices=("fifo", "fair", "fair-skip"), default="fifo")
    p.add_argument("--policy",
                   choices=("off", "lru", "et", "lfu", "learned", "rollout"),
                   default="et",
                   help="replica management: the paper baselines (lru/et), "
                        "the lfu ablation, the offline-trained scorer "
                        "(learned), or the checkpoint-fork rollout engine "
                        "over a greedy host (rollout)")
    p.add_argument("--p", type=float, default=0.3, help="ElephantTrap probability")
    p.add_argument("--threshold", type=int, default=1)
    p.add_argument("--budget", type=float, default=0.2)
    p.add_argument("--model", default="", metavar="PATH",
                   help="model file for --policy learned (written by "
                        "`repro train`; default: the baked-in weights)")
    p.add_argument("--rollout-epoch", type=float, default=10.0, metavar="S",
                   help="simulation seconds between rollout decision epochs")
    p.add_argument("--rollout-branches", type=int, default=4, metavar="N",
                   help="candidate actions forked per rollout epoch")
    p.add_argument("--rollout-horizon", type=float, default=0.0, metavar="S",
                   help="fork lookahead; 0 runs forks to completion")
    p.add_argument("--rollout-max-epochs", type=int, default=64, metavar="N")
    p.add_argument("--rollout-jobs", type=int, default=1, metavar="N",
                   help="fork-scoring worker processes (decisions and "
                        "trace are byte-identical at any value)")
    p.add_argument("--rollout-prune", type=int, default=0, metavar="K",
                   help="fork only the top-K candidates by learned "
                        "pre-score; 0 forks every candidate")
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--scarlett", action="store_true",
                   help="enable the epoch-based proactive baseline")
    p.add_argument("--scarlett-epoch", type=float, default=600.0)
    p.add_argument("--fail", action="append", default=[],
                   metavar="TIME:NODE", help="inject a node failure")
    p.add_argument("--trace", default="", metavar="PATH",
                   help="write a JSONL trace of the run to PATH")
    p.add_argument("--trace-engine-events", action="store_true",
                   help="also record the per-callback engine.event firehose "
                        "(huge traces; gives 'replay diff' event-level "
                        "alignment)")
    p.add_argument("--check-invariants", action="store_true",
                   help="validate cross-component invariants at every "
                        "traced event (aborts on the first violation)")
    p.add_argument("--profile", action="store_true",
                   help="sample per-callback costs and print the profile "
                        "report after the run")
    p.add_argument("--profile-every", type=int, default=7, metavar="N",
                   help="profile every Nth callback (default 7)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("perf",
                       help="profile one simulation cell: events/sec plus a "
                            "per-callback-bucket cost report")
    p.add_argument("--workload", default="wl1",
                   help="wl1, wl2, a saved .json, or a SWIM .tsv")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--cluster", choices=sorted(_CLUSTERS), default="cct")
    p.add_argument("--scheduler", choices=("fifo", "fair", "fair-skip"), default="fifo")
    p.add_argument("--policy", choices=("off", "lru", "et", "lfu", "learned"),
                   default="et")
    p.add_argument("--p", type=float, default=0.3, help="ElephantTrap probability")
    p.add_argument("--threshold", type=int, default=1)
    p.add_argument("--budget", type=float, default=0.2)
    p.add_argument("--model", default="", metavar="PATH",
                   help="model file for --policy learned")
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--every", type=int, default=7, metavar="N",
                   help="sample every Nth callback (default 7)")
    p.add_argument("--top", type=int, default=12,
                   help="buckets to show in the report")
    p.add_argument("--json", default="", metavar="PATH",
                   help="also write the report as JSON to PATH")
    p.set_defaults(func=cmd_perf)

    p = sub.add_parser("train",
                       help="fit the learned policy's logistic scorer on a "
                            "JSONL trace corpus")
    p.add_argument("--traces", required=True, metavar="DIR",
                   help="directory of .jsonl run traces to fit against")
    p.add_argument("--synthesize", action="store_true",
                   help="first populate DIR with the smoke corpus "
                        "(greedy-lru + elephant-trap cells per seed)")
    p.add_argument("--jobs", type=int, default=48,
                   help="jobs per synthesized corpus run")
    p.add_argument("--seeds", type=int, nargs="+",
                   default=[20110926, 7, 11, 23],
                   help="workload seeds for --synthesize")
    p.add_argument("--epochs", type=int, default=400,
                   help="gradient-descent epochs")
    p.add_argument("--lr", type=float, default=0.5, help="learning rate")
    p.add_argument("--out", default="", metavar="PATH",
                   help="write the fitted model JSON here")
    p.set_defaults(func=cmd_train)

    p = sub.add_parser("policy-bench",
                       help="run the learned-vs-baseline policy grid on "
                            "pinned seeds and check the rollout gate")
    p.add_argument("--jobs", type=int, default=32,
                   help="jobs per run (smoke tier)")
    p.add_argument("--full", action="store_true",
                   help="run the nightly tier's larger workloads instead")
    p.add_argument("--seeds", type=int, nargs="+", default=[],
                   help="override the pinned workload seeds")
    p.add_argument("--model", default="", metavar="PATH",
                   help="model file for the learned column")
    p.add_argument("--json", default="", metavar="PATH",
                   help="write the benchmark document here")
    p.add_argument("--svg", default="", metavar="PATH",
                   help="write the figure-grid SVG here")
    p.add_argument("--no-gate", action="store_true",
                   help="report but do not fail on a gate violation")
    p.add_argument("--verbose", action="store_true",
                   help="print each cell as it runs")
    p.set_defaults(func=cmd_policy_bench)

    p = sub.add_parser("replay", help="inspect, verify, and diff JSONL run traces")
    rsub = p.add_subparsers(dest="mode", required=True)
    r = rsub.add_parser("summary",
                        help="record counts and reconstructed headline stats")
    r.add_argument("trace")
    r.set_defaults(func=cmd_replay_summary)
    r = rsub.add_parser("verify",
                        help="rebuild state from records and check it against "
                             "the run.summary footer (exit 0 = exact match)")
    r.add_argument("trace")
    r.set_defaults(func=cmd_replay_verify)
    r = rsub.add_parser("diff",
                        help="bisect two traces to their first divergent record")
    r.add_argument("trace_a")
    r.add_argument("trace_b")
    r.add_argument("--context", type=int, default=10,
                   help="shared-prefix records to show before the divergence")
    r.set_defaults(func=cmd_replay_diff)
    r = rsub.add_parser("whatif",
                        help="reconstruct a traced run to time T, apply "
                             "patches, and resume it live")
    r.add_argument("trace")
    r.add_argument("--at", type=float, required=True, metavar="T",
                   help="simulation time to fork the run at")
    r.add_argument("--patch", action="append", default=[], metavar="SPEC",
                   help="counterfactual edit: kill:NODE[:DELAY], "
                        "policy:off|lru|lfu|et, or pin:BLOCK:NODE "
                        "(repeatable; none = plain resume)")
    r.add_argument("--out", default="", metavar="PATH",
                   help="write the what-if run's trace to PATH and report "
                        "its first divergence from the original")
    r.add_argument("--workload", default="",
                   help="workload file, when the trace was not recorded "
                        "against synthesized wl1/wl2")
    r.add_argument("--jobs", type=int, default=200,
                   help="workload length (only with --workload)")
    r.add_argument("--seed", type=int, default=None,
                   help="workload synthesis seed (default: the traced "
                        "run's seed)")
    r.set_defaults(func=cmd_replay_whatif)

    p = sub.add_parser("checkpoint",
                       help="freeze a simulation mid-run and resume it later")
    csub = p.add_subparsers(dest="mode", required=True)
    c = csub.add_parser("save", help="run a cell up to --at and save its state")
    c.add_argument("--at", type=float, required=True, metavar="T",
                   help="simulation time to pause and snapshot at")
    c.add_argument("--out", required=True, metavar="PATH",
                   help="checkpoint file to write")
    c.add_argument("--workload", default="wl1",
                   help="wl1, wl2, a saved .json, or a SWIM .tsv")
    c.add_argument("--jobs", type=int, default=200)
    c.add_argument("--cluster", choices=sorted(_CLUSTERS), default="cct")
    c.add_argument("--scheduler", choices=("fifo", "fair", "fair-skip"),
                   default="fifo")
    c.add_argument("--policy", choices=("off", "lru", "et", "lfu", "learned"),
                   default="et")
    c.add_argument("--p", type=float, default=0.3,
                   help="ElephantTrap probability")
    c.add_argument("--threshold", type=int, default=1)
    c.add_argument("--budget", type=float, default=0.2)
    c.add_argument("--model", default="", metavar="PATH",
                   help="model file for --policy learned")
    c.add_argument("--seed", type=int, default=20110926)
    c.add_argument("--scarlett", action="store_true",
                   help="enable the epoch-based proactive baseline")
    c.add_argument("--scarlett-epoch", type=float, default=600.0)
    c.add_argument("--fail", action="append", default=[],
                   metavar="TIME:NODE", help="inject a node failure")
    c.add_argument("--trace", default="", metavar="PATH",
                   help="trace the run; the prefix is embedded so a resumed "
                        "trace is byte-identical to an uninterrupted one")
    c.add_argument("--check-invariants", action="store_true",
                   help="validate cross-component invariants while running")
    c.set_defaults(func=cmd_checkpoint_save)
    c = csub.add_parser("resume",
                        help="restore a checkpoint and run it to completion")
    c.add_argument("path", help="checkpoint file written by `checkpoint save`")
    c.add_argument("--trace", default="", metavar="PATH",
                   help="continue the checkpointed trace at PATH (requires "
                        "the source run to have traced)")
    c.add_argument("--patch", action="append", default=[], metavar="SPEC",
                   help="counterfactual edit applied before resuming "
                        "(kill:NODE[:DELAY], policy:..., pin:BLOCK:NODE)")
    c.set_defaults(func=cmd_checkpoint_resume)

    p = sub.add_parser("synth", help="synthesize, inspect, and save a workload")
    p.add_argument("--workload", default="wl1")
    p.add_argument("--jobs", type=int, default=500)
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--out", default="", help="save to this JSON path")
    p.add_argument("--stats", action="store_true",
                   help="print descriptive statistics")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("figures", help="regenerate evaluation figures")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--only", default="", help="comma list: fig7,fig8,fig9,fig10,fig11")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes for the underlying sweep")
    p.add_argument("--cache-dir", default="", metavar="DIR",
                   help="reuse sweep results cached in DIR")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("render", help="render every figure to SVG files")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--out", default="figures_svg")
    p.set_defaults(func=cmd_render)

    p = sub.add_parser(
        "sweep",
        help="run an experiment grid across worker processes with a "
             "content-addressed result cache",
    )
    p.add_argument("--grid", default="smoke",
                   help="named grid: smoke, fig7, fig8, fig9, fig10, fig11, "
                        "ablations, or all")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes (1 = run in-process)")
    p.add_argument("--n-jobs", type=int, default=200, metavar="N",
                   help="workload length (jobs per trace) for every cell")
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--nodes", type=int, default=0, metavar="N",
                   help="run every cell on a synthetic scale cluster of N "
                        f"nodes (max {MAX_SCALE_NODES:,}) instead of the "
                        "grid's own clusters")
    p.add_argument("--mesoscale", action="store_true",
                   help="with --nodes: pool idle nodes into per-rack hubs "
                        f"(required above {MESOSCALE_FLOOR:,} nodes)")
    p.add_argument("--cache-dir", default=".sweep-cache", metavar="DIR",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result cache")
    p.add_argument("--shard", default="", metavar="K/M",
                   help="run only the Kth of M round-robin shards (1-based); "
                        "the M shards partition the grid exactly")
    p.add_argument("--timeout", type=float, default=0.0, metavar="SECONDS",
                   help="kill any cell exceeding this wall time (workers "
                        "only; 0 = no limit)")
    p.add_argument("--check-invariants", action="store_true",
                   help="run every cell with cross-component invariant "
                        "checks enabled")
    p.add_argument("--trace-dir", default="", metavar="DIR",
                   help="write one JSONL trace per cell into DIR (disables "
                        "cache reads for those cells)")
    p.add_argument("--out", default="", metavar="PATH",
                   help="write all outcomes as a JSON document to PATH")
    service = p.add_argument_group(
        "distributed service",
        "run the grid as a coordinator + remote workers sharing one "
        "result cache (see docs/SWEEP_SERVICE.md)",
    )
    service.add_argument("--serve", default="", metavar="HOST:PORT",
                         help="serve this grid as a coordinator (port 0 = "
                              "pick a free port) and exit when it is done")
    service.add_argument("--worker", default="", metavar="HOST:PORT",
                         help="run as a worker pulling cells from a "
                              "coordinator until its grid is done")
    service.add_argument("--status", default="", metavar="HOST:PORT",
                         help="print a coordinator's queue status and exit")
    service.add_argument("--json", action="store_true",
                         help="with --status: print the raw status document "
                              "(the same serializer the server's "
                              "/api/cluster uses) instead of the table")
    service.add_argument("--queue-path", default="", metavar="PATH",
                         help="persist the coordinator's work queue to PATH "
                              "(an existing journal resumes the grid)")
    service.add_argument("--lease", type=float, default=60.0, metavar="SECONDS",
                         help="lease duration; an unrenewed lease this old "
                              "is reclaimed (default 60)")
    service.add_argument("--max-attempts", type=int, default=3, metavar="N",
                         help="quarantine a cell after N failed attempts "
                              "(default 3)")
    service.add_argument("--steal-after", type=float, default=0.0,
                         metavar="SECONDS",
                         help="idle workers steal a speculative duplicate "
                              "lease on stragglers older than this "
                              "(default: half the lease)")
    service.add_argument("--poll", type=float, default=0.5, metavar="SECONDS",
                         help="worker poll interval while the queue is empty")
    service.add_argument("--worker-id", default="", metavar="ID",
                         help="worker name in leases/status (default: "
                              "hostname-pid)")
    service.add_argument("--chaos", default="", metavar="SPEC",
                         help="worker fault injection for tests: "
                              "kill-after-lease:N, hang-after-lease:N, or "
                              "delay-complete:SECONDS")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="serve experiment submissions over HTTP: REST API + SSE "
             "trace streaming (see docs/SERVER.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8750,
                   help="listen port (0 = pick a free port)")
    p.add_argument("--workers", type=int, default=2, metavar="N",
                   help="executor threads leasing cells from the job queue")
    p.add_argument("--isolation", choices=("process", "thread"),
                   default="process",
                   help="run each cell in a worker process (crash/timeout "
                        "isolation) or in-thread")
    p.add_argument("--cache-dir", default=".sweep-cache", metavar="DIR",
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="ignore and don't write the result cache")
    p.add_argument("--jobstore", default="", metavar="PATH",
                   help="journal submissions to PATH; an existing journal "
                        "restores its jobs on startup")
    p.add_argument("--max-jobs", type=int, default=16, metavar="N",
                   help="bound on active jobs; beyond it submissions get 503")
    p.add_argument("--max-cells", type=int, default=512, metavar="N",
                   help="largest grid accepted per job (413 beyond)")
    p.add_argument("--timeout", type=float, default=0.0, metavar="SECONDS",
                   help="kill any cell exceeding this wall time "
                        "(process isolation only; 0 = no limit)")
    p.add_argument("--lease", type=float, default=3600.0, metavar="SECONDS")
    p.add_argument("--max-attempts", type=int, default=2, metavar="N",
                   help="quarantine a cell after N failed attempts")
    p.add_argument("--rate", type=float, default=20.0, metavar="R",
                   help="per-client request rate (tokens/second)")
    p.add_argument("--burst", type=float, default=40.0, metavar="B",
                   help="per-client burst allowance (bucket size)")
    p.add_argument("--max-body-bytes", type=int, default=1_048_576)
    p.add_argument("--request-timeout", type=float, default=10.0,
                   metavar="SECONDS",
                   help="per-read timeout; stalled clients are disconnected")
    p.add_argument("--keepalive", type=float, default=15.0, metavar="SECONDS",
                   help="SSE keepalive comment interval")
    p.add_argument("--grace", type=float, default=30.0, metavar="SECONDS",
                   help="shutdown grace for in-flight cells on SIGTERM")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("report", help="run everything; write results.json + REPORT.md")
    p.add_argument("--jobs", type=int, default=200)
    p.add_argument("--seed", type=int, default=20110926)
    p.add_argument("--out", default="results")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="worker processes for the underlying sweep")
    p.add_argument("--cache-dir", default="", metavar="DIR",
                   help="reuse sweep results cached in DIR")
    p.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
