"""Named registries for replication policies and cluster services.

Two plugin kinds:

* **node policies** — per-node :class:`~repro.policies.base
  .ReplicationPolicy` instances built from a :class:`~repro.policies.base
  .PolicyContext`; the :class:`~repro.core.manager.DareReplicationService`
  resolves ``DareConfig.policy.value`` here (``greedy-lru``,
  ``greedy-lfu``, ``elephant-trap``, ``learned``);
* **services** — cluster-level replication baselines with their own event
  loops (``scarlett``, ``cdrm``), resolved by
  :class:`~repro.experiments.runner.Simulation`.

The built-in factories construct the legacy classes with byte-identical
arguments (same RNG stream names, same parameter order), which
``tests/test_policies.py`` pins down: a run through the registry path is
byte-identical to one through the old inline constructors.

Third-party plugins register with::

    from repro.policies import register_policy

    @register_policy("my-policy")
    def _build(ctx):
        return MyPolicy(ctx.config.budget, ctx.rng("my-policy"))
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.policies.base import PolicyContext, UnknownPolicyError

PolicyFactory = Callable[[PolicyContext], object]

_POLICIES: Dict[str, PolicyFactory] = {}
_SERVICES: Dict[str, Callable[..., object]] = {}


def register_policy(name: str, factory: PolicyFactory = None):
    """Register a node-policy factory under ``name`` (usable as decorator)."""
    def _register(fn: PolicyFactory) -> PolicyFactory:
        if name in _POLICIES:
            raise ValueError(f"policy {name!r} is already registered")
        _POLICIES[name] = fn
        return fn

    return _register if factory is None else _register(factory)


def register_service(name: str, factory: Callable[..., object] = None):
    """Register a cluster-service factory under ``name``."""
    def _register(fn):
        if name in _SERVICES:
            raise ValueError(f"service {name!r} is already registered")
        _SERVICES[name] = fn
        return fn

    return _register if factory is None else _register(factory)


def policy_names() -> Tuple[str, ...]:
    """Registered node-policy names, sorted."""
    return tuple(sorted(_POLICIES))


def service_names() -> Tuple[str, ...]:
    """Registered service names, sorted."""
    return tuple(sorted(_SERVICES))


def create_policy(name: str, ctx: PolicyContext):
    """Build the node policy registered under ``name``."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown replication policy {name!r} "
            f"(registered: {', '.join(policy_names())})"
        ) from None
    return factory(ctx)


def create_service(name: str, config, **parts):
    """Build the cluster service registered under ``name``.

    ``parts`` carries the simulation components a service may wire into:
    ``namenode``, ``engine``, ``traffic``, ``rng``, ``stop_when``,
    ``tracer``.  Each factory picks the subset its constructor takes.
    """
    try:
        factory = _SERVICES[name]
    except KeyError:
        raise UnknownPolicyError(
            f"unknown replication service {name!r} "
            f"(registered: {', '.join(service_names())})"
        ) from None
    return factory(config, **parts)


# -- built-in node policies ---------------------------------------------------


@register_policy("greedy-lru")
def _greedy_lru(ctx: PolicyContext):
    from repro.core.greedy import GreedyLRUPolicy

    return GreedyLRUPolicy()


@register_policy("greedy-lfu")
def _greedy_lfu(ctx: PolicyContext):
    from repro.core.greedy import GreedyLFUPolicy

    return GreedyLFUPolicy()


@register_policy("elephant-trap")
def _elephant_trap(ctx: PolicyContext):
    from repro.core.elephant_trap import ElephantTrapPolicy

    # the historical stream name, predating the registry: byte-parity
    # with the legacy inline constructor requires reusing it verbatim
    return ElephantTrapPolicy(
        ctx.config.p,
        ctx.config.threshold,
        ctx.streams.python(f"dare.coin.{ctx.node_id}"),
    )


@register_policy("learned")
def _learned(ctx: PolicyContext):
    from repro.policies.learned import AccessStats, LearnedPolicy

    stats = ctx.shared.setdefault("access_stats", AccessStats())
    return LearnedPolicy(ctx.config.model, ctx.node_id, ctx.namenode, stats)


# -- built-in services --------------------------------------------------------


@register_service("scarlett")
def _scarlett(config, *, namenode, engine, traffic, rng, stop_when, tracer):
    from repro.baselines.scarlett import ScarlettService

    return ScarlettService(
        config, namenode, engine, traffic, rng, stop_when=stop_when, tracer=tracer
    )


@register_service("cdrm")
def _cdrm(config, *, namenode, engine, traffic, rng, stop_when, tracer):
    from repro.baselines.cdrm import CdrmService

    return CdrmService(config, namenode, engine, traffic, rng, stop_when=stop_when)
