"""Offline training of the learned policy against the trace corpus.

``repro train`` turns the JSONL traces the sweeps already produce (or a
freshly synthesized corpus) into a logistic model:

* :func:`dataset_from_trace` replays a trace's ``task.scheduled``
  records through the same :class:`~repro.policies.learned.AccessStats`
  the live policy updates, emitting one example per **remote-read
  decision point** — exactly where
  ``DareReplicationService.on_map_task`` would consult the policy.  The
  label is whether the block is accessed again later in the trace (a
  kept replica would have had a chance to serve that access).
* :func:`fit_logistic` fits the weights by deterministic full-batch
  gradient descent on standardized features, then folds the
  standardization back into the raw-feature weights so live inference
  needs no scaler object.

Everything is stdlib and deterministic: the same traces always produce
the same weights.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterable, List, NamedTuple, Sequence, Tuple

from repro.policies.learned import N_FEATURES, AccessStats, feature_vector, sigmoid

Example = Tuple[List[float], int]


def dataset_from_trace(path: str) -> List[Example]:
    """(features, label) pairs for every remote-read decision in a trace."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))

    replication = 3
    for rec in records:
        if rec.get("type") == "run.config":
            replication = int(rec.get("replication", replication))
            break

    # how many accesses of each block remain after the current record;
    # label = "the block is read again later in the trace"
    remaining: Dict[int, int] = {}
    for rec in records:
        if rec.get("type") == "task.scheduled" and rec.get("kind") == "map":
            bid = rec.get("block")
            if bid is not None:
                remaining[bid] = remaining.get(bid, 0) + 1

    stats = AccessStats()
    replica_delta: Dict[int, int] = {}
    utilization: Dict[int, float] = {}
    examples: List[Example] = []
    for rec in records:
        rtype = rec.get("type")
        if rtype in ("budget.charge", "budget.refund"):
            cap = rec.get("capacity") or 0
            utilization[rec["node"]] = (rec.get("used", 0) / cap) if cap else 1.0
        elif rtype == "block.replicated":
            replica_delta[rec["block"]] = replica_delta.get(rec["block"], 0) + 1
        elif rtype == "block.evicted":
            replica_delta[rec["block"]] = replica_delta.get(rec["block"], 0) - 1
        elif rtype == "task.scheduled" and rec.get("kind") == "map":
            bid = rec.get("block")
            if bid is None:
                continue
            node = rec["node"]
            now = float(rec["t"])
            data_local = bool(rec.get("data_local"))
            # mirror the live ordering: the observer hook fires before
            # the policy is consulted, so features include this access
            stats.observe(node, bid, data_local, now)
            remaining[bid] -= 1
            if not data_local:
                features = feature_vector(
                    stats,
                    node,
                    bid,
                    replication + replica_delta.get(bid, 0),
                    utilization.get(node, 0.0),
                    now,
                )
                examples.append((features, 1 if remaining[bid] > 0 else 0))
    return examples


def dataset_from_traces(paths: Iterable[str]) -> List[Example]:
    """Concatenated datasets of several traces, in sorted path order."""
    examples: List[Example] = []
    for path in sorted(paths):
        examples.extend(dataset_from_trace(path))
    return examples


def trace_paths(trace_dir: str) -> List[str]:
    """The ``*.jsonl`` traces under a directory, sorted."""
    return sorted(
        os.path.join(trace_dir, name)
        for name in os.listdir(trace_dir)
        if name.endswith(".jsonl")
    )


class TrainResult(NamedTuple):
    """Fitted weights plus headline training metrics."""

    weights: Tuple[float, ...]
    loss: float
    accuracy: float
    n_examples: int
    n_positive: int


def fit_logistic(
    examples: Sequence[Example],
    *,
    epochs: int = 400,
    lr: float = 0.5,
    l2: float = 1e-4,
) -> TrainResult:
    """Deterministic full-batch logistic regression.

    Features are z-scored for conditioning, trained, and the scaler is
    folded back into the returned raw-feature weights (bias last), so
    they drop straight into ``DareConfig.model``.
    """
    if not examples:
        raise ValueError("cannot train on an empty dataset")
    n = len(examples)
    means = [0.0] * N_FEATURES
    for features, _ in examples:
        for j, f in enumerate(features):
            means[j] += f
    means = [m / n for m in means]
    variances = [0.0] * N_FEATURES
    for features, _ in examples:
        for j, f in enumerate(features):
            d = f - means[j]
            variances[j] += d * d
    stds = [math.sqrt(v / n) or 1.0 for v in variances]

    scaled = [
        ([(f - means[j]) / stds[j] for j, f in enumerate(features)], label)
        for features, label in examples
    ]
    w = [0.0] * N_FEATURES
    b = 0.0
    for _ in range(epochs):
        grad_w = [l2 * wj for wj in w]
        grad_b = 0.0
        for features, label in scaled:
            z = b
            for wj, f in zip(w, features):
                z += wj * f
            err = sigmoid(z) - label
            for j, f in enumerate(features):
                grad_w[j] += err * f / n
            grad_b += err / n
        for j in range(N_FEATURES):
            w[j] -= lr * grad_w[j]
        b -= lr * grad_b

    # fold the z-scoring into raw-feature space:
    # w·(x-mean)/std + b  ==  (w/std)·x + (b - w·mean/std)
    raw_w = [wj / sj for wj, sj in zip(w, stds)]
    raw_b = b - sum(wj * mj / sj for wj, mj, sj in zip(w, means, stds))
    weights = tuple(round(v, 5) for v in raw_w + [raw_b])

    loss = 0.0
    correct = 0
    positives = 0
    for features, label in scaled:
        z = b
        for wj, f in zip(w, features):
            z += wj * f
        p = min(max(sigmoid(z), 1e-12), 1.0 - 1e-12)
        loss -= label * math.log(p) + (1 - label) * math.log(1.0 - p)
        correct += (p >= 0.5) == bool(label)
        positives += label
    return TrainResult(weights, loss / n, correct / n, n, positives)


# -- corpus synthesis ---------------------------------------------------------


def synthesize_corpus(
    trace_dir: str, n_jobs: int = 24, seeds: Sequence[int] = (20110926, 7)
) -> List[str]:
    """Run a small greedy-lru + elephant-trap grid with traces enabled.

    The training corpus ``repro train`` defaults to when no
    ``--trace-dir`` is given: one trace per (seed, policy) cell, written
    under ``trace_dir``.  Deterministic and idempotent.
    """
    import numpy as np

    from repro.core.config import DareConfig
    from repro.experiments.runner import ExperimentConfig, run_experiment
    from repro.workloads.swim import synthesize_wl1

    os.makedirs(trace_dir, exist_ok=True)
    paths = []
    for seed in seeds:
        workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
        for tag, dare in (
            ("lru", DareConfig.greedy_lru()),
            ("et", DareConfig.elephant_trap()),
        ):
            path = os.path.join(trace_dir, f"corpus_{seed}_{tag}.jsonl")
            config = ExperimentConfig(dare=dare, seed=seed, trace_path=path)
            run_experiment(config, workload)
            paths.append(path)
    return paths
