"""Replication-policy plugin API, learned policies, and the rollout engine.

This package formalizes the per-node replica-management protocol the DARE
baselines (:mod:`repro.core.greedy`, :mod:`repro.core.elephant_trap`)
implement implicitly, registers them — together with the cluster-level
Scarlett/CDRM services — in a named :mod:`~repro.policies.registry`, and
adds two policies the paper does not have:

* :class:`~repro.policies.learned.LearnedPolicy` — an offline-trained
  logistic scorer over per-block access/locality/budget features, fit by
  ``repro train`` against the JSONL trace corpus the sweeps produce;
* rollout-greedy (:mod:`repro.policies.rollout`) — a one-step lookahead
  driver that forks the live simulation via :mod:`repro.checkpoint` at
  each decision epoch, scores candidate replications by downstream
  data-locality and makespan, and applies only strict improvements.

See ``docs/POLICIES.md`` for the plugin API and the training loop.
"""

from repro.policies.base import PolicyContext, ReplicationPolicy, UnknownPolicyError
from repro.policies.registry import (
    create_policy,
    create_service,
    policy_names,
    register_policy,
    register_service,
    service_names,
)

__all__ = [
    "PolicyContext",
    "ReplicationPolicy",
    "UnknownPolicyError",
    "create_policy",
    "create_service",
    "policy_names",
    "register_policy",
    "register_service",
    "service_names",
]
