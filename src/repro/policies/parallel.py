"""Parallel fork scoring for the checkpoint-fork rollout engine.

The rollout driver's epoch loop is embarrassingly parallel: the no-op
branch and every candidate branch restore from the *same*
:class:`~repro.checkpoint.incremental.DeltaSnapshot` and run to their
horizon independently.  :class:`ForkScorer` exploits that with a
persistent pool of worker processes (forked once, reused across epochs
to amortize spawn): each epoch the snapshot bytes are shipped to every
busy worker once, candidates are dealt round-robin, and the host scores
the no-op branch in-process while the workers run — so with ``jobs=N``
and ``N`` candidates the scoring phase costs roughly one fork instead of
``N + 1``.

Determinism contract: a fork's score is a pure function of (snapshot
bytes, action, rollout config) — every branch restores from identical
bytes and the simulator is deterministic — so scores are independent of
*where* they are computed.  :meth:`ForkScorer.score_epoch` returns them
in candidate order and the driver's reduction (strict ``>`` over that
order) is unchanged from serial, which makes decisions, traces, and
results byte-identical across ``jobs`` values.  The CI ``policy-bench``
job ``cmp``-gates exactly that.

Backends: ``process`` (the default where :func:`os.fork` exists, falling
back to ``spawn``), ``thread`` (no true parallelism under the GIL, but
the same code path — the fallback where processes are unavailable), and
``serial`` (``jobs=1``; also what small epochs degrade to).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List, Optional, Tuple

from repro.checkpoint.incremental import DeltaSnapshot, StaticPool
from repro.metrics.locality import mean_job_locality
from repro.policies.rollout import Action, RolloutConfig, _unclamp, apply_action


def score_fork(
    snap: DeltaSnapshot,
    action: Optional[Action],
    rcfg: RolloutConfig,
    pool: Optional[StaticPool] = None,
) -> Tuple:
    """Run one branch ahead and reduce it to a comparable score tuple.

    Higher is better; ties prefer the no-op (the driver only replaces
    its baseline on a strict improvement).  Value-identical to scoring
    via ``Simulation.finalize()`` — ``job_locality`` is
    ``mean_job_locality(collector.job_records)`` and ``makespan_s`` is
    ``engine.now`` — but skips the heartbeat settling and the metrics
    the score never reads.
    """
    fork = snap.restore(pool=pool)
    if action is not None:
        apply_action(fork, action)
    if rcfg.horizon_s > 0:
        fork.run(until=fork.now + rcfg.horizon_s)
        _unclamp(fork)  # a fork that finished early scores its true end
        maps = fork.collector.map_records
        local = sum(1 for rec in maps if rec.locality == 0)
        locality = local / len(maps) if maps else 0.0
        return (locality, len(fork.collector.job_records), -fork.now)
    fork.run()
    return (mean_job_locality(fork.collector.job_records), 0, -fork.engine.now)


def _worker_main(conn) -> None:
    """Worker loop: score (index, action) chunks until told to stop.

    Each message is ``(snapshot, rollout_config, [(index, action), ...])``
    and is answered with ``("ok", [(index, score), ...])`` or
    ``("err", message)``.  The per-process :class:`StaticPool` means the
    static payload is unpickled once per *session*, not once per fork.
    """
    pool = StaticPool()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        snap, rcfg, tasks = msg
        try:
            out = [(idx, score_fork(snap, action, rcfg, pool=pool)) for idx, action in tasks]
            conn.send(("ok", out))
        except Exception as exc:  # ship the failure instead of hanging the host
            import traceback

            conn.send(("err", f"{exc}\n{traceback.format_exc()}"))
    conn.close()


class ForkScorer:
    """Persistent branch-scoring pool, reused across decision epochs.

    ``jobs`` is the worker count; ``jobs <= 1`` scores everything
    in-process.  ``mode`` picks the backend: ``"auto"`` (processes where
    available, else threads), ``"process"``, ``"thread"``, or
    ``"serial"``.  Pass the host :class:`SnapshotSession`'s pool so
    in-process restores share the live run's static objects.

    Use as a context manager (or call :meth:`close`) so worker processes
    don't outlive the experiment; they are daemonic as a backstop.
    """

    def __init__(
        self,
        jobs: int = 1,
        mode: str = "auto",
        pool: Optional[StaticPool] = None,
    ) -> None:
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown fork-scorer mode {mode!r}")
        self.jobs = max(1, int(jobs))
        self.mode = mode
        self._pool = pool if pool is not None else StaticPool()
        self._workers: List[Tuple[object, object]] = []  # (process, conn)
        self._executor = None  # thread backend, created lazily

    # -- backends -------------------------------------------------------------

    def _start_workers(self) -> bool:
        """Spawn the worker processes once; False when unavailable."""
        if self._workers:
            return True
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            try:
                ctx = mp.get_context("spawn")
            except ValueError:
                return False
        try:
            for _ in range(self.jobs):
                host_conn, worker_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main, args=(worker_conn,), daemon=True
                )
                proc.start()
                worker_conn.close()  # the child holds its own copy
                self._workers.append((proc, host_conn))
        except OSError:
            self.close()
            return False
        return True

    def _ensure_executor(self):
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.jobs, thread_name_prefix="fork-scorer"
            )
        return self._executor

    # -- the epoch entry point -------------------------------------------------

    def score_epoch(
        self,
        snap: DeltaSnapshot,
        candidates: List[Action],
        rcfg: RolloutConfig,
    ) -> Tuple[Tuple, List[Tuple]]:
        """Score the no-op branch plus every candidate branch.

        Returns ``(base_score, candidate_scores)`` with
        ``candidate_scores`` in candidate order, so the driver's serial
        reduction applies unchanged regardless of backend or ``jobs``.
        """
        if self.jobs <= 1 or not candidates or self.mode == "serial":
            return self._score_serial(snap, candidates, rcfg)
        if self.mode in ("process", "auto") and self._start_workers():
            return self._score_process(snap, candidates, rcfg)
        if self.mode == "process":
            raise RuntimeError("process fork-scorer backend unavailable")
        return self._score_thread(snap, candidates, rcfg)

    def _score_serial(self, snap, candidates, rcfg):
        base = score_fork(snap, None, rcfg, pool=self._pool)
        scores = [score_fork(snap, a, rcfg, pool=self._pool) for a in candidates]
        return base, scores

    def _score_process(self, snap, candidates, rcfg):
        n = min(self.jobs, len(candidates))
        chunks: List[List[Tuple[int, Action]]] = [[] for _ in range(n)]
        for idx, action in enumerate(candidates):
            chunks[idx % n].append((idx, action))
        busy = self._workers[:n]
        for (_, conn), chunk in zip(busy, chunks):
            conn.send((snap, rcfg, chunk))
        # overlap the implicit no-op branch with the workers
        base = score_fork(snap, None, rcfg, pool=self._pool)
        scores: List[Optional[Tuple]] = [None] * len(candidates)
        for proc, conn in busy:
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                raise RuntimeError(
                    f"fork-scorer worker pid={proc.pid} died mid-epoch"
                ) from None
            if status != "ok":
                raise RuntimeError(f"fork-scorer worker failed:\n{payload}")
            for idx, s in payload:
                scores[idx] = tuple(s)
        return base, scores

    def _score_thread(self, snap, candidates, rcfg):
        executor = self._ensure_executor()
        futures = [
            executor.submit(score_fork, snap, a, rcfg, self._pool)
            for a in candidates
        ]
        base = score_fork(snap, None, rcfg, pool=self._pool)
        return base, [f.result() for f in futures]

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Stop workers and release the thread pool (idempotent)."""
        for proc, conn in self._workers:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc, _ in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)
        self._workers.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ForkScorer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
