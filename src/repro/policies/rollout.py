"""The checkpoint-fork rollout engine (rollout-greedy policy).

At every decision epoch the driver pauses the live
:class:`~repro.experiments.runner.Simulation`, snapshots it via
:func:`repro.checkpoint.snapshot`, and forks one branch per candidate
action (plus the no-op branch).  Candidates are the hottest
remotely-read blocks since the last epoch, paired with their hottest
remote reader — observed through a trace-bus subscriber
(:class:`FeatureTap`), so the engine needs an enabled tracer but zero
hooks inside the simulator.  Each fork applies its action through
``DareReplicationService.force_replicate`` (a proactive replication,
charged to the traffic meter as ``rollout`` bytes), runs ahead, and is
scored by downstream data-locality and makespan.  The winning action is
applied to the live run **only when it strictly beats the no-op
branch**, which (with the default run-to-completion horizon) makes the
rollout run's final mean locality provably no worse than its host
policy's — the property the CI ``policy-bench`` job gates.

Everything is derived from the deterministic simulation plus sorted
tie-breaks, so the same (config, workload) always yields the same
decisions; ``rollout.decision`` trace records document each one.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.observability.trace import (
    ROLLOUT_DECISION,
    TASK_SCHEDULED,
    JsonlSink,
    TraceRecord,
    Tracer,
)

if TYPE_CHECKING:
    from repro.experiments.runner import (
        ExperimentConfig,
        ExperimentResult,
        Simulation,
    )
    from repro.metrics.collector import MetricsCollector
    from repro.workloads.swim import Workload


class RolloutConfig(NamedTuple):
    """Rollout-engine knobs, carried on ``ExperimentConfig.rollout``.

    ``horizon_s=0`` (the default) runs every fork to completion and
    scores it by final mean job locality, breaking ties toward shorter
    makespan and then toward the no-op; a positive horizon scores a
    cheaper truncated lookahead by map-level locality instead.

    ``jobs`` is purely an execution knob — decisions, traces, and
    results are byte-identical at every value (the parallel scorer
    reduces in the same candidate order), so it is *not* serialized
    with the cell.  ``prune`` *does* change decisions (fewer branches
    are forked) and therefore is.
    """

    #: simulation seconds between decision epochs
    epoch_s: float = 120.0
    #: candidate actions evaluated per epoch (the no-op fork is implicit)
    branches: int = 3
    #: fork lookahead in simulation seconds; 0 = run forks to completion
    horizon_s: float = 0.0
    #: stop forking after this many epochs (the run itself continues)
    max_epochs: int = 16
    #: fork-scoring workers; 1 = serial in-process (byte-identical either way)
    jobs: int = 1
    #: fork only the top-k candidates by learned pre-score; 0 = fork all
    prune: int = 0

    def validate(self) -> "RolloutConfig":
        """Raise ``ValueError`` on out-of-range parameters; return self."""
        if self.epoch_s <= 0:
            raise ValueError(f"epoch_s must be > 0, got {self.epoch_s}")
        if self.branches < 1:
            raise ValueError(f"branches must be >= 1, got {self.branches}")
        if self.horizon_s < 0:
            raise ValueError(f"horizon_s must be >= 0, got {self.horizon_s}")
        if self.max_epochs < 0:
            raise ValueError(f"max_epochs must be >= 0, got {self.max_epochs}")
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.prune < 0:
            raise ValueError(f"prune must be >= 0, got {self.prune}")
        return self


class Action(NamedTuple):
    """One candidate decision: replicate ``block_id`` onto ``node_id``."""

    block_id: int
    node_id: int


class FeatureTap:
    """Trace-bus subscriber: remote map reads since the last epoch.

    When given an :class:`~repro.policies.learned.AccessStats` it also
    feeds *every* scheduled map read (local and remote) into it, so the
    learned pruning pre-scorer sees the same feature distribution the
    learned policy trains on.  The stats accumulate across epochs —
    :meth:`reset` clears only the per-epoch candidate counters.
    """

    def __init__(self, stats=None) -> None:
        #: block_id -> remote map reads
        self.by_block: Dict[int, int] = {}
        #: node_id -> remote map reads executed on that node
        self.by_node: Dict[int, int] = {}
        #: optional run-long AccessStats for learned candidate pruning
        self.stats = stats

    def __call__(self, record: TraceRecord) -> None:
        if record.type != TASK_SCHEDULED:
            return
        data = record.data
        if data.get("kind") != "map":
            return
        local = bool(data.get("data_local"))
        if self.stats is not None:
            self.stats.observe(data["node"], data["block"], local, record.time)
        if local:
            return
        block, node = data["block"], data["node"]
        self.by_block[block] = self.by_block.get(block, 0) + 1
        self.by_node[node] = self.by_node.get(node, 0) + 1

    def reset(self) -> None:
        """Forget this epoch's counts (the pruning stats accumulate)."""
        self.by_block.clear()
        self.by_node.clear()

    def candidates(self, sim: "Simulation", limit: int) -> List[Action]:
        """Up to ``limit`` applicable actions with deterministic tie-breaks.

        Pairs the hottest remotely-read blocks with the busiest
        remote-reading nodes that do *not* yet hold them — the nodes most
        likely to pull another task for the block remotely.  (The node
        that just read the block is useless as a target: under a greedy
        host it already piggybacked a replica, and under any host the
        fetch is already paid for.)
        """
        out: List[Action] = []
        hot = sorted(self.by_block.items(), key=lambda kv: (-kv[1], kv[0]))
        nodes = sorted(self.by_node.items(), key=lambda kv: (-kv[1], kv[0]))
        for block_id, _count in hot:
            if len(out) >= limit:
                break
            block = sim.namenode.blocks.get(block_id)
            if block is None:
                continue
            for node_id, _n in nodes:
                if node_id not in sim.dare.states:
                    continue
                dn = sim.namenode.datanode(node_id)
                if dn.has_block(block_id):
                    continue
                if block.size_bytes > dn.dynamic_capacity_bytes:
                    continue
                out.append(Action(block_id, node_id))
                break
        return out


def apply_action(sim: "Simulation", action: Action) -> bool:
    """Force-replicate one candidate on a live (or forked) simulation."""
    block = sim.namenode.block(action.block_id)
    if not sim.dare.force_replicate(action.node_id, block, sim.now):
        return False
    # unlike DARE's piggybacked replicas this one moves bytes on purpose
    sim.jobtracker.traffic.record("rollout", block.size_bytes)
    return True


def _prune_candidates(
    sim: "Simulation",
    stats,
    candidates: List[Action],
    keep: int,
    weights: Tuple[float, ...],
) -> List[Action]:
    """Keep the ``keep`` most promising candidates by learned pre-score.

    Scores each (node, block) pair with the logistic model of
    :mod:`repro.policies.learned` over the tap's accumulated
    :class:`AccessStats`; ties break toward the earlier candidate (the
    hotter block), and survivors keep their original order so the
    driver's reduction is unaffected.  Pruning trades branches for wall
    time — the strict-improvement guarantee is untouched because the
    no-op branch is never pruned.
    """
    from repro.policies.learned import feature_vector, score

    scored = []
    for idx, action in enumerate(candidates):
        dn = sim.namenode.datanode(action.node_id)
        cap = dn.dynamic_capacity_bytes
        features = feature_vector(
            stats,
            action.node_id,
            action.block_id,
            sim.namenode.replica_count(action.block_id),
            (dn.dynamic_bytes_used / cap) if cap else 1.0,
            sim.now,
        )
        scored.append((-score(weights, features), idx))
    survivors = sorted(idx for _, idx in sorted(scored)[:keep])
    return [candidates[idx] for idx in survivors]


def _unclamp(sim: "Simulation") -> None:
    """Undo ``Engine.run``'s advance-to-horizon on a drained epoch run.

    When the simulation finishes *inside* an epoch, the engine's SimPy
    semantics advance the clock to the epoch horizon; rewinding to the
    recorded drain time makes the paused run report the same makespan an
    unpaused run would.
    """
    drained = sim.engine.drained_at
    if drained is not None:
        sim.engine.now = drained


def run_rollout_experiment(
    config: "ExperimentConfig",
    workload: "Workload",
    collector: Optional["MetricsCollector"] = None,
    tracer: Optional[Tracer] = None,
) -> "ExperimentResult":
    """Drive one cell through the epoch fork-score-apply loop.

    The host simulation runs ``config`` with ``rollout`` stripped (its
    trace header is the host cell's, so an all-no-op rollout trace is
    byte-identical to the plain host run); the rollout layer adds only
    forced replications and ``rollout.decision`` records on top.

    Epoch snapshots are incremental
    (:class:`~repro.checkpoint.incremental.SnapshotSession`) and branch
    scoring goes through a
    :class:`~repro.policies.parallel.ForkScorer` sized by
    ``rollout.jobs`` — both byte-transparent: every decision, trace
    record, and result field is identical to the serial PR-9 engine.
    """
    from repro.checkpoint.incremental import SnapshotSession
    from repro.experiments.runner import Simulation
    from repro.policies.parallel import ForkScorer

    rcfg = (config.rollout or RolloutConfig()).validate()
    host = dataclasses.replace(config, rollout=None)
    if tracer is None:
        # the feature tap listens on the trace bus, so rollout always
        # runs with an enabled tracer (sinkless unless a path was given)
        tracer = Tracer(engine_events=host.trace_engine_events)
        if host.trace_path:
            tracer.add_sink(JsonlSink(host.trace_path))
    elif not tracer.enabled:
        raise ValueError("the rollout engine requires an enabled tracer")
    scorer: Optional[ForkScorer] = None
    try:
        sim = Simulation(host, workload, collector, tracer)
        stats = None
        weights: Tuple[float, ...] = ()
        if rcfg.prune > 0:
            from repro.policies.learned import DEFAULT_WEIGHTS, AccessStats

            stats = AccessStats()
            weights = host.dare.model or DEFAULT_WEIGHTS
        tap = FeatureTap(stats)
        tracer.subscribe(tap)
        session = SnapshotSession(sim, check=host.check_invariants)
        scorer = ForkScorer(rcfg.jobs, pool=session.pool)
        for epoch in range(1, rcfg.max_epochs + 1):
            sim.run(until=epoch * rcfg.epoch_s)
            if sim.finished:
                break
            candidates = tap.candidates(sim, rcfg.branches)
            tap.reset()
            if not candidates:
                continue
            generated = len(candidates)
            if stats is not None and generated > rcfg.prune:
                candidates = _prune_candidates(
                    sim, stats, candidates, rcfg.prune, weights
                )
            snap = session.snapshot()
            base, scores = scorer.score_epoch(snap, candidates, rcfg)
            best_action: Optional[Action] = None
            best = base
            for action, s in zip(candidates, scores):
                if s > best:
                    best_action, best = action, s
            applied = best_action is not None and apply_action(sim, best_action)
            decision = dict(
                epoch=epoch,
                candidates=len(candidates),
                block=best_action.block_id if best_action else None,
                node=best_action.node_id if best_action else None,
                applied=bool(applied),
                score=list(best),
                baseline=list(base),
            )
            if rcfg.prune > 0:
                # only pruned cells carry the extra key, so prune=0
                # traces stay byte-identical to the pre-pruning engine
                decision["pruned"] = generated - len(candidates)
            tracer.emit(ROLLOUT_DECISION, sim.now, **decision)
        # the tap's job is done — stop it counting the trailing events
        tracer.unsubscribe(tap)
        if sim.engine.drained_at is not None:
            # the queue emptied inside the last epoch: rewind the
            # horizon-clamped clock before reading the makespan
            _unclamp(sim)
        else:
            # trailing events (or the remaining epochs, if max_epochs ran
            # out first) run unpaused to the true end of the simulation
            sim.run()
        # the result identifies the *cell* that was run — rollout included
        # — even though the trace header carries the stripped host config
        return dataclasses.replace(sim.finalize(), config=config)
    finally:
        if scorer is not None:
            scorer.close()
        tracer.close()
