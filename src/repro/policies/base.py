"""The replication-policy plugin protocol.

A *node policy* is the per-node object
:class:`~repro.core.manager.DareReplicationService` consults on every
scheduled map task.  The protocol below is exactly the surface the
service uses; the Greedy/LFU/ElephantTrap baselines already satisfy it
and are re-registered under it in :mod:`repro.policies.registry`.

Decision flow (``DareReplicationService.on_map_task``):

* every access is first offered to the optional :meth:`~ReplicationPolicy
  .on_access` observer hook (feature-aware policies accumulate state
  here; the paper baselines do not define it and pay nothing);
* a **local** read refreshes usage via :meth:`~ReplicationPolicy
  .on_local_access` (coin-gated by :meth:`~ReplicationPolicy
  .wants_refresh` when ``probabilistic``);
* a **remote** read asks :meth:`~ReplicationPolicy.wants_replica`; a
  ``True`` answer replicates the just-fetched bytes, evicting
  :meth:`~ReplicationPolicy.pick_victim` victims while the budget
  overflows (``None`` abandons the replication).

Everything reachable from a policy must be picklable: policies live
inside the :class:`~repro.experiments.runner.Simulation` object graph
that :mod:`repro.checkpoint` snapshots and forks, and the rollout engine
relies on their state surviving the round-trip bit-exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.core.config import DareConfig
    from repro.hdfs.block import Block
    from repro.hdfs.namenode import NameNode
    from repro.simulation.rng import RandomStreams


class UnknownPolicyError(ValueError):
    """Raised by the registry for a name no plugin has claimed."""


@dataclass(frozen=True)
class PolicyContext:
    """Everything a policy factory may draw on when building an instance.

    ``shared`` is a mutable dict owned by the
    :class:`~repro.core.manager.DareReplicationService` and passed to
    every factory call of one service, so plugins can stash cluster-wide
    singletons (e.g. the learned policy's shared access statistics) with
    ``ctx.shared.setdefault(...)``.
    """

    node_id: int
    config: "DareConfig"
    streams: "RandomStreams"
    namenode: "NameNode"
    shared: Dict[str, object] = field(default_factory=dict)

    def rng(self, name: str):
        """A named deterministic RNG stream scoped to this node."""
        return self.streams.python(f"{name}.{self.node_id}")


@runtime_checkable
class ReplicationPolicy(Protocol):
    """Structural protocol every per-node replication policy satisfies."""

    #: when True, the service coin-gates refreshes via :meth:`wants_refresh`
    probabilistic: bool

    def __contains__(self, block_id: int) -> bool:
        """Whether the policy currently tracks ``block_id``."""

    def add(self, block: "Block") -> None:
        """Track a freshly inserted dynamic replica."""

    def remove(self, block_id: int) -> None:
        """Stop tracking an evicted replica."""

    def on_local_access(self, block: "Block") -> None:
        """A (possibly coin-gated) local read of ``block`` happened."""

    def wants_replica(self, block: "Block") -> bool:
        """Should the remote-fetched ``block`` be kept as a replica?"""

    def wants_refresh(self, block: "Block") -> bool:
        """Probabilistic policies: gate the usage refresh of a local read."""

    def pick_victim(self, evicting: "Block") -> Optional["Block"]:
        """A tracked block to evict for ``evicting``, or None to abandon."""
