"""The offline-trained scored policy: a stdlib logistic scorer.

Direction named by PAPERS.md (H-SVM-LRU, 2023; RL-based replica
management, Lee 2020): replace the hand-written keep/evict heuristics
with a classifier over per-block access features.  The model is a plain
logistic regression — six features plus bias, weights carried in
``DareConfig.model`` so a learned cell stays hashable, cacheable, and
picklable like every other cell.

Feature definitions live here in one place (:func:`feature_vector`) and
are computed identically in two settings:

* **live** — :class:`LearnedPolicy` instances on every node share one
  :class:`AccessStats` (stashed in the service's ``shared`` dict by the
  registry factory) and update it from the
  ``DareReplicationService.on_map_task`` observer hook;
* **offline** — ``repro train`` replays the ``task.scheduled`` records
  of a JSONL trace through the same :class:`AccessStats`, emitting one
  example per remote-read decision point (see
  :mod:`repro.policies.train`).

Training and inference therefore see the same distribution, and the
whole pipeline is deterministic: same traces → same weights → same
decisions.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hdfs.block import Block
from repro.hdfs.namenode import NameNode

#: feature names, in vector order (bias is appended as the last weight)
FEATURE_NAMES = (
    "node_block_accesses",   # log1p of accesses of this block on this node
    "block_accesses",        # log1p of accesses of this block cluster-wide
    "local_fraction",        # fraction of the block's accesses that were local
    "recency",               # exp(-age/600s) of the block's *previous* access
    "budget_utilization",    # node's dynamic budget used/capacity
    "replica_count",         # log1p of the block's current replica count
)

N_FEATURES = len(FEATURE_NAMES)

#: seconds for the recency feature to decay to 1/e
RECENCY_TAU_S = 600.0

#: decision threshold on the sigmoid score
SCORE_THRESHOLD = 0.5

#: weights fit by ``repro train`` on the smoke trace corpus (wl1 x 48
#: jobs, seeds 20110926/7/11/23, greedy-lru + elephant-trap cells; 541
#: examples, 74.1% training accuracy); baked in so ``repro run --policy
#: learned`` works without a model file
DEFAULT_WEIGHTS = (
    -0.51071, 0.31425, -0.33773, 1.06286, -33.93841, 3.45851, -4.74192,
)


def sigmoid(z: float) -> float:
    """Numerically safe logistic function."""
    if z >= 0:
        return 1.0 / (1.0 + math.exp(-z))
    e = math.exp(z)
    return e / (1.0 + e)


def score(weights: Sequence[float], features: Sequence[float]) -> float:
    """Sigmoid of the affine score (bias is the trailing weight)."""
    z = weights[N_FEATURES]
    for w, f in zip(weights, features):
        z += w * f
    return sigmoid(z)


class AccessStats:
    """Cluster-wide per-block access counters shared by the node policies.

    Models the NameNode-assisted statistics a production learned policy
    would query; kept deliberately tiny (four dicts of scalars) so it
    pickles fast inside checkpoint snapshots and never perturbs the
    simulation.
    """

    __slots__ = ("node_block", "total", "local", "last_seen", "prev_seen")

    def __init__(self) -> None:
        #: (node_id, block_id) -> accesses observed on that node
        self.node_block: Dict[Tuple[int, int], int] = {}
        #: block_id -> accesses observed cluster-wide
        self.total: Dict[int, int] = {}
        #: block_id -> data-local accesses cluster-wide
        self.local: Dict[int, int] = {}
        #: block_id -> simulation time of the last access
        self.last_seen: Dict[int, float] = {}
        #: block_id -> time of the access *before* the last one.  The
        #: recency feature reads this: decision points immediately follow
        #: an ``observe`` of the same block, so the last access is always
        #: "now" and only the previous one carries information.
        self.prev_seen: Dict[int, float] = {}

    def observe(self, node_id: int, block_id: int, data_local: bool, now: float) -> None:
        """Record one scheduled map access of ``block_id`` on ``node_id``."""
        key = (node_id, block_id)
        self.node_block[key] = self.node_block.get(key, 0) + 1
        self.total[block_id] = self.total.get(block_id, 0) + 1
        if data_local:
            self.local[block_id] = self.local.get(block_id, 0) + 1
        last = self.last_seen.get(block_id)
        if last is not None:
            self.prev_seen[block_id] = last
        self.last_seen[block_id] = now

    def __getstate__(self):
        return (self.node_block, self.total, self.local, self.last_seen, self.prev_seen)

    def __setstate__(self, state) -> None:
        self.node_block, self.total, self.local, self.last_seen, self.prev_seen = state


def feature_vector(
    stats: AccessStats,
    node_id: int,
    block_id: int,
    replicas: int,
    utilization: float,
    now: float,
) -> List[float]:
    """The model's input for one (node, block) decision point."""
    total = stats.total.get(block_id, 0)
    local = stats.local.get(block_id, 0)
    last = stats.prev_seen.get(block_id)
    return [
        math.log1p(stats.node_block.get((node_id, block_id), 0)),
        math.log1p(total),
        (local / total) if total else 0.0,
        math.exp(-(now - last) / RECENCY_TAU_S) if last is not None else 0.0,
        utilization,
        math.log1p(replicas),
    ]


class LearnedPolicy:
    """Per-node scored policy: replicate/evict by logistic score.

    A remote read is kept when its score clears
    :data:`SCORE_THRESHOLD`; eviction victims are the lowest-scored
    tracked blocks, and a replication is abandoned (victim ``None``)
    when even the worst victim scores at least as high as the incoming
    block — the learned analogue of ElephantTrap's thrashing guard.
    """

    probabilistic = False

    def __init__(
        self,
        weights: Sequence[float],
        node_id: int,
        namenode: NameNode,
        stats: AccessStats,
    ) -> None:
        if len(weights) != N_FEATURES + 1:
            raise ValueError(
                f"learned policy needs {N_FEATURES + 1} weights "
                f"({N_FEATURES} features + bias), got {len(weights)}"
            )
        self.weights = tuple(float(w) for w in weights)
        self.node_id = node_id
        self.namenode = namenode
        self.stats = stats
        #: tracked dynamic replicas, in insertion order (dicts preserve it)
        self._tracked: Dict[int, Block] = {}
        #: last observed simulation time (fed by on_access)
        self._now = 0.0

    def __len__(self) -> int:
        return len(self._tracked)

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._tracked

    # -- observation ---------------------------------------------------------

    def on_access(self, block: Block, data_local: bool, now: float) -> None:
        """Observer hook: every scheduled access updates the shared stats."""
        self.stats.observe(self.node_id, block.block_id, data_local, now)
        self._now = now

    # -- the protocol ---------------------------------------------------------

    def add(self, block: Block) -> None:
        if block.block_id in self._tracked:
            raise ValueError(f"block {block.block_id} already tracked")
        self._tracked[block.block_id] = block

    def remove(self, block_id: int) -> None:
        self._tracked.pop(block_id, None)

    def on_local_access(self, block: Block) -> None:
        """Recency/frequency live in the shared stats; nothing extra here."""

    def wants_refresh(self, block: Block) -> bool:
        return True

    def _score(self, block: Block) -> float:
        dn = self.namenode.datanode(self.node_id)
        cap = dn.dynamic_capacity_bytes
        return score(
            self.weights,
            feature_vector(
                self.stats,
                self.node_id,
                block.block_id,
                self.namenode.replica_count(block.block_id),
                (dn.dynamic_bytes_used / cap) if cap else 1.0,
                self._now,
            ),
        )

    def wants_replica(self, block: Block) -> bool:
        return self._score(block) >= SCORE_THRESHOLD

    def pick_victim(self, evicting: Block) -> Optional[Block]:
        """Lowest-scored tracked block, same-file blocks excluded.

        Ties break by insertion order (oldest first), keeping eviction
        deterministic; returns ``None`` when the worst victim still
        scores at least as high as the incoming block.
        """
        best: Optional[Block] = None
        best_score = None
        for block in self._tracked.values():
            if block.same_file(evicting):
                continue
            s = self._score(block)
            if best_score is None or s < best_score:
                best, best_score = block, s
        if best is None or best_score >= self._score(evicting):
            return None
        return best

    def tracked_blocks(self) -> Dict[int, Block]:
        """Snapshot of tracked dynamic replicas (tests/metrics)."""
        return dict(self._tracked)


# -- model files --------------------------------------------------------------

MODEL_FORMAT = 1


def save_model(weights: Sequence[float], path: str, **meta) -> None:
    """Write a model file ``repro run --policy learned --model`` loads."""
    if len(weights) != N_FEATURES + 1:
        raise ValueError(f"expected {N_FEATURES + 1} weights, got {len(weights)}")
    doc = {
        "format": MODEL_FORMAT,
        "features": list(FEATURE_NAMES),
        "weights": [float(w) for w in weights],
    }
    doc.update(meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_model(path: str) -> Tuple[float, ...]:
    """Read a model file back into a weights tuple."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("format") != MODEL_FORMAT:
        raise ValueError(f"unsupported model format {doc.get('format')!r} in {path}")
    if list(doc.get("features", ())) != list(FEATURE_NAMES):
        raise ValueError(
            f"model {path} was trained on features {doc.get('features')}, "
            f"this build expects {list(FEATURE_NAMES)}"
        )
    weights = tuple(float(w) for w in doc["weights"])
    if len(weights) != N_FEATURES + 1:
        raise ValueError(f"expected {N_FEATURES + 1} weights, got {len(weights)}")
    return weights
