"""The learned-vs-baseline policy benchmark grid.

``repro policy-bench`` (and the CI ``policy-bench`` job) run every
registered replica-management policy — the paper baselines, the offline
learned scorer, and the checkpoint-fork rollout engine — over a pinned
set of workload seeds, and reduce the runs to one JSON document plus one
grouped-bar SVG.  The document carries a machine-checkable **gate**: the
rollout-greedy policy's mean data locality must be at least its greedy
host's on every pinned seed, which holds by construction (the rollout
driver only replaces the no-op branch on a strict improvement) and so
regresses only when the fork/score/apply machinery breaks.

Everything here is deterministic: fixed workload seeds, the fixed
simulation seed, and the baked-in model weights.  Two invocations of
:func:`run_policy_bench` produce byte-identical documents.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.cluster import CCT_SPEC
from repro.core.config import DareConfig
from repro.experiments.runner import ExperimentConfig, ExperimentResult, run_experiment
from repro.policies.learned import DEFAULT_WEIGHTS
from repro.policies.rollout import RolloutConfig

#: workload seeds every policy is scored on (simulation seed is fixed)
BENCH_SEEDS: Tuple[int, ...] = (7, 20110926)

#: jobs per run in the PR-smoke tier; the nightly tier uses more
SMOKE_JOBS = 32
FULL_JOBS = 96

#: rollout knobs used by the benchmark (10s epochs catch the remote-read
#: bursts that 120s epochs sleep through at this workload scale)
BENCH_ROLLOUT = RolloutConfig(epoch_s=10.0, branches=4, max_epochs=64)

#: benchmark columns, in reporting order
POLICY_COLUMNS: Tuple[str, ...] = (
    "off",
    "greedy-lru",
    "greedy-lfu",
    "elephant-trap",
    "learned",
    "rollout",
)


def bench_config(
    policy: str, model: Sequence[float] = DEFAULT_WEIGHTS
) -> ExperimentConfig:
    """The experiment cell for one benchmark column."""
    base = ExperimentConfig(cluster_spec=CCT_SPEC, scheduler="fifo")
    if policy == "off":
        return dataclasses.replace(base, dare=DareConfig.off())
    if policy == "greedy-lru":
        return dataclasses.replace(base, dare=DareConfig.greedy_lru())
    if policy == "greedy-lfu":
        return dataclasses.replace(base, dare=DareConfig.greedy_lfu())
    if policy == "elephant-trap":
        return dataclasses.replace(base, dare=DareConfig.elephant_trap())
    if policy == "learned":
        return dataclasses.replace(base, dare=DareConfig.learned(model))
    if policy == "rollout":
        # rollout-greedy: the rollout engine over a greedy-lru host
        return dataclasses.replace(
            base, dare=DareConfig.greedy_lru(), rollout=BENCH_ROLLOUT
        )
    raise ValueError(f"unknown benchmark column {policy!r}")


def _row(policy: str, seed: int, result: ExperimentResult) -> Dict:
    return {
        "policy": policy,
        "seed": seed,
        "job_locality": result.job_locality,
        "makespan_s": result.makespan_s,
        "blocks_created": result.blocks_created,
        "blocks_evicted": result.blocks_evicted,
        "rollout_bytes": result.traffic_bytes.get("rollout", 0),
        "remote_read_bytes": result.traffic_bytes.get("remote_map_reads", 0),
    }


def run_policy_bench(
    n_jobs: int = SMOKE_JOBS,
    seeds: Sequence[int] = BENCH_SEEDS,
    model: Sequence[float] = DEFAULT_WEIGHTS,
    policies: Sequence[str] = POLICY_COLUMNS,
    progress=None,
) -> Dict:
    """Run the grid and reduce it to the benchmark document."""
    from repro.workloads.swim import synthesize_wl1

    rows: List[Dict] = []
    for seed in seeds:
        workload = synthesize_wl1(np.random.default_rng(seed), n_jobs=n_jobs)
        for policy in policies:
            if progress is not None:
                progress(f"policy-bench: {policy} seed={seed} ...")
            result = run_experiment(bench_config(policy, model), workload)
            rows.append(_row(policy, seed, result))
    mean_locality = {
        policy: sum(r["job_locality"] for r in rows if r["policy"] == policy)
        / len(seeds)
        for policy in policies
    }
    gate = check_gate(rows) if {"rollout", "greedy-lru"} <= set(policies) else None
    return {
        "n_jobs": n_jobs,
        "seeds": list(seeds),
        "policies": list(policies),
        "rows": rows,
        "mean_locality": mean_locality,
        "gate": gate,
    }


def check_gate(rows: Sequence[Dict]) -> Dict:
    """The CI gate: rollout locality >= greedy-lru locality, per seed."""
    greedy = {r["seed"]: r["job_locality"] for r in rows if r["policy"] == "greedy-lru"}
    rollout = {r["seed"]: r["job_locality"] for r in rows if r["policy"] == "rollout"}
    per_seed = {
        str(seed): {
            "greedy": greedy[seed],
            "rollout": rollout[seed],
            "ok": rollout[seed] >= greedy[seed],
        }
        for seed in sorted(greedy)
    }
    return {
        "rule": "rollout job_locality >= greedy-lru job_locality on every seed",
        "per_seed": per_seed,
        "ok": all(v["ok"] for v in per_seed.values()),
    }


def render_policy_grid(doc: Dict) -> str:
    """The benchmark document as one grouped-bar SVG (locality by seed)."""
    from repro.viz.svg import grouped_bar_chart

    seeds = doc["seeds"]
    by = {(r["policy"], r["seed"]): r["job_locality"] for r in doc["rows"]}
    series = [
        (policy, [by[(policy, seed)] for seed in seeds])
        for policy in doc["policies"]
    ]
    return grouped_bar_chart(
        [f"seed {s}" for s in seeds],
        series,
        title=f"Policy benchmark — wl1 x {doc['n_jobs']} jobs",
        ylabel="job data locality",
    )


def format_report(doc: Dict) -> str:
    """Printable summary table of a benchmark document."""
    lines = [f"policy benchmark (wl1 x {doc['n_jobs']} jobs, seeds {doc['seeds']}):"]
    header = f"  {'policy':<14s}" + "".join(f"seed {s:<12d}" for s in doc["seeds"])
    lines.append(header + "mean")
    by = {(r["policy"], r["seed"]): r for r in doc["rows"]}
    for policy in doc["policies"]:
        cells = "".join(
            f"{by[(policy, s)]['job_locality']:<17.4f}" for s in doc["seeds"]
        )
        lines.append(
            f"  {policy:<14s}{cells}{doc['mean_locality'][policy]:.4f}"
        )
    gate: Optional[Dict] = doc.get("gate")
    if gate is not None:
        lines.append(f"  gate: {gate['rule']} -> {'ok' if gate['ok'] else 'FAIL'}")
    return "\n".join(lines)
