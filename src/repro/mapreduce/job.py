"""Job specification (trace entry) and runtime job state."""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Set, Tuple

from repro.hdfs.inode import INode
from repro.hdfs.namenode import NameNode
from repro.mapreduce.task import Locality, MapTask, ReduceTask, TaskState


class JobSpec(NamedTuple):
    """One trace entry — everything needed to replay a job.

    The map count is implied by the input file (Hadoop launches one map per
    block).  Shuffle/output sizes are expressed as ratios of the input
    size, following the SWIM trace format's (input, shuffle, output) byte
    triples.
    """

    job_id: int
    submit_time: float
    input_file: str
    map_cpu_s: float = 4.0
    n_reduces: int = 1
    reduce_cpu_s: float = 4.0
    shuffle_ratio: float = 0.4
    output_ratio: float = 0.2

    def validate(self) -> "JobSpec":
        """Raise on malformed entries; return self."""
        if self.submit_time < 0:
            raise ValueError(f"job {self.job_id}: negative submit time")
        if self.map_cpu_s < 0 or self.reduce_cpu_s < 0:
            raise ValueError(f"job {self.job_id}: negative cpu time")
        if self.n_reduces < 0:
            raise ValueError(f"job {self.job_id}: negative reduce count")
        if self.shuffle_ratio < 0 or self.output_ratio < 0:
            raise ValueError(f"job {self.job_id}: negative data ratio")
        return self


class Job:
    """Runtime state of a submitted job."""

    __slots__ = (
        "spec",
        "inode",
        "maps",
        "reduces",
        "pending_maps",
        "pending_block_ids",
        "running_maps",
        "finished_maps",
        "running_reduces",
        "finished_reduces",
        "locality_counts",
        "submit_time",
        "first_task_time",
        "finish_time",
        "delay_wait_started",
        "delay_level",
    )

    def __init__(self, spec: JobSpec, inode: INode) -> None:
        self.spec = spec
        self.inode = inode
        self.maps: List[MapTask] = [
            MapTask(self, i, block) for i, block in enumerate(inode.blocks)
        ]
        self.reduces: List[ReduceTask] = [
            ReduceTask(self, i) for i in range(spec.n_reduces)
        ]
        # pending maps kept as a list scanned at assignment time; jobs are
        # small on average and the scan lets locality reflect the *current*
        # NameNode view (which DARE keeps changing)
        self.pending_maps: List[MapTask] = list(self.maps)
        self.pending_block_ids: Set[int] = {t.block.block_id for t in self.maps}
        self.running_maps = 0
        self.finished_maps = 0
        self.running_reduces = 0
        self.finished_reduces = 0
        self.locality_counts = [0, 0, 0]  # node-local, rack-local, remote
        self.submit_time = spec.submit_time
        self.first_task_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        # delay-scheduling bookkeeping (used by the Fair scheduler)
        self.delay_wait_started: Optional[float] = None
        self.delay_level = 0

    # -- queries ---------------------------------------------------------

    @property
    def n_maps(self) -> int:
        """Number of map tasks (== number of input blocks)."""
        return len(self.maps)

    @property
    def maps_done(self) -> bool:
        """True when every map task completed."""
        return self.finished_maps == len(self.maps)

    @property
    def done(self) -> bool:
        """True when the whole job completed."""
        return self.maps_done and self.finished_reduces == len(self.reduces)

    @property
    def has_pending_maps(self) -> bool:
        """True when unassigned map tasks remain."""
        return bool(self.pending_maps)

    @property
    def reduces_schedulable(self) -> bool:
        """Reduces launch once the map phase finishes (no early shuffle).

        Pure counter arithmetic: this is evaluated for every active job on
        every heartbeat's reduce-assignment round, and a per-reduce state
        scan here dominated end-to-end profiles.  A reduce is PENDING iff
        it is neither running nor finished (failure requeue restores both
        the state and the running counter), so the counters are exact.
        """
        return (
            self.finished_maps == len(self.maps)
            and self.running_reduces + self.finished_reduces < len(self.reduces)
        )

    @property
    def data_locality(self) -> float:
        """Fraction of map tasks that ran data-local (the paper's metric)."""
        launched = sum(self.locality_counts)
        if launched == 0:
            return 0.0
        return self.locality_counts[Locality.NODE_LOCAL] / launched

    @property
    def turnaround(self) -> float:
        """Submission-to-completion time (valid once done)."""
        if self.finish_time is None:
            raise ValueError(f"job {self.spec.job_id} has not finished")
        return self.finish_time - self.submit_time

    # -- task selection ------------------------------------------------------

    def find_pending_map(
        self, node_id: int, namenode: NameNode, max_level: Locality = Locality.REMOTE
    ) -> Optional[Tuple[MapTask, Locality]]:
        """Best pending map for a heartbeating node, up to ``max_level``.

        Preference order is node-local, then rack-local, then any — the
        same walk Hadoop's schedulers perform.  Locality is evaluated
        against the NameNode's *current* replica view, so replicas DARE
        announced a heartbeat ago immediately improve placement choices.
        """
        if not self.pending_maps:
            return None
        # the scan runs for every (job, free slot) pair of every heartbeat:
        # locations come from the NameNode's dense block-id array (no dict
        # hashing), and rack locality is one lookup in the block's per-rack
        # replica counts — equivalent to an isdisjoint against the rack's
        # member set (replica holders are exactly the counted nodes), but
        # independent of both rack size and replica count
        locs_by_id = namenode._locs_by_id
        want_rack = max_level >= Locality.RACK_LOCAL
        my_rack = namenode._rack_of[node_id] if want_rack else -1
        rack_candidate: Optional[MapTask] = None
        for task in self.pending_maps:
            locs = locs_by_id[task.block.block_id]
            if node_id in locs:
                return task, Locality.NODE_LOCAL
            if want_rack and rack_candidate is None and my_rack in locs.rack_counts:
                rack_candidate = task
        if rack_candidate is not None:
            return rack_candidate, Locality.RACK_LOCAL
        if max_level >= Locality.REMOTE:
            return self.pending_maps[0], Locality.REMOTE
        return None

    def next_pending_reduce(self) -> Optional[ReduceTask]:
        """First pending reduce task, if reduces are schedulable."""
        if not self.reduces_schedulable:
            return None
        for r in self.reduces:
            if r.state is TaskState.PENDING:
                return r
        return None

    def take_map(self, task: MapTask) -> None:
        """Move a map task from pending to running bookkeeping."""
        self.pending_maps.remove(task)
        self.pending_block_ids.discard(task.block.block_id)
        self.running_maps += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Job {self.spec.job_id} maps={self.finished_maps}/{self.n_maps} "
            f"reduces={self.finished_reduces}/{len(self.reduces)}>"
        )
