"""Map and reduce task state."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.hdfs.block import Block

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.job import Job


class TaskState(enum.Enum):
    """Task lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


class Locality(enum.IntEnum):
    """Placement quality of a map task relative to its input block."""

    NODE_LOCAL = 0
    RACK_LOCAL = 1
    REMOTE = 2


class MapTask:
    """One map task: processes one input block."""

    __slots__ = (
        "job",
        "index",
        "block",
        "state",
        "node_id",
        "locality",
        "source_node",
        "start_time",
        "finish_time",
    )

    def __init__(self, job: "Job", index: int, block: Block) -> None:
        self.job = job
        self.index = index
        self.block = block
        self.state = TaskState.PENDING
        self.node_id: Optional[int] = None
        self.locality: Optional[Locality] = None
        #: replica holder the block was streamed from (None when local)
        self.source_node: Optional[int] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

    @property
    def key(self) -> tuple:
        """Stable identity, valid across pickle round-trips (unlike id())."""
        return ("m", self.job.spec.job_id, self.index)

    @property
    def duration(self) -> float:
        """Wall-clock task duration (valid once DONE)."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError("task has not run")
        return self.finish_time - self.start_time

    @property
    def data_local(self) -> bool:
        """True when the task ran on a node holding its block."""
        return self.locality is Locality.NODE_LOCAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MapTask j{self.job.spec.job_id}m{self.index} "
            f"block={self.block.block_id} {self.state.value}>"
        )


class ReduceTask:
    """One reduce task: shuffles map output, reduces, writes job output."""

    __slots__ = ("job", "index", "state", "node_id", "start_time", "finish_time")

    def __init__(self, job: "Job", index: int) -> None:
        self.job = job
        self.index = index
        self.state = TaskState.PENDING
        self.node_id: Optional[int] = None
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None

    @property
    def key(self) -> tuple:
        """Stable identity, valid across pickle round-trips (unlike id())."""
        return ("r", self.job.spec.job_id, self.index)

    @property
    def duration(self) -> float:
        """Wall-clock task duration (valid once DONE)."""
        if self.start_time is None or self.finish_time is None:
            raise ValueError("task has not run")
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReduceTask j{self.job.spec.job_id}r{self.index} {self.state.value}>"
