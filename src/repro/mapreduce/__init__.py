"""MapReduce substrate: jobs, tasks, trackers, and the task time model.

This models the Hadoop 0.21-era execution architecture the paper modified:

* a **JobTracker** on the master accepts job submissions and delegates task
  placement to a pluggable scheduler (FIFO or Fair — see
  :mod:`repro.scheduling`);
* **TaskTrackers** on every slave heartbeat the JobTracker every few
  seconds, reporting free map/reduce slots and receiving task assignments;
  the same heartbeat carries the DataNode's control-plane messages
  (``DNA_DYNREPL`` / ``DNA_INVALIDATE``) to the NameNode;
* **map tasks** process one block each; a data-local task streams the block
  from local disk, a remote task fetches it from a replica holder over the
  network (and this fetch is what DARE piggybacks on);
* **reduce tasks** shuffle map output over the network, then write job
  output through the HDFS replication pipeline.
"""

from repro.mapreduce.job import Job, JobSpec
from repro.mapreduce.task import MapTask, ReduceTask, Locality, TaskState
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.tasktracker import TaskTracker
from repro.mapreduce.jobtracker import JobTracker

__all__ = [
    "Job",
    "JobSpec",
    "MapTask",
    "ReduceTask",
    "Locality",
    "TaskState",
    "TaskTimeModel",
    "TaskTracker",
    "JobTracker",
]
