"""Task time model: how long map and reduce tasks take.

The model captures the data-path costs that make locality matter:

* a **data-local map** streams its block from the local disk at the node's
  (contention-shared) disk bandwidth;
* a **remote map** streams the block from a replica holder at the
  (contention-shared) pairwise network bandwidth, bounded by the source
  disk, plus an RTT of connection setup — this is the read DARE piggybacks
  on;
* a **reduce** pulls its shuffle partition across the network, computes,
  and writes job output through the HDFS pipeline (one local write plus
  ``rf - 1`` network copies).

Contention is a fair-share approximation: transfer durations are fixed at
start using the current number of concurrent flows/reads on the involved
nodes (a standard trick that avoids re-timing in-flight transfers while
still penalizing hotspots — precise flow-level max-min sharing is not
needed for the paper's comparative results).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.hdfs.block import Block
from repro.hdfs.namenode import NameNode

#: fixed per-task overhead (JVM spawn, split bookkeeping), seconds
TASK_OVERHEAD_S = 1.0
#: replication factor of job output files written by reduces
OUTPUT_REPLICATION = 3


class TaskTimeModel:
    """Computes task durations and manages contention counters."""

    def __init__(
        self,
        cluster: Cluster,
        namenode: NameNode,
        rng: random.Random,
        overhead_s: float = TASK_OVERHEAD_S,
    ) -> None:
        self.cluster = cluster
        self.namenode = namenode
        self._rng = rng
        self.overhead_s = overhead_s
        # cluster-wide means used by the ideal-runtime (slowdown) model
        slaves = cluster.slaves
        self.mean_disk_bw = sum(n.disk_bw_mbps for n in slaves) / len(slaves)
        self.mean_net_bw = sum(n.net_bw_mbps for n in slaves) / len(slaves)

    # -- source selection ---------------------------------------------------

    def choose_source(self, block: Block, dest: int) -> int:
        """Pick the replica holder a remote map streams from.

        Hadoop picks the topologically closest replica; ties break by
        current load, then randomly.
        """
        locs = [n for n in self.namenode.locations(block.block_id) if n != dest]
        if not locs:
            raise ValueError(
                f"no remote replica of block {block.block_id} (dest={dest})"
            )
        topo = self.cluster.topology
        best: List[int] = []
        best_key: Optional[Tuple[int, int]] = None
        for n in locs:
            key = (topo.hops(dest, n), self.cluster.node(n).active_net_transfers)
            if best_key is None or key < best_key:
                best, best_key = [n], key
            elif key == best_key:
                best.append(n)
        return best[0] if len(best) == 1 else self._rng.choice(best)

    # -- map tasks ------------------------------------------------------------

    def local_read_seconds(self, node_id: int, nbytes: int) -> float:
        """Streaming a block from local disk under current contention."""
        node = self.cluster.node(node_id)
        return nbytes / (node.effective_disk_bw() * 1e6)

    def remote_read_seconds(self, source: int, dest: int, nbytes: int) -> float:
        """Streaming a block from a remote replica under current contention."""
        src = self.cluster.node(source)
        dst = self.cluster.node(dest)
        contention = 1 + max(dst.active_net_transfers, src.active_net_transfers)
        net_time = self.cluster.network.transfer_seconds(
            nbytes, source, dest, contention
        )
        # the source disk also has to produce the bytes
        disk_time = nbytes / (src.effective_disk_bw() * 1e6)
        return max(net_time, disk_time)

    def attempt_cpu_seconds(self, map_cpu_s: float) -> float:
        """CPU time of one attempt: scaled, jittered, occasionally stalled.

        The stall term models processor sharing on virtualized hosts (Wang
        & Ng) — the straggler source speculative execution exists for.
        """
        spec = self.cluster.spec
        cpu = map_cpu_s * spec.cpu_scale
        if spec.cpu_jitter_sigma > 0:
            cpu *= self._rng.lognormvariate(0.0, spec.cpu_jitter_sigma)
        if spec.cpu_stall_prob > 0 and self._rng.random() < spec.cpu_stall_prob:
            cpu *= self._rng.uniform(*spec.cpu_stall_range)
        return cpu

    def map_duration(
        self, node_id: int, block: Block, data_local: bool, map_cpu_s: float
    ) -> Tuple[float, Optional[int], float]:
        """Return (duration, source_node, cpu_seconds_drawn).

        ``source_node`` is None for a data-local read.  The CPU component
        is sampled per attempt (see :meth:`attempt_cpu_seconds`), so the
        caller needs it back to locate the read/compute boundary.
        """
        cpu = self.attempt_cpu_seconds(map_cpu_s)
        if data_local:
            read = self.local_read_seconds(node_id, block.size_bytes)
            return self.overhead_s + read + cpu, None, cpu
        source = self.choose_source(block, node_id)
        read = self.remote_read_seconds(source, node_id, block.size_bytes)
        return self.overhead_s + read + cpu, source, cpu

    # -- reduce tasks ------------------------------------------------------------

    def reduce_duration(
        self,
        node_id: int,
        shuffle_bytes: int,
        output_bytes: int,
        reduce_cpu_s: float,
    ) -> float:
        """Shuffle + compute + pipelined output write."""
        node = self.cluster.node(node_id)
        cpu = reduce_cpu_s * self.cluster.spec.cpu_scale
        shuffle = shuffle_bytes / (node.effective_net_bw() * 1e6)
        write_local = output_bytes / (node.effective_disk_bw() * 1e6)
        write_remote = (
            output_bytes * (OUTPUT_REPLICATION - 1) / (node.effective_net_bw() * 1e6)
        )
        return self.overhead_s + shuffle + cpu + write_local + write_remote

    # -- contention bookkeeping ----------------------------------------------------

    def start_local_read(self, node_id: int) -> None:
        """Register a disk read for contention accounting."""
        self.cluster.node(node_id).active_disk_reads += 1

    def end_local_read(self, node_id: int) -> None:
        """Unregister a disk read."""
        node = self.cluster.node(node_id)
        node.active_disk_reads -= 1
        assert node.active_disk_reads >= 0

    def start_transfer(self, source: int, dest: int) -> None:
        """Register a network transfer on both endpoints."""
        self.cluster.node(source).active_net_transfers += 1
        self.cluster.node(dest).active_net_transfers += 1

    def end_transfer(self, source: int, dest: int) -> None:
        """Unregister a network transfer."""
        src = self.cluster.node(source)
        dst = self.cluster.node(dest)
        src.active_net_transfers -= 1
        dst.active_net_transfers -= 1
        assert src.active_net_transfers >= 0 and dst.active_net_transfers >= 0

    # -- ideal (dedicated-cluster) runtime for the slowdown metric -------------------

    def ideal_map_seconds(self, block_bytes: int, map_cpu_s: float) -> float:
        """One map task on a free cluster with 100% locality."""
        cpu = map_cpu_s * self.cluster.spec.cpu_scale
        return self.overhead_s + block_bytes / (self.mean_disk_bw * 1e6) + cpu

    def ideal_reduce_seconds(
        self, shuffle_bytes: int, output_bytes: int, reduce_cpu_s: float
    ) -> float:
        """One reduce task on a free cluster."""
        shuffle = shuffle_bytes / (self.mean_net_bw * 1e6)
        write = output_bytes / (self.mean_disk_bw * 1e6) + output_bytes * (
            OUTPUT_REPLICATION - 1
        ) / (self.mean_net_bw * 1e6)
        cpu = reduce_cpu_s * self.cluster.spec.cpu_scale
        return self.overhead_s + shuffle + cpu + write
