"""JobTracker: job lifecycle, task launching, and completion handling.

Every event action scheduled here is a ``functools.partial`` over a bound
method or a small ``__slots__`` callable — never a closure — so an event
heap mid-flight can be pickled by :mod:`repro.checkpoint` and re-fired
after restore.  For the same reason in-flight attempts are registered
under :attr:`repro.mapreduce.task.MapTask.key` (a stable tuple) rather
than ``id(task)``, which dangles across a pickle round-trip.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.cluster.cluster import Cluster
from repro.core.manager import DareReplicationService
from repro.hdfs.namenode import NameNode
from repro.mapreduce.job import Job, JobSpec
from repro.mapreduce.heartbeat_hub import HeartbeatHub
from repro.mapreduce.runtime import TaskTimeModel
from repro.mapreduce.slots import SlotStore
from repro.mapreduce.speculation import SpeculationPolicy
from repro.mapreduce.task import Locality, MapTask, ReduceTask, TaskState
from repro.mapreduce.tasktracker import TaskTracker
from repro.metrics.traffic import TrafficMeter
from repro.observability.trace import NULL_TRACER, TASK_FINISHED, TASK_SCHEDULED, Tracer
from repro.simulation.engine import Engine
from repro.simulation.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.metrics.collector import MetricsCollector
    from repro.scheduling.base import Scheduler


class DataLossError(RuntimeError):
    """A map task's block has no live replica anywhere (job cannot finish).

    Raised rather than silently hanging: it means a failure plan destroyed
    all ``rf`` replicas of a block before re-replication could repair it.
    """


class _ReadDone:
    """Event action: the input read finished; release contention early.

    A picklable stand-in for the old ``on_read_done`` closure: it must
    both run the release and unregister it from the attempt's cleanup
    list (so a later kill does not release twice).
    """

    __slots__ = ("rt", "release")

    def __init__(self, rt: "_RunningTask", release: Callable[[], None]) -> None:
        self.rt = rt
        self.release = release

    def __call__(self) -> None:
        self.rt.cleanups.remove(self.release)
        self.release()


class _ShuffleRelease:
    """Cleanup action: free the reducer's NIC (picklable, unlike a closure)."""

    __slots__ = ("node",)

    def __init__(self, node) -> None:
        self.node = node

    def __call__(self) -> None:
        self.node.active_net_transfers -= 1


class _RunningTask:
    """Bookkeeping for one in-flight task *attempt* (failures and
    speculative execution both need to unwind attempts)."""

    __slots__ = ("task", "tt", "events", "cleanups", "locality", "speculative")

    def __init__(self, task, tt: TaskTracker, locality=None, speculative=False) -> None:
        self.task = task
        self.tt = tt
        #: pending engine events to cancel if the attempt is killed
        self.events: List[Event] = []
        #: contention-release callables not yet executed
        self.cleanups: List[Callable[[], None]] = []
        #: placement quality of this attempt
        self.locality = locality
        #: True for a speculative duplicate
        self.speculative = speculative


class JobTracker:
    """The master's compute-side daemon.

    Task *selection* is delegated to the pluggable scheduler; everything
    else — slot accounting, locality resolution against the physical block
    placement, the DARE hook, duration modeling, and completion events —
    happens here, so all schedulers are compared on identical mechanics
    (the paper's "scheduler-agnostic" property).

    The tracker also keeps a registry of in-flight tasks per node so that
    a node failure (see :mod:`repro.failures`) can cancel their completion
    events, roll back contention counters, and requeue the work — the
    MapReduce re-execution model.
    """

    def __init__(
        self,
        cluster: Cluster,
        namenode: NameNode,
        engine: Engine,
        scheduler: "Scheduler",
        time_model: TaskTimeModel,
        dare: DareReplicationService,
        collector: Optional["MetricsCollector"] = None,
        traffic: Optional[TrafficMeter] = None,
        speculation: Optional[SpeculationPolicy] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.cluster = cluster
        self.namenode = namenode
        self.engine = engine
        self.tracer = tracer
        self.scheduler = scheduler
        self.time_model = time_model
        self.dare = dare
        self.collector = collector
        self.traffic = traffic if traffic is not None else TrafficMeter()
        self.jobs: List[Job] = []
        self.expected_jobs: Optional[int] = None
        self.completed_jobs = 0
        self.finished = False
        #: dense free/capacity slot counters for every node (TaskTrackers
        #: read and write their own entry; the heartbeat hubs scan the raw
        #: arrays)
        self.slots = SlotStore(cluster.spec.n_nodes)
        for node in cluster.slaves:
            self.slots.register(node.node_id, node.map_slots, node.reduce_slots)
        self.tasktrackers: Dict[int, TaskTracker] = {}
        #: per-rack batched heartbeat actors (hb_batch / mesoscale modes)
        self.hubs: List[HeartbeatHub] = []
        #: bumped on every schedule-state change (launch, completion,
        #: submission, requeue); the hubs use deltas across a beat to count
        #: launches and as part of the hot-node cache key
        self.sched_version = 0
        self._hot_by_rack: Dict[int, List[int]] = {}
        self._hot_cache_key: Optional[Tuple[int, int]] = None
        #: in-flight attempts by node, for failure unwinding
        self._running_by_node: Dict[int, Dict[Tuple, _RunningTask]] = {}
        #: all live attempts per task (task.key -> attempts)
        self._attempts: Dict[Tuple, List[_RunningTask]] = {}
        #: straggler mitigation (None = off, as in the paper's experiments)
        self.speculation = speculation
        self.speculative_launched = 0
        self.speculative_wasted = 0
        self.speculative_won = 0
        #: counter of task attempts killed by node failures
        self.tasks_requeued = 0
        #: callables invoked with each submitted Job (e.g. Scarlett's
        #: popularity observer)
        self.submit_listeners: List[Callable[[Job], None]] = []
        scheduler.bind(self)

    # -- setup -------------------------------------------------------------

    def start_tasktrackers(self) -> None:
        """Create the heartbeat chain: per-slave trackers, or rack hubs.

        Event-accurate mode (the default) creates one TaskTracker per slave
        with staggered heartbeats.  When the cluster spec asks for batched
        heartbeats (``hb_batch`` or ``mesoscale``), one
        :class:`HeartbeatHub` per rack replaces the per-node events; in
        mesoscale the hubs also pool their members (TaskTrackers
        materialise on promotion).
        """
        rng = self.cluster.streams.python("mapreduce.heartbeat-offsets")
        spec = self.cluster.spec
        hb = spec.heartbeat_s
        if spec.hb_batch or spec.mesoscale:
            by_rack: Dict[int, List[int]] = {}
            for node in self.cluster.slaves:
                by_rack.setdefault(int(node.rack), []).append(node.node_id)
            for rack in sorted(by_rack):
                self.hubs.append(
                    HeartbeatHub(
                        rack,
                        by_rack[rack],
                        self,
                        self.engine,
                        hb,
                        start_offset_s=rng.uniform(0.0, hb),
                        mesoscale=spec.mesoscale,
                    )
                )
            return
        for node in self.cluster.slaves:
            self.tasktrackers[node.node_id] = TaskTracker(
                node, self, self.engine, hb, start_offset_s=rng.uniform(0.0, hb)
            )
            self._running_by_node[node.node_id] = {}

    # -- batched-heartbeat support ------------------------------------------

    def pending_work_units(self) -> int:
        """Upper bound on tasks the scheduler could place right now."""
        total = 0
        speculative = self.speculation is not None
        for job in self.scheduler.active_jobs:
            total += len(job.pending_maps)
            if job.reduces_schedulable:
                total += len(job.reduces) - job.running_reduces - job.finished_reduces
            if speculative:
                total += job.running_maps
        return total

    def hot_nodes_by_rack(self) -> Dict[int, List[int]]:
        """Replica holders of pending map blocks, grouped by rack.

        Cached against (schedule state, applied control messages): any
        launch/completion/requeue or DNA_DYNREPL/DNA_INVALIDATE heartbeat
        changes either the pending block set or the holder sets.
        """
        nn = self.namenode
        key = (self.sched_version, len(nn.command_log))
        if key != self._hot_cache_key:
            by_rack: Dict[int, List[int]] = {}
            seen: set = set()
            locs_by_id = nn._locs_by_id
            rack_of = nn._rack_of
            for job in self.scheduler.active_jobs:
                for bid in job.pending_block_ids:
                    for nid in locs_by_id[bid]:
                        if nid not in seen:
                            seen.add(nid)
                            by_rack.setdefault(rack_of[nid], []).append(nid)
            for nids in by_rack.values():
                nids.sort()
            self._hot_by_rack = by_rack
            self._hot_cache_key = key
        return self._hot_by_rack

    def submit_trace(self, specs: List[JobSpec]) -> None:
        """Schedule submission events for a whole trace."""
        self.expected_jobs = len(specs)
        for spec in specs:
            self.engine.schedule(
                spec.submit_time,
                partial(self.submit, spec),
                f"submit:job{spec.job_id}",
            )

    def submit(self, spec: JobSpec) -> Job:
        """Submit one job now."""
        inode = self.namenode.file(spec.input_file)
        job = Job(spec.validate(), inode)
        self.jobs.append(job)
        self.sched_version += 1
        self.scheduler.job_added(job)
        for listener in self.submit_listeners:
            listener(job)
        return job

    # -- the heartbeat ---------------------------------------------------------

    def heartbeat(self, tt: TaskTracker) -> None:
        """Handle one TaskTracker heartbeat: control plane, then work."""
        now = self.engine.now
        node_id = tt.node_id
        # the heartbeat carries the DataNode's block reports: DARE replicas
        # and invalidations become visible to the scheduler here
        self.namenode.process_heartbeat(node_id, now)
        scheduler = self.scheduler
        while tt.free_map_slots > 0:
            pick = scheduler.pick_map(node_id, now)
            if pick is None:
                break
            job, task, locality = pick
            self._launch_map(job, task, locality, tt, now)
        while tt.free_reduce_slots > 0:
            pick = scheduler.pick_reduce(node_id, now)
            if pick is None:
                break
            job, rtask = pick
            self._launch_reduce(job, rtask, tt, now)
        if self.speculation is not None:
            while tt.free_map_slots > 0:
                candidate = self.speculation.pick_candidate(
                    self.scheduler.active_jobs,
                    now,
                    tt.node_id,
                    self._has_duplicate,
                )
                if candidate is None:
                    break
                self._launch_speculative(candidate, tt, now)

    # -- map tasks ------------------------------------------------------------

    def _has_duplicate(self, task: MapTask) -> bool:
        return len(self._attempts.get(task.key, [])) > 1

    def _track(self, rt: _RunningTask) -> None:
        self._running_by_node[rt.tt.node_id][rt.task.key] = rt
        self._attempts.setdefault(rt.task.key, []).append(rt)

    def _remove_attempt(self, rt: _RunningTask) -> None:
        node_running = self._running_by_node.get(rt.tt.node_id, {})
        key = rt.task.key
        if node_running.get(key) is rt:
            node_running.pop(key, None)
        attempts = self._attempts.get(key)
        if attempts is not None:
            if rt in attempts:
                attempts.remove(rt)
            if not attempts:
                self._attempts.pop(key, None)

    def _launch_map(
        self, job: Job, task: MapTask, locality: Locality, tt: TaskTracker, now: float
    ) -> None:
        node_id = tt.node_id
        block = task.block
        dn = self.namenode.datanode(node_id)
        # resolve locality against *physical* placement: the scheduler's
        # view can be one heartbeat stale (a lazily deleted replica may
        # still be listed)
        data_local = dn.has_block(block.block_id)
        if data_local:
            locality = Locality.NODE_LOCAL
        elif locality is Locality.NODE_LOCAL:
            locality = self._fallback_locality(node_id, block.block_id)
        if not data_local and not any(
            n != node_id for n in self.namenode.locations(block.block_id)
        ):
            raise DataLossError(
                f"block {block.block_id} of file {block.inode.name!r} has no "
                "live replica; a failure plan destroyed all copies"
            )

        if job.first_task_time is None:
            job.first_task_time = now
        job.take_map(task)
        self.sched_version += 1
        job.locality_counts[locality] += 1
        task.state = TaskState.RUNNING
        task.node_id = node_id
        task.locality = locality
        task.start_time = now
        tt.occupy_map_slot()

        # DARE: every scheduled map task triggers the per-node algorithm
        self.dare.on_map_task(node_id, block, data_local, now)

        spec = job.spec
        duration, source, cpu = self.time_model.map_duration(
            node_id, block, data_local, spec.map_cpu_s
        )
        task.source_node = source
        read_end = now + (duration - cpu)
        rt = _RunningTask(task, tt, locality=locality)
        if data_local:
            self.time_model.start_local_read(node_id)
            release = partial(self.time_model.end_local_read, node_id)
        else:
            self.traffic.record("remote_map_reads", block.size_bytes)
            self.time_model.start_transfer(source, node_id)
            release = partial(self.time_model.end_transfer, source, node_id)
        rt.cleanups.append(release)
        rt.events.append(
            self.engine.schedule(
                read_end, _ReadDone(rt, release), f"read-done:j{spec.job_id}m{task.index}"
            )
        )
        rt.events.append(
            self.engine.schedule(
                now + duration,
                partial(self._attempt_complete, job, task, rt),
                f"map-done:j{spec.job_id}m{task.index}",
            )
        )
        self._track(rt)
        if self.tracer.enabled:
            self.tracer.emit(
                TASK_SCHEDULED,
                now,
                node=node_id,
                job=spec.job_id,
                task=task.index,
                kind="map",
                locality=locality.name,
                data_local=data_local,
                block=block.block_id,
            )

    def _fallback_locality(self, node_id: int, block_id: int) -> Locality:
        rack_nodes = self.cluster.topology.rack_members(node_id)
        for n in self.namenode.locations(block_id):
            if n != node_id and n in rack_nodes:
                return Locality.RACK_LOCAL
        return Locality.REMOTE

    def _launch_speculative(self, task: MapTask, tt: TaskTracker, now: float) -> None:
        """Duplicate a straggling map attempt on ``tt`` (first wins)."""
        job = task.job
        node_id = tt.node_id
        block = task.block
        dn = self.namenode.datanode(node_id)
        data_local = dn.has_block(block.block_id)
        locality = (
            Locality.NODE_LOCAL
            if data_local
            else self._fallback_locality(node_id, block.block_id)
        )
        tt.occupy_map_slot()
        self.sched_version += 1
        # speculation is still "a map task is scheduled": DARE observes it
        self.dare.on_map_task(node_id, block, data_local, now)
        spec = job.spec
        duration, source, cpu = self.time_model.map_duration(
            node_id, block, data_local, spec.map_cpu_s
        )
        read_end = now + (duration - cpu)
        rt = _RunningTask(task, tt, locality=locality, speculative=True)
        if data_local:
            self.time_model.start_local_read(node_id)
            release = partial(self.time_model.end_local_read, node_id)
        else:
            self.traffic.record("remote_map_reads", block.size_bytes)
            self.time_model.start_transfer(source, node_id)
            release = partial(self.time_model.end_transfer, source, node_id)
        rt.cleanups.append(release)
        rt.events.append(
            self.engine.schedule(
                read_end, _ReadDone(rt, release), f"spec-read:j{spec.job_id}m{task.index}"
            )
        )
        rt.events.append(
            self.engine.schedule(
                now + duration,
                partial(self._attempt_complete, job, task, rt),
                f"spec-done:j{spec.job_id}m{task.index}",
            )
        )
        self._track(rt)
        self.speculative_launched += 1
        if self.tracer.enabled:
            self.tracer.emit(
                TASK_SCHEDULED,
                now,
                node=node_id,
                job=spec.job_id,
                task=task.index,
                kind="map",
                locality=locality.name,
                data_local=data_local,
                block=block.block_id,
                speculative=True,
            )

    def _attempt_complete(self, job: Job, task: MapTask, rt: _RunningTask) -> None:
        now = self.engine.now
        self._remove_attempt(rt)
        rt.tt.release_map_slot()
        # kill any sibling attempts (the classic first-wins rule)
        for sibling in list(self._attempts.get(task.key, [])):
            for ev in sibling.events:
                self.engine.cancel(ev)
            for cleanup in sibling.cleanups:
                cleanup()
            sibling.cleanups.clear()
            sibling.tt.release_map_slot()
            self._remove_attempt(sibling)
            self.speculative_wasted += 1
        task.state = TaskState.DONE
        task.finish_time = now
        if rt.speculative:
            # the duplicate won: the task effectively ran where it finished
            task.node_id = rt.tt.node_id
            task.locality = rt.locality
            self.speculative_won += 1
        job.running_maps -= 1
        job.finished_maps += 1
        self.sched_version += 1
        if self.tracer.enabled:
            self.tracer.emit(
                TASK_FINISHED,
                now,
                node=rt.tt.node_id,
                job=job.spec.job_id,
                task=task.index,
                kind="map",
                locality=task.locality.name,
                speculative=rt.speculative,
            )
        if self.collector is not None:
            self.collector.on_map_complete(task)
        if job.done:
            self._finish_job(job, now)

    # -- reduce tasks ------------------------------------------------------------

    def _launch_reduce(self, job: Job, task: ReduceTask, tt: TaskTracker, now: float) -> None:
        node_id = tt.node_id
        spec = job.spec
        task.state = TaskState.RUNNING
        task.node_id = node_id
        task.start_time = now
        job.running_reduces += 1
        self.sched_version += 1
        tt.occupy_reduce_slot()
        input_bytes = job.inode.size_bytes
        shuffle_bytes = int(input_bytes * spec.shuffle_ratio / max(1, spec.n_reduces))
        output_bytes = int(input_bytes * spec.output_ratio / max(1, spec.n_reduces))
        self.traffic.record("shuffle", shuffle_bytes)
        from repro.mapreduce.runtime import OUTPUT_REPLICATION

        self.traffic.record("output_pipeline", output_bytes * (OUTPUT_REPLICATION - 1))
        duration = self.time_model.reduce_duration(
            node_id, shuffle_bytes, output_bytes, spec.reduce_cpu_s
        )
        # the shuffle occupies the reducer's NIC (sources are spread over
        # the cluster; the inbound side is the shared bottleneck)
        node = self.cluster.node(node_id)
        node.active_net_transfers += 1
        rt = _RunningTask(task, tt)
        rt.cleanups.append(_ShuffleRelease(node))
        rt.events.append(
            self.engine.schedule(
                now + duration,
                partial(self._reduce_complete, job, task, tt, rt),
                f"reduce-done:j{spec.job_id}r{task.index}",
            )
        )
        self._track(rt)
        if self.tracer.enabled:
            self.tracer.emit(
                TASK_SCHEDULED,
                now,
                node=node_id,
                job=spec.job_id,
                task=task.index,
                kind="reduce",
            )

    def _reduce_complete(
        self, job: Job, task: ReduceTask, tt: TaskTracker, rt: _RunningTask
    ) -> None:
        now = self.engine.now
        self._remove_attempt(rt)
        task.state = TaskState.DONE
        task.finish_time = now
        job.running_reduces -= 1
        job.finished_reduces += 1
        self.sched_version += 1
        tt.release_reduce_slot()
        for cleanup in rt.cleanups:
            cleanup()
        rt.cleanups.clear()
        if self.tracer.enabled:
            self.tracer.emit(
                TASK_FINISHED,
                now,
                node=tt.node_id,
                job=job.spec.job_id,
                task=task.index,
                kind="reduce",
            )
        if self.collector is not None:
            self.collector.on_reduce_complete(task)
        if job.done:
            self._finish_job(job, now)

    # -- failure handling -----------------------------------------------------------

    def requeue_tasks_from(self, node_id: int) -> int:
        """Kill every in-flight task on a failed node and requeue it.

        Completion events are cancelled, contention counters rolled back,
        and tasks returned to their jobs' pending sets, where any live
        node's next heartbeat can pick them up — Hadoop's task
        re-execution semantics.  Returns the number of requeued attempts.
        """
        running = self._running_by_node.get(node_id, {})
        requeued = 0
        for rt in list(running.values()):
            for ev in rt.events:
                self.engine.cancel(ev)
            for cleanup in rt.cleanups:
                cleanup()
            rt.cleanups.clear()
            self._remove_attempt(rt)
            task = rt.task
            job = task.job
            if self._attempts.get(task.key):
                # another (speculative or original) attempt is still alive
                # elsewhere; the task keeps running there
                self.speculative_wasted += rt.speculative
                continue
            task.state = TaskState.PENDING
            task.node_id = None
            task.start_time = None
            if isinstance(task, MapTask):
                # the earlier attempt's locality stands in the counters
                # (Hadoop's counters also count killed attempts)
                job.running_maps -= 1
                job.pending_maps.append(task)
                job.pending_block_ids.add(task.block.block_id)
                task.locality = None
                task.source_node = None
            else:
                job.running_reduces -= 1
            requeued += 1
        running.clear()
        self.tasks_requeued += requeued
        self.sched_version += 1
        return requeued

    # -- completion ----------------------------------------------------------------

    def _finish_job(self, job: Job, now: float) -> None:
        job.finish_time = now
        self.completed_jobs += 1
        self.scheduler.job_finished(job)
        if self.collector is not None:
            self.collector.on_job_complete(job)
        if self.expected_jobs is not None and self.completed_jobs >= self.expected_jobs:
            self.finished = True
