"""Speculative execution of straggler map tasks.

Hadoop launches a duplicate ("speculative") attempt of a task whose
progress lags far behind its siblings; whichever attempt finishes first
wins and the other is killed.  Stragglers in this simulator arise the same
way they do in production — remote reads through congested or degraded
links (especially on the virtualized cluster) — which makes speculation and
DARE natural companions: DARE removes the slow remote reads that cause most
speculation in the first place.

The policy is the classic one (Hadoop 0.21 / the OSDI'08 formulation,
simplified to map tasks): a task is a straggler once it has run longer than
``slowdown_factor`` times the mean duration of the job's already-completed
maps, provided enough siblings completed for the mean to be trustworthy and
the task has no duplicate yet.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.mapreduce.job import Job
from repro.mapreduce.task import MapTask, TaskState


class SpeculationPolicy:
    """Decides which running map task (if any) deserves a duplicate."""

    def __init__(
        self,
        slowdown_factor: float = 1.5,
        min_completed: int = 3,
    ) -> None:
        if slowdown_factor <= 1.0:
            raise ValueError("slowdown factor must exceed 1")
        if min_completed < 1:
            raise ValueError("need at least one completed sibling")
        self.slowdown_factor = slowdown_factor
        self.min_completed = min_completed

    def job_mean_map_s(self, job: Job) -> Optional[float]:
        """Mean duration of the job's completed maps (None if too few)."""
        done = [t for t in job.maps if t.state is TaskState.DONE]
        if len(done) < self.min_completed:
            return None
        return sum(t.duration for t in done) / len(done)

    def pick_candidate(
        self,
        jobs: Iterable[Job],
        now: float,
        node_id: int,
        has_duplicate: Callable[[MapTask], bool],
    ) -> Optional[MapTask]:
        """The slowest qualifying straggler, or None.

        A candidate must be RUNNING, not already duplicated, not running on
        the offering node itself, and past the slowdown threshold.
        """
        best: Optional[MapTask] = None
        best_lag = 0.0
        for job in jobs:
            if job.finished_maps == len(job.maps):
                continue
            mean = self.job_mean_map_s(job)
            if mean is None:
                continue
            threshold = self.slowdown_factor * mean
            for task in job.maps:
                if task.state is not TaskState.RUNNING:
                    continue
                if task.node_id == node_id or has_duplicate(task):
                    continue
                lag = (now - task.start_time) - threshold
                if lag > 0 and lag > best_lag:
                    best, best_lag = task, lag
        return best
