"""Dense array-backed free-slot counters, indexed by node id.

At 10k-100k nodes, per-TaskTracker attribute storage makes any cluster-wide
slot question (the batched heartbeat hub's "who can take work this tick")
a Python object walk.  The store keeps free and capacity counts in flat
``array`` buffers indexed by node id: TaskTrackers read and write their own
entry through the same guards as before, and the hub scans the raw buffers.

Capacities are registered for *every* slave up front — including nodes the
mesoscale pool has not materialised a TaskTracker for — so "all slots free"
is well-defined cluster-wide.
"""

from __future__ import annotations

from array import array


class SlotStore:
    """Free/capacity map and reduce slot counts for all nodes."""

    __slots__ = ("free_map", "free_reduce", "cap_map", "cap_reduce")

    def __init__(self, n_nodes: int) -> None:
        self.free_map = array("l", [0] * n_nodes)
        self.free_reduce = array("l", [0] * n_nodes)
        self.cap_map = array("l", [0] * n_nodes)
        self.cap_reduce = array("l", [0] * n_nodes)

    def register(self, node_id: int, map_slots: int, reduce_slots: int) -> None:
        """Declare a node's slot capacity; starts fully free."""
        self.cap_map[node_id] = map_slots
        self.cap_reduce[node_id] = reduce_slots
        self.free_map[node_id] = map_slots
        self.free_reduce[node_id] = reduce_slots

    def all_free(self, node_id: int) -> bool:
        """True when no task occupies any of the node's slots."""
        return (
            self.free_map[node_id] == self.cap_map[node_id]
            and self.free_reduce[node_id] == self.cap_reduce[node_id]
        )
