"""Per-rack batched heartbeats and the mesoscale node pool.

Event-accurate mode schedules one heartbeat event per TaskTracker per
interval: an O(N) event storm that dominates the engine at 10k+ nodes.  A
:class:`HeartbeatHub` replaces it with one reusable event per *rack* per
interval (``Engine.reschedule_in``), fanning out to individual nodes only
when they have something to do:

* nodes with control-plane traffic (DataNode outbox or lazy deletions) are
  always serviced, so replica announcements keep their one-heartbeat lag;
* replica holders of currently-pending map blocks get first slot offers
  (the JobTracker maintains that set per rack, invalidated whenever the
  schedule or the block map changes), keeping data-local placement sharp;
* remaining free-slot members are offered work only while the cluster-wide
  pending-work budget lasts, so an idle 100k-node cluster costs O(racks)
  per tick rather than O(N) no-op scheduler calls.

In ``mesoscale`` mode the hub is also an aggregate actor over its idle
members: nodes start *pooled* — no TaskTracker object at all, slot capacity
tracked only in the :class:`~repro.mapreduce.slots.SlotStore` — and are
*promoted* to event-accurate TaskTrackers the moment they are offered work
or carry control traffic.  A promoted node is *demoted* back into the pool
only when provably inert: every slot free, no stored blocks, no pending
deletions, no queued control messages, and no in-flight attempts.  The
promotion/demotion counters and the invariant assertions in
:meth:`demote` are exercised by the mesoscale property suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Sequence

from repro.mapreduce.tasktracker import TaskTracker
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.jobtracker import JobTracker


class HeartbeatHub:
    """Aggregate heartbeat actor for one rack."""

    __slots__ = (
        "rack",
        "member_ids",
        "jobtracker",
        "engine",
        "interval_s",
        "mesoscale",
        "accurate",
        "ticks",
        "promotions",
        "demotions",
        "_hb_label",
        "_hb_event",
    )

    def __init__(
        self,
        rack: int,
        member_ids: Sequence[int],
        jobtracker: "JobTracker",
        engine: Engine,
        interval_s: float,
        start_offset_s: float = 0.0,
        mesoscale: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.rack = rack
        self.member_ids: List[int] = sorted(member_ids)
        self.jobtracker = jobtracker
        self.engine = engine
        self.interval_s = interval_s
        self.mesoscale = mesoscale
        #: node ids with a live (event-accurate) TaskTracker
        self.accurate: set = set()
        self.ticks = 0
        self.promotions = 0
        self.demotions = 0
        if not mesoscale:
            # batched-but-accurate mode: every member gets a TaskTracker,
            # only the per-node heartbeat events are replaced by the hub
            for nid in self.member_ids:
                self._materialize(nid)
        self._hb_label = f"hbhub:r{rack}"
        self._hb_event = engine.schedule(
            engine.now + start_offset_s, self._tick, f"hbhub-start:r{rack}"
        )

    # -- pool <-> accurate protocol ----------------------------------------

    def _materialize(self, node_id: int) -> TaskTracker:
        jt = self.jobtracker
        tt = TaskTracker(
            jt.cluster.node(node_id), jt, self.engine, self.interval_s, managed=True
        )
        jt.tasktrackers[node_id] = tt
        jt._running_by_node.setdefault(node_id, {})
        self.accurate.add(node_id)
        return tt

    def promote(self, node_id: int) -> TaskTracker:
        """Materialise a pooled member into an event-accurate TaskTracker."""
        if node_id in self.accurate:
            raise RuntimeError(f"node {node_id} is already accurate")
        self.promotions += 1
        return self._materialize(node_id)

    def demote(self, node_id: int) -> None:
        """Return an inert accurate member to the pool.

        Raises when the node is not actually inert — demotion must never
        drop running attempts, stored replicas, or queued control traffic.
        """
        jt = self.jobtracker
        if node_id not in self.accurate:
            raise RuntimeError(f"node {node_id} is not accurate")
        if not jt.slots.all_free(node_id):
            raise RuntimeError(f"node {node_id} has occupied slots")
        dn = jt.namenode.datanodes[node_id]
        if dn.static_blocks or dn.dynamic_blocks or dn.pending_deletion or dn.outbox:
            raise RuntimeError(f"node {node_id} holds blocks or control traffic")
        if jt._running_by_node.get(node_id):
            raise RuntimeError(f"node {node_id} has in-flight attempts")
        del jt.tasktrackers[node_id]
        jt._running_by_node.pop(node_id, None)
        self.accurate.discard(node_id)
        self.demotions += 1

    def _demotable(self, node_id: int) -> bool:
        jt = self.jobtracker
        if not jt.slots.all_free(node_id):
            return False
        dn = jt.namenode.datanodes[node_id]
        if dn.static_blocks or dn.dynamic_blocks or dn.pending_deletion or dn.outbox:
            return False
        return not jt._running_by_node.get(node_id)

    # -- the tick -----------------------------------------------------------

    def _tick(self) -> None:
        jt = self.jobtracker
        nn = jt.namenode
        datanodes = nn.datanodes
        free_map = jt.slots.free_map
        free_reduce = jt.slots.free_reduce
        trackers = jt.tasktrackers
        self.ticks += 1

        budget = jt.pending_work_units()
        # replica holders of pending blocks first: they are the nodes whose
        # slots buy data locality
        if budget > 0:
            for nid in jt.hot_nodes_by_rack().get(self.rack, ()):
                if free_map[nid] <= 0 and free_reduce[nid] <= 0:
                    continue
                tt = trackers.get(nid)
                if tt is None:
                    tt = self.promote(nid)
                before = jt.sched_version
                tt.beat()
                budget -= jt.sched_version - before

        for nid in self.member_ids:
            dn = datanodes[nid]
            control = bool(dn.outbox) or bool(dn.pending_deletion)
            offer = budget > 0 and (free_map[nid] > 0 or free_reduce[nid] > 0)
            if not control and not offer:
                continue
            tt = trackers.get(nid)
            if tt is None:
                tt = self.promote(nid)
            before = jt.sched_version
            tt.beat()
            if offer:
                launched = jt.sched_version - before
                # an offer that placed nothing still consumes budget, so a
                # tick cannot walk every idle node when the scheduler is
                # deferring (e.g. fair-share delay scheduling)
                budget -= launched if launched else 1

        if self.mesoscale:
            for nid in sorted(self.accurate):
                if self._demotable(nid):
                    self.demote(nid)

        if not jt.finished:
            self.engine.reschedule_in(self.interval_s, self._hb_event, self._hb_label)
