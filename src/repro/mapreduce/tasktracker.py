"""TaskTracker: the per-slave heartbeat loop and slot accounting."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import Node
from repro.observability.trace import HEARTBEAT
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.jobtracker import JobTracker


class TaskTracker:
    """Runs on every slave: heartbeats the JobTracker for work.

    Each heartbeat (1) delivers the co-located DataNode's control-plane
    messages to the NameNode (announcing DARE replicas / invalidations) and
    (2) offers free map/reduce slots to the scheduler.  Heartbeat phases are
    staggered per node with a random offset, like real TaskTrackers whose
    start times differ.

    The heartbeat chain is the simulator's highest-frequency periodic
    process, so its dispatch is inlined: the tracer reference and event
    label are computed once, and the chain re-arms a single reusable
    :class:`~repro.simulation.events.Event` via ``Engine.reschedule_in``
    instead of allocating one per beat.  Firing times, labels, and sequence
    numbers are identical to naive per-beat scheduling, so traces (even with
    the ``engine.event`` firehose on) do not change.
    """

    __slots__ = (
        "node",
        "node_id",
        "jobtracker",
        "engine",
        "tracer",
        "interval_s",
        "free_map_slots",
        "free_reduce_slots",
        "heartbeats_sent",
        "_hb_label",
        "_hb_event",
    )

    def __init__(
        self,
        node: Node,
        jobtracker: "JobTracker",
        engine: Engine,
        interval_s: float,
        start_offset_s: float = 0.0,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.node = node
        self.node_id = node.node_id
        self.jobtracker = jobtracker
        self.engine = engine
        self.tracer = jobtracker.tracer
        self.interval_s = interval_s
        self.free_map_slots = node.map_slots
        self.free_reduce_slots = node.reduce_slots
        self.heartbeats_sent = 0
        self._hb_label = f"hb:{node.hostname}"
        self._hb_event = engine.schedule(
            engine.now + start_offset_s, self._heartbeat, f"hb-start:{node.hostname}"
        )

    def _heartbeat(self) -> None:
        if not self.node.alive:
            return  # a dead TaskTracker stops heartbeating
        self.heartbeats_sent += 1
        self.jobtracker.heartbeat(self)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                HEARTBEAT,
                self.engine.now,
                node=self.node_id,
                free_map_slots=self.free_map_slots,
                free_reduce_slots=self.free_reduce_slots,
            )
        if not self.jobtracker.finished:
            self.engine.reschedule_in(self.interval_s, self._hb_event, self._hb_label)

    # -- slot accounting (called by the JobTracker) -----------------------

    def occupy_map_slot(self) -> None:
        """Claim one map slot for a launching task."""
        if self.free_map_slots <= 0:
            raise RuntimeError(f"{self.node.hostname}: no free map slots")
        self.free_map_slots -= 1

    def release_map_slot(self) -> None:
        """Return a map slot on task completion."""
        if self.free_map_slots >= self.node.map_slots:
            raise RuntimeError(f"{self.node.hostname}: map slot over-release")
        self.free_map_slots += 1

    def occupy_reduce_slot(self) -> None:
        """Claim one reduce slot for a launching task."""
        if self.free_reduce_slots <= 0:
            raise RuntimeError(f"{self.node.hostname}: no free reduce slots")
        self.free_reduce_slots -= 1

    def release_reduce_slot(self) -> None:
        """Return a reduce slot on task completion."""
        if self.free_reduce_slots >= self.node.reduce_slots:
            raise RuntimeError(f"{self.node.hostname}: reduce slot over-release")
        self.free_reduce_slots += 1
