"""TaskTracker: the per-slave heartbeat loop and slot accounting."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cluster.node import Node
from repro.observability.trace import HEARTBEAT
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.mapreduce.jobtracker import JobTracker


class TaskTracker:
    """Runs on every slave: heartbeats the JobTracker for work.

    Each heartbeat (1) delivers the co-located DataNode's control-plane
    messages to the NameNode (announcing DARE replicas / invalidations) and
    (2) offers free map/reduce slots to the scheduler.  Heartbeat phases are
    staggered per node with a random offset, like real TaskTrackers whose
    start times differ.

    The heartbeat chain is the simulator's highest-frequency periodic
    process, so its dispatch is inlined: the tracer reference and event
    label are computed once, and the chain re-arms a single reusable
    :class:`~repro.simulation.events.Event` via ``Engine.reschedule_in``
    instead of allocating one per beat.  Firing times, labels, and sequence
    numbers are identical to naive per-beat scheduling, so traces (even with
    the ``engine.event`` firehose on) do not change.

    Slot counts live in the JobTracker's :class:`~repro.mapreduce.slots.
    SlotStore` (dense arrays indexed by node id); this class reads and
    writes its own entry through the same over/under-release guards the
    per-instance counters had.  Under a batched
    :class:`~repro.mapreduce.heartbeat_hub.HeartbeatHub` (``managed=True``)
    the tracker owns no heartbeat event — the hub calls :meth:`beat`.
    """

    __slots__ = (
        "node",
        "node_id",
        "jobtracker",
        "engine",
        "tracer",
        "interval_s",
        "slots",
        "heartbeats_sent",
        "_hb_label",
        "_hb_event",
    )

    def __init__(
        self,
        node: Node,
        jobtracker: "JobTracker",
        engine: Engine,
        interval_s: float,
        start_offset_s: float = 0.0,
        managed: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.node = node
        self.node_id = node.node_id
        self.jobtracker = jobtracker
        self.engine = engine
        self.tracer = jobtracker.tracer
        self.interval_s = interval_s
        self.slots = jobtracker.slots
        self.heartbeats_sent = 0
        self._hb_label = f"hb:{node.hostname}"
        if managed:
            self._hb_event = None
        else:
            self._hb_event = engine.schedule(
                engine.now + start_offset_s, self._heartbeat, f"hb-start:{node.hostname}"
            )

    @property
    def free_map_slots(self) -> int:
        """Free map slots on this node (store-backed)."""
        return self.slots.free_map[self.node_id]

    @property
    def free_reduce_slots(self) -> int:
        """Free reduce slots on this node (store-backed)."""
        return self.slots.free_reduce[self.node_id]

    def beat(self) -> None:
        """One heartbeat: control plane, slot offers, trace record."""
        if not self.node.alive:
            return  # a dead TaskTracker stops heartbeating
        self.heartbeats_sent += 1
        self.jobtracker.heartbeat(self)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                HEARTBEAT,
                self.engine.now,
                node=self.node_id,
                free_map_slots=self.free_map_slots,
                free_reduce_slots=self.free_reduce_slots,
            )

    def _heartbeat(self) -> None:
        self.beat()
        if self.node.alive and not self.jobtracker.finished:
            self.engine.reschedule_in(self.interval_s, self._hb_event, self._hb_label)

    # -- slot accounting (called by the JobTracker) -----------------------

    def occupy_map_slot(self) -> None:
        """Claim one map slot for a launching task."""
        free = self.slots.free_map
        if free[self.node_id] <= 0:
            raise RuntimeError(f"{self.node.hostname}: no free map slots")
        free[self.node_id] -= 1

    def release_map_slot(self) -> None:
        """Return a map slot on task completion."""
        free = self.slots.free_map
        if free[self.node_id] >= self.node.map_slots:
            raise RuntimeError(f"{self.node.hostname}: map slot over-release")
        free[self.node_id] += 1

    def occupy_reduce_slot(self) -> None:
        """Claim one reduce slot for a launching task."""
        free = self.slots.free_reduce
        if free[self.node_id] <= 0:
            raise RuntimeError(f"{self.node.hostname}: no free reduce slots")
        free[self.node_id] -= 1

    def release_reduce_slot(self) -> None:
        """Return a reduce slot on task completion."""
        free = self.slots.free_reduce
        if free[self.node_id] >= self.node.reduce_slots:
            raise RuntimeError(f"{self.node.hostname}: reduce slot over-release")
        free[self.node_id] += 1
