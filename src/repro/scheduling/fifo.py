"""Hadoop's default FIFO scheduler (JobQueueTaskScheduler).

Strict submission order: the earliest-submitted job with pending work gets
the slot.  Within that job the scheduler prefers a node-local task, then a
rack-local one, then any — but it never *withholds* a slot waiting for
locality, which is exactly why small jobs achieve poor locality under FIFO
(Section V-B: ~7x headroom for DARE).
"""

from __future__ import annotations

from typing import Optional

from repro.mapreduce.task import Locality
from repro.scheduling.base import MapPick, ReducePick, Scheduler


class FifoScheduler(Scheduler):
    """First-in, first-out job scheduling with best-effort locality."""

    def pick_map(self, node_id: int, now: float) -> Optional[MapPick]:
        """Head-of-line job's best task for this node, if any."""
        for job in self.active_jobs:
            if not job.has_pending_maps:
                continue
            found = job.find_pending_map(node_id, self.namenode, Locality.REMOTE)
            if found is not None:
                task, locality = found
                return job, task, locality
        return None

    def pick_reduce(self, node_id: int, now: float) -> Optional[ReducePick]:
        """Head-of-line job with schedulable reduces."""
        for job in self.active_jobs:
            task = job.next_pending_reduce()
            if task is not None:
                return job, task
        return None
