"""The Fair scheduler with delay scheduling.

Job ordering is max-min fair over running map tasks (all jobs weight 1, as
in the paper's experiments).  Delay scheduling follows the EuroSys'10
algorithm the Hadoop Fair Scheduler shipped with:

* when a job's turn comes and it has a node-local task for the offering
  node, launch it and reset the job's wait;
* otherwise *skip* the job and start (or continue) its wait clock;
* a job that has waited ``node_delay_s`` may launch rack-local; one that
  has waited ``node_delay_s + rack_delay_s`` may launch anywhere.

On a single-rack cluster (CCT) every non-local task is rack-local, so the
effective delay is ``node_delay_s`` — matching how the paper's CCT numbers
should be read.
"""

from __future__ import annotations

from typing import Optional

from repro.mapreduce.job import Job
from repro.mapreduce.task import Locality
from repro.scheduling.base import MapPick, ReducePick, Scheduler

#: Hadoop's Fair Scheduler defaults the locality delay to 1.5x the
#: TaskTracker heartbeat interval (1 s on our clusters).
DEFAULT_NODE_DELAY_S = 1.5
DEFAULT_RACK_DELAY_S = 1.5


class FairScheduler(Scheduler):
    """Max-min fair sharing over jobs, with delay scheduling."""

    def __init__(
        self,
        node_delay_s: float = DEFAULT_NODE_DELAY_S,
        rack_delay_s: float = DEFAULT_RACK_DELAY_S,
    ) -> None:
        super().__init__()
        if node_delay_s < 0 or rack_delay_s < 0:
            raise ValueError("delays must be nonnegative")
        self.node_delay_s = node_delay_s
        self.rack_delay_s = rack_delay_s

    # -- fair ordering ------------------------------------------------------

    def _map_order(self):
        """Jobs with pending maps, fewest running tasks first (max-min)."""
        jobs = [j for j in self.active_jobs if j.has_pending_maps]
        jobs.sort(key=lambda j: (j.running_maps, j.submit_time, j.spec.job_id))
        return jobs

    def _allowed_level(self, job: Job, now: float) -> Locality:
        """Highest (worst) locality level this job may currently launch at."""
        if job.delay_wait_started is None:
            return Locality.NODE_LOCAL
        waited = now - job.delay_wait_started
        if waited >= self.node_delay_s + self.rack_delay_s:
            return Locality.REMOTE
        if waited >= self.node_delay_s:
            return Locality.RACK_LOCAL
        return Locality.NODE_LOCAL

    # -- picking ---------------------------------------------------------------

    def pick_map(self, node_id: int, now: float) -> Optional[MapPick]:
        """Fair-order walk with per-job delay gates."""
        namenode = self.namenode
        for job in self._map_order():
            allowed = self._allowed_level(job, now)
            found = job.find_pending_map(node_id, namenode, allowed)
            if found is None:
                # skipped: the job starts (or continues) waiting
                if job.delay_wait_started is None:
                    job.delay_wait_started = now
                continue
            task, locality = found
            if locality is Locality.NODE_LOCAL:
                # a local launch resets the delay clock (EuroSys'10 rule)
                job.delay_wait_started = None
            return job, task, locality
        return None

    def pick_reduce(self, node_id: int, now: float) -> Optional[ReducePick]:
        """Fair order over jobs with schedulable reduces."""
        jobs = [j for j in self.active_jobs if j.reduces_schedulable]
        jobs.sort(key=lambda j: (j.running_reduces, j.submit_time, j.spec.job_id))
        for job in jobs:
            task = job.next_pending_reduce()
            if task is not None:
                return job, task
        return None


class SkipCountFairScheduler(FairScheduler):
    """Delay scheduling in the EuroSys'10 Algorithm-2 formulation.

    Instead of wall-clock waits, a job accumulates a *skip count*: each
    time its turn yields no node-local task on the offering node it is
    skipped and the counter increments.  After ``node_skips`` skips the
    job may launch rack-local; after ``node_skips + rack_skips``, anywhere.
    A node-local launch resets the counter.  Skip counts adapt implicitly
    to cluster size and heartbeat rate (the formulation's selling point),
    whereas time-based delays need retuning per cluster; on our clusters
    the two behave near-identically, which the test suite checks.

    Reuses ``job.delay_wait_started`` as the skip counter (float-valued).
    """

    def __init__(self, node_skips: int = 12, rack_skips: int = 12) -> None:
        super().__init__()
        if node_skips < 0 or rack_skips < 0:
            raise ValueError("skip counts must be nonnegative")
        self.node_skips = node_skips
        self.rack_skips = rack_skips

    def _allowed_level(self, job: Job, now: float) -> Locality:
        skips = job.delay_wait_started or 0.0
        if skips >= self.node_skips + self.rack_skips:
            return Locality.REMOTE
        if skips >= self.node_skips:
            return Locality.RACK_LOCAL
        return Locality.NODE_LOCAL

    def pick_map(self, node_id: int, now: float) -> Optional[MapPick]:
        namenode = self.namenode
        for job in self._map_order():
            allowed = self._allowed_level(job, now)
            found = job.find_pending_map(node_id, namenode, allowed)
            if found is None:
                job.delay_wait_started = (job.delay_wait_started or 0.0) + 1.0
                continue
            task, locality = found
            if locality is Locality.NODE_LOCAL:
                job.delay_wait_started = None
            return job, task, locality
        return None
