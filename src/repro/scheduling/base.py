"""Scheduler interface."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.mapreduce.job import Job
from repro.mapreduce.task import Locality, MapTask, ReduceTask

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.namenode import NameNode
    from repro.mapreduce.jobtracker import JobTracker

#: what pick_map returns: the job, the chosen task, and the locality level
#: the scheduler *believes* the placement has (per the NameNode view)
MapPick = Tuple[Job, MapTask, Locality]
ReducePick = Tuple[Job, ReduceTask]


class Scheduler:
    """Base class: tracks the active job set, defines the picking API.

    The JobTracker calls :meth:`pick_map` / :meth:`pick_reduce` repeatedly
    during a heartbeat while the offering node has free slots; returning
    ``None`` ends the assignment round for that slot type.
    """

    def __init__(self) -> None:
        self.jobtracker: Optional["JobTracker"] = None
        self.active_jobs: List[Job] = []

    def bind(self, jobtracker: "JobTracker") -> None:
        """Attach to a JobTracker (called once by its constructor)."""
        self.jobtracker = jobtracker

    @property
    def namenode(self) -> "NameNode":
        """The NameNode whose replica view drives locality decisions."""
        assert self.jobtracker is not None
        return self.jobtracker.namenode

    # -- job lifecycle ------------------------------------------------------

    def job_added(self, job: Job) -> None:
        """A job was submitted."""
        self.active_jobs.append(job)

    def job_finished(self, job: Job) -> None:
        """A job completed; drop it from consideration."""
        try:
            self.active_jobs.remove(job)
        except ValueError:  # pragma: no cover - defensive
            pass

    # -- picking ---------------------------------------------------------------

    def pick_map(self, node_id: int, now: float) -> Optional[MapPick]:
        """Choose a map task for a free map slot on ``node_id``."""
        raise NotImplementedError

    def pick_reduce(self, node_id: int, now: float) -> Optional[ReducePick]:
        """Choose a reduce task for a free reduce slot on ``node_id``."""
        raise NotImplementedError
