"""Pluggable MapReduce schedulers.

DARE is scheduler-agnostic; the paper evaluates it under Hadoop's two stock
schedulers, both modeled here:

* :class:`~repro.scheduling.fifo.FifoScheduler` — Hadoop's default
  JobQueueTaskScheduler: strict job-submission order, preferring node-local
  then rack-local tasks *within* the head job but never delaying a launch
  for locality;
* :class:`~repro.scheduling.fair.FairScheduler` — max-min fair sharing over
  jobs with **delay scheduling** [Zaharia et al., EuroSys'10]: a job whose
  turn yields no node-local task on the offering node is skipped for up to
  ``node_delay_s`` (then allowed rack-local, then after ``rack_delay_s``
  more, any placement).
"""

from repro.scheduling.base import Scheduler
from repro.scheduling.fifo import FifoScheduler
from repro.scheduling.fair import FairScheduler, SkipCountFairScheduler

__all__ = ["Scheduler", "FifoScheduler", "FairScheduler", "SkipCountFairScheduler"]
