"""A minimal HTTP/1.1 layer over asyncio streams (stdlib only).

Just enough protocol for the API in :mod:`repro.server.app`: parse one
request per connection (the server answers ``Connection: close``), with
the hardening the service edge needs —

* the request line and each header line are bounded by the stream
  reader's buffer limit (oversized → 431),
* header count is bounded (→ 431),
* the body is bounded by ``max_body_bytes`` (→ 413) and must carry an
  exact ``Content-Length`` (no chunked encoding — clients here are
  simple scripts and test harnesses),
* every read is wrapped in a timeout (a stalled client gets its
  connection closed instead of pinning the handler), mirroring the
  coordinator's JSON-lines hardening in ``experiments/service.py``.

Responses are rendered by :func:`response` / :func:`json_response`.
JSON bodies use ``indent=2, sort_keys=True`` + trailing newline — the
exact ``doc_to_text`` rendering that ``repro sweep --out`` writes, which
is what makes the server's result documents byte-comparable to files
produced by the serial path.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: cap on header lines per request
MAX_HEADERS = 64

STATUS_PHRASES = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    413: "Content Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request the server must refuse, with its status code."""

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    peer: str = ""

    def json(self) -> object:
        """The body as JSON; malformed (or non-finite floats) → 400."""
        try:
            return json.loads(
                self.body.decode("utf-8"),
                parse_constant=_reject_constant,
            )
        except ValueError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


def _reject_constant(name: str) -> object:
    # NaN/Infinity are not JSON; a submission carrying them would break
    # canonical cache keys, so refuse at the edge
    raise ValueError(f"non-finite float {name!r} is not allowed")


async def read_request(
    reader: asyncio.StreamReader,
    max_body_bytes: int,
    timeout_s: float,
    peer: str = "",
) -> Optional[Request]:
    """Parse one request; ``None`` on clean EOF before a request line."""
    try:
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
    except asyncio.LimitOverrunError:
        raise HttpError(431, "request line too long")
    except ValueError:
        raise HttpError(431, "request line too long")
    except (asyncio.TimeoutError, TimeoutError):
        raise HttpError(408, "timed out waiting for request line")
    if not line.strip():
        return None
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        try:
            raw = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
        except (asyncio.LimitOverrunError, ValueError):
            raise HttpError(431, "header line too long")
        except (asyncio.TimeoutError, TimeoutError):
            raise HttpError(408, "timed out reading headers")
        if raw in (b"\r\n", b"\n", b""):
            break
        name, _, value = raw.decode("latin-1").partition(":")
        if not _:
            raise HttpError(400, f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(431, f"more than {MAX_HEADERS} headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length")
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413, f"request body exceeds {max_body_bytes} bytes"
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout_s
            )
        except asyncio.IncompleteReadError:
            raise HttpError(400, "request body shorter than Content-Length")
        except (asyncio.TimeoutError, TimeoutError):
            raise HttpError(408, "timed out reading request body")
    return Request(
        method=method,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
        peer=peer,
    )


def response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json; charset=utf-8",
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render one full response (status line + headers + body)."""
    phrase = STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def json_body(doc: object) -> bytes:
    """Render a JSON body exactly as ``doc_to_text`` does (``--out`` form)."""
    return (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()


def json_response(status: int, doc: object,
                  headers: Optional[Dict[str, str]] = None) -> bytes:
    """A JSON response in the repo's canonical on-disk rendering."""
    return response(status, json_body(doc), headers=headers)


def error_response(exc: HttpError) -> bytes:
    """Render an :class:`HttpError` as a JSON error body."""
    return json_response(
        exc.status, {"error": exc.message, "status": exc.status},
        headers=exc.headers,
    )


def sse_preamble(headers: Dict[str, str]) -> bytes:
    """The status+header block that opens an SSE stream (no length)."""
    lines = ["HTTP/1.1 200 OK"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
