"""The HTTP front door: routes, backpressure, SSE, graceful drain.

:class:`Server` owns the asyncio listener and delegates all execution to
a :class:`~repro.experiments.jobs.JobManager` (whose executor threads do
the blocking work — the event loop only parses requests, renders
documents, and pumps SSE frames).

Routes::

    POST /api/jobs              submit a grid/cells document → job id
    GET  /api/jobs              one summary row per job
    GET  /api/jobs/{id}         status, progress, per-cell outcomes
    GET  /api/jobs/{id}/result  the outcome document (--out rendering)
    GET  /api/jobs/{id}/events  SSE: job/cell/progress/trace/done
    GET  /api/cluster           queue/worker/lease/cache/limiter state
    GET  /api/healthz           liveness (also reports draining)

Edge behavior (documented for clients in ``docs/SERVER.md``):

* every request is charged to a per-client token bucket
  (``X-Client-Id`` header, else peer address) — empty bucket → **429**
  with ``Retry-After``;
* the job backlog is bounded — full → **503**; draining → **503**;
* request size/time limits from :mod:`repro.server.http` → 408/413/431;
* SIGTERM/SIGINT → drain: stop accepting, let in-flight cells land,
  close SSE streams, exit.  With a job journal configured, unfinished
  jobs resume on restart (:mod:`repro.server.jobstore`).
"""

from __future__ import annotations

import asyncio
import signal
import traceback
from typing import Dict, Optional, Set

from repro.experiments.jobs import Job, JobManager, JobRejected
from repro.server import sse
from repro.server.http import (
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    response,
    sse_preamble,
)
from repro.server.ratelimit import RateLimiter


class Server:
    """The asyncio HTTP server over one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 8750,
        rate: float = 20.0,
        burst: float = 40.0,
        max_body_bytes: int = 1_048_576,
        request_timeout_s: float = 10.0,
        keepalive_s: float = 15.0,
        shutdown_grace_s: float = 30.0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self.limiter = RateLimiter(rate=rate, burst=burst)
        self.max_body_bytes = max_body_bytes
        self.request_timeout_s = request_timeout_s
        self.keepalive_s = keepalive_s
        self.shutdown_grace_s = shutdown_grace_s
        self.requests = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self._stop_requested: Optional[asyncio.Event] = None
        self._sse_wakeups: Set[asyncio.Event] = set()

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (resolves ``port=0`` to the real port)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve(self) -> None:
        """Run until SIGTERM/SIGINT, then drain gracefully."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._stop_requested.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-unix or non-main thread; request_stop instead
        try:
            await self._stop_requested.wait()
        finally:
            for sig in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(sig)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            await self.shutdown()

    def request_stop(self) -> None:
        """Ask :meth:`serve` to exit (thread-unsafe; call on the loop)."""
        if self._stop_requested is not None:
            self._stop_requested.set()

    async def shutdown(self) -> None:
        """Drain: refuse new work, land in-flight cells, close streams."""
        if self._stopping:
            return
        self._stopping = True
        self.manager.drain()
        for wakeup in list(self._sse_wakeups):
            wakeup.set()
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(), timeout=self.shutdown_grace_s
                )
            except (asyncio.TimeoutError, TimeoutError):
                pass  # a wedged client connection; the process is exiting
        await asyncio.to_thread(self.manager.stop, self.shutdown_grace_s)
        journal = getattr(self.manager, "journal", None)
        if journal is not None and hasattr(journal, "close"):
            journal.close()

    # -- connection handling ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = peername[0] if isinstance(peername, tuple) else str(peername)
        try:
            try:
                request = await read_request(
                    reader, self.max_body_bytes, self.request_timeout_s,
                    peer=peer,
                )
            except HttpError as exc:
                writer.write(error_response(exc))
                await writer.drain()
                return
            if request is None:
                return
            self.requests += 1
            try:
                self._check_rate(request)
                body = await self._dispatch(request, writer)
            except HttpError as exc:
                body = error_response(exc)
            except JobRejected as exc:
                headers = {}
                if exc.retry_after_s:
                    headers["Retry-After"] = f"{exc.retry_after_s:g}"
                body = json_response(
                    exc.status,
                    {"error": exc.message, "status": exc.status},
                    headers=headers,
                )
            except Exception:
                body = json_response(
                    500,
                    {"error": traceback.format_exc(limit=1).strip()
                     .splitlines()[-1], "status": 500},
                )
            if body is not None:
                writer.write(body)
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _check_rate(self, request: Request) -> None:
        client = request.headers.get("x-client-id") or request.peer or "anon"
        allowed, retry_after = self.limiter.check(client)
        if not allowed:
            raise HttpError(
                429,
                f"rate limit exceeded for client {client!r}",
                headers={"Retry-After": f"{max(retry_after, 0.001):.3f}"},
            )

    # -- routing ---------------------------------------------------------------

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> Optional[bytes]:
        """Return the full response bytes, or None if already streamed."""
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/api/jobs":
            if method == "POST":
                return await self._submit(request)
            if method == "GET":
                return json_response(200, {"jobs": self.manager.jobs_doc()})
            raise HttpError(405, f"{method} not allowed on {path}")
        if path == "/api/cluster":
            self._require_get(method, path)
            return json_response(200, self._cluster_doc())
        if path == "/api/healthz":
            self._require_get(method, path)
            return json_response(
                200, {"ok": True, "draining": self.manager.draining}
            )
        if path.startswith("/api/jobs/"):
            rest = path[len("/api/jobs/"):]
            job_id, _, sub = rest.partition("/")
            job = self._find_job(job_id)
            if not sub:
                self._require_get(method, path)
                return json_response(200, self.manager.job_status_doc(job))
            if sub == "result":
                self._require_get(method, path)
                return self._result(job)
            if sub == "events":
                self._require_get(method, path)
                await self._stream_events(request, writer, job)
                return None
        raise HttpError(404, f"no route for {method} {path}")

    @staticmethod
    def _require_get(method: str, path: str) -> None:
        if method != "GET":
            raise HttpError(405, f"{method} not allowed on {path}")

    def _find_job(self, job_id: str) -> Job:
        job = self.manager.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job {job_id!r}")
        return job

    # -- handlers --------------------------------------------------------------

    async def _submit(self, request: Request) -> bytes:
        doc = request.json()
        # submission touches the cache (disk) — keep it off the event loop
        job, created = await asyncio.to_thread(self.manager.submit, doc)
        body = {
            "id": job.id,
            "state": job.state,
            "created": created,
            "idempotency_key": job.idempotency_key,
            "progress": self.manager.job_status_doc(job)["progress"],
        }
        return json_response(202 if created else 200, body)

    def _result(self, job: Job) -> bytes:
        doc = self.manager.job_result_doc(job)
        if doc is None:
            raise HttpError(
                409, f"job {job.id!r} is still {job.state}; result not ready"
            )
        return json_response(200, doc)

    def _cluster_doc(self) -> Dict:
        doc = self.manager.cluster_doc()
        doc["server"] = {
            "requests": self.requests,
            "stopping": self._stopping,
            "ratelimit": {
                "allowed": self.limiter.allowed,
                "limited": self.limiter.limited,
                "clients": len(self.limiter),
            },
        }
        return doc

    async def _stream_events(
        self, request: Request, writer: asyncio.StreamWriter, job: Job
    ) -> None:
        """Pump the job's RecordStream as SSE until done (or shutdown)."""
        since = 0
        raw_since = request.query.get("since") \
            or request.headers.get("last-event-id", "")
        if raw_since:
            try:
                since = int(raw_since)
            except ValueError:
                raise HttpError(400, f"malformed event id {raw_since!r}")
        writer.write(sse_preamble(sse.HEADERS))
        loop = asyncio.get_running_loop()
        wakeup = asyncio.Event()
        self._sse_wakeups.add(wakeup)

        def wake() -> None:
            loop.call_soon_threadsafe(wakeup.set)

        job.stream.add_waiter(wake)
        try:
            while True:
                events, dropped, closed = job.stream.read_since(since)
                if dropped:
                    writer.write(sse.format_event(
                        "dropped", {"count": dropped}
                    ))
                    since += dropped
                for event in events:
                    writer.write(sse.format_event(
                        event.kind, dict(event.data), seq=event.seq
                    ))
                    since = event.seq
                await writer.drain()
                if closed or self._stopping:
                    break
                wakeup.clear()
                try:
                    await asyncio.wait_for(
                        wakeup.wait(), timeout=self.keepalive_s
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    writer.write(sse.format_comment())
                    await writer.drain()
        finally:
            job.stream.remove_waiter(wake)
            self._sse_wakeups.discard(wakeup)


async def run_server(server: Server) -> None:
    """CLI entry: start and serve until signalled."""
    await server.start()
    print(f"serving on http://{server.host}:{server.port}", flush=True)
    await server.serve()
