"""``repro.server`` — the HTTP/SSE front door over the sweep executor.

Lazy exports keep import direction clean: :mod:`repro.experiments.jobs`
never imports this package, and importing ``repro.server`` does not pull
in asyncio machinery until :class:`Server` is actually used.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.app import Server
    from repro.server.jobstore import JobJournal

__all__ = ["Server", "JobJournal"]


def __getattr__(name: str):
    if name == "Server":
        from repro.server.app import Server
        return Server
    if name == "JobJournal":
        from repro.server.jobstore import JobJournal
        return JobJournal
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
