"""Per-client token-bucket rate limiting for the API edge.

One :class:`TokenBucket` per client (keyed by ``X-Client-Id`` header or
peer address — see :mod:`repro.server.app`), refilled continuously at
``rate`` tokens/second up to a ``burst`` ceiling.  A request costs one
token; with none available the caller gets the number of seconds until
one accrues, which the server surfaces as ``Retry-After`` on the 429.

The clock is injectable (monotonic by default) so tests drive logical
time, matching the queue/lease machinery's convention.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Tuple


class TokenBucket:
    """Continuous-refill token bucket; ``acquire`` never blocks."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.updated = now

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def acquire(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until one."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate


class RateLimiter:
    """A bucket per client id, with bounded memory.

    When the client table exceeds ``max_clients``, fully-refilled idle
    buckets are evicted (they are indistinguishable from fresh ones, so
    dropping them is lossless).
    """

    def __init__(
        self,
        rate: float = 5.0,
        burst: float = 10.0,
        max_clients: int = 1024,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: Dict[str, TokenBucket] = {}
        self.allowed = 0
        self.limited = 0

    def check(self, client: str) -> Tuple[bool, float]:
        """Charge one request to ``client``: ``(allowed, retry_after_s)``."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                if len(self._buckets) >= self.max_clients:
                    self._evict(now)
                bucket = TokenBucket(self.rate, self.burst, now)
                self._buckets[client] = bucket
            wait = bucket.acquire(now)
            if wait > 0.0:
                self.limited += 1
                return False, wait
            self.allowed += 1
            return True, 0.0

    def _evict(self, now: float) -> None:
        for client, bucket in list(self._buckets.items()):
            bucket._refill(now)
            if bucket.tokens >= bucket.burst:
                del self._buckets[client]

    def __len__(self) -> int:
        with self._lock:
            return len(self._buckets)
