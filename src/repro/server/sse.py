"""Server-Sent Events wire formatting (no I/O here — just bytes).

The SSE framing is the W3C EventSource one: each event is an ``event:``
line naming the kind, an ``id:`` line carrying the
:class:`~repro.observability.stream.RecordStream` sequence number (so
clients resume with ``Last-Event-ID``), and one ``data:`` line of
canonical JSON, terminated by a blank line.  Comments (``: ...``) are
keepalives; clients ignore them.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.serialize import canonical_json

#: response headers every SSE stream carries
HEADERS = {
    "Content-Type": "text/event-stream; charset=utf-8",
    "Cache-Control": "no-cache",
    "X-Accel-Buffering": "no",
}


def format_event(kind: str, data: Dict, seq: Optional[int] = None) -> bytes:
    """One SSE frame: ``event``/``id``/``data`` lines + blank terminator."""
    lines = [f"event: {kind}"]
    if seq is not None:
        lines.append(f"id: {seq}")
    lines.append(f"data: {canonical_json(data)}")
    return ("\n".join(lines) + "\n\n").encode()


def format_comment(text: str = "keepalive") -> bytes:
    """An SSE comment frame (keepalive; ignored by clients)."""
    return f": {text}\n\n".encode()
