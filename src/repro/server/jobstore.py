"""Journaled job store: submissions survive a server restart.

The journal is append-only JSON lines, one event per line:

* ``{"event": "submit", "job": {...}}`` — the full submission record
  (:meth:`repro.experiments.jobs.Job.to_doc`: id, idempotency key,
  normalized spec, cells in ``cell_to_doc`` form, cache keys).
* ``{"event": "state", "id": ..., "state": "done"|"failed", ...}`` —
  a job reaching a terminal state.

On restart, :func:`restore` replays the journal into a fresh
:class:`~repro.experiments.jobs.JobManager`: finished jobs keep their
terminal state (result documents rebuild from the content-addressed
cache on demand), unfinished jobs re-enqueue their cells — and because
the cache pre-resolution runs again at adoption, the prefix computed
before the crash is resolved instantly and only the genuinely
unfinished cells re-execute.  A torn final line (the process died
mid-append) is detected and ignored.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.experiments.jobs import Job, JobManager, RUNNING
from repro.experiments.serialize import canonical_json


class JobJournal:
    """Append-only JSONL journal of job submissions and state changes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self._fh: Optional[object] = None

    def append(self, doc: Dict) -> None:
        """Append one event; flushed immediately (crash loses ≤ 1 line)."""
        line = canonical_json(doc) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fh = self.path.open("a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    @staticmethod
    def events(path: Union[str, Path]) -> List[Dict]:
        """Parse the journal, tolerating a torn (crash-truncated) tail."""
        path = Path(path)
        if not path.exists():
            return []
        events: List[Dict] = []
        lines = path.read_text(encoding="utf-8").splitlines()
        for n, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if n == len(lines) - 1:
                    continue  # torn final append; everything before is good
                raise
        return events


def restore(manager: JobManager, path: Union[str, Path]) -> int:
    """Replay a journal into ``manager`` (call before serving traffic).

    Returns the number of jobs adopted.  Unfinished jobs re-enqueue
    (warm cells resolve from the cache at adoption); finished jobs are
    kept queryable with their terminal state.
    """
    submissions: List[Job] = []
    states: Dict[str, str] = {}
    for event in JobJournal.events(path):
        kind = event.get("event")
        if kind == "submit":
            submissions.append(Job.from_doc(event["job"]))
        elif kind == "state":
            states[event["id"]] = event["state"]
    for job in submissions:
        manager.adopt(job, states.get(job.id, RUNNING))
    return len(submissions)
