"""repro — a full reproduction of *DARE: Adaptive Data Replication for
Efficient Cluster Scheduling* (Abad, Lu, Campbell; IEEE CLUSTER 2011).

The package provides:

* :mod:`repro.core` — the DARE algorithms (greedy LRU, Algorithm 1;
  probabilistic ElephantTrap, Algorithm 2) and the replication budget;
* :mod:`repro.hdfs`, :mod:`repro.mapreduce`, :mod:`repro.scheduling`,
  :mod:`repro.cluster`, :mod:`repro.simulation` — the simulated Hadoop
  substrate (HDFS metadata, JobTracker/TaskTracker heartbeat scheduling,
  FIFO and Fair-with-delay schedulers, cluster network/disk models);
* :mod:`repro.workloads` — SWIM-style Facebook workload synthesis;
* :mod:`repro.analysis` — the Yahoo!-log access-pattern analyses of
  Section III;
* :mod:`repro.metrics`, :mod:`repro.experiments` — the paper's metrics and
  one driver per evaluation table/figure.

Quickstart::

    from repro import (
        DareConfig, ExperimentConfig, run_experiment, synthesize_wl1,
    )
    import numpy as np

    wl = synthesize_wl1(np.random.default_rng(7), n_jobs=100)
    vanilla = run_experiment(ExperimentConfig(scheduler="fifo"), wl)
    dare = run_experiment(
        ExperimentConfig(scheduler="fifo", dare=DareConfig.elephant_trap()), wl
    )
    print(vanilla.job_locality, "->", dare.job_locality)
"""

from repro.core.config import DareConfig, Policy
from repro.experiments.runner import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.cluster.cluster import CCT_SPEC, EC2_SPEC, ClusterSpec, build_cluster
from repro.workloads.swim import (
    Workload,
    synthesize_wl1,
    synthesize_wl2,
    synthesize_workload,
)

__version__ = "1.0.0"

__all__ = [
    "DareConfig",
    "Policy",
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "ClusterSpec",
    "CCT_SPEC",
    "EC2_SPEC",
    "build_cluster",
    "Workload",
    "synthesize_wl1",
    "synthesize_wl2",
    "synthesize_workload",
    "__version__",
]
