"""Baseline replication systems the paper compares against.

Scarlett [Ananthanarayanan et al., EuroSys'11] is the paper's closest
related work: an *off-line, epoch-based* system that periodically computes
per-file replication factors from the previous epoch's popularity and
rebalances replicas proactively.  The paper argues DARE's *reactive*
approach adapts at smaller time scales and costs no replication traffic;
implementing Scarlett makes that comparison runnable
(``benchmarks/test_ablation_scarlett.py``).
"""

from repro.baselines.cdrm import CdrmConfig, CdrmService
from repro.baselines.scarlett import ScarlettConfig, ScarlettService

__all__ = ["CdrmConfig", "CdrmService", "ScarlettConfig", "ScarlettService"]
