"""Scarlett: epoch-based proactive replication (EuroSys'11), simplified.

At every epoch boundary the service:

1. reads the file access counts observed during the epoch just ended;
2. computes a per-file target replication factor by *water-filling*: the
   file with the highest accesses-per-replica repeatedly receives one more
   replica until the extra-storage budget is spent (this smooths hotspots,
   Scarlett's stated goal);
3. removes its previously created replicas for files that fell out of the
   hot set (replica aging);
4. creates the missing replicas by copying blocks over the network — the
   rebalancing traffic DARE avoids — throttled by a concurrency cap (the
   paper's Scarlett bounds rebalancing bandwidth the same way).

Differences from the real system are intentional simplifications: we use
access counts rather than measured concurrency, and a single learning
window equal to the epoch.  Both preserve the property the comparison needs:
replication factors only change at epoch boundaries, so popularity shifts
inside an epoch go unserved — exactly the behaviour DARE was designed to
beat.
"""

from __future__ import annotations

import random
from collections import Counter
from functools import partial
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Tuple

from repro.metrics.traffic import TrafficMeter
from repro.observability.trace import NULL_TRACER, SCARLETT_EPOCH, Tracer
from repro.simulation.engine import Engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.hdfs.namenode import NameNode
    from repro.mapreduce.job import Job


class ScarlettConfig(NamedTuple):
    """Scarlett parameters."""

    #: seconds between recomputation rounds
    epoch_s: float = 600.0
    #: extra-storage budget, fraction of stored physical bytes (same
    #: semantics as DARE's budget, for apples-to-apples comparisons)
    budget: float = 0.2
    #: cap on concurrent rebalancing copies
    max_concurrent: int = 4

    def validate(self) -> "ScarlettConfig":
        """Raise on malformed configs; return self."""
        if self.epoch_s <= 0:
            raise ValueError("epoch must be positive")
        if self.budget < 0:
            raise ValueError("budget must be nonnegative")
        if self.max_concurrent < 1:
            raise ValueError("need at least one rebalancing stream")
        return self


class ScarlettService:
    """Periodic popularity-driven replication."""

    def __init__(
        self,
        config: ScarlettConfig,
        namenode: "NameNode",
        engine: Engine,
        traffic: TrafficMeter,
        rng: random.Random,
        stop_when=None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.config = config.validate()
        #: optional zero-arg predicate: when true, stop scheduling epochs
        self.stop_when = stop_when
        self.namenode = namenode
        self.engine = engine
        self.traffic = traffic
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = rng
        #: accesses per file name in the current epoch
        self._epoch_counts: Counter = Counter()
        #: extra replicas this service created: file -> [(block_id, node_id)]
        self._extra: Dict[str, List[Tuple[int, int]]] = {}
        #: copies in flight
        self._active = 0
        self._copy_queue: List[Tuple[int, int, int]] = []  # (block, src, dst)
        self.replicas_created = 0
        self.replicas_removed = 0
        self.epochs_run = 0
        self._slack_bytes: Optional[int] = None

    # -- wiring ---------------------------------------------------------------

    def arm(self) -> None:
        """Schedule the first epoch boundary."""
        self.engine.schedule_in(
            self.config.epoch_s, self._epoch_boundary, "scarlett-epoch"
        )

    def observe_submission(self, job: "Job") -> None:
        """JobTracker hook: record a file access."""
        self._epoch_counts[job.spec.input_file] += 1

    # -- epoch logic ---------------------------------------------------------------

    def budget_bytes(self) -> int:
        """Extra-storage budget in bytes (fraction of stored physical bytes)."""
        physical = sum(
            f.size_bytes * f.replication for f in self.namenode.files.values()
        )
        return int(self.config.budget * physical)

    def extra_bytes(self) -> int:
        """Bytes currently held as Scarlett extra replicas.

        Pairs on dead nodes still count until aged out — the budget is a
        bookkeeping construct, not a measure of reachable storage.
        """
        return sum(
            self.namenode.blocks[bid].size_bytes
            for pairs in self._extra.values()
            for bid, _node in pairs
        )

    def slack_bytes(self) -> int:
        """How far ``extra_bytes`` may legitimately overshoot the budget.

        Copies in flight at an epoch boundary (at most ``max_concurrent``)
        were planned against the previous epoch's water-fill and may still
        land on top of the new plan.
        """
        if self._slack_bytes is None:
            # the block set is fixed after dataset load
            self._slack_bytes = self.config.max_concurrent * max(
                (b.size_bytes for b in self.namenode.blocks.values()), default=0
            )
        return self._slack_bytes

    def _water_fill(self, counts: Counter) -> Dict[str, int]:
        """Extra replicas per file: highest accesses-per-replica first."""
        n_slaves = len(self.namenode.datanodes)
        budget = self.budget_bytes()
        extra: Dict[str, int] = {}
        spent = 0
        # candidate heap approximated with repeated max over the hot set
        hot = [name for name, c in counts.items() if c > 0]
        if not hot:
            return extra
        while True:
            best, best_key = None, 0.0
            for name in hot:
                inode = self.namenode.file(name)
                replicas = inode.replication + extra.get(name, 0)
                if replicas >= n_slaves:
                    continue
                if spent + inode.size_bytes > budget:
                    continue
                key = counts[name] / replicas
                if key > best_key:
                    best, best_key = name, key
            if best is None:
                return extra
            extra[best] = extra.get(best, 0) + 1
            spent += self.namenode.file(best).size_bytes

    def _epoch_boundary(self) -> None:
        self.epochs_run += 1
        # drop copy work left over from the previous epoch: those copies
        # were sized against the *old* water-fill plan, and letting them
        # land on top of the new plan overshoots the budget without bound
        self._copy_queue.clear()
        counts = self._epoch_counts
        self._epoch_counts = Counter()
        targets = self._water_fill(counts)
        # age out replicas of files no longer hot enough
        for name in list(self._extra):
            want = targets.get(name, 0)
            while self._extra_count(name) > want:
                self._remove_one(name)
        # create what is missing
        for name, want in targets.items():
            missing = want - self._extra_count(name)
            for _ in range(max(0, missing)):
                self._enqueue_file_copy(name)
        self._pump()
        if self.tracer.enabled:
            self.tracer.emit(
                SCARLETT_EPOCH,
                self.engine.now,
                epoch=self.epochs_run,
                files_hot=len(targets),
                extra_replicas=sum(len(p) for p in self._extra.values()),
                budget_bytes=self.budget_bytes(),
                spent_bytes=self.extra_bytes(),
                slack_bytes=self.slack_bytes(),
                replicas_created=self.replicas_created,
                replicas_removed=self.replicas_removed,
                queued=len(self._copy_queue),
            )
        if self.stop_when is None or not self.stop_when():
            self.engine.schedule_in(
                self.config.epoch_s, self._epoch_boundary, "scarlett-epoch"
            )

    # -- replica bookkeeping ---------------------------------------------------------

    def _extra_count(self, name: str) -> int:
        """Extra whole-file replica count currently held for ``name``."""
        pairs = self._extra.get(name, [])
        if not pairs:
            return 0
        n_blocks = self.namenode.file(name).n_blocks
        return len(pairs) // max(1, n_blocks)

    def _remove_one(self, name: str) -> None:
        """Drop one whole-file extra replica (newest first)."""
        inode = self.namenode.file(name)
        pairs = self._extra.get(name, [])
        for _ in range(inode.n_blocks):
            if not pairs:
                break
            bid, node_id = pairs.pop()
            dn = self.namenode.datanode(node_id)
            if bid in dn.static_blocks:
                del dn.static_blocks[bid]
                self.namenode._locations[bid].discard(node_id)
                self.replicas_removed += 1
        if not pairs:
            self._extra.pop(name, None)

    def _enqueue_file_copy(self, name: str) -> None:
        """Queue copies of every block of ``name`` to one fresh node each."""
        inode = self.namenode.file(name)
        for block in inode.blocks:
            locs = self.namenode.locations(block.block_id)
            candidates = [
                n.node_id
                for n in self.namenode.cluster.slaves
                if n.alive and n.node_id not in locs
            ]
            if not candidates:
                continue
            src_choices = [
                n for n in locs if self.namenode.cluster.node(n).alive
            ]
            if not src_choices:
                continue
            dst = self._rng.choice(candidates)
            src = self._rng.choice(src_choices)
            self._copy_queue.append((block.block_id, src, dst))

    def _pump(self) -> None:
        while self._active < self.config.max_concurrent and self._copy_queue:
            bid, src, dst = self._copy_queue.pop(0)
            self._start_copy(bid, src, dst)  # skips simply continue the loop

    def _start_copy(self, bid: int, src: int, dst: int) -> None:
        cluster = self.namenode.cluster
        block = self.namenode.blocks[bid]
        if (
            not cluster.node(src).alive
            or not cluster.node(dst).alive
            or self.namenode.datanode(dst).has_block(bid)
        ):
            return  # skipped; the caller's pump loop moves on
        self._active += 1
        cluster.node(src).active_net_transfers += 1
        cluster.node(dst).active_net_transfers += 1
        duration = cluster.network.transfer_seconds(
            block.size_bytes, src, dst,
            contention=max(1, cluster.node(src).active_net_transfers),
        )
        self.traffic.record("rebalancing", block.size_bytes)
        self.engine.schedule_in(
            duration, partial(self._finish_copy, bid, src, dst), f"scarlett-copy:{bid}"
        )

    def _finish_copy(self, bid: int, src: int, dst: int) -> None:
        cluster = self.namenode.cluster
        cluster.node(src).active_net_transfers -= 1
        cluster.node(dst).active_net_transfers -= 1
        self._active -= 1
        block = self.namenode.blocks[bid]
        dn = self.namenode.datanode(dst)
        if cluster.node(dst).alive and not dn.has_block(bid):
            dn.store_static(block)
            self.namenode._locations[bid].add(dst)
            self._extra.setdefault(block.inode.name, []).append((bid, dst))
            self.replicas_created += 1
        self._pump()
